(** Loading a domain pack directory into a {!Dggt_domains.Domain.t}.

    A pack is a directory holding:

    - [domain.pack] — the {!Manifest}: [name] and [start] (required),
      [description], [source], [alias] (repeatable), [default]
      (repeatable, [default = <nonterminal> <codelet>]), [stop-verbs] and
      [unit-apis] (space-separated), [max-nodes]/[max-paths]/[max-steps]
      (the {!Dggt_grammar.Gpath.limits} overrides), [top-k],
      [expect-accuracy]/[expect-p95-ms] (the eval envelope — performance
      expectations [dggt eval --check-envelope] enforces);
    - [grammar.bnf] — the DSL grammar, parsed by {!Dggt_grammar.Bnf}
      through {!Dggt_grammar.Cfg.of_text};
    - [api.doc] — the API reference document ({!Docfile});
    - [queries.tsv] — the evaluation query set ({!Queryfile}); optional,
      a pack without one simply has no benchmark.

    Loading is eager (grammar graph and document are built immediately, so
    a loaded domain never fails a [Lazy.force] later) and every failure is
    an {!Err.t} naming the offending file and line. Loading performs the
    {e syntactic} checks; semantic validation (API reachability, limit
    sanity) is {!Check.run}. *)

type loaded = {
  domain : Dggt_domains.Domain.t;
  dir : string;
  aliases : string list;         (** extra lookup names from [alias =] *)
  digest : string;               (** MD5 hex over the pack's files — the
                                     version handle [GET /version] exposes *)
  name_line : int;               (** manifest line of [name =], for
                                     duplicate-domain diagnostics *)
  doc_entries : Docfile.entry list;     (** with line numbers, for {!Check} *)
  query_entries : Queryfile.entry list; (** with line numbers, for {!Check} *)
  manifest : Manifest.t;
  expect_accuracy : float option;
      (** [expect-accuracy]: the accuracy floor the pack's query set is
          expected to hold, as a fraction in [[0, 1]] *)
  expect_p95_ms : float option;
      (** [expect-p95-ms]: the p95 synthesis-latency ceiling in
          milliseconds (positive) *)
}

(** The pack's file names: ["domain.pack"], ["grammar.bnf"], ["api.doc"],
    ["queries.tsv"]. *)

val manifest_name : string

val grammar_name : string
val doc_name : string
val queries_name : string

val load : string -> (loaded, Err.t) result
