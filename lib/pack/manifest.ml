type binding = { key : string; value : string; line : int }
type t = { file : string; bindings : binding list }

let is_key_char c =
  Dggt_util.Strutil.is_alnum c || c = '-' || c = '_' || c = '.'

let valid_key k = k <> "" && String.for_all is_key_char k

let parse ~file text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok { file; bindings = List.rev acc }
    | raw :: rest -> (
        let s = Dggt_util.Strutil.strip raw in
        if s = "" || s.[0] = '#' then go (lineno + 1) acc rest
        else
          match String.index_opt s '=' with
          | None ->
              Error
                (Err.v ~line:lineno file
                   "expected `key = value` (or a # comment)")
          | Some i ->
              let key = Dggt_util.Strutil.strip (String.sub s 0 i) in
              let value =
                Dggt_util.Strutil.strip
                  (String.sub s (i + 1) (String.length s - i - 1))
              in
              if not (valid_key key) then
                Error (Err.vf ~line:lineno file "malformed key %S" key)
              else go (lineno + 1) ({ key; value; line = lineno } :: acc) rest)
  in
  go 1 [] lines

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error (Err.v path m)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load path =
  match read_file path with
  | Error e -> Error e
  | Ok text -> parse ~file:path text

let find t key = List.find_opt (fun b -> b.key = key) t.bindings
let find_all t key = List.filter (fun b -> b.key = key) t.bindings
let keys t = Dggt_util.Listutil.uniq (List.map (fun b -> b.key) t.bindings)

let value t key = Option.map (fun b -> b.value) (find t key)

let int_value t key =
  match find t key with
  | None -> Ok None
  | Some b -> (
      match int_of_string_opt b.value with
      | Some n -> Ok (Some n)
      | None ->
          Error
            (Err.vf ~line:b.line t.file "%s: expected an integer, got %S"
               key b.value))

let num_value t key =
  match find t key with
  | None -> Ok None
  | Some b -> (
      match float_of_string_opt b.value with
      | Some v when Float.is_finite v -> Ok (Some v)
      | _ ->
          Error
            (Err.vf ~line:b.line t.file "%s: expected a number, got %S" key
               b.value))
