(** The [queries.tsv] file of a domain pack: the domain's evaluation query
    set (the paper's Table I), one query per line as four tab-separated
    fields — id, flags ([hard] or [-]), natural-language text, and the
    ground-truth codelet.

    Ground truths are parsed eagerly with {!Dggt_core.Tree2expr.parse}: a
    malformed expected codelet fails the load with the file and line, not
    an accuracy surprise at evaluation time. *)

type entry = { query : Dggt_domains.Domain.query; line : int }

val parse : file:string -> string -> (entry list, Err.t) result
val load : string -> (entry list, Err.t) result

val render : Dggt_domains.Domain.query list -> string
(** Serialize a query set back to [queries.tsv] text; tabs/newlines inside
    fields are flattened to spaces. *)
