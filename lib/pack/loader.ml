module Domain = Dggt_domains.Domain

type loaded = {
  domain : Domain.t;
  dir : string;
  aliases : string list;
  digest : string;
  name_line : int;
  doc_entries : Docfile.entry list;
  query_entries : Queryfile.entry list;
  manifest : Manifest.t;
  expect_accuracy : float option;
  expect_p95_ms : float option;
}

let manifest_name = "domain.pack"
let grammar_name = "grammar.bnf"
let doc_name = "api.doc"
let queries_name = "queries.tsv"

let known_keys =
  [
    "name"; "description"; "source"; "start"; "alias"; "default";
    "stop-verbs"; "unit-apis"; "max-nodes"; "max-paths"; "max-steps"; "top-k";
    "expect-accuracy"; "expect-p95-ms";
  ]

let ( let* ) = Result.bind

let require_file path =
  if Sys.file_exists path && not (Sys.is_directory path) then Ok ()
  else Error (Err.v path "no such file")

(* positive integer manifest field *)
let pos_int m key =
  let* v = Manifest.int_value m key in
  match v with
  | Some n when n <= 0 ->
      let b = Option.get (Manifest.find m key) in
      Error
        (Err.vf ~line:b.Manifest.line m.Manifest.file "%s must be positive"
           key)
  | v -> Ok v

let parse_defaults m =
  List.fold_left
    (fun acc (b : Manifest.binding) ->
      let* acc = acc in
      match Dggt_util.Strutil.split_ws b.Manifest.value with
      | nt :: (_ :: _ as rest) ->
          Ok ((nt, String.concat " " rest) :: acc)
      | _ ->
          Error
            (Err.v ~line:b.Manifest.line m.Manifest.file
               "default takes a nonterminal and a codelet, e.g. `default = \
                pos END()`"))
    (Ok [])
    (Manifest.find_all m "default")
  |> Result.map List.rev

let parse_limits m =
  let* max_nodes = pos_int m "max-nodes" in
  let* max_paths = pos_int m "max-paths" in
  let* max_steps = pos_int m "max-steps" in
  match (max_nodes, max_paths, max_steps) with
  | None, None, None -> Ok None
  | _ ->
      let d = Dggt_grammar.Gpath.default_limits in
      Ok
        (Some
           {
             Dggt_grammar.Gpath.max_nodes =
               Option.value max_nodes
                 ~default:d.Dggt_grammar.Gpath.max_nodes;
             max_paths =
               Option.value max_paths ~default:d.Dggt_grammar.Gpath.max_paths;
             max_steps =
               Option.value max_steps ~default:d.Dggt_grammar.Gpath.max_steps;
           })

let words m key =
  match Manifest.value m key with
  | None -> []
  | Some v -> Dggt_util.Strutil.split_ws v

(* the eval envelope: expected-floor accuracy (a fraction) and
   expected-ceiling p95 latency (milliseconds). Only [dggt eval
   --check-envelope] consumes them; loading just validates the ranges. *)
let parse_envelope m =
  let* acc = Manifest.num_value m "expect-accuracy" in
  let* () =
    match acc with
    | Some v when v < 0.0 || v > 1.0 ->
        let b = Option.get (Manifest.find m "expect-accuracy") in
        Error
          (Err.vf ~line:b.Manifest.line m.Manifest.file
             "expect-accuracy must be a fraction in [0, 1], got %g" v)
    | _ -> Ok ()
  in
  let* p95 = Manifest.num_value m "expect-p95-ms" in
  let* () =
    match p95 with
    | Some v when v <= 0.0 ->
        let b = Option.get (Manifest.find m "expect-p95-ms") in
        Error
          (Err.vf ~line:b.Manifest.line m.Manifest.file
             "expect-p95-ms must be positive, got %g" v)
    | _ -> Ok ()
  in
  Ok (acc, p95)

let digest_files paths =
  let buf = Buffer.create 65536 in
  List.iter
    (fun p ->
      match Manifest.read_file p with
      | Ok text ->
          Buffer.add_string buf (Filename.basename p);
          Buffer.add_char buf '\n';
          Buffer.add_string buf text
      | Error _ -> ())
    paths;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let load dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Err.v dir "no such pack directory")
  else
    let mpath = Filename.concat dir manifest_name in
    let gpath = Filename.concat dir grammar_name in
    let dpath = Filename.concat dir doc_name in
    let qpath = Filename.concat dir queries_name in
    let* () = require_file mpath in
    let* m = Manifest.load mpath in
    (* typos in keys must not silently drop a setting *)
    let* () =
      List.fold_left
        (fun acc (b : Manifest.binding) ->
          let* () = acc in
          if List.mem b.Manifest.key known_keys then Ok ()
          else
            Error
              (Err.vf ~line:b.Manifest.line mpath "unknown key %S (one of: %s)"
                 b.Manifest.key
                 (String.concat ", " known_keys)))
        (Ok ()) m.Manifest.bindings
    in
    let* name_b =
      match Manifest.find m "name" with
      | Some b when b.Manifest.value <> "" -> Ok b
      | _ -> Error (Err.v mpath "missing required key `name`")
    in
    let* start_b =
      match Manifest.find m "start" with
      | Some b when b.Manifest.value <> "" -> Ok b
      | _ ->
          Error (Err.v mpath "missing required key `start` (grammar root)")
    in
    let* () = require_file gpath in
    let* gtext = Manifest.read_file gpath in
    let* cfg =
      match Dggt_grammar.Cfg.of_text ~start:start_b.Manifest.value gtext with
      | Ok cfg -> Ok cfg
      | Error (Dggt_grammar.Cfg.Parse_error e) ->
          Error (Err.v ~line:e.Dggt_grammar.Bnf.line gpath e.Dggt_grammar.Bnf.message)
      | Error (Dggt_grammar.Cfg.Undefined_start s) ->
          Error
            (Err.vf ~line:start_b.Manifest.line mpath
               "start symbol %s has no rule in %s" s grammar_name)
      | Error Dggt_grammar.Cfg.Empty_grammar ->
          Error (Err.v gpath "grammar has no rules")
    in
    let graph = Dggt_grammar.Ggraph.build cfg in
    let* () = require_file dpath in
    let* doc_entries = Docfile.load dpath in
    let doc = Docfile.to_doc doc_entries in
    let* query_entries =
      if Sys.file_exists qpath then Queryfile.load qpath else Ok []
    in
    let* defaults = parse_defaults m in
    let* path_limits = parse_limits m in
    let* top_k = pos_int m "top-k" in
    let* expect_accuracy, expect_p95_ms = parse_envelope m in
    let unit_filter =
      match words m "unit-apis" with
      | [] -> None
      | apis ->
          let set = Hashtbl.create (List.length apis) in
          List.iter (fun a -> Hashtbl.replace set a ()) apis;
          Some (fun api -> Hashtbl.mem set api)
    in
    let domain =
      {
        Domain.name = name_b.Manifest.value;
        description = Option.value (Manifest.value m "description") ~default:"";
        source =
          Option.value (Manifest.value m "source")
            ~default:(Printf.sprintf "domain pack %s" dir);
        graph = Lazy.from_val graph;
        doc = Lazy.from_val doc;
        queries = List.map (fun (e : Queryfile.entry) -> e.query) query_entries;
        defaults;
        unit_filter;
        path_limits;
        stop_verbs = words m "stop-verbs";
        top_k;
      }
    in
    Ok
      {
        domain;
        dir;
        aliases =
          List.map (fun (b : Manifest.binding) -> b.Manifest.value)
            (Manifest.find_all m "alias");
        digest =
          digest_files
            (mpath :: gpath :: dpath
            :: (if Sys.file_exists qpath then [ qpath ] else []));
        name_line = name_b.Manifest.line;
        doc_entries;
        query_entries;
        manifest = m;
        expect_accuracy;
        expect_p95_ms;
      }
