(** The [api.doc] file of a domain pack: the API reference document as
    data.

    One API per line, three tab-separated fields:

    {v
    # comment
    INSERT<TAB>verb<TAB>insert or add a given string at a position
    STRING<TAB>str<TAB>a literal string value given by the user
    WORDTOKEN<TAB>noun<TAB>a word in the text
    ALWAYS<TAB>-<TAB>no condition so the command always applies
    v}

    The flags field is a comma-separated subset of [str,num,verb,noun]
    ([-] for none): [str]/[num] mark the APIs that absorb quoted-string /
    numeric query literals, [verb]/[noun] the part-of-speech preference
    WordToAPI filters candidates with — exactly the four optional
    arguments of {!Dggt_core.Apidoc.make}. *)

type entry = {
  api : string;
  flags : string list;
  description : string;
  line : int;  (** 1-based line in the file, for {!Check} diagnostics *)
}

val parse : file:string -> string -> (entry list, Err.t) result
(** Duplicate API names and unknown flags are errors. *)

val load : string -> (entry list, Err.t) result

val to_doc : entry list -> Dggt_core.Apidoc.t
(** Build the document exactly as the compiled-in domains do (through
    {!Dggt_core.Apidoc.make}), so a pack round-trips byte-identically. *)

val render : Dggt_core.Apidoc.t -> string
(** Inverse of [load >> to_doc]: serialize a document back to [api.doc]
    text (used by [dggt pack dump]). Tabs/newlines inside descriptions are
    flattened to spaces. *)
