(** The hand-rolled key/value format of [domain.pack].

    One binding per line, [key = value]; [#] starts a comment line; blank
    lines are ignored; keys match [[A-Za-z0-9._-]+]; values run to the end
    of the line, surrounding whitespace stripped. Keys may repeat — the
    loader uses repetition for list-valued settings ([default], [alias]).
    The parser keeps every binding's 1-based line so consumers can report
    precise errors. *)

type binding = { key : string; value : string; line : int }
type t = { file : string; bindings : binding list }

val parse : file:string -> string -> (t, Err.t) result
(** [file] is only used in error messages and [t.file]. *)

val load : string -> (t, Err.t) result
(** Read and {!parse} a manifest file. *)

val find : t -> string -> binding option
(** First binding of a key, in file order. *)

val find_all : t -> string -> binding list
val keys : t -> string list

val value : t -> string -> string option
val int_value : t -> string -> (int option, Err.t) result
(** [Ok None] when the key is absent; an error naming the binding's line
    when the value is not an integer. *)

val num_value : t -> string -> (float option, Err.t) result
(** Like {!int_value} for finite decimal numbers (the eval-envelope
    keys). *)

val read_file : string -> (string, Err.t) result
(** Whole-file read shared by the pack loaders; the error names the path. *)
