(** File/line-precise pack errors.

    Every diagnostic the pack loader and validator produce names the file
    it came from and, when one makes sense, the 1-based line — [line = 0]
    means the error is about the file as a whole (missing, unreadable,
    empty). *)

type t = { file : string; line : int; message : string }

val v : ?line:int -> string -> string -> t
(** [v ?line file message]; [line] defaults to 0 (whole-file). *)

val vf : ?line:int -> string -> ('a, unit, string, t) format4 -> 'a
(** [Printf]-style {!v}. *)

val to_string : t -> string
(** ["file:line: message"], or ["file: message"] when [line = 0]. *)

val pp : Format.formatter -> t -> unit
