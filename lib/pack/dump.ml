module Domain = Dggt_domains.Domain
module Cfg = Dggt_grammar.Cfg
module Bnf = Dggt_grammar.Bnf

let bnf_of_cfg (cfg : Cfg.t) =
  (* productions are stored grouped by lhs in definition order, so stable
     grouping reconstructs the (merged) rule list [Cfg.of_bnf] came from —
     re-parsing the rendered text yields a structurally identical CFG *)
  Array.to_list cfg.Cfg.productions
  |> Dggt_util.Listutil.group_by ~key:(fun (p : Cfg.production) -> p.Cfg.lhs)
  |> List.map (fun (lhs, ps) ->
         {
           Bnf.lhs;
           alternatives =
             List.map
               (fun (p : Cfg.production) -> List.map Cfg.symbol_name p.Cfg.rhs)
               ps;
         })

let single_line s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let render_manifest ?(aliases = []) (d : Domain.t) (cfg : Cfg.t) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# domain.pack — exported by `dggt pack dump`";
  line "name = %s" d.Domain.name;
  if d.Domain.description <> "" then
    line "description = %s" (single_line d.Domain.description);
  if d.Domain.source <> "" then line "source = %s" (single_line d.Domain.source);
  line "start = %s" cfg.Cfg.start;
  List.iter (fun a -> line "alias = %s" a) aliases;
  List.iter (fun (nt, code) -> line "default = %s %s" nt code) d.Domain.defaults;
  if d.Domain.stop_verbs <> [] then
    line "stop-verbs = %s" (String.concat " " d.Domain.stop_verbs);
  (match d.Domain.unit_filter with
  | None -> ()
  | Some f ->
      (* the predicate itself is code; its extension over the document's
         APIs — the only values the engine ever applies it to — is data *)
      let apis =
        Dggt_core.Apidoc.entries (Lazy.force d.Domain.doc)
        |> List.filter_map (fun (e : Dggt_core.Apidoc.entry) ->
               if f e.Dggt_core.Apidoc.api then Some e.Dggt_core.Apidoc.api
               else None)
      in
      if apis <> [] then line "unit-apis = %s" (String.concat " " apis));
  (match d.Domain.path_limits with
  | None -> ()
  | Some l ->
      line "max-nodes = %d" l.Dggt_grammar.Gpath.max_nodes;
      line "max-paths = %d" l.Dggt_grammar.Gpath.max_paths;
      line "max-steps = %d" l.Dggt_grammar.Gpath.max_steps);
  (match d.Domain.top_k with None -> () | Some k -> line "top-k = %d" k);
  Buffer.contents buf

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let dump ~dir ?aliases (d : Domain.t) =
  let g = Lazy.force d.Domain.graph in
  let cfg = g.Dggt_grammar.Ggraph.cfg in
  mkdir_p dir;
  let out name text = write_file (Filename.concat dir name) text in
  out Loader.manifest_name (render_manifest ?aliases d cfg);
  out Loader.grammar_name
    ("# grammar.bnf — exported by `dggt pack dump`\n"
    ^ Bnf.to_text (bnf_of_cfg cfg));
  out Loader.doc_name (Docfile.render (Lazy.force d.Domain.doc));
  if d.Domain.queries <> [] then
    out Loader.queries_name (Queryfile.render d.Domain.queries)
