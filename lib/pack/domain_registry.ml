module Domain = Dggt_domains.Domain

type origin = Builtin | Pack of { dir : string; digest : string }

type entry = { domain : Domain.t; aliases : string list; origin : origin }

(* base (built-in/registered) entries and pack entries are kept apart so
   a pack can shadow a built-in for as long as it is loaded — and the
   built-in resurfaces when a later load_dir drops the pack *)
type t = {
  mu : Mutex.t;
  mutable base : entry list;
  mutable packs : entry list;
  mutable generation : int;
  (* compiled automata keyed (normalized name, content key): a reload
     that leaves a pack's digest unchanged reuses the exact same
     automaton (pointer-equal), so hot /reload only pays compilation for
     packs whose bytes actually changed *)
  autos : (string * string, Dggt_autom.Autom.t) Hashtbl.t;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let norm = Dggt_util.Strutil.lowercase

let names_of e = norm e.domain.Domain.name :: List.map norm e.aliases

let default_builtins =
  [
    (Dggt_domains.Text_editing.domain, [ "te" ]);
    (Dggt_domains.Astmatcher.domain, [ "am" ]);
  ]

(* the lookup view: packs shadow same-named base entries *)
let visible_unlocked t =
  let taken = Hashtbl.create 16 in
  List.iter
    (fun e -> List.iter (fun n -> Hashtbl.replace taken n ()) (names_of e))
    t.packs;
  List.filter
    (fun e -> not (List.exists (Hashtbl.mem taken) (names_of e)))
    t.base
  @ t.packs

(* duplicate names/aliases across [entries]; returns the first clash *)
let clash entries =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc n ->
              match acc with
              | Some _ -> acc
              | None ->
                  if Hashtbl.mem seen n then Some (n, e)
                  else begin
                    Hashtbl.add seen n ();
                    None
                  end)
            None (names_of e))
    None entries

let create ?(builtins = default_builtins) () =
  let base =
    List.map
      (fun (domain, aliases) -> { domain; aliases; origin = Builtin })
      builtins
  in
  (match clash base with
  | Some (n, _) -> invalid_arg ("Domain_registry.create: duplicate name " ^ n)
  | None -> ());
  {
    mu = Mutex.create ();
    base;
    packs = [];
    generation = 0;
    autos = Hashtbl.create 8;
  }

let entries t = locked t (fun () -> visible_unlocked t)
let domains t = List.map (fun e -> e.domain) (entries t)
let generation t = locked t (fun () -> t.generation)

let find_entry t name =
  let n = norm name in
  locked t (fun () ->
      List.find_opt (fun e -> List.mem n (names_of e)) (visible_unlocked t))

let find t name = Option.map (fun e -> e.domain) (find_entry t name)

let register t ?(aliases = []) ?(origin = Builtin) domain =
  let e = { domain; aliases; origin } in
  locked t (fun () ->
      match clash (visible_unlocked t @ [ e ]) with
      | Some (n, _) ->
          Error (Printf.sprintf "domain name %S is already registered" n)
      | None ->
          t.base <- t.base @ [ e ];
          t.generation <- t.generation + 1;
          Ok ())

(* what identifies an entry's compiled automaton: for packs the manifest
   digest (content-addressed — a reload with unchanged bytes hits the
   cache), for built-ins the name (their grammars are compiled in) *)
let content_key e =
  match e.origin with
  | Builtin -> "builtin:" ^ norm e.domain.Domain.name
  | Pack { digest; _ } -> digest

let pack_dirs dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun sub ->
         let p = Filename.concat dir sub in
         if
           Sys.is_directory p
           && Sys.file_exists (Filename.concat p Loader.manifest_name)
         then Some p
         else None)

let ( let* ) = Result.bind

let load_dir t dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Err.v dir "no such pack directory")
  else
    let* loaded =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* l = Loader.load d in
          Ok (l :: acc))
        (Ok []) (pack_dirs dir)
      |> Result.map List.rev
    in
    let fresh =
      List.map
        (fun (l : Loader.loaded) ->
          {
            domain = l.Loader.domain;
            aliases = l.Loader.aliases;
            origin = Pack { dir = l.Loader.dir; digest = l.Loader.digest };
          })
        loaded
    in
    (* a pack may shadow a base entry (checked via visibility, not here),
       but two packs claiming one name is always an error *)
    match clash fresh with
    | Some (n, bad) ->
        let l =
          List.find
            (fun (l : Loader.loaded) -> l.Loader.domain == bad.domain)
            loaded
        in
        Error
          (Err.vf ~line:l.Loader.name_line
             (Filename.concat l.Loader.dir Loader.manifest_name)
             "duplicate domain name %S" n)
    | None ->
        locked t (fun () ->
            (* the swap: the new pack set replaces the old in one step;
               entries already handed out keep working (immutable) *)
            t.packs <- fresh;
            t.generation <- t.generation + 1;
            (* drop automata whose content key no longer names a visible
               entry — dropped/changed packs release their tables; an
               unchanged digest keeps its compiled automaton alive *)
            let live = List.map content_key (visible_unlocked t) in
            let stale =
              Hashtbl.fold
                (fun ((_, ck) as key) _ acc ->
                  if List.mem ck live then acc else key :: acc)
                t.autos []
            in
            List.iter (Hashtbl.remove t.autos) stale;
            Ok fresh)

let automaton ?trace t (e : entry) =
  let key = (norm e.domain.Domain.name, content_key e) in
  match locked t (fun () -> Hashtbl.find_opt t.autos key) with
  | Some a -> (a, false)
  | None ->
      (* compile outside the lock, [Ggraph.dist_from]-style: two racing
         compilers both do the work, the first insert wins and the loser
         is discarded — compilation is deterministic, so either serves *)
      let a =
        Dggt_autom.Autom.compile ?trace (Lazy.force e.domain.Domain.graph)
      in
      locked t (fun () ->
          match Hashtbl.find_opt t.autos key with
          | Some winner -> (winner, false)
          | None ->
              Hashtbl.add t.autos key a;
              (a, true))

(* Warm-start seeding: install an automaton restored from disk so the
   next [automaton] call for this entry is a cache hit (no compile).
   Refuses automata not built against this entry's own forced graph —
   physical equality is the contract Edge2path relies on, so a seeding
   mistake can never smuggle another grammar's tables in. First install
   wins, same as the racing-compile discipline above. *)
let seed_automaton t (e : entry) a =
  if not (Dggt_autom.Autom.graph a == Lazy.force e.domain.Domain.graph) then
    false
  else
    let key = (norm e.domain.Domain.name, content_key e) in
    locked t (fun () ->
        if Hashtbl.mem t.autos key then false
        else begin
          Hashtbl.add t.autos key a;
          true
        end)

let pack_digest t =
  let packs =
    List.filter_map
      (fun e ->
        match e.origin with
        | Pack { digest; _ } -> Some (e.domain.Domain.name, digest)
        | Builtin -> None)
      (entries t)
  in
  match packs with
  | [] -> "none"
  | packs ->
      List.sort compare packs
      |> List.map (fun (n, d) -> n ^ ":" ^ d)
      |> String.concat "\n"
      |> Digest.string |> Digest.to_hex
