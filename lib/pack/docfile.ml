type entry = {
  api : string;
  flags : string list;
  description : string;
  line : int;
}

let known_flags = [ "str"; "num"; "verb"; "noun" ]

let split_tabs s =
  (* String.split_on_char keeps empty fields, which we want to diagnose *)
  String.split_on_char '\t' s

let parse ~file text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc seen = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let s = Dggt_util.Strutil.strip raw in
        if s = "" || s.[0] = '#' then go (lineno + 1) acc seen rest
        else
          match split_tabs raw with
          | [ api; flags; description ] -> (
              let api = Dggt_util.Strutil.strip api in
              let description = Dggt_util.Strutil.strip description in
              if api = "" then
                Error (Err.v ~line:lineno file "empty API name")
              else if List.mem api seen then
                Error (Err.vf ~line:lineno file "duplicate API %s" api)
              else
                let flags = Dggt_util.Strutil.strip flags in
                let flags =
                  if flags = "-" || flags = "" then []
                  else
                    Dggt_util.Strutil.split_on_chars ~chars:[ ','; ' ' ] flags
                in
                match
                  List.find_opt (fun f -> not (List.mem f known_flags)) flags
                with
                | Some f ->
                    Error
                      (Err.vf ~line:lineno file
                         "unknown flag %S (str|num|verb|noun)" f)
                | None ->
                    go (lineno + 1)
                      ({ api; flags; description; line = lineno } :: acc)
                      (api :: seen) rest)
          | fields ->
              Error
                (Err.vf ~line:lineno file
                   "expected 3 tab-separated fields (API, flags, \
                    description), got %d"
                   (List.length fields)))
  in
  go 1 [] [] lines

let load path =
  match Manifest.read_file path with
  | Error e -> Error e
  | Ok text -> parse ~file:path text

let to_doc entries =
  let with_flag f =
    List.filter_map
      (fun e -> if List.mem f e.flags then Some e.api else None)
      entries
  in
  Dggt_core.Apidoc.make
    ~literal_apis:(with_flag "str")
    ~number_apis:(with_flag "num")
    ~verb_apis:(with_flag "verb")
    ~noun_apis:(with_flag "noun")
    (List.map (fun e -> (e.api, e.description)) entries)

let flags_of_entry (e : Dggt_core.Apidoc.entry) =
  let lit =
    match e.Dggt_core.Apidoc.lit with
    | Dggt_core.Apidoc.Lit_none -> []
    | Dggt_core.Apidoc.Lit_str -> [ "str" ]
    | Dggt_core.Apidoc.Lit_num -> [ "num" ]
  in
  let pos =
    match e.Dggt_core.Apidoc.pos_pref with
    | Dggt_core.Apidoc.Any -> []
    | Dggt_core.Apidoc.Verbish -> [ "verb" ]
    | Dggt_core.Apidoc.Nounish -> [ "noun" ]
  in
  lit @ pos

let single_line s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let render doc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# api.doc — one API per line: NAME <TAB> FLAGS <TAB> DESCRIPTION\n\
     # FLAGS is a comma-separated subset of str,num,verb,noun, or `-`.\n";
  List.iter
    (fun (e : Dggt_core.Apidoc.entry) ->
      let flags =
        match flags_of_entry e with
        | [] -> "-"
        | fs -> String.concat "," fs
      in
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\n" e.Dggt_core.Apidoc.api flags
           (single_line e.Dggt_core.Apidoc.description)))
    (Dggt_core.Apidoc.entries doc);
  Buffer.contents buf
