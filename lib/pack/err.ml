type t = { file : string; line : int; message : string }

let v ?(line = 0) file message = { file; line; message }
let vf ?line file fmt = Printf.ksprintf (v ?line file) fmt

let to_string e =
  if e.line > 0 then Printf.sprintf "%s:%d: %s" e.file e.line e.message
  else Printf.sprintf "%s: %s" e.file e.message

let pp fmt e = Format.pp_print_string fmt (to_string e)
