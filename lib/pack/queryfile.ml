type entry = { query : Dggt_domains.Domain.query; line : int }

let parse ~file text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc seen = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let s = Dggt_util.Strutil.strip raw in
        if s = "" || s.[0] = '#' then go (lineno + 1) acc seen rest
        else
          match String.split_on_char '\t' raw with
          | [ id; flag; text; expected ] -> (
              let text = Dggt_util.Strutil.strip text in
              let expected = Dggt_util.Strutil.strip expected in
              match int_of_string_opt (Dggt_util.Strutil.strip id) with
              | None ->
                  Error
                    (Err.vf ~line:lineno file "expected an integer id, got %S"
                       id)
              | Some id when List.mem id seen ->
                  Error (Err.vf ~line:lineno file "duplicate query id %d" id)
              | Some id -> (
                  let hard =
                    match Dggt_util.Strutil.strip flag with
                    | "-" | "" -> Ok false
                    | "hard" -> Ok true
                    | f -> Error f
                  in
                  match hard with
                  | Error f ->
                      Error
                        (Err.vf ~line:lineno file "unknown flag %S (hard|-)" f)
                  | Ok _ when text = "" ->
                      Error (Err.v ~line:lineno file "empty query text")
                  | Ok hard -> (
                      (* ground truths must be well-formed codelets: a
                         mistyped expected answer would silently count every
                         run against this query as wrong *)
                      match Dggt_core.Tree2expr.parse expected with
                      | Error m ->
                          Error
                            (Err.vf ~line:lineno file
                               "query %d: unparseable ground-truth codelet \
                                (%s): %s"
                               id m expected)
                      | Ok _ ->
                          go (lineno + 1)
                            ({
                               query =
                                 {
                                   Dggt_domains.Domain.id;
                                   text;
                                   expected;
                                   hard;
                                 };
                               line = lineno;
                             }
                            :: acc)
                            (id :: seen) rest)))
          | fields ->
              Error
                (Err.vf ~line:lineno file
                   "expected 4 tab-separated fields (id, flags, text, \
                    expected), got %d"
                   (List.length fields)))
  in
  go 1 [] [] lines

let load path =
  match Manifest.read_file path with
  | Error e -> Error e
  | Ok text -> parse ~file:path text

let render queries =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    "# queries.tsv — one evaluation query per line:\n\
     # ID <TAB> FLAGS <TAB> TEXT <TAB> EXPECTED  (FLAGS: `hard` or `-`)\n";
  List.iter
    (fun (q : Dggt_domains.Domain.query) ->
      let clean s =
        String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s
      in
      Buffer.add_string buf
        (Printf.sprintf "%d\t%s\t%s\t%s\n" q.Dggt_domains.Domain.id
           (if q.Dggt_domains.Domain.hard then "hard" else "-")
           (clean q.Dggt_domains.Domain.text)
           (clean q.Dggt_domains.Domain.expected)))
    queries;
  Buffer.contents buf
