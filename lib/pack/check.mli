(** Semantic validation of a loaded pack — the [dggt pack check] pass.

    {!Loader.load} guarantees the files parse; this pass checks that the
    pieces agree with each other:

    - every [api.doc] API is a terminal of the grammar {e and} reachable
      from the grammar root (an unreachable API can never appear in a
      codelet, so documenting it is a bug);
    - every grammar terminal has a document entry (WordToAPI only proposes
      documented APIs, so an undocumented terminal is dead grammar);
    - every ground-truth codelet only uses documented APIs;
    - manifest [default] entries name real nonterminals and parse as
      codelets; [unit-apis] name documented APIs; path limits are sane
      ([max-nodes >= 2], [max-steps >= max-paths]).

    All findings are collected (not first-error), each naming its file and
    line. *)

val run : Loader.loaded -> Err.t list
(** [[]] means the pack is valid. *)
