(** Exporting a (typically compiled-in) domain to an on-disk pack — the
    [dggt pack dump] command.

    The export is designed to round-trip: {!Loader.load} on the dumped
    directory rebuilds a structurally identical grammar graph (the BNF is
    reconstructed from the CFG's production array, which preserves rule and
    alternative order), an identical API document, and identical engine
    settings — so synthesis through the pack is byte-identical to the
    compiled-in domain (the golden equivalence suite pins this).

    The only lossy corner is [unit_filter]: the domain holds a predicate,
    the pack stores its extension over the document's APIs ([unit-apis]) —
    equivalent wherever the engine evaluates it, since candidates always
    come from the document. *)

val dump : dir:string -> ?aliases:string list -> Dggt_domains.Domain.t -> unit
(** Creates [dir] (and parents) if needed, then writes [domain.pack],
    [grammar.bnf], [api.doc], and — when the domain has queries —
    [queries.tsv]. Raises [Sys_error] on I/O failure. *)
