(** The mutex-guarded domain registry: the one place that answers "which
    domains exist right now, and what does this name refer to?".

    Built-in domains (TextEditing, ASTMatcher) are registered at creation;
    pack-loaded domains arrive through {!load_dir}, which {e atomically}
    replaces the previous pack set — a failed load leaves the registry
    exactly as it was, and readers holding a {!Dggt_domains.Domain.t}
    snapshot keep using it unperturbed (entries are immutable; the swap
    only changes what future lookups see).

    Names are matched case-insensitively against each domain's name and
    its aliases ([te], [am] for the built-ins; [alias =] lines for
    packs). *)

type origin = Builtin | Pack of { dir : string; digest : string }

type entry = {
  domain : Dggt_domains.Domain.t;
  aliases : string list;
  origin : origin;
}

type t

val default_builtins : (Dggt_domains.Domain.t * string list) list
(** TextEditing (alias [te]) and ASTMatcher (alias [am]). *)

val create : ?builtins:(Dggt_domains.Domain.t * string list) list -> unit -> t
(** [builtins] defaults to {!default_builtins}; pass [[]] for an empty
    registry. Raises [Invalid_argument] on duplicate names. *)

val find : t -> string -> Dggt_domains.Domain.t option
val find_entry : t -> string -> entry option
val entries : t -> entry list
(** Built-ins first (registration order), then packs (directory order). *)

val domains : t -> Dggt_domains.Domain.t list

val register : t -> ?aliases:string list -> ?origin:origin ->
  Dggt_domains.Domain.t -> (unit, string) result
(** Append one domain; [Error] (registry unchanged) when its name or an
    alias is already taken. *)

val load_dir : t -> string -> (entry list, Err.t) result
(** Load every subdirectory of [dir] that contains a [domain.pack]
    (sorted by name), then atomically replace the registry's pack entries
    with the result and bump {!generation}. A pack whose name or alias
    matches a built-in {e overrides} it (so the exported built-ins under
    [examples/packs/] are directly servable); two packs claiming the same
    name is an error, reported against the later pack manifest's
    [name =] line. All-or-nothing: any load error aborts with the
    registry untouched. Returns the new pack entries. *)

val generation : t -> int
(** Bumped by every successful {!load_dir}/{!register} — [GET /version]
    exposes it so clients can observe hot reloads. *)

val pack_digest : t -> string
(** Order-independent digest over the loaded packs' file digests;
    ["none"] when only built-ins are registered. *)

val content_key : entry -> string
(** What identifies the entry's compiled automaton across processes:
    the manifest digest for a pack, ["builtin:<name>"] for a built-in
    (their grammars are compiled in). This is the registry's automaton
    cache key and the warm-start store's per-domain invalidation key —
    an automaton record whose content key still matches skips
    {!Dggt_autom.Autom.compile} on the next boot even when {e other}
    packs changed. *)

val automaton :
  ?trace:Dggt_obs.Trace.sink -> t -> entry -> Dggt_autom.Autom.t * bool
(** The entry's grammar compiled into EdgeToPath state tables
    ({!Dggt_autom.Autom.compile}), cached in the registry keyed by
    content: a pack entry by its manifest digest, a built-in by its
    name. The flag is [true] when this call compiled the automaton and
    [false] on a cache hit — a {!load_dir} that leaves a pack's digest
    unchanged hands back the {e pointer-equal} automaton, so a hot
    [POST /reload] compiles exactly once per changed pack. [trace]
    receives the AutomatonCompile span on fresh compiles only.
    Compilation runs outside the registry lock; concurrent callers may
    both compile, with the first to finish winning. *)

val seed_automaton : t -> entry -> Dggt_autom.Autom.t -> bool
(** Pre-install a compiled automaton for [entry] — the warm-start path:
    a server that restored the automaton from its on-disk store
    ({!Dggt_autom.Autom.of_image}) seeds it here so the boot-time
    {!automaton} call is a cache hit and pays no compile. Returns
    [false] (and installs nothing) when the automaton was not built
    against the entry's own graph (physical equality — the restore path
    guarantees it by construction) or when an automaton is already
    cached for the entry's content key. *)
