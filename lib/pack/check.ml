module Domain = Dggt_domains.Domain
module Ggraph = Dggt_grammar.Ggraph

let doc_api_findings (l : Loader.loaded) g =
  let dpath = Filename.concat l.Loader.dir Loader.doc_name in
  List.concat_map
    (fun (e : Docfile.entry) ->
      match Ggraph.api_node g e.Docfile.api with
      | None ->
          [
            Err.vf ~line:e.Docfile.line dpath
              "API %s is not a terminal of the grammar" e.Docfile.api;
          ]
      | Some node ->
          if Ggraph.reachable g g.Ggraph.root node then []
          else
            [
              Err.vf ~line:e.Docfile.line dpath
                "API %s is unreachable from the grammar root %s (no codelet \
                 can ever contain it)"
                e.Docfile.api g.Ggraph.cfg.Dggt_grammar.Cfg.start;
            ])
    l.Loader.doc_entries

let grammar_api_findings (l : Loader.loaded) g doc =
  let gpath = Filename.concat l.Loader.dir Loader.grammar_name in
  List.filter_map
    (fun (api, _) ->
      if Dggt_core.Apidoc.find doc api <> None then None
      else
        Some
          (Err.vf gpath
             "grammar terminal %s has no %s entry (WordToAPI can never \
              reach it)"
             api Loader.doc_name))
    (Ggraph.api_nodes g)

let query_findings (l : Loader.loaded) doc =
  let qpath = Filename.concat l.Loader.dir Loader.queries_name in
  List.concat_map
    (fun (e : Queryfile.entry) ->
      let q = e.Queryfile.query in
      match Dggt_core.Tree2expr.parse q.Domain.expected with
      | Error m ->
          (* unreachable after a successful load, but pin it anyway *)
          [
            Err.vf ~line:e.Queryfile.line qpath
              "query %d: unparseable ground truth: %s" q.Domain.id m;
          ]
      | Ok expr ->
          Dggt_core.Tree2expr.api_multiset expr
          |> Dggt_util.Listutil.uniq
          |> List.filter_map (fun api ->
                 if Dggt_core.Apidoc.find doc api <> None then None
                 else
                   Some
                     (Err.vf ~line:e.Queryfile.line qpath
                        "query %d: ground truth uses unknown API %s"
                        q.Domain.id api)))
    l.Loader.query_entries

let manifest_findings (l : Loader.loaded) g doc =
  let m = l.Loader.manifest in
  let mpath = m.Manifest.file in
  let at key f =
    match Manifest.find m key with
    | None -> []
    | Some b -> f b
  in
  let defaults =
    List.concat_map
      (fun (b : Manifest.binding) ->
        match Dggt_util.Strutil.split_ws b.Manifest.value with
        | nt :: rest ->
            let findings = ref [] in
            if Ggraph.nt_node g nt = None then
              findings :=
                Err.vf ~line:b.Manifest.line mpath
                  "default for %s: no such nonterminal in the grammar" nt
                :: !findings;
            (match Dggt_core.Tree2expr.parse (String.concat " " rest) with
            | Error msg ->
                findings :=
                  Err.vf ~line:b.Manifest.line mpath
                    "default for %s is not a codelet: %s" nt msg
                  :: !findings
            | Ok _ -> ());
            List.rev !findings
        | [] -> [])
      (Manifest.find_all m "default")
  in
  let unit_apis =
    at "unit-apis" (fun b ->
        Dggt_util.Strutil.split_ws b.Manifest.value
        |> List.filter_map (fun api ->
               if Dggt_core.Apidoc.find doc api <> None then None
               else
                 Some
                   (Err.vf ~line:b.Manifest.line mpath
                      "unit-apis names unknown API %s" api)))
  in
  let limits =
    match l.Loader.domain.Domain.path_limits with
    | None -> []
    | Some lim ->
        let bad key cond msg =
          if cond then
            let line =
              match Manifest.find m key with
              | Some b -> b.Manifest.line
              | None -> 0
            in
            [ Err.v ~line mpath msg ]
          else []
        in
        bad "max-nodes"
          (lim.Dggt_grammar.Gpath.max_nodes < 2)
          "max-nodes must be at least 2 (a path has two endpoints)"
        @ bad "max-steps"
            (lim.Dggt_grammar.Gpath.max_steps
            < lim.Dggt_grammar.Gpath.max_paths)
            "max-steps must be at least max-paths (each kept path costs a \
             step)"
  in
  defaults @ unit_apis @ limits

let run (l : Loader.loaded) =
  let g = Lazy.force l.Loader.domain.Domain.graph in
  let doc = Lazy.force l.Loader.domain.Domain.doc in
  doc_api_findings l g
  @ grammar_api_findings l g doc
  @ query_findings l doc
  @ manifest_findings l g doc
