(* A fixed pool of OCaml 5 domains over a mutex/condvar work queue.

   Two usage modes share the workers:

   - [submit]: fire-and-forget jobs behind a bounded queue (the serving
     layer's backpressure primitive — lib/server/pool.ml is a thin
     wrapper adding deadlines);
   - [map_ordered]: fork/join fan-out that blocks the caller until every
     element is mapped, returning results in input order.

   map_ordered is claim-based: each task index is claimed exactly once
   (under the pool mutex) by whichever participant gets there first, and
   the *calling* thread participates too. That makes it deadlock-free
   under nesting — a pool worker whose job itself calls map_ordered on
   the same pool drains its own batch instead of waiting for a free
   worker — and means the combinator still completes (sequentially) on a
   stopped pool or a pool of one busy worker. *)

type job = { bounded : bool; run : unit -> unit }

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  cap : int; (* bound on queued [submit] jobs; internal jobs are exempt *)
  nworkers : int;
  mutable bounded_depth : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then
      (* stopping, queue drained *)
      Mutex.unlock t.mu
    else begin
      let j = Queue.pop t.queue in
      if j.bounded then t.bounded_depth <- t.bounded_depth - 1;
      Mutex.unlock t.mu;
      (try j.run () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?workers ?(capacity = 64) () =
  let nworkers =
    match workers with
    | Some n when n > 0 -> min n 64
    | _ -> max 1 (min 64 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      cap = max 1 capacity;
      nworkers;
      bounded_depth = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.nworkers
let capacity t = t.cap

let submit t run =
  Mutex.lock t.mu;
  if t.stopping || t.bounded_depth >= t.cap then begin
    Mutex.unlock t.mu;
    `Rejected
  end
  else begin
    Queue.push { bounded = true; run } t.queue;
    t.bounded_depth <- t.bounded_depth + 1;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    `Accepted
  end

(* Internal jobs bypass the capacity bound: map_ordered's correctness
   does not depend on them running (the caller claims whatever the
   workers don't), so rejecting them would only serialize the map. *)
let enqueue t run =
  Mutex.lock t.mu;
  if not t.stopping then begin
    Queue.push { bounded = false; run } t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mu

let depth t =
  Mutex.lock t.mu;
  let n = t.bounded_depth in
  Mutex.unlock t.mu;
  n

let map_ordered t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let bmu = Mutex.create () in
    let all_done = Condition.create () in
    let next = ref 0 in
    let completed = ref 0 in
    let claim () =
      Mutex.lock bmu;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock bmu;
      if i < n then Some i else None
    in
    let step i =
      let r = try Ok (f arr.(i)) with e -> Error e in
      results.(i) <- Some r;
      Mutex.lock bmu;
      incr completed;
      if !completed = n then Condition.broadcast all_done;
      Mutex.unlock bmu
    in
    (* one queue entry per task keeps enqueueing O(1) per task while
       letting however many workers are idle join in; entries finding the
       batch already fully claimed are no-ops *)
    for _ = 1 to min n (t.nworkers) do
      enqueue t (fun () ->
          let rec drain () =
            match claim () with
            | Some i ->
                step i;
                drain ()
            | None -> ()
          in
          drain ())
    done;
    (* the caller helps: claims remaining tasks itself, then waits for
       the stragglers other participants claimed *)
    let rec help () =
      match claim () with
      | Some i ->
          step i;
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock bmu;
    while !completed < n do
      Condition.wait all_done bmu
    done;
    Mutex.unlock bmu;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false (* completed = n implies all filled *))
         results)
  end

let shutdown t =
  Mutex.lock t.mu;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mu;
  if not already then List.iter Domain.join ds
