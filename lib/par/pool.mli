(** A stdlib-only pool of OCaml 5 domains ({!Stdlib.Domain}) over a
    mutex/condvar work queue — the repo's one shared parallelism
    primitive.

    Two entry points share the same workers:

    - {!submit} — fire-and-forget jobs behind a {e bounded} queue; the
      serving layer builds its backpressure (503 shedding) on the
      [`Rejected] case.
    - {!map_ordered} — fork/join fan-out over a list; results come back
      in {e input order}, so a deterministic [f] gives byte-identical
      output regardless of worker count or scheduling. The calling
      thread participates in the work (claim-based batches), which makes
      nested use on the same pool deadlock-free and keeps the combinator
      total even on a stopped pool.

    The pool performs no I/O and takes no clock: deadline semantics live
    in the callers (lib/server/pool.ml wraps jobs with a
    [Unix.gettimeofday] check). *)

type t

val create : ?workers:int -> ?capacity:int -> unit -> t
(** Spawns the worker domains immediately. [workers] defaults to
    {!Stdlib.Domain.recommended_domain_count}, clamped to [1, 64].
    [capacity] (default 64) bounds {e queued} {!submit} jobs only —
    {!map_ordered} tasks are exempt, since their completion never
    depends on queue admission. *)

val workers : t -> int
val capacity : t -> int

val submit : t -> (unit -> unit) -> [ `Accepted | `Rejected ]
(** [`Rejected] when the bounded queue is full or the pool is shutting
    down. Exceptions escaping the job are swallowed (the worker
    survives); jobs should do their own error reporting. *)

val depth : t -> int
(** {!submit} jobs currently waiting in the queue (the metrics gauge). *)

val map_ordered : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered t f xs] applies [f] to every element of [xs], fanning
    the applications across the pool's domains plus the calling thread,
    and returns the results in input order. Blocks until every element
    is done. If any application raises, the exception raised is the one
    from the {e earliest} failing input (deterministic), re-raised after
    the whole batch settles. [f] must be safe to call from any domain. *)

val shutdown : t -> unit
(** Stop accepting work, let the workers drain the queue, join them.
    Idempotent. A {!map_ordered} already in flight still completes (its
    caller claims the remaining tasks). *)
