(** Benchmark domains: a target DSL (grammar + API document) together with
    its evaluation query set (the paper's Table I). *)

type query = {
  id : int;            (** 1-based, stable — Table III refers to these *)
  text : string;       (** the natural-language query *)
  expected : string;   (** ground-truth codelet, {!Dggt_core.Tree2expr.parse}-able *)
  hard : bool;         (** known-hard case (deep/ambiguous), for case studies *)
}

type t = {
  name : string;
  description : string;
  source : string;         (** provenance note, cited in Table I *)
  graph : Dggt_grammar.Ggraph.t Lazy.t;
  doc : Dggt_core.Apidoc.t Lazy.t;
  queries : query list;
  defaults : (string * string) list;
      (** argument-completion defaults ({!Dggt_core.Tree2expr.of_cgt}) *)
  unit_filter : (string -> bool) option;
      (** scope restriction for conditional-clause subjects *)
  path_limits : Dggt_grammar.Gpath.limits option;
      (** domain-tuned caps for the all-path search (dense grammars need
          tighter ones); [None] = {!Dggt_grammar.Gpath.default_limits} *)
  stop_verbs : string list;
  top_k : int option; (** WordToAPI fan-out override *)
}

val configure :
  ?caches:Dggt_core.Engine.lookups ->
  ?autom:Dggt_autom.Autom.t ->
  t ->
  Dggt_core.Engine.config ->
  Dggt_core.Engine.session
(** Apply the domain's defaults/unit_filter/path_limits to an engine
    configuration, and build the synthesis target (forcing the domain's
    grammar and document; [caches] installs per-stage memoization). When
    [autom] is given, the target's graph is the automaton's own graph
    ([Dggt_autom.Autom.graph]) so EdgeToPath's table-walk fast path is
    consistent by construction — compile it from this domain's grammar
    (the registry does). The session feeds {!Dggt_core.Engine.run}
    directly. *)

val api_count : t -> int
val query_count : t -> int

val expected_expr : query -> Dggt_core.Tree2expr.expr
(** Parses [expected]; raises [Invalid_argument] with the query id when the
    ground truth is malformed (tests guard against this). *)

val check : t -> Dggt_core.Tree2expr.expr option -> query -> bool
(** The paper's correctness criterion: exact structural match with the
    ground truth. *)
