type query = { id : int; text : string; expected : string; hard : bool }

type t = {
  name : string;
  description : string;
  source : string;
  graph : Dggt_grammar.Ggraph.t Lazy.t;
  doc : Dggt_core.Apidoc.t Lazy.t;
  queries : query list;
  defaults : (string * string) list;
  unit_filter : (string -> bool) option;
  path_limits : Dggt_grammar.Gpath.limits option;
  stop_verbs : string list;
  top_k : int option;
}

let configure ?caches ?autom t (cfg : Dggt_core.Engine.config) =
  (* When an automaton is supplied, synthesize against *its* graph: the
     target's graph and the automaton are then consistent by construction
     (Edge2path's physical-equality guard always passes), and an automaton
     reused across a registry reload keeps its compiled graph alive
     instead of forcing the domain's lazy copy. *)
  let graph =
    match autom with
    | Some a -> Dggt_autom.Autom.graph a
    | None -> Lazy.force t.graph
  in
  {
    Dggt_core.Engine.cfg =
      {
        cfg with
        Dggt_core.Engine.defaults = t.defaults;
        unit_filter = t.unit_filter;
        path_limits =
          Option.value t.path_limits ~default:cfg.Dggt_core.Engine.path_limits;
        stop_verbs = t.stop_verbs;
        top_k = Option.value t.top_k ~default:cfg.Dggt_core.Engine.top_k;
      };
    target = Dggt_core.Engine.target ?caches ?autom graph (Lazy.force t.doc);
  }

let api_count t = Dggt_core.Apidoc.size (Lazy.force t.doc)
let query_count t = List.length t.queries

let expected_expr q =
  match Dggt_core.Tree2expr.parse q.expected with
  | Ok e -> Dggt_core.Tree2expr.normalize e
  | Error m ->
      invalid_arg (Printf.sprintf "query %d: bad ground truth (%s): %s" q.id m q.expected)

let check _t produced q =
  match produced with
  | None -> false
  | Some e -> Dggt_core.Tree2expr.equal e (expected_expr q)
