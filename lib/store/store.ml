(* Append-only record log + index.

   Layout of [store.log]:

     magic                 "DGGTSTORE1\n"
     record*               back to back, each:
       marker              "REC1"
       header length       u32 big-endian
       payload length      u32 big-endian
       header digest       16 raw bytes, MD5 of the header bytes
       payload digest      16 raw bytes, MD5 of the payload bytes
       header bytes        Marshal of [header]
       payload bytes       opaque (the caller's Marshal)

   [store.idx] commits how much of the log is real:

     "DGGTIDX1\n<committed bytes>\n<record count>\n"

   written atomically (tmp + rename) after every append/compact, so a
   crash mid-append leaves at worst an uncommitted tail that the next
   load ignores without calling it corruption.

   Digests are verified BEFORE any [Marshal.from_string]: unmarshalling
   only ever sees bytes this module wrote and checksummed. The threat
   model is accidental corruption (truncation, bit rot, concurrent
   writers) — MD5 is an integrity check here, not an authenticator, the
   same stance as the registry's pack digests. Failure policy:

   - header-level damage (bad magic/marker, impossible lengths, header
     digest or unmarshal failure) poisons the frame chain: the scan
     stops, the record and everything after it count as rejected;
   - payload-digest damage rejects just that record (the frame lengths
     were covered by the intact header digest, so the scan can skip to
     the next record);
   - a schema mismatch is a skip, not an error: the record is valid,
     just written by a different payload layout.

   A handle is not thread-safe; callers (the server) serialize their
   spills. *)

let log_name = "store.log"
let idx_name = "store.idx"
let magic = "DGGTSTORE1\n"
let idx_magic = "DGGTIDX1"
let marker = "REC1"
let digest_len = 16

type header = {
  kind : string;
  name : string;
  generation : int;
  pack_digest : string;
  engine : string;
  schema : int;
}

type record = { hdr : header; payload : string }

type t = { dir : string; schema : int }

let dir t = t.dir
let schema t = t.schema
let log_path t = Filename.concat t.dir log_name
let idx_path t = Filename.concat t.dir idx_name

(* ------------------------------------------------------------------ *)
(* small binary + file helpers                                        *)
(* ------------------------------------------------------------------ *)

let put_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let read_file path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))

(* atomic replace: write next to the target, rename over it *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* open / index                                                       *)
(* ------------------------------------------------------------------ *)

let write_idx t ~committed ~records =
  write_file_atomic (idx_path t)
    (Printf.sprintf "%s\n%d\n%d\n" idx_magic committed records)

(* [None] when the index is missing or damaged — the load then falls
   back to scanning the whole log *)
let read_idx t =
  match read_file (idx_path t) with
  | None -> None
  | Some s -> (
      match String.split_on_char '\n' s with
      | m :: committed :: records :: _ when m = idx_magic -> (
          match (int_of_string_opt committed, int_of_string_opt records) with
          | Some c, Some r when c >= 0 && r >= 0 -> Some (c, r)
          | _ -> None)
      | _ -> None)

let open_dir ~schema dir =
  if schema < 0 then Error "store schema must be non-negative"
  else begin
    let rec mkdirs d =
      if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
        mkdirs (Filename.dirname d);
        try Unix.mkdir d 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    match mkdirs dir with
    | () ->
        if not (Sys.is_directory dir) then
          Error (Printf.sprintf "%s exists and is not a directory" dir)
        else begin
          let t = { dir; schema } in
          let log = log_path t in
          if
            (not (Sys.file_exists log))
            || (let ic = open_in_bin log in
                let n = in_channel_length ic in
                close_in_noerr ic;
                n = 0)
          then begin
            write_file_atomic log magic;
            write_idx t ~committed:(String.length magic) ~records:0
          end;
          Ok t
        end
    | exception Unix.Unix_error (e, _, arg) ->
        Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))
    | exception Sys_error msg -> Error msg
  end

(* ------------------------------------------------------------------ *)
(* append                                                             *)
(* ------------------------------------------------------------------ *)

let marshal_header (h : header) = Marshal.to_string h []

let frame (r : record) =
  let hdr_bytes = marshal_header r.hdr in
  let buf =
    Buffer.create
      (String.length hdr_bytes + String.length r.payload + 40)
  in
  Buffer.add_string buf marker;
  put_u32 buf (String.length hdr_bytes);
  put_u32 buf (String.length r.payload);
  Buffer.add_string buf (Digest.string hdr_bytes);
  Buffer.add_string buf (Digest.string r.payload);
  Buffer.add_string buf hdr_bytes;
  Buffer.add_string buf r.payload;
  Buffer.contents buf

let append t records =
  let frames = List.map frame records in
  let bytes = List.fold_left (fun a f -> a + String.length f) 0 frames in
  match
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (log_path t)
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter (output_string oc) frames;
        flush oc)
  with
  | () ->
      let committed = (Unix.stat (log_path t)).Unix.st_size in
      let prior = match read_idx t with Some (_, r) -> r | None -> 0 in
      write_idx t ~committed ~records:(prior + List.length records);
      Ok bytes
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, arg) ->
      Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* load                                                               *)
(* ------------------------------------------------------------------ *)

type load = {
  records : record list;  (** valid records, oldest first *)
  loaded : int;
  skipped : int;  (** valid frame, different schema *)
  rejected : int;  (** failed a digest / frame / unmarshal check *)
  trailing_bytes : int;  (** uncommitted tail past the index's commit *)
}

let empty_load =
  { records = []; loaded = 0; skipped = 0; rejected = 0; trailing_bytes = 0 }

(* one frame at [off]; [limit] is the committed scan end *)
type parsed =
  | Frame of record * int  (* record + next offset *)
  | Bad_payload of int     (* digests disagree on the payload; skippable *)
  | Poisoned               (* frame chain unusable from here on *)

let parse_frame s off limit =
  let remaining = limit - off in
  if remaining < String.length marker + 8 + (2 * digest_len) then Poisoned
  else if String.sub s off (String.length marker) <> marker then Poisoned
  else begin
    let hlen = get_u32 s (off + 4) in
    let plen = get_u32 s (off + 8) in
    let fixed = String.length marker + 8 + (2 * digest_len) in
    if
      hlen < 0 || plen < 0
      || hlen > remaining - fixed
      || plen > remaining - fixed - hlen
    then Poisoned
    else begin
      let hdigest = String.sub s (off + 12) digest_len in
      let pdigest = String.sub s (off + 12 + digest_len) digest_len in
      let hoff = off + fixed in
      let hdr_bytes = String.sub s hoff hlen in
      let next = hoff + hlen + plen in
      if Digest.string hdr_bytes <> hdigest then Poisoned
      else
        match (Marshal.from_string hdr_bytes 0 : header) with
        | exception _ -> Poisoned
        | hdr ->
            let payload = String.sub s (hoff + hlen) plen in
            if Digest.string payload <> pdigest then Bad_payload next
            else Frame ({ hdr; payload }, next)
    end
  end

let load t =
  match read_file (log_path t) with
  | None -> empty_load
  | Some s ->
      let size = String.length s in
      let committed =
        match read_idx t with
        | Some (c, _) -> min c size
        | None -> size
      in
      if
        committed < String.length magic
        || String.sub s 0 (min committed (String.length magic)) <> magic
      then { empty_load with rejected = 1; trailing_bytes = size - committed }
      else begin
        let records = ref [] in
        let loaded = ref 0 in
        let skipped = ref 0 in
        let rejected = ref 0 in
        let off = ref (String.length magic) in
        let continue = ref true in
        while !continue && !off < committed do
          match parse_frame s !off committed with
          | Frame (r, next) ->
              if r.hdr.schema = t.schema then begin
                records := r :: !records;
                incr loaded
              end
              else incr skipped;
              off := next
          | Bad_payload next ->
              incr rejected;
              off := next
          | Poisoned ->
              (* everything from here to the commit point is lost *)
              incr rejected;
              continue := false
        done;
        {
          records = List.rev !records;
          loaded = !loaded;
          skipped = !skipped;
          rejected = !rejected;
          trailing_bytes = size - committed;
        }
      end

(* ------------------------------------------------------------------ *)
(* stats / verify / compact                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  log_bytes : int;
  committed_bytes : int;
  s_loaded : int;
  s_skipped : int;
  s_rejected : int;
  s_trailing_bytes : int;
  kinds : (string * int) list;  (** (kind, loaded count), sorted *)
}

let stats t =
  let size =
    match read_file (log_path t) with None -> 0 | Some s -> String.length s
  in
  let committed =
    match read_idx t with Some (c, _) -> min c size | None -> size
  in
  let l = load t in
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let k = r.hdr.kind in
      Hashtbl.replace kinds k (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0))
    l.records;
  {
    log_bytes = size;
    committed_bytes = committed;
    s_loaded = l.loaded;
    s_skipped = l.skipped;
    s_rejected = l.rejected;
    s_trailing_bytes = l.trailing_bytes;
    kinds = Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [] |> List.sort compare;
  }

let verify t =
  let l = load t in
  { l with records = [] }

(* cheap render-time gauges: one stat + one index read, no log scan *)
let file_gauges t =
  let bytes =
    try (Unix.stat (log_path t)).Unix.st_size
    with Unix.Unix_error _ | Sys_error _ -> 0
  in
  let records = match read_idx t with Some (_, r) -> r | None -> 0 in
  (bytes, records)

type compact_report = {
  kept : int;
  dropped : int;  (** superseded, [drop]ed, skipped or rejected records *)
  bytes_before : int;
  bytes_after : int;
}

(* Rewrite the log with only the newest record per (kind, name, engine)
   among the schema-matching survivors of [drop]. Everything else —
   superseded duplicates from periodic spills, stale-schema records,
   corrupt frames, the uncommitted tail — is dropped. Atomic: the new
   log is built next to the old and renamed over it, index last. *)
let compact ?(drop = fun (_ : header) -> false) t =
  let bytes_before =
    match read_file (log_path t) with None -> 0 | Some s -> String.length s
  in
  let l = load t in
  let total_seen = l.loaded + l.skipped + l.rejected in
  let newest = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      if not (drop r.hdr) then
        Hashtbl.replace newest (r.hdr.kind, r.hdr.name, r.hdr.engine) (i, r))
    l.records;
  let keep =
    Hashtbl.fold (fun _ ir acc -> ir :: acc) newest []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  List.iter (fun r -> Buffer.add_string buf (frame r)) keep;
  let content = Buffer.contents buf in
  match write_file_atomic (log_path t) content with
  | () ->
      write_idx t ~committed:(String.length content)
        ~records:(List.length keep);
      Ok
        {
          kept = List.length keep;
          dropped = total_seen - List.length keep;
          bytes_before;
          bytes_after = String.length content;
        }
  | exception Sys_error msg -> Error msg
