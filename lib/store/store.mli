(** The persistent warm-start store: an append-only record log plus an
    index file, so a server restart can reload its caches and compiled
    automatons instead of re-earning them ("refuse-and-rebuild" on any
    doubt).

    The store is deliberately {e generic}: records carry an opaque
    payload string (the caller's [Marshal] output) under a small typed
    {!header}. The serving layer's key discipline — registry generation,
    pack digest, engine, payload schema — lives in the header, so this
    module never depends on engine types and never unmarshals a payload.

    {2 Integrity model}

    [store.log] is magic + framed records; every frame carries the MD5
    digest of its header bytes and of its payload bytes, and both are
    verified {e before} any [Marshal.from_string] — unmarshalling only
    ever sees bytes this module wrote and checksummed. [store.idx]
    commits the log length after every append (written atomically via
    tmp + rename), so a crash mid-append leaves an uncommitted tail the
    next {!load} silently ignores. Damage inside the committed region is
    counted, never raised:

    - header-level damage (marker/length/header-digest/unmarshal) stops
      the scan — that record and everything after it are lost (one
      [rejected] count: the remaining frames cannot even be counted);
    - a payload-digest mismatch rejects just that record (its frame
      lengths were covered by the intact header digest);
    - a schema mismatch is [skipped]: a valid record written by an older
      or newer payload layout.

    The digests defend against accidental corruption (truncation, bit
    rot), not against an adversary with write access to the directory —
    the same stance as the pack digests.

    Handles are not thread-safe; the server serializes its spills. *)

type header = {
  kind : string;  (** record family, e.g. ["cache"] or ["autom"] *)
  name : string;  (** cache name or domain name *)
  generation : int;  (** registry generation at spill time *)
  pack_digest : string;
      (** what the payload was computed against: the registry's
          aggregate pack digest for cache records, the entry's content
          key for automaton records *)
  engine : string;  (** engine the payload serves, or ["*"] *)
  schema : int;  (** payload layout version; see {!open_dir} *)
}

type record = { hdr : header; payload : string }

type t

val open_dir : schema:int -> string -> (t, string) result
(** Open (creating directory and files as needed) a store whose caller
    marshals payloads under layout version [schema]. {!load} skips
    records of any other schema — bumping the constant is how a payload
    type change invalidates every old record at once. *)

val dir : t -> string
val schema : t -> int

val append : t -> record list -> (int, string) result
(** Append the records as one batch and commit the index; returns the
    bytes written. On [Error] the index still points at the last good
    commit, so a half-written batch is invisible to {!load}. *)

type load = {
  records : record list;  (** valid records, oldest first *)
  loaded : int;
  skipped : int;  (** valid frame, different schema *)
  rejected : int;  (** failed a digest / frame / unmarshal check *)
  trailing_bytes : int;  (** uncommitted tail past the index's commit *)
}

val load : t -> load
(** Total: never raises, a missing or empty log is an empty load, and
    damage shows up in the counters ({!header}-level damage truncates
    [records] at the damage point). Callers filter [records] by their
    own header discipline and count what they drop as skips. *)

type stats = {
  log_bytes : int;
  committed_bytes : int;
  s_loaded : int;
  s_skipped : int;
  s_rejected : int;
  s_trailing_bytes : int;
  kinds : (string * int) list;  (** (kind, loaded count), sorted *)
}

val stats : t -> stats
(** One {!load} pass summarized — what [dggt store stats] prints and the
    [dggt_store_*] gauges sample. *)

val verify : t -> load
(** {!load} with the records dropped: just the verdict counters, for
    [dggt store verify] and the corruption tests. *)

val file_gauges : t -> int * int
(** [(log bytes, indexed record count)] — one [stat] and one index read,
    no log scan, cheap enough for a [GET /metrics] render probe. The
    record count is the index's (appends since the last compaction
    included), not the post-filter loaded count. *)

type compact_report = {
  kept : int;
  dropped : int;  (** superseded, [drop]ed, skipped or rejected records *)
  bytes_before : int;
  bytes_after : int;
}

val compact : ?drop:(header -> bool) -> t -> (compact_report, string) result
(** Rewrite the log keeping only the newest record per
    [(kind, name, engine)] among schema-matching records that survive
    [drop] (default: keep all); superseded duplicates from periodic
    spills, stale-schema records, corrupt frames and the uncommitted
    tail all go. Atomic (tmp + rename, index last). [POST /reload] uses
    [drop] to purge records keyed against a pack digest that no longer
    matches. *)
