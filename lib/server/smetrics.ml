module Hist = struct
  type t = {
    bounds : float array; (* ascending upper bounds; overflow bucket implicit *)
    counts : int array;   (* length = Array.length bounds + 1 *)
    mutable total : int;
    mutable sum : float;
    mutable max_v : float;
  }

  let default_bounds =
    [|
      0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
      2.5; 5.0; 10.0; 30.0;
    |]

  let create ?(bounds = default_bounds) () =
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      total = 0;
      sum = 0.0;
      max_v = 0.0;
    }

  let bucket_of t v =
    let n = Array.length t.bounds in
    let rec go i = if i >= n then n else if v <= t.bounds.(i) then i else go (i + 1) in
    go 0

  let observe t v =
    let i = bucket_of t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v > t.max_v then t.max_v <- v

  let count t = t.total
  let sum t = t.sum
  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
  let max_value t = t.max_v

  let quantile t q =
    if t.total = 0 then 0.0
    else begin
      let rank = q *. float_of_int t.total in
      let n = Array.length t.bounds in
      let rec go i cum =
        if i > n then t.max_v
        else
          let cum' = cum + t.counts.(i) in
          if float_of_int cum' >= rank then
            if i = n then t.max_v
            else
              (* interpolate within [lower, upper] assuming uniform spread *)
              let lower = if i = 0 then 0.0 else t.bounds.(i - 1) in
              let upper = t.bounds.(i) in
              let in_bucket = t.counts.(i) in
              if in_bucket = 0 then upper
              else
                let frac = (rank -. float_of_int cum) /. float_of_int in_bucket in
                Float.min t.max_v (lower +. (frac *. (upper -. lower)))
          else go (i + 1) cum'
      in
      go 0 0
    end

  let buckets t =
    let n = Array.length t.bounds in
    let cum = ref 0 in
    let out = ref [] in
    for i = 0 to n do
      cum := !cum + t.counts.(i);
      let le = if i = n then Float.infinity else t.bounds.(i) in
      out := (le, !cum) :: !out
    done;
    List.rev !out
end

type t = {
  mu : Mutex.t;
  latency : Hist.t;
  stages : (string, Hist.t) Hashtbl.t; (* per-pipeline-stage latency *)
  requests : (string * string, int ref) Hashtbl.t; (* (domain, outcome) *)
  mutable inflight : int;
  mutable queue_probe : unit -> int;
  mutable caches : (string * (unit -> Cache.counters)) list;
  (* incremental sessions: reuse counters fed per revision, store counters
     sampled at render time *)
  mutable inc_queries : int;
  mutable inc_splices : int;
  mutable inc_reused : int;
  mutable inc_computed : int;
  (* streamed (SSE) requests: total served, candidate frames written,
     time-to-first-candidate distribution *)
  mutable streams : int;
  mutable stream_candidates : int;
  mutable stream_replays : int;
  stream_ttfc : Hist.t;
  mutable sessions_probe : (unit -> Sessions.counters) option;
  (* grammar-automaton compilations: count + last compile wall time, per
     domain (reloads recompile only changed packs, so the counter exposes
     exactly how often each domain paid the compile) *)
  autom : (string, int ref * float ref) Hashtbl.t;
  (* warm-start store: load verdicts accumulated at boot/reload, spill
     count + last spill latency, file gauges sampled at render time *)
  mutable store_loaded : int;
  mutable store_skipped : int;
  mutable store_rejected : int;
  mutable store_spills : int;
  mutable store_spill_seconds : float;
  mutable store_probe : (unit -> store_gauges) option;
}

and store_gauges = { store_log_bytes : int; store_records : int }

let create () =
  {
    mu = Mutex.create ();
    latency = Hist.create ();
    stages = Hashtbl.create 8;
    requests = Hashtbl.create 16;
    inflight = 0;
    queue_probe = (fun () -> 0);
    caches = [];
    inc_queries = 0;
    inc_splices = 0;
    inc_reused = 0;
    inc_computed = 0;
    streams = 0;
    stream_candidates = 0;
    stream_replays = 0;
    stream_ttfc = Hist.create ();
    sessions_probe = None;
    autom = Hashtbl.create 8;
    store_loaded = 0;
    store_skipped = 0;
    store_rejected = 0;
    store_spills = 0;
    store_spill_seconds = 0.0;
    store_probe = None;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let observe t ~domain ~outcome latency_s =
  locked t (fun () ->
      Hist.observe t.latency latency_s;
      let key = (domain, outcome) in
      match Hashtbl.find_opt t.requests key with
      | Some r -> incr r
      | None -> Hashtbl.replace t.requests key (ref 1))

let observe_stage t ~stage latency_s =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.stages stage with
        | Some h -> h
        | None ->
            let h = Hist.create () in
            Hashtbl.replace t.stages stage h;
            h
      in
      Hist.observe h latency_s)

let stage_quantile t ~stage q =
  locked t (fun () ->
      Option.map (fun h -> Hist.quantile h q) (Hashtbl.find_opt t.stages stage))

let incr_inflight t = locked t (fun () -> t.inflight <- t.inflight + 1)
let decr_inflight t = locked t (fun () -> t.inflight <- t.inflight - 1)
let inflight t = locked t (fun () -> t.inflight)
let set_queue_probe t probe = locked t (fun () -> t.queue_probe <- probe)

let register_cache t name probe =
  locked t (fun () -> t.caches <- t.caches @ [ (name, probe) ])

let observe_reuse t ~reused ~computed ~splice =
  locked t (fun () ->
      t.inc_queries <- t.inc_queries + 1;
      if splice then t.inc_splices <- t.inc_splices + 1;
      t.inc_reused <- t.inc_reused + reused;
      t.inc_computed <- t.inc_computed + computed)

let set_sessions_probe t probe =
  locked t (fun () -> t.sessions_probe <- Some probe)

let observe_stream t ~candidates ~ttfc_s =
  locked t (fun () ->
      t.streams <- t.streams + 1;
      t.stream_candidates <- t.stream_candidates + candidates;
      match ttfc_s with
      | Some s -> Hist.observe t.stream_ttfc s
      | None -> ())

let observe_stream_replay t =
  locked t (fun () -> t.stream_replays <- t.stream_replays + 1)

let observe_autom_compile t ~domain seconds =
  locked t (fun () ->
      match Hashtbl.find_opt t.autom domain with
      | Some (n, s) ->
          incr n;
          s := seconds
      | None -> Hashtbl.replace t.autom domain (ref 1, ref seconds))

let observe_store_load t ~loaded ~skipped ~rejected =
  locked t (fun () ->
      t.store_loaded <- t.store_loaded + loaded;
      t.store_skipped <- t.store_skipped + skipped;
      t.store_rejected <- t.store_rejected + rejected)

let observe_store_spill t seconds =
  locked t (fun () ->
      t.store_spills <- t.store_spills + 1;
      t.store_spill_seconds <- seconds)

let set_store_probe t probe = locked t (fun () -> t.store_probe <- Some probe)

let quantile t q = locked t (fun () -> Hist.quantile t.latency q)

let fmt_float v =
  if Float.abs v = Float.infinity then "+Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render t =
  locked t (fun () ->
      let b = Buffer.create 2048 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
      line "# HELP dggt_requests_total Finished requests by domain and outcome.";
      line "# TYPE dggt_requests_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.requests []
      |> List.sort compare
      |> List.iter (fun ((domain, outcome), count) ->
             line "dggt_requests_total{domain=%S,outcome=%S} %d" domain outcome
               count);
      line "# HELP dggt_request_latency_seconds Request service latency.";
      line "# TYPE dggt_request_latency_seconds histogram";
      List.iter
        (fun (le, cum) ->
          line "dggt_request_latency_seconds_bucket{le=%S} %d" (fmt_float le) cum)
        (Hist.buckets t.latency);
      line "dggt_request_latency_seconds_sum %s" (fmt_float (Hist.sum t.latency));
      line "dggt_request_latency_seconds_count %d" (Hist.count t.latency);
      List.iter
        (fun (name, q) ->
          line "# TYPE dggt_request_latency_%s gauge" name;
          line "dggt_request_latency_%s %s" name
            (fmt_float (Hist.quantile t.latency q)))
        [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
      let stage_hists =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stages []
        |> List.sort compare
      in
      if stage_hists <> [] then begin
        line "# HELP dggt_stage_latency_seconds Pipeline stage latency.";
        line "# TYPE dggt_stage_latency_seconds histogram";
        List.iter
          (fun (stage, h) ->
            List.iter
              (fun (le, cum) ->
                line "dggt_stage_latency_seconds_bucket{stage=%S,le=%S} %d"
                  stage (fmt_float le) cum)
              (Hist.buckets h);
            line "dggt_stage_latency_seconds_sum{stage=%S} %s" stage
              (fmt_float (Hist.sum h));
            line "dggt_stage_latency_seconds_count{stage=%S} %d" stage
              (Hist.count h))
          stage_hists;
        List.iter
          (fun (name, q) ->
            line "# TYPE dggt_stage_latency_%s gauge" name;
            List.iter
              (fun (stage, h) ->
                line "dggt_stage_latency_%s{stage=%S} %s" name stage
                  (fmt_float (Hist.quantile h q)))
              stage_hists)
          [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]
      end;
      line "# HELP dggt_queue_depth Requests waiting in the worker queue.";
      line "# TYPE dggt_queue_depth gauge";
      line "dggt_queue_depth %d" (try t.queue_probe () with _ -> 0);
      line "# HELP dggt_inflight_requests Requests currently being served.";
      line "# TYPE dggt_inflight_requests gauge";
      line "dggt_inflight_requests %d" t.inflight;
      if t.caches <> [] then begin
        line "# HELP dggt_cache_hits_total Cache hits by cache.";
        line "# TYPE dggt_cache_hits_total counter";
        line "# TYPE dggt_cache_misses_total counter";
        line "# TYPE dggt_cache_evictions_total counter";
        line "# TYPE dggt_cache_entries gauge";
        List.iter
          (fun (name, probe) ->
            match probe () with
            | c ->
                line "dggt_cache_hits_total{cache=%S} %d" name c.Cache.hits;
                line "dggt_cache_misses_total{cache=%S} %d" name c.Cache.misses;
                line "dggt_cache_evictions_total{cache=%S} %d" name
                  c.Cache.evictions;
                line "dggt_cache_entries{cache=%S} %d" name c.Cache.size
            | exception _ -> ())
          t.caches
      end;
      (match t.sessions_probe with
      | None -> ()
      | Some probe -> (
          match probe () with
          | c ->
              line "# HELP dggt_sessions Live incremental sessions.";
              line "# TYPE dggt_sessions gauge";
              line "dggt_sessions %d" c.Sessions.size;
              line "# TYPE dggt_sessions_created_total counter";
              line "dggt_sessions_created_total %d" c.Sessions.created;
              line "# TYPE dggt_sessions_expired_total counter";
              line "dggt_sessions_expired_total %d" c.Sessions.expired;
              line "# TYPE dggt_sessions_evicted_total counter";
              line "dggt_sessions_evicted_total %d" c.Sessions.evicted
          | exception _ -> ()));
      if Hashtbl.length t.autom > 0 then begin
        let rows =
          Hashtbl.fold (fun k (n, s) acc -> (k, !n, !s) :: acc) t.autom []
          |> List.sort compare
        in
        line
          "# HELP dggt_autom_compiles_total Grammar automaton compilations \
           by domain.";
        line "# TYPE dggt_autom_compiles_total counter";
        List.iter
          (fun (domain, n, _) ->
            line "dggt_autom_compiles_total{domain=%S} %d" domain n)
          rows;
        line
          "# HELP dggt_autom_compile_seconds Wall time of the domain's most \
           recent automaton compilation.";
        line "# TYPE dggt_autom_compile_seconds gauge";
        List.iter
          (fun (domain, _, s) ->
            line "dggt_autom_compile_seconds{domain=%S} %s" domain
              (fmt_float s))
          rows
      end;
      (match t.store_probe with
      | None -> ()
      | Some probe ->
          line
            "# HELP dggt_store_records_loaded_total Warm-start records \
             applied at boot/reload.";
          line "# TYPE dggt_store_records_loaded_total counter";
          line "dggt_store_records_loaded_total %d" t.store_loaded;
          line "# TYPE dggt_store_records_skipped_total counter";
          line "dggt_store_records_skipped_total %d" t.store_skipped;
          line "# TYPE dggt_store_records_rejected_total counter";
          line "dggt_store_records_rejected_total %d" t.store_rejected;
          line "# TYPE dggt_store_spills_total counter";
          line "dggt_store_spills_total %d" t.store_spills;
          line
            "# HELP dggt_store_spill_seconds Wall time of the most recent \
             spill.";
          line "# TYPE dggt_store_spill_seconds gauge";
          line "dggt_store_spill_seconds %s" (fmt_float t.store_spill_seconds);
          (match probe () with
          | g ->
              line "# HELP dggt_store_log_bytes Size of the store log file.";
              line "# TYPE dggt_store_log_bytes gauge";
              line "dggt_store_log_bytes %d" g.store_log_bytes;
              line "# TYPE dggt_store_records gauge";
              line "dggt_store_records %d" g.store_records
          | exception _ -> ()));
      if t.streams > 0 then begin
        line "# HELP dggt_streams_total Streamed (SSE) requests served.";
        line "# TYPE dggt_streams_total counter";
        line "dggt_streams_total %d" t.streams;
        line
          "# HELP dggt_stream_candidates_total Candidate frames written \
           across all streams.";
        line "# TYPE dggt_stream_candidates_total counter";
        line "dggt_stream_candidates_total %d" t.stream_candidates;
        line
          "# HELP dggt_stream_cache_replays_total Streams answered by \
           replaying a cached outcome.";
        line "# TYPE dggt_stream_cache_replays_total counter";
        line "dggt_stream_cache_replays_total %d" t.stream_replays;
        line
          "# HELP dggt_stream_ttfc_seconds Time from request start to the \
           first streamed candidate.";
        line "# TYPE dggt_stream_ttfc_seconds histogram";
        List.iter
          (fun (le, cum) ->
            line "dggt_stream_ttfc_seconds_bucket{le=%S} %d" (fmt_float le) cum)
          (Hist.buckets t.stream_ttfc);
        line "dggt_stream_ttfc_seconds_sum %s"
          (fmt_float (Hist.sum t.stream_ttfc));
        line "dggt_stream_ttfc_seconds_count %d" (Hist.count t.stream_ttfc)
      end;
      if t.inc_queries > 0 then begin
        line "# HELP dggt_inc_queries_total Incremental session revisions served.";
        line "# TYPE dggt_inc_queries_total counter";
        line "dggt_inc_queries_total %d" t.inc_queries;
        line "# TYPE dggt_inc_splices_total counter";
        line "dggt_inc_splices_total %d" t.inc_splices;
        line
          "# HELP dggt_inc_reuse_ratio Fraction of stage lookups served from \
           session memory.";
        line "# TYPE dggt_inc_reuse_ratio gauge";
        let total = t.inc_reused + t.inc_computed in
        line "dggt_inc_reuse_ratio %s"
          (fmt_float
             (if total = 0 then 0.0
              else float_of_int t.inc_reused /. float_of_int total))
      end;
      Buffer.contents b)
