(** Hand-rolled JSON for the serving layer's request/response payloads.

    A deliberately small implementation over the stdlib (no opam JSON
    dependency): the values the service exchanges are shallow objects of
    strings, numbers and booleans. The parser is a plain recursive-descent
    reader with a depth cap, so hostile request bodies cannot blow the
    stack; the printer always emits valid UTF-8-transparent JSON (non-ASCII
    bytes pass through untouched, control characters are escaped). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Integral numbers print without a
    decimal point; other numbers use a round-trippable shortest form. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing garbage
    is an error). Errors carry a byte offset. Supports the full escape set
    including [\uXXXX] (surrogate pairs are combined and re-encoded as
    UTF-8). *)

(** {2 Accessors} — all total; [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for other constructors or missing fields. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option

val str_field : string -> t -> string option
val num_field : string -> t -> float option
val int_field : string -> t -> int option
val bool_field : string -> t -> bool option

val opt : ('a -> t) -> 'a option -> t
(** [opt inj v] is [Null] for [None]. *)

val list : ('a -> t) -> 'a list -> t
(** [list inj xs] is [Arr (List.map inj xs)]. *)
