type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* finite floats only; the Num printer nulls NaN/Inf before calling this
   (JSON has no NaN/Inf literals) *)
let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* shortest representation that round-trips a double *)
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v ->
        if Float.is_nan v || Float.abs v = Float.infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (number_to_string v)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj l ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go x)
          l;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Error of int * string

let max_depth = 100

let of_string s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Error (!i, msg)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let advance () = incr i in
  let skip_ws () =
    while
      !i < n && match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !i + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !i 4) in
    i := !i + 4;
    v
  in
  let utf8_add buf cp =
    (* encode one Unicode scalar value as UTF-8 *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string";
      let c = s.[!i] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !i >= n then fail "unterminated escape";
          let e = s.[!i] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* high surrogate: a low surrogate must follow *)
                if cp >= 0xD800 && cp <= 0xDBFF then
                  if
                    !i + 1 < n && s.[!i] = '\\' && s.[!i + 1] = 'u'
                  then begin
                    i := !i + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then fail "invalid surrogate pair"
                    else 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail "lone high surrogate"
                else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone low surrogate"
                else cp
              in
              utf8_add buf cp;
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !i in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do advance () done;
      if !i = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !i < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Error (pos, msg) ->
      Result.Error (Printf.sprintf "JSON error at byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member k = function Obj l -> List.assoc_opt k l | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None

let int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 -> Some (int_of_float v)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let str_field k v = Option.bind (member k v) str
let num_field k v = Option.bind (member k v) num
let int_field k v = Option.bind (member k v) int
let bool_field k v = Option.bind (member k v) bool
let opt inj = function None -> Null | Some v -> inj v
let list inj xs = Arr (List.map inj xs)
