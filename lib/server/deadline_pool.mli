(** Fixed worker pool over a bounded request queue.

    Workers are OCaml 5 domains — a facade over the repo-wide pool
    primitive {!Dggt_par.Pool} — so synthesis jobs run in parallel on
    multicore hardware while the connection threads (plain systhreads)
    only do I/O. The queue is bounded: {!submit} refuses new work when it
    is full — the server turns that into a [503] with [Retry-After]
    instead of letting latency pile up. Each job may carry an absolute
    deadline; a job whose deadline passed while it sat in the queue is
    {e dropped} (its [expired] callback runs instead of [run]), so a
    request the client has already given up on never reaches the
    engine. *)

type t = Dggt_par.Pool.t

val create : ?workers:int -> ?capacity:int -> unit -> t
(** Spawns the worker domains immediately. [workers] defaults to
    {!Stdlib.Domain.recommended_domain_count} (clamped to [1, 64]);
    [capacity] is the bound on {e queued} (not yet running) jobs, default
    64. *)

val workers : t -> int
val capacity : t -> int

val submit :
  t -> ?deadline:float -> run:(unit -> unit) -> expired:(unit -> unit) ->
  unit -> [ `Accepted | `Rejected ]
(** [`Rejected] when the queue is full or the pool is shutting down.
    [deadline] is an absolute {!Unix.gettimeofday} instant; exactly one of
    [run]/[expired] is called, from a worker domain. Exceptions escaping
    either callback are swallowed (the worker survives); callbacks should
    do their own error reporting. *)

val depth : t -> int
(** Jobs currently waiting in the queue (the metrics gauge). *)

val shutdown : t -> unit
(** Stop accepting work, let the workers drain the queue, join them.
    Idempotent. *)
