(* Same intrusive-ring LRU shape as Cache, plus a TTL on top: the ring tail
   is the least-recently-used entry, so expired sessions cluster there and
   insertion can drop them before evicting anything live. *)

type 'a entry = { payload : 'a; mutable last_used : float }

type 'a node = {
  mutable prev : 'a node;
  mutable next : 'a node;
  item : (string * 'a entry) option; (* None only for the sentinel *)
}

type counters = {
  created : int;
  expired : int;
  evicted : int;
  size : int;
  capacity : int;
}

type 'a t = {
  mu : Mutex.t;
  clock : unit -> float;
  ttl_s : float;
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  sentinel : 'a node;
  mutable next_id : int;
  mutable created : int;
  mutable expired : int;
  mutable evicted : int;
}

let create ?(clock = Unix.gettimeofday) ~ttl_s ~cap () =
  let rec sentinel = { prev = sentinel; next = sentinel; item = None } in
  {
    mu = Mutex.create ();
    clock;
    ttl_s;
    cap;
    tbl = Hashtbl.create 64;
    sentinel;
    next_id = 0;
    created = 0;
    expired = 0;
    evicted = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let is_expired t e now = now -. e.last_used > t.ttl_s

(* ids only need to be unique per store; a time component keeps them from
   colliding across server restarts behind the same client *)
let fresh_id t now =
  let n = t.next_id in
  t.next_id <- n + 1;
  Printf.sprintf "s%x-%06x" n (int_of_float (now *. 1000.) land 0xffffff)

let drop_tail t now =
  let lru = t.sentinel.prev in
  if lru == t.sentinel then ()
  else begin
    unlink lru;
    match lru.item with
    | Some (id, e) ->
        Hashtbl.remove t.tbl id;
        if is_expired t e now then t.expired <- t.expired + 1
        else t.evicted <- t.evicted + 1
    | None -> ()
  end

let add ?id t payload =
  locked t (fun () ->
      let now = t.clock () in
      (* a caller-minted id (the shard router pins placement into its
         session ids) silently replaces any previous entry under it *)
      (match id with
      | Some id -> (
          match Hashtbl.find_opt t.tbl id with
          | Some n ->
              unlink n;
              Hashtbl.remove t.tbl id
          | None -> ())
      | None -> ());
      while Hashtbl.length t.tbl >= max t.cap 0 && Hashtbl.length t.tbl > 0 do
        drop_tail t now
      done;
      let id = match id with Some id -> id | None -> fresh_id t now in
      if t.cap > 0 then begin
        let n =
          {
            prev = t.sentinel;
            next = t.sentinel;
            item = Some (id, { payload; last_used = now });
          }
        in
        push_front t n;
        Hashtbl.replace t.tbl id n;
        t.created <- t.created + 1
      end;
      id)

let find t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | None -> `Missing
      | Some n -> (
          match n.item with
          | None -> `Missing
          | Some (_, e) ->
              let now = t.clock () in
              if is_expired t e now then begin
                unlink n;
                Hashtbl.remove t.tbl id;
                t.expired <- t.expired + 1;
                `Expired
              end
              else begin
                e.last_used <- now;
                unlink n;
                push_front t n;
                `Found e.payload
              end))

let remove t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | None -> false
      | Some n ->
          unlink n;
          Hashtbl.remove t.tbl id;
          true)

let counters t =
  locked t (fun () ->
      {
        created = t.created;
        expired = t.expired;
        evicted = t.evicted;
        size = Hashtbl.length t.tbl;
        capacity = t.cap;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.sentinel.next <- t.sentinel;
      t.sentinel.prev <- t.sentinel)
