(* A thin deadline-aware facade over the shared parallelism primitive
   (Dggt_par.Pool): the domain spawning, work queue, capacity bound and
   graceful shutdown all live there, this module only adds the serving
   layer's deadline semantics. Dggt_par stays stdlib-only, so the
   wall-clock (Unix.gettimeofday) comparison happens here, when a worker
   dequeues the job — a request whose client has already given up is
   dropped without reaching the engine. *)

type t = Dggt_par.Pool.t

let create ?workers ?(capacity = 64) () =
  let workers =
    match workers with Some n when n > 0 -> Some (min n 64) | _ -> None
  in
  Dggt_par.Pool.create ?workers ~capacity ()

let workers = Dggt_par.Pool.workers
let capacity = Dggt_par.Pool.capacity

let submit t ?deadline ~run ~expired () =
  let job () =
    match deadline with
    | Some d when Unix.gettimeofday () > d -> expired ()
    | _ -> run ()
  in
  Dggt_par.Pool.submit t job

let depth = Dggt_par.Pool.depth
let shutdown = Dggt_par.Pool.shutdown
