type job = {
  deadline : float option;
  run : unit -> unit;
  expired : unit -> unit;
}

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  cap : int;
  nworkers : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then begin
      (* stopping, queue drained *)
      Mutex.unlock t.mu
    end
    else begin
      let j = Queue.pop t.queue in
      Mutex.unlock t.mu;
      (try
         match j.deadline with
         | Some d when Unix.gettimeofday () > d -> j.expired ()
         | _ -> j.run ()
       with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?workers ?(capacity = 64) () =
  let nworkers =
    match workers with
    | Some n when n > 0 -> min n 64
    | _ -> max 1 (min 64 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      cap = max 1 capacity;
      nworkers;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.nworkers
let capacity t = t.cap

let submit t ?deadline ~run ~expired () =
  Mutex.lock t.mu;
  if t.stopping || Queue.length t.queue >= t.cap then begin
    Mutex.unlock t.mu;
    `Rejected
  end
  else begin
    Queue.push { deadline; run; expired } t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    `Accepted
  end

let depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.queue in
  Mutex.unlock t.mu;
  n

let shutdown t =
  Mutex.lock t.mu;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mu;
  if not already then List.iter Domain.join ds
