(** Mutex-guarded LRU cache for the serving layer.

    One cache instance serves every worker of the pool, so all operations
    take an internal mutex. Lookups and insertions are O(1) (hash table +
    intrusive doubly-linked recency list); when an insertion exceeds the
    capacity, the least-recently-used entry is evicted.

    The server keeps two kinds of caches over these: whole-query →
    {!Dggt_core.Engine.outcome}, and the per-stage memos behind
    {!Dggt_core.Engine.lookups} — [(domain, word) → candidate APIs] and
    [(domain, api₁, api₂) → grammar paths], the two stages whose results do
    not depend on the query. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** A capacity [<= 0] disables the cache: every lookup misses and
    insertions are dropped (useful for [--cache-size 0]). Keys are compared
    with structural equality/hashing. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Bumps the entry to most-recently-used on a hit. Counts a hit or miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or replace) at most-recently-used; evicts the LRU entry when
    over capacity. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * bool
(** [(value, hit)]. The compute thunk runs {e outside} the cache lock, so a
    slow computation (a whole synthesis) never blocks other requests'
    cache traffic; two racing misses on the same key may both compute, and
    the later {!add} wins. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val keys_mru : ('k, 'v) t -> 'k list
(** Keys in recency order, most-recently-used first (tests pin eviction
    order with this). *)

(** {2 Enumeration and bulk load}

    The seam the warm-start store goes through — consumers never reach
    into the recency ring themselves. *)

val fold : ('acc -> 'k -> 'v -> 'acc) -> 'acc -> ('k, 'v) t -> 'acc
(** Fold over every entry in recency order, {e least}-recently-used
    first (the reverse of {!keys_mru}). This order is pinned: replaying
    the visited pairs through {!add} — or {!add_seq}/{!of_seq} —
    reproduces the cache's recency order exactly, with the fold's last
    pair ending up most-recently-used. The entries are snapshotted under
    the internal lock and [f] runs {e outside} it, so [f] may touch the
    cache (or block) without deadlocking; mutations made while the fold
    runs are not reflected in the snapshot. *)

val add_seq : ('k, 'v) t -> ('k * 'v) Seq.t -> unit
(** {!add} each pair in sequence order: earlier pairs age toward LRU,
    the last pair is MRU. Feeding the sequence produced by a {!fold}
    restores both contents and recency; entries beyond capacity evict
    from the oldest end exactly as repeated {!add}s would. *)

val of_seq : capacity:int -> ('k * 'v) Seq.t -> ('k, 'v) t
(** A fresh cache (counters zeroed) loaded with {!add_seq}. *)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val counters : ('k, 'v) t -> counters

val hit_rate : counters -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries (counters are kept). *)
