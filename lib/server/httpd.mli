(** Minimal HTTP/1.1 server over stdlib [Unix] sockets.

    Exactly what the service needs and nothing more: request-line + header
    parsing with size caps, [Content-Length] bodies, keep-alive, one
    systhread per connection, and clean shutdown. The handler runs on the
    connection's thread; blocking there (e.g. waiting for a worker-pool
    result) is fine and does not stall other connections.

    Chunked transfer encoding is supported on the {e response} side only
    ({!stream_response}: the handler returns a producer and the
    connection thread writes one chunk frame per emission — how the SSE
    endpoints stream candidates). Not implemented (requests using them
    get a [400]/[501]): chunked {e request} bodies, pipelining beyond
    read-one-write-one, TLS. *)

type request = {
  meth : string;                     (** uppercased: "GET", "POST", … *)
  path : string;                     (** request-target without the query string *)
  query : (string * string) list;    (** decoded query parameters *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
  stream : ((string -> unit) -> unit) option;
      (** [None] (every fixed response): [body] is sent with a
          [Content-Length]. [Some producer]: [body] is ignored and the
          response is chunked — see {!stream_response}. *)
}

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string ->
  response
(** [content_type] defaults to ["application/json"]. [Content-Length] and
    [Connection] are added at write time; don't set them. *)

val stream_response :
  ?content_type:string ->
  ?headers:(string * string) list ->
  int ->
  ((string -> unit) -> unit) ->
  response
(** A chunked response ([content_type] defaults to
    ["text/event-stream"]). After the status line and headers
    ([transfer-encoding: chunked], [connection: close]) go out, the
    producer runs {e on the connection thread} with a chunk writer: each
    call emits one chunk frame immediately (empty strings are skipped —
    an empty chunk would terminate the stream); when the producer
    returns, the terminal zero chunk is written and the connection
    closes (streamed responses are never kept alive). If the peer
    disconnects mid-stream, the next write raises ([SIGPIPE] is
    ignored, so it surfaces as [EPIPE]) and aborts the producer — a
    producer holding locks or counters must release them with
    [Fun.protect]. Producer exceptions propagate: the connection is
    dropped without the terminal chunk, which clients see as a
    truncated (invalid) chunked body, not a complete response. *)

val reason_phrase : int -> string
val header : request -> string -> string option

type t

val create :
  ?addr:string ->
  ?backlog:int ->
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  ?idle_timeout_s:float ->
  ?unix_path:string ->
  port:int ->
  (request -> response) ->
  t
(** Binds, listens and starts the accept thread immediately. [port 0]
    binds an ephemeral port — read it back with {!port}. [addr] defaults to
    "127.0.0.1". With [unix_path] the listener is a {e Unix-domain} socket
    at that path instead of TCP ([addr]/[port] are ignored, {!port}
    reports [port] as given): the seam the sharded router's workers listen
    on. A stale socket file is unlinked before binding, and the path is
    removed again by {!wait} once the accept loop has exited. Everything
    else — request parsing, keep-alive, chunked streaming — behaves
    identically over both transports. Oversized headers/bodies get
    [431]/[413]; a connection idle longer than [idle_timeout_s] (default
    30 s) is closed. [SIGPIPE] is ignored process-wide so writes to dead
    peers fail as exceptions. *)

val port : t -> int

val stop : t -> unit
(** Clean shutdown: close the listener, let every connection finish the
    request it is serving, then close. Idempotent, signal-safe enough to be
    called from a signal handler. *)

val wait : t -> unit
(** Block until the accept loop has exited and every connection thread is
    done. ({!stop} from another thread — or a signal — unblocks it.) *)

val handle_signals : t -> unit
(** Install SIGINT/SIGTERM handlers that {!stop} this server. *)
