open Dggt_core
module J = Jsonio
module Trace = Dggt_obs.Trace

(* The one place response payloads are rendered. Both delivery modes —
   fixed v1 JSON bodies and SSE frames — go through these functions, so
   the streamed [event: done] payload is the same bytes a non-streaming
   caller would have received; the shapes cannot drift apart. *)

let api_version = 1

let stats_json (s : Stats.t) =
  let i n = J.Num (float_of_int n) in
  J.Obj
    [
      ("dep_edges", i s.Stats.dep_edges);
      ("orig_paths", i s.Stats.orig_paths);
      ("paths_after_reloc", i s.Stats.paths_after_reloc);
      ("orphan_count", i s.Stats.orphan_count);
      ("reloc_graphs", i s.Stats.reloc_graphs);
      ("combos_total", i s.Stats.combos_total);
      ("combos_after_gprune", i s.Stats.combos_after_gprune);
      ("combos_after_sprune", i s.Stats.combos_after_sprune);
      ("combos_merged", i s.Stats.combos_merged);
      ("hisyn_combos_enumerated", i s.Stats.hisyn_combos_enumerated);
      ("hisyn_combos_possible", i s.Stats.hisyn_combos_possible);
      ("dgg_nodes", i s.Stats.dgg_nodes);
      ("dgg_edges", i s.Stats.dgg_edges);
      ("dgg_improvements", i s.Stats.dgg_improvements);
    ]

(* the real n-best entries, rank + the tie-break quantities the client
   would otherwise have to re-derive *)
let ranked_json (rs : Engine.ranked list) =
  J.Arr
    (List.mapi
       (fun i (r : Engine.ranked) ->
         J.Obj
           [
             ("rank", J.Num (float_of_int (i + 1)));
             ("code", J.Str r.Engine.code);
             ("size", J.Num (float_of_int r.Engine.size));
             ("coverage", J.Num (float_of_int r.Engine.coverage));
             ("score", J.Num r.Engine.score);
           ])
       rs)

(* protocol v1 compatibility: [alternatives] keeps its historical shape (a
   bare code-string array) and the richer [ranked] field appears only when
   an n-best was computed (k > 1) — a k=1 payload is byte-identical to the
   pre-semiring one. *)
let outcome_json ~domain ~engine ~query ~cached ~alternatives
    (o : Engine.outcome) =
  J.Obj
    ([
       ("v", J.Num (float_of_int api_version));
       ("ok", J.Bool (o.Engine.code <> None));
       ("domain", J.Str domain);
       ("engine", J.Str engine);
       ("query", J.Str query);
       ("code", J.opt (fun s -> J.Str s) o.Engine.code);
       ("cgt_size", J.opt (fun n -> J.Num (float_of_int n)) o.Engine.cgt_size);
       ( "alternatives",
         J.Arr
           (List.map (fun (r : Engine.ranked) -> J.Str r.Engine.code)
              alternatives) );
     ]
    @ (if alternatives = [] then []
       else [ ("ranked", ranked_json alternatives) ])
    @ [
        ("time_s", J.Num o.Engine.time_s);
        ("timed_out", J.Bool o.Engine.timed_out);
        ("failure", J.opt (fun s -> J.Str s) o.Engine.failure);
        ("cached", J.Bool cached);
        ("stats", stats_json o.Engine.stats);
      ])

(* the [/rank] payload; also the stream's terminal frame for rank requests *)
let rank_json ~domain ~query ~k ~cached (candidates : Engine.ranked list) =
  J.Obj
    [
      ("v", J.Num (float_of_int api_version));
      ("ok", J.Bool (candidates <> []));
      ("domain", J.Str domain);
      ("query", J.Str query);
      ("k", J.Num (float_of_int k));
      ( "candidates",
        J.Arr
          (List.map (fun (r : Engine.ranked) -> J.Str r.Engine.code) candidates)
      );
      ("ranked", ranked_json candidates);
      ("cached", J.Bool cached);
    ]

let reuse_json (r : Dggt_inc.Reuse.t) =
  let open Dggt_inc.Reuse in
  let i n = J.Num (float_of_int n) in
  let stage (s : stage) =
    J.Obj [ ("reused", i s.reused); ("computed", i s.computed) ]
  in
  J.Obj
    [
      ("revision", i r.revision);
      ("splice", J.Bool r.splice);
      ( "tokens",
        J.Obj
          [
            ("kept", i r.tokens_kept);
            ("added", i r.tokens_added);
            ("removed", i r.tokens_removed);
          ] );
      ( "edges",
        J.Obj
          [
            ("kept", i r.edges_kept);
            ("added", i r.edges_added);
            ("removed", i r.edges_removed);
          ] );
      ("words", stage r.words);
      ("pairs", stage r.pairs);
      ("dgg_rows", stage r.dgg_rows);
      ("reuse_ratio", J.Num (overall_ratio r));
    ]

let with_fields v extra =
  match v with
  | J.Obj f -> J.Obj (f @ extra)
  | other -> J.Obj (("outcome", other) :: extra)

let value_json = function
  | Trace.Bool b -> J.Bool b
  | Trace.Int n -> J.Num (float_of_int n)
  | Trace.Float f -> J.Num f
  | Trace.Str s -> J.Str s

let event_json (e : Trace.event) =
  J.Obj
    [
      ("id", J.Num (float_of_int e.Trace.id));
      ("parent", J.opt (fun p -> J.Num (float_of_int p)) e.Trace.parent);
      ("stage", J.Str e.Trace.stage);
      ("start_s", J.Num e.Trace.start_s);
      ("dur_s", J.Num e.Trace.dur_s);
      (* note keys repeat (one per decision) — an array of pairs, not an
         object *)
      ( "notes",
        J.list
          (fun (k, v) -> J.Obj [ ("key", J.Str k); ("value", value_json v) ])
          e.Trace.notes );
    ]

let error_json msg = J.to_string (J.Obj [ ("error", J.Str msg) ])

(* ------------------------------------------------------------------ *)
(* SSE framing                                                        *)
(* ------------------------------------------------------------------ *)

let sse_frame ~event v =
  Printf.sprintf "event: %s\ndata: %s\n\n" event (J.to_string v)

(* one [event: candidate] revision *)
let candidate_json (c : Engine.candidate) =
  J.Obj
    [
      ("v", J.Num (float_of_int api_version));
      ("rank", J.Num (float_of_int c.Engine.rank));
      ("revision", J.Num (float_of_int c.Engine.revision));
      ("code", J.Str c.Engine.code);
      ("size", J.Num (float_of_int c.Engine.size));
      ("coverage", J.Num (float_of_int c.Engine.coverage));
      ("score", J.Num c.Engine.score);
    ]

(* a mid-stream failure (headers already went out as 200, so the status
   travels in the frame) *)
let stream_error_json ~status msg =
  J.Obj
    [
      ("v", J.Num (float_of_int api_version));
      ("ok", J.Bool false);
      ("status", J.Num (float_of_int status));
      ("error", J.Str msg);
    ]
