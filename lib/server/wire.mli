(** The serving layer's wire formats, in one place.

    Every JSON payload the service emits — fixed v1 response bodies and
    the SSE frames of the streaming endpoints — is rendered here, so the
    two delivery modes share one renderer per shape and cannot drift: a
    stream's terminal [event: done] frame carries byte-for-byte the JSON
    a non-streaming caller would have received as the response body.

    Conventions: integers are emitted as JSON numbers, optional values
    as [null], and object field order is fixed (tests and the bench
    byte-identity gates compare rendered strings). *)

val api_version : int
(** The [v] field of every payload; equals {!Serve.api_version}. *)

val stats_json : Dggt_core.Stats.t -> Jsonio.t
(** The per-request pipeline statistics object ([stats] field). *)

val ranked_json : Dggt_core.Engine.ranked list -> Jsonio.t
(** The n-best array: rank plus the tie-break quantities (size,
    coverage, score) the client would otherwise have to re-derive. *)

val outcome_json :
  domain:string ->
  engine:string ->
  query:string ->
  cached:bool ->
  alternatives:Dggt_core.Engine.ranked list ->
  Dggt_core.Engine.outcome ->
  Jsonio.t
(** The [/synthesize] response body. Protocol v1 compatibility:
    [alternatives] keeps its historical shape (a bare code-string array)
    and the richer [ranked] field appears only when an n-best was
    computed ([alternatives <> []]) — a k=1 payload is byte-identical to
    the pre-semiring one. *)

val rank_json :
  domain:string ->
  query:string ->
  k:int ->
  cached:bool ->
  Dggt_core.Engine.ranked list ->
  Jsonio.t
(** The [/rank] response body. *)

val reuse_json : Dggt_inc.Reuse.t -> Jsonio.t
(** The incremental-session [reuse] object (revision, splice flag,
    token/edge diff, per-stage reuse counters, overall ratio). *)

val with_fields : Jsonio.t -> (string * Jsonio.t) list -> Jsonio.t
(** Append fields to an object payload (how the session response extends
    {!outcome_json} with [session] and [reuse]); a non-object payload is
    wrapped as [{"outcome": payload, ...}]. *)

val value_json : Dggt_obs.Trace.value -> Jsonio.t
val event_json : Dggt_obs.Trace.event -> Jsonio.t
(** One trace span event ([GET /debug/trace]). *)

val error_json : string -> string
(** A rendered [{"error": msg}] body (error responses skip {!Jsonio.t}
    round-tripping at call sites). *)

(** {2 SSE framing}

    Streamed responses are [text/event-stream] over chunked transfer:
    one frame per chunk, [event: candidate] for interim revisions, then
    exactly one terminal frame — [event: done] (the full non-streaming
    payload) or [event: error] (e.g. deadline expiry mid-stream). *)

val sse_frame : event:string -> Jsonio.t -> string
(** ["event: <event>\ndata: <compact json>\n\n"]. The data is a single
    line (compact rendering), so no [data:] continuation lines are ever
    needed. *)

val candidate_json : Dggt_core.Engine.candidate -> Jsonio.t
(** One [event: candidate] payload: rank, revision, code, size,
    coverage, score. *)

val stream_error_json : status:int -> string -> Jsonio.t
(** A mid-stream failure frame. The HTTP status already went out as 200
    when the stream opened, so the real status (e.g. 504 on deadline
    expiry) travels in the frame body. *)
