(** Serving observability: latency histograms, request counters, gauges,
    cache statistics — rendered in Prometheus text exposition format at
    [GET /metrics].

    All mutation goes through an internal mutex, so any worker or
    connection thread may record observations. *)

(** Fixed-bucket latency histograms (seconds). Not synchronized by itself —
    {!t} guards its histograms with its own mutex; other users (the load
    generator) bring their own locking. *)
module Hist : sig
  type t

  val create : ?bounds:float array -> unit -> t
  (** [bounds] are the inclusive bucket upper bounds, ascending; an
      implicit +Inf overflow bucket is appended. The default spans 0.5 ms
      to 30 s logarithmically — the range between an interactive cache hit
      and the paper's 20 s synthesis timeout. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile t 0.99]: linear interpolation inside the target bucket;
      the overflow bucket reports the maximum observed value. 0 when
      empty. *)

  val max_value : t -> float

  val buckets : t -> (float * int) list
  (** (upper bound, cumulative count) pairs, ending with (+Inf, total). *)
end

type t

val create : unit -> t

val observe : t -> domain:string -> outcome:string -> float -> unit
(** Record one finished request: bumps the per-[(domain, outcome)] counter
    and feeds the latency histogram. Outcomes used by the server: [ok],
    [failed], [timeout], [cached], [rejected], [expired], [bad_request]. *)

val observe_stage : t -> stage:string -> float -> unit
(** Record one pipeline stage's latency for a traced request. Histograms
    are created lazily per stage name, so only stages that actually ran
    appear in the exposition. *)

val stage_quantile : t -> stage:string -> float -> float option
(** Latency quantile for one stage; [None] before any observation. *)

val incr_inflight : t -> unit
val decr_inflight : t -> unit
val inflight : t -> int

val set_queue_probe : t -> (unit -> int) -> unit
(** The queue-depth gauge is sampled (from the pool) at render time. *)

val register_cache : t -> string -> (unit -> Cache.counters) -> unit
(** Expose a cache's hit/miss/eviction counters under the given label. *)

val observe_reuse : t -> reused:int -> computed:int -> splice:bool -> unit
(** Record one incremental session revision: how many stage lookups (words +
    pairs + DGG rows) were served from session memory versus computed, and
    whether the whole pipeline suffix was spliced. *)

val set_sessions_probe : t -> (unit -> Sessions.counters) -> unit
(** The session-store gauges are sampled at render time. *)

val observe_stream : t -> candidates:int -> ttfc_s:float option -> unit
(** Record one finished streamed (SSE) request: how many candidate frames
    it wrote and the time from request start to the first one ([None]
    when the stream ended without emitting a candidate — the TTFC
    histogram only sees streams that produced one). *)

val observe_stream_replay : t -> unit
(** Record one streamed request answered from the response cache — a
    replay of the cached outcome as a single candidate frame plus the
    terminal frame, never a live chart walk. Bumps
    [dggt_stream_cache_replays_total]; replays are also ordinary streams,
    so callers pair this with {!observe_stream}. *)

val observe_autom_compile : t -> domain:string -> float -> unit
(** Record one grammar-automaton compilation for [domain]: bumps
    [dggt_autom_compiles_total{domain}] and sets
    [dggt_autom_compile_seconds{domain}] to the compile's wall time.
    Registry cache hits are {e not} recorded — the counter measures
    compilations actually paid, so a hot reload of unchanged packs leaves
    it flat. *)

type store_gauges = { store_log_bytes : int; store_records : int }

val observe_store_load : t -> loaded:int -> skipped:int -> rejected:int -> unit
(** Accumulate one warm-start load's verdict counters (records applied /
    skipped / rejected) — fed at boot and after [POST /reload]. *)

val observe_store_spill : t -> float -> unit
(** Record one spill: bumps [dggt_store_spills_total] and sets
    [dggt_store_spill_seconds] to the spill's wall time. *)

val set_store_probe : t -> (unit -> store_gauges) -> unit
(** Install the file-size/record-count probe, sampled at render time.
    Installing it is also what turns the [dggt_store_*] section on — a
    server running without [--store] exports none of it. *)

val quantile : t -> float -> float
(** Latency quantile over all recorded requests. *)

val render : t -> string
(** Prometheus text format: [dggt_requests_total{domain,outcome}],
    [dggt_request_latency_seconds] histogram (+ p50/p90/p99 convenience
    gauges), [dggt_stage_latency_seconds{stage}] per-pipeline-stage
    histograms (+ per-stage p50/p90/p99 gauges, sorted by stage name),
    [dggt_queue_depth], [dggt_inflight_requests], per-cache
    [dggt_cache_{hits,misses,evictions}_total] / [dggt_cache_entries],
    session-store gauges ([dggt_sessions],
    [dggt_sessions_{created,expired,evicted}_total]), automaton counters
    ([dggt_autom_compiles_total{domain}],
    [dggt_autom_compile_seconds{domain}]), warm-start store counters
    when a store probe is installed
    ([dggt_store_records_{loaded,skipped,rejected}_total],
    [dggt_store_spills_total], [dggt_store_spill_seconds],
    [dggt_store_log_bytes], [dggt_store_records]), streaming counters
    once a stream has been served ([dggt_streams_total],
    [dggt_stream_candidates_total], [dggt_stream_cache_replays_total],
    [dggt_stream_ttfc_seconds]
    histogram) and incremental-reuse counters ([dggt_inc_queries_total],
    [dggt_inc_splices_total], [dggt_inc_reuse_ratio]). *)
