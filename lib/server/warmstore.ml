(* The serving layer's half of the warm-start store: what Serve's cache
   entries and compiled automatons look like as store records, and how a
   boot replays them. Dggt_store.Store stays generic over opaque payload
   bytes; every [Marshal] of an engine type happens here, versioned by
   [schema_version]. *)

open Dggt_core
module Store = Dggt_store.Store
module Registry = Dggt_pack.Domain_registry
module Autom = Dggt_autom.Autom

(* Bump whenever any payload type below changes shape — including
   transitively (Engine.outcome, Engine.ranked, Word2api.candidate,
   Autom.image). A bump makes every old record a schema skip, which is
   the point: Marshal would otherwise read the old bytes as the new
   type. *)
let schema_version = 1

let kind_cache = "cache"
let kind_autom = "autom"
let q_cache_name = "q_cache"
let rank_cache_name = "rank_cache"
let word_cache_name = "word_cache"

type caches = {
  q :
    ( int * string * string * string * int,
      Engine.outcome * Engine.ranked list )
    Cache.t;
  rank : (int * string * string * int, Engine.ranked list) Cache.t;
  word : (int * string * string * string, Word2api.candidate list) Cache.t;
}

(* The payload types, exactly as marshalled. Cache entries are spilled
   with the registry generation STRIPPED from their keys: generations
   are process-local (they restart at 0 every boot), so the loader
   re-keys every entry under the booting process's generation — gated on
   the header's pack digest matching, which is what actually pins the
   content the entries were computed against. Entry lists are in
   LRU-to-MRU order (Cache.fold's pinned order), so replaying them
   through Cache.add reproduces the recency order. *)
type q_entries =
  ((string * string * string * int) * (Engine.outcome * Engine.ranked list))
  list

type rank_entries = ((string * string * int) * Engine.ranked list) list
type word_entries = ((string * string * string) * Word2api.candidate list) list

(* ------------------------------------------------------------------ *)
(* spill                                                              *)
(* ------------------------------------------------------------------ *)

type spill_report = {
  sp_records : int;
  sp_entries : int;
  sp_bytes : int;
  sp_seconds : float;
}

let cache_record ~generation ~pack_digest ~name ~engine payload =
  {
    Store.hdr =
      {
        Store.kind = kind_cache;
        name;
        generation;
        pack_digest;
        engine;
        schema = schema_version;
      };
    payload;
  }

(* [automata] rows are (domain name, content key, automaton): the
   content key — not the aggregate pack digest — keys each automaton
   record, so one changed pack invalidates only its own automaton. *)
let spill store ~generation ~pack_digest caches
    ~(automata : (string * string * Autom.t) list) =
  let t0 = Unix.gettimeofday () in
  let q_entries : q_entries =
    List.rev
      (Cache.fold
         (fun acc (_, d, e, qy, k) v -> (((d, e, qy, k), v) :: acc))
         [] caches.q)
  in
  let rank_entries : rank_entries =
    List.rev
      (Cache.fold (fun acc (_, d, qy, k) v -> ((d, qy, k), v) :: acc) [] caches.rank)
  in
  let word_entries : word_entries =
    List.rev
      (Cache.fold (fun acc (_, d, l, p) v -> ((d, l, p), v) :: acc) [] caches.word)
  in
  let entries =
    List.length q_entries + List.length rank_entries + List.length word_entries
  in
  (* empty caches spill nothing: a record would only displace the last
     non-empty snapshot at compaction time *)
  let cache_records =
    List.filter_map
      (fun (name, engine, nonempty, payload) ->
        if nonempty then
          Some (cache_record ~generation ~pack_digest ~name ~engine payload)
        else None)
      [
        (q_cache_name, "*", q_entries <> [], Marshal.to_string q_entries []);
        ( rank_cache_name,
          "dggt",
          rank_entries <> [],
          Marshal.to_string rank_entries [] );
        ( word_cache_name,
          "*",
          word_entries <> [],
          Marshal.to_string word_entries [] );
      ]
  in
  let autom_records =
    List.map
      (fun (dname, ckey, autom) ->
        {
          Store.hdr =
            {
              Store.kind = kind_autom;
              name = dname;
              generation;
              pack_digest = ckey;
              engine = "*";
              schema = schema_version;
            };
          payload = Marshal.to_string (Autom.to_image autom) [];
        })
      automata
  in
  let records = cache_records @ autom_records in
  match Store.append store records with
  | Error msg -> Error msg
  | Ok bytes ->
      Ok
        {
          sp_records = List.length records;
          sp_entries = entries;
          sp_bytes = bytes;
          sp_seconds = Unix.gettimeofday () -. t0;
        }

(* ------------------------------------------------------------------ *)
(* load                                                               *)
(* ------------------------------------------------------------------ *)

type load_report = {
  ld_cache_entries : int;  (** cache entries replayed into the LRUs *)
  ld_automata : int;  (** automatons restored and seeded (no compile) *)
  ld_applied : int;  (** records whose payload was applied *)
  ld_skipped : int;
      (** schema mismatches, superseded duplicates, key mismatches *)
  ld_rejected : int;
      (** digest/frame damage plus unmarshal/restore refusals *)
  ld_seconds : float;
}

let load store ~generation ~pack_digest ~registry caches =
  let t0 = Unix.gettimeofday () in
  let l = Store.load store in
  (* newest record per (kind, name, engine) wins — periodic spills
     append whole snapshots, so earlier duplicates are superseded *)
  let newest = Hashtbl.create 16 in
  List.iter
    (fun (r : Store.record) ->
      Hashtbl.replace newest (r.Store.hdr.Store.kind, r.Store.hdr.Store.name, r.Store.hdr.Store.engine) r)
    l.Store.records;
  let superseded = List.length l.Store.records - Hashtbl.length newest in
  let applied = ref 0 in
  let skipped = ref (l.Store.skipped + superseded) in
  let rejected = ref l.Store.rejected in
  let cache_entries = ref 0 in
  let automata = ref 0 in
  let entries = Registry.entries registry in
  let apply_cache (r : Store.record) =
    if r.Store.hdr.Store.pack_digest <> pack_digest then incr skipped
    else
      let name = r.Store.hdr.Store.name in
      match
        (* digest-guarded bytes we wrote ourselves, under a matching
           schema — the only place [Marshal.from_string] runs on a
           payload. Any surprise is a rejection, never a crash. *)
        if name = q_cache_name then begin
          let es : q_entries = Marshal.from_string r.Store.payload 0 in
          List.iter
            (fun ((d, e, qy, k), v) ->
              Cache.add caches.q (generation, d, e, qy, k) v)
            es;
          Some (List.length es)
        end
        else if name = rank_cache_name then begin
          let es : rank_entries = Marshal.from_string r.Store.payload 0 in
          List.iter
            (fun ((d, qy, k), v) -> Cache.add caches.rank (generation, d, qy, k) v)
            es;
          Some (List.length es)
        end
        else if name = word_cache_name then begin
          let es : word_entries = Marshal.from_string r.Store.payload 0 in
          List.iter
            (fun ((d, lm, p), v) -> Cache.add caches.word (generation, d, lm, p) v)
            es;
          Some (List.length es)
        end
        else None
      with
      | Some n ->
          incr applied;
          cache_entries := !cache_entries + n
      | None -> incr skipped
      | exception _ -> incr rejected
  in
  let apply_autom (r : Store.record) =
    match
      List.find_opt
        (fun (e : Registry.entry) ->
          e.Registry.domain.Dggt_domains.Domain.name = r.Store.hdr.Store.name
          && Registry.content_key e = r.Store.hdr.Store.pack_digest)
        entries
    with
    | None -> incr skipped (* domain gone or its pack content changed *)
    | Some e -> (
        match
          let image : Autom.image = Marshal.from_string r.Store.payload 0 in
          Autom.of_image
            (Lazy.force e.Registry.domain.Dggt_domains.Domain.graph)
            image
        with
        | Ok a ->
            if Registry.seed_automaton registry e a then begin
              incr automata;
              incr applied
            end
            else incr skipped (* an automaton is already cached *)
        | Error _ -> incr rejected
        | exception _ -> incr rejected)
  in
  Hashtbl.iter
    (fun (kind, _, _) r ->
      if kind = kind_cache then apply_cache r
      else if kind = kind_autom then apply_autom r
      else incr skipped)
    newest;
  {
    ld_cache_entries = !cache_entries;
    ld_automata = !automata;
    ld_applied = !applied;
    ld_skipped = !skipped;
    ld_rejected = !rejected;
    ld_seconds = Unix.gettimeofday () -. t0;
  }
