(** TTL + LRU session store for the server's incremental sessions.

    Sessions are server-side state with a client-visible lifecycle, so the
    store distinguishes {e how} an id stopped resolving:

    - [`Found p] — live; the access refreshes the TTL and the LRU position;
    - [`Expired] — the entry existed but its idle time exceeded the TTL;
      it is removed on this access and the caller answers 410 Gone;
    - [`Missing] — never existed, already expired away on a previous
      access, deleted, or LRU-evicted: 404.

    Expiry is lazy (checked on access, oldest-first on insert) — there is
    no sweeper thread; an idle expired session costs one table slot until
    it is touched or pushed out. The clock is injected so tests can expire
    sessions deterministically.

    All operations are mutex-guarded; payloads that need per-session
    serialization (an incremental session mid-query) carry their own lock. *)

type 'a t

type counters = {
  created : int;
  expired : int;  (** removed because idle past the TTL *)
  evicted : int;  (** removed live to make room (LRU) *)
  size : int;
  capacity : int;
}

val create : ?clock:(unit -> float) -> ttl_s:float -> cap:int -> unit -> 'a t
(** [clock] defaults to [Unix.gettimeofday]. [cap] ≤ 0 means every [add]
    immediately evicts — effectively a disabled store. *)

val add : ?id:string -> 'a t -> 'a -> string
(** Insert a session, returning its id — freshly minted, or [id] verbatim
    when the caller supplies one (the shard router mints ids that encode
    worker placement; a supplied id replaces any existing entry under it).
    Inserting over capacity first drops expired entries, then the
    least-recently-used live one. *)

val find : 'a t -> string -> [ `Found of 'a | `Expired | `Missing ]
val remove : 'a t -> string -> bool
(** [true] when the id was present (live or expired). *)

val counters : 'a t -> counters
val clear : 'a t -> unit
