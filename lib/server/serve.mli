(** The serving layer: engine + domains behind an HTTP API.

    Wires together {!Httpd} (connection handling), {!Deadline_pool}
    (bounded queue, worker domains), {!Cache} (whole-query and per-stage
    LRUs) and {!Smetrics} (observability). Every JSON response carries
    [{"v": 1}], the API version; it is bumped on incompatible shape
    changes. Endpoints:

    - [GET/POST /synthesize] — parameters
      [{"query": s, "domain": s?, "engine": "dggt"|"hisyn"?, "timeout": f?,
        "k": n?}] (a [GET] carries them in the URL query string, a [POST]
      in the JSON body); responds with the codelet, timing, per-stage
      statistics and (for [k > 1]) up to [k] ranked alternatives. Repeat
      queries are served from the whole-query cache without touching the
      pool.
    - [GET/POST /rank] — same parameter carriage,
      [{"query": s, "domain": s?, "timeout": f?, "k": n?}]; ranked
      candidate codelets (paper §VII-B.4). With [?stream=1] in the URL
      the response switches to streamed delivery: a chunked
      [text/event-stream] of [event: candidate] frames — one per
      improvement of the live n-best during the chart walk, with a
      monotone [revision] counter — terminated by exactly one
      [event: done] frame whose payload is byte-for-byte the
      non-streaming [/rank] body, or one [event: error] frame carrying
      the real status ([504] on deadline expiry mid-stream) since the
      HTTP status already went out as [200]. Streamed requests run on
      the connection thread (not the worker pool); interim frames are
      best-effort previews, only the [done] payload is authoritative.
      Streams never {e write} the response caches, but they do read
      them: when a prior non-streaming [/rank] cached the same
      (generation, domain, query, k), the stream replays the cached
      outcome — one [event: candidate] frame (rank 1, revision 1) then
      [event: done] byte-for-byte the cached body — counted by
      [dggt_stream_cache_replays_total]. [GET /version] advertises
      ["streaming"] under [capabilities].
    - [GET /domains] — the available domains with aliases, API/query
      counts and origin ([builtin], or [pack] with its directory and
      digest).
    - [GET /version] — the binary's build ([git describe] at startup, or
      ["unknown"]), the registry generation, the aggregate pack digest and
      an [automata] array (per domain: the compiled automaton's digest and
      compile wall time); clients poll it to observe hot reloads.
    - [POST /reload] — re-scan [params.packs_dir] and atomically swap the
      pack-backed domains ({!Dggt_pack.Domain_registry.load_dir}), then
      drop every cache. The response reports [automata_compiled] versus
      [automata_reused]: grammar automata are cached by pack digest
      ({!Dggt_pack.Domain_registry.automaton}), so a hot reload compiles
      exactly once per pack whose bytes changed and reuses the rest
      pointer-equal. All-or-nothing: a broken pack leaves the registry,
      the domain states and the caches untouched ([500] with the
      file:line diagnostic). In-flight requests finish against the domain
      snapshot they already resolved — the swap only changes what later
      requests see — and their late cache writes are keyed under the old
      registry generation, so they can never be served against a reloaded
      domain of the same name. [400] when the server was started without
      [--packs].
    - [POST /session] — body [{"domain": s?, "engine": "dggt"|"hisyn"?,
      "id": s?}]; opens an incremental synthesis session
      ({!Dggt_inc.Session}) against the domain's current generation and
      answers [201] with its id — freshly minted, or ["id"] verbatim when
      the caller supplies one (the shard router mints ids that encode
      worker placement).
      Sessions live in a TTL + LRU store ({!Sessions}, sized by
      [params.session_ttl_s] / [params.session_cap]).
    - [POST /session/<id>/query] — [{"query": s, "timeout": f?}]; one
      revision of the session's query. With [?stream=1] the response is
      the same SSE stream as [/rank?stream=1] (served through the
      session's memo tables, holding the session's lock for the duration
      of the stream; the [done] frame gains a [session] field) — it does
      not advance the session's revision history. The response is the [/synthesize]
      shape plus [session] and a [reuse] object (revision number, splice
      flag, token/edge diff, reused-vs-computed counts per stage and the
      overall [reuse_ratio]). Revisions of one session are serialized;
      revisions run on the worker pool with the same backpressure and
      deadline handling as [/synthesize]. [410 Gone] when the session
      expired (idle past the TTL) {e or} was stranded by a [POST /reload]
      (its domain generation no longer exists — re-create the session);
      [404] for ids that were LRU-evicted, deleted or never existed.
    - [DELETE /session/<id>] — drop the session; [404] if unknown.
    - [GET /metrics] — Prometheus text format ({!Smetrics.render}),
      including per-pipeline-stage latency histograms with p50/p90/p99,
      session-store gauges and incremental reuse counters
      ([dggt_inc_reuse_ratio], [dggt_inc_splices_total]).
    - [GET /healthz] — liveness plus worker/queue numbers.
    - [GET /debug/trace] — the stage-level traces of the most recent
      requests that reached the engine (a {!Dggt_obs.Ring} of
      [params.trace_buffer] entries, newest first), as JSON: one record per
      request with its span events and decision notes. Cache hits don't
      re-run the pipeline, so they don't add traces.

    Backpressure: when the bounded queue is full, [POST] requests get [503]
    with [Retry-After] instead of queueing unboundedly; a job whose
    deadline (arrival + timeout) passes while queued is dropped with [504]
    before it ever reaches the engine.

    Caching policy: timed-out outcomes and empty rank lists are {e not}
    cached, so a repeat under a larger budget gets a fresh run. The
    WordToAPI candidate cache is installed as the [caches] field of each
    domain's {!Dggt_core.Engine.target} and shared across all requests of
    that domain; every cache key includes the registry generation, so a
    reload invalidates it wholesale. EdgeToPath path sets are no longer
    LRU-cached per pair: each domain's compiled automaton
    ({!Dggt_autom.Autom}) memoizes its table-walk searches internally,
    exposed as the [autom_memo] cache in [GET /metrics]. *)

type params = {
  addr : string;
  port : int;                (** 0 = ephemeral, read back with {!port} *)
  unix_socket : string option;
      (** listen on a Unix-domain socket at this path instead of TCP
          ([addr]/[port] are then ignored) — how sharded workers sit
          behind the {!Dggt_shard} router; [None] (the default) keeps the
          TCP listener *)
  workers : int;             (** <= 0 = one per recommended domain count *)
  queue_capacity : int;
  cache_size : int;          (** whole-query LRU entries; per-stage caches
                                 get 4x this; <= 0 disables caching *)
  default_timeout_s : float; (** per-request engine budget when the request
                                 doesn't carry one *)
  trace_buffer : int;        (** retained traces for [GET /debug/trace];
                                 <= 0 disables trace retention (stage
                                 metrics still accumulate) *)
  packs_dir : string option; (** domain-pack directory served alongside the
                                 built-ins and re-scanned by
                                 [POST /reload]; [None] = built-ins only *)
  session_ttl_s : float;     (** idle lifetime of an incremental session;
                                 accesses slide the window *)
  session_cap : int;         (** max live sessions (LRU beyond); <= 0
                                 disables the session endpoints' storage *)
  store_dir : string option;
      (** warm-start store directory ({!Dggt_store.Store} +
          {!Warmstore}): loaded at boot — cache entries re-keyed under
          the new generation gated on pack digest, automaton images
          restored and seeded into the registry so boot compiles zero
          automatons for unchanged content — spilled to every
          [store_interval_s] and on graceful shutdown, and purged of
          stale-digest records by [POST /reload]. [None] = no
          persistence. Any corruption refuses-and-rebuilds: the server
          recomputes, it never serves a record that failed a check. *)
  store_interval_s : float;
      (** periodic spill interval; [<= 0] spills only on shutdown *)
}

val default_params : params
(** 127.0.0.1:8080, auto workers, queue 64, cache 512, timeout 10 s, trace
    buffer 32, no packs, sessions 64 × 300 s, no store (60 s spill
    interval once one is given). *)

val api_version : int
(** The [v] field of every JSON response; currently [1]. *)

type t

val create : params -> t
(** Forces every domain's grammar/document and compiles its automaton (so
    worker domains never race a [Lazy.force] and the first request never
    pays a compile), loads [packs_dir] if given (raising [Failure] with
    the file:line diagnostic when a pack is broken — at startup, unlike
    [POST /reload], a bad pack is fatal), spawns the pool and starts
    listening. *)

val port : t -> int
val metrics : t -> Smetrics.t

val registry : t -> Dggt_pack.Domain_registry.t
(** The live domain registry (built-ins plus loaded packs). *)

val stop : t -> unit
(** Orderly shutdown: stop accepting, let in-flight connections finish,
    drain the queue, join the workers. Blocks; idempotent. *)

val wait : t -> unit
(** Block until the server has been stopped (by {!stop} or a signal wired
    via {!Httpd.handle_signals}), then drain and join the pool. *)

val run : params -> unit
(** CLI entry point: {!create}, install SIGINT/SIGTERM handlers, print the
    listening address, serve until a signal arrives, shut down cleanly. *)

val find_domain : string -> Dggt_domains.Domain.t option
(** "textediting"/"te" and "astmatcher"/"am" — the compiled-in domains
    only; pack-aware resolution goes through
    {!Dggt_pack.Domain_registry.find}. *)

val known_domains : Dggt_domains.Domain.t list
