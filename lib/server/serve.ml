open Dggt_core
module J = Jsonio
module Trace = Dggt_obs.Trace
module Ring = Dggt_obs.Ring
module Registry = Dggt_pack.Domain_registry

(* JSON API version; bump on incompatible response-shape changes. The
   payload shapes themselves live in {!Wire}, shared between the fixed
   v1 bodies and the SSE frames. *)
let api_version = Wire.api_version

type params = {
  addr : string;
  port : int;
  unix_socket : string option;
      (* listen on a Unix-domain socket at this path instead of TCP —
         how sharded workers sit behind the front router *)
  workers : int;
  queue_capacity : int;
  cache_size : int;
  default_timeout_s : float;
  trace_buffer : int;
  packs_dir : string option;
  session_ttl_s : float;
  session_cap : int;
  store_dir : string option;
  store_interval_s : float;
}

let default_params =
  {
    addr = "127.0.0.1";
    port = 8080;
    unix_socket = None;
    workers = 0;
    queue_capacity = 64;
    cache_size = 512;
    default_timeout_s = 10.0;
    trace_buffer = 32;
    packs_dir = None;
    session_ttl_s = 300.0;
    session_cap = 64;
    store_dir = None;
    store_interval_s = 60.0;
  }

let known_domains =
  [ Dggt_domains.Text_editing.domain; Dggt_domains.Astmatcher.domain ]

let find_domain = function
  | "textediting" | "te" -> Some Dggt_domains.Text_editing.domain
  | "astmatcher" | "am" -> Some Dggt_domains.Astmatcher.domain
  | _ -> None

(* per-domain state, everything forced/configured up front so worker
   domains share read-only structures; the target carries the per-stage
   caches, the configs stay cache-free. [gen] is the registry generation
   the state was built under — it keys every cache entry, so a late write
   from a request that outlived a reload can never be read back against
   the reloaded domain of the same name *)
type dstate = {
  dom : Dggt_domains.Domain.t;
  aliases : string list;
  origin : Registry.origin;
  gen : int;
  ckey : string;
      (* the entry's content key (Registry.content_key): what the warm
         store keys this domain's automaton record by *)
  autom : Dggt_autom.Autom.t;
      (* the grammar compiled into EdgeToPath state tables; held by the
         registry's digest-keyed cache, so reloads reuse it whenever the
         pack bytes are unchanged *)
  target : Engine.target;
  cfg_dggt : Engine.config;
  cfg_hisyn : Engine.config;
}

(* one incremental session, as held in the TTL+LRU store. The embedded
   Dggt_inc session is not reentrant, so [smu] serializes queries; [sgen]
   pins the registry generation the session's target was built under — a
   reload strands the session (410), it never sees the swapped domain *)
type srecord = {
  smu : Mutex.t;
  sdomain : string;
  sengine_name : string;
  sgen : int;
  inc : Dggt_inc.Session.t;
}

(* one completed request's trace, as kept in the debug ring *)
type trecord = {
  tdomain : string;
  tengine : string;
  tquery : string;
  ttime_s : float;
  tok : bool;
  ttrace : Trace.t;
}

type t = {
  params : params;
  pool : Deadline_pool.t;
  metrics : Smetrics.t;
  registry : Registry.t;
  build : string; (* git describe at startup, or "unknown" *)
  (* whole-query outcome, plus the ranked alternatives computed with it *)
  q_cache :
    ( int * string * string * string * int,
      Engine.outcome * Engine.ranked list )
    Cache.t;
  rank_cache : (int * string * string * int, Engine.ranked list) Cache.t;
  word_cache : (int * string * string * string, Word2api.candidate list) Cache.t;
  sessions : srecord Sessions.t;
  traces : trecord Ring.t;
  dmu : Mutex.t; (* guards [dstates]; snapshot, never hold across work *)
  mutable dstates : dstate list;
  mutable http : Httpd.t option;
  (* warm-start store (--store): spilled to periodically and on graceful
     shutdown, loaded before the domain states are built at boot *)
  store : Dggt_store.Store.t option;
  spill_mu : Mutex.t; (* serializes spill/compact against each other *)
  closing : bool Atomic.t; (* tells the spill thread to exit *)
  finalized : bool Atomic.t; (* the shutdown spill runs exactly once *)
  mutable spill_thread : Thread.t option;
}

let dstates t =
  Mutex.lock t.dmu;
  let ds = t.dstates in
  Mutex.unlock t.dmu;
  ds

let find_dstate t name =
  let n = Dggt_util.Strutil.lowercase name in
  List.find_opt
    (fun ds ->
      Dggt_util.Strutil.lowercase ds.dom.Dggt_domains.Domain.name = n
      || List.exists (fun a -> Dggt_util.Strutil.lowercase a = n) ds.aliases)
    (dstates t)

(* ------------------------------------------------------------------ *)
(* one-shot result cells (connection thread waits, worker fills)      *)
(* ------------------------------------------------------------------ *)

type 'a ivar = {
  imu : Mutex.t;
  icond : Condition.t;
  mutable cell : 'a option;
}

let ivar () = { imu = Mutex.create (); icond = Condition.create (); cell = None }

let ivar_fill iv v =
  Mutex.lock iv.imu;
  if iv.cell = None then begin
    iv.cell <- Some v;
    Condition.broadcast iv.icond
  end;
  Mutex.unlock iv.imu

let ivar_read iv =
  Mutex.lock iv.imu;
  while iv.cell = None do
    Condition.wait iv.icond iv.imu
  done;
  let v = Option.get iv.cell in
  Mutex.unlock iv.imu;
  v

(* ------------------------------------------------------------------ *)
(* json renderings (the shapes live in Wire, shared with SSE frames)  *)
(* ------------------------------------------------------------------ *)

let outcome_json = Wire.outcome_json
let error_json = Wire.error_json

let trecord_json r =
  J.Obj
    [
      ("domain", J.Str r.tdomain);
      ("engine", J.Str r.tengine);
      ("query", J.Str r.tquery);
      ("time_s", J.Num r.ttime_s);
      ("ok", J.Bool r.tok);
      ("events", J.list Wire.event_json r.ttrace.Trace.events);
    ]

let respond_json ?headers status v = Httpd.response ?headers status (J.to_string v)

(* ------------------------------------------------------------------ *)
(* request parsing                                                    *)
(* ------------------------------------------------------------------ *)

type parsed = {
  query : string;
  ds : dstate;
  engine : Engine.algorithm;
  engine_name : string;
  timeout_s : float;
  k : int;
  stream : bool;
}

(* [?stream=1] switches delivery to SSE. The flag always travels in the
   URL query string, so it composes with both request styles (GET
   parameters and POST bodies). *)
let stream_requested (req : Httpd.request) =
  match List.assoc_opt "stream" req.Httpd.query with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* GET carries its parameters in the URL query string, POST in a JSON
   body; both produce the same [parsed] record *)
let parse_request t (req : Httpd.request) =
  let from_url = req.Httpd.meth = "GET" in
  match if from_url then Ok (J.Obj []) else J.of_string req.Httpd.body with
  | Error e -> Error e
  | Ok body -> (
      let str name =
        if from_url then List.assoc_opt name req.Httpd.query
        else J.str_field name body
      in
      let num name =
        if from_url then
          Option.bind (List.assoc_opt name req.Httpd.query) float_of_string_opt
        else J.num_field name body
      in
      let int name =
        if from_url then
          Option.bind (List.assoc_opt name req.Httpd.query) int_of_string_opt
        else J.int_field name body
      in
      match str "query" with
      | None | Some "" -> Error "missing required string field \"query\""
      | Some query -> (
          let dname = Option.value (str "domain") ~default:"textediting" in
          match find_dstate t dname with
          | None ->
              Error
                (Printf.sprintf "unknown domain %S (see GET /domains)" dname)
          | Some ds -> (
              match Option.value (str "engine") ~default:"dggt" with
              | ("dggt" | "hisyn") as engine_name ->
                  let engine =
                    if engine_name = "dggt" then Engine.Dggt_alg
                    else Engine.Hisyn_alg
                  in
                  let timeout_s =
                    match num "timeout" with
                    | Some v when v > 0.0 -> Float.min v 60.0
                    | _ -> t.params.default_timeout_s
                  in
                  let k =
                    match int "k" with
                    | Some v -> max 1 (min v 20)
                    | None -> 1
                  in
                  Ok
                    {
                      query;
                      ds;
                      engine;
                      engine_name;
                      timeout_s;
                      k;
                      stream = stream_requested req;
                    }
              | e -> Error (Printf.sprintf "unknown engine %S (dggt|hisyn)" e))))

(* ------------------------------------------------------------------ *)
(* endpoint handlers                                                  *)
(* ------------------------------------------------------------------ *)

let observe t ~domain ~outcome t0 =
  Smetrics.observe t.metrics ~domain ~outcome (Unix.gettimeofday () -. t0)

(* a worker finished a traced synthesis: feed the per-stage latency
   histograms and remember the trace for [GET /debug/trace] *)
let record_trace t ~domain ~engine ~query ~time_s ~ok sink =
  let trace = Trace.result sink in
  List.iter
    (fun (stage, d) -> Smetrics.observe_stage t.metrics ~stage d)
    (Trace.durations trace);
  Ring.add t.traces
    {
      tdomain = domain;
      tengine = engine;
      tquery = query;
      ttime_s = time_s;
      tok = ok;
      ttrace = trace;
    }

(* run [work] on the pool with backpressure + deadline; the connection
   thread blocks here until a worker delivers the response *)
let via_pool t ~domain ~deadline ~t0 work =
  let iv = ivar () in
  let run () =
    Smetrics.incr_inflight t.metrics;
    let r = try work () with e -> `Error (Printexc.to_string e) in
    Smetrics.decr_inflight t.metrics;
    ivar_fill iv r
  in
  let expired () = ivar_fill iv `Expired in
  match Deadline_pool.submit t.pool ~deadline ~run ~expired () with
  | `Rejected ->
      observe t ~domain ~outcome:"rejected" t0;
      respond_json ~headers:[ ("retry-after", "1") ] 503
        (J.Obj
           [
             ("error", J.Str "queue full");
             ( "queue_capacity",
               J.Num (float_of_int (Deadline_pool.capacity t.pool)) );
           ])
  | `Accepted -> (
      match ivar_read iv with
      | `Expired ->
          observe t ~domain ~outcome:"expired" t0;
          Httpd.response 504
            (error_json "request deadline expired while queued")
      | `Error msg ->
          observe t ~domain ~outcome:"failed" t0;
          Httpd.response 500 (error_json msg)
      | `Ok resp -> resp)

(* ------------------------------------------------------------------ *)
(* streaming (SSE) delivery                                           *)
(* ------------------------------------------------------------------ *)

(* A streamed request runs on the connection thread inside the chunked
   producer — not on the worker pool: candidate frames must reach the
   socket while the chart walk is still running, and a pool worker has
   nowhere to write mid-run. Streams therefore sidestep the pool's
   backpressure (they are bounded by the connection count instead) and
   the response caches (interim frames are the point; a cache could only
   replay the terminal payload). The terminal [event: done] frame is
   rendered by the same {!Wire} function as the fixed response body, so
   the final candidate list is byte-for-byte what the non-streaming
   endpoint returns.

   Frame protocol: zero or more [event: candidate] frames (strictly
   increasing [revision]), then exactly one terminal frame — [event:
   done] on success, [event: error] with the real status in the body
   when the deadline expires or the run fails (the HTTP status already
   went out as 200 when the stream opened). A client disconnect surfaces
   as [EPIPE] on the next frame write, which aborts the chart walk
   mid-run; the metrics and trace for the partial stream still land. *)
let stream_ranked t ~domain ~engine_label ~query ~t0
    ~(done_frame : Engine.outcome -> J.t)
    ~(run :
       sink:Trace.sink ->
       on_candidate:(Engine.candidate -> unit) ->
       Engine.outcome) =
  Httpd.stream_response 200 (fun chunk ->
      let sink = Trace.create () in
      let ttfc = ref None in
      let count = ref 0 in
      let on_candidate (c : Engine.candidate) =
        if !ttfc = None then ttfc := Some (Unix.gettimeofday () -. t0);
        incr count;
        chunk (Wire.sse_frame ~event:"candidate" (Wire.candidate_json c))
      in
      Smetrics.incr_inflight t.metrics;
      let settle () =
        Smetrics.decr_inflight t.metrics;
        Smetrics.observe_stream t.metrics ~candidates:!count ~ttfc_s:!ttfc
      in
      match Fun.protect ~finally:settle (fun () -> run ~sink ~on_candidate) with
      | o ->
          Trace.span (Some sink) "Stream" (fun sp ->
              Trace.int sp "candidates" !count;
              match !ttfc with
              | Some s -> Trace.float sp "ttfc_s" s
              | None -> ());
          record_trace t ~domain ~engine:engine_label ~query
            ~time_s:o.Engine.time_s
            ~ok:(o.Engine.code <> None)
            sink;
          if o.Engine.timed_out then begin
            observe t ~domain ~outcome:"timeout" t0;
            chunk
              (Wire.sse_frame ~event:"error"
                 (Wire.stream_error_json ~status:504
                    "request deadline expired mid-stream"))
          end
          else begin
            observe t ~domain
              ~outcome:(if o.Engine.ranked = [] then "failed" else "ok")
              t0;
            chunk (Wire.sse_frame ~event:"done" (done_frame o))
          end
      | exception e ->
          observe t ~domain ~outcome:"failed" t0;
          (* the peer may already be gone (EPIPE raised by a frame write
             landed here) — the terminal frame is best-effort *)
          (try
             chunk
               (Wire.sse_frame ~event:"error"
                  (Wire.stream_error_json ~status:500 (Printexc.to_string e)))
           with _ -> ()))

(* a whole-query cache hit under [?stream=1]: there is no chart walk to
   stream, so the outcome is replayed — the cached winner as one
   [event: candidate] frame (rank 1, revision 1), then the terminal
   [event: done] whose payload is byte-for-byte the cached non-streaming
   body ([cached] included). Streams still never {e write} the rank
   cache; only prior non-streaming requests arm the replay. *)
let stream_replay t ~domain ~query ~k (cs : Engine.ranked list) =
  Httpd.stream_response 200 (fun chunk ->
      Smetrics.observe_stream_replay t.metrics;
      Smetrics.observe_stream t.metrics
        ~candidates:(if cs = [] then 0 else 1)
        ~ttfc_s:None;
      (match cs with
      | top :: _ ->
          chunk
            (Wire.sse_frame ~event:"candidate"
               (Wire.candidate_json
                  {
                    Engine.rank = 1;
                    revision = 1;
                    code = top.Engine.code;
                    size = top.Engine.size;
                    coverage = top.Engine.coverage;
                    score = top.Engine.score;
                  }))
      | [] -> ());
      chunk
        (Wire.sse_frame ~event:"done"
           (Wire.rank_json ~domain ~query ~k ~cached:true cs)))

let synthesize_handler t (req : Httpd.request) =
  let t0 = Unix.gettimeofday () in
  match parse_request t req with
  | Error msg ->
      observe t ~domain:"-" ~outcome:"bad_request" t0;
      Httpd.response 400 (error_json msg)
  | Ok p when p.stream ->
      (* streaming is ranked delivery; /synthesize keeps its fixed shape *)
      observe t ~domain:p.ds.dom.Dggt_domains.Domain.name
        ~outcome:"bad_request" t0;
      Httpd.response 400
        (error_json
           "streaming delivery is available on /rank and /session/<id>/query")
  | Ok p -> (
      let domain = p.ds.dom.Dggt_domains.Domain.name in
      let key = (p.ds.gen, domain, p.engine_name, p.query, p.k) in
      let render ~cached (o, alternatives) =
        respond_json 200
          (outcome_json ~domain ~engine:p.engine_name ~query:p.query ~cached
             ~alternatives o)
      in
      match Cache.find t.q_cache key with
      | Some v ->
          observe t ~domain ~outcome:"cached" t0;
          render ~cached:true v
      | None ->
          let deadline = t0 +. p.timeout_s in
          via_pool t ~domain ~deadline ~t0 (fun () ->
              let base =
                if p.engine = Engine.Dggt_alg then p.ds.cfg_dggt
                else p.ds.cfg_hisyn
              in
              let sink = Trace.create () in
              let cfg =
                {
                  base with
                  Engine.timeout_s = Some p.timeout_s;
                  trace = Some sink;
                }
              in
              let o = Engine.synthesize cfg p.ds.target p.query in
              record_trace t ~domain ~engine:p.engine_name ~query:p.query
                ~time_s:o.Engine.time_s
                ~ok:(o.Engine.code <> None)
                sink;
              let alternatives =
                if p.k > 1 && not o.Engine.timed_out then
                  Engine.synthesize_ranked ~k:p.k p.ds.cfg_dggt p.ds.target
                    p.query
                else []
              in
              let outcome =
                if o.Engine.timed_out then "timeout"
                else if o.Engine.code = None then "failed"
                else "ok"
              in
              (* never cache timeouts: a repeat under a larger budget
                 deserves a fresh run *)
              if not o.Engine.timed_out then
                Cache.add t.q_cache key (o, alternatives);
              observe t ~domain ~outcome t0;
              `Ok (render ~cached:false (o, alternatives))))

let rank_handler t (req : Httpd.request) =
  let t0 = Unix.gettimeofday () in
  match parse_request t req with
  | Error msg ->
      observe t ~domain:"-" ~outcome:"bad_request" t0;
      Httpd.response 400 (error_json msg)
  | Ok p when p.stream -> (
      let domain = p.ds.dom.Dggt_domains.Domain.name in
      let k = if p.k = 1 then 5 else p.k in
      match Cache.find t.rank_cache (p.ds.gen, domain, p.query, k) with
      | Some cs ->
          observe t ~domain ~outcome:"cached" t0;
          stream_replay t ~domain ~query:p.query ~k cs
      | None ->
      stream_ranked t ~domain ~engine_label:"dggt" ~query:p.query ~t0
        ~done_frame:(fun o ->
          Wire.rank_json ~domain ~query:p.query ~k ~cached:false
            o.Engine.ranked)
        ~run:(fun ~sink ~on_candidate ->
          let cfg =
            {
              p.ds.cfg_dggt with
              Engine.timeout_s = Some p.timeout_s;
              trace = Some sink;
            }
          in
          Engine.respond ~on_candidate
            { Engine.cfg; target = p.ds.target }
            { Engine.input = Engine.Text p.query; mode = Engine.Ranked k }))
  | Ok p -> (
      let domain = p.ds.dom.Dggt_domains.Domain.name in
      let k = if p.k = 1 then 5 else p.k in
      let key = (p.ds.gen, domain, p.query, k) in
      let render ~cached (candidates : Engine.ranked list) =
        respond_json 200
          (Wire.rank_json ~domain ~query:p.query ~k ~cached candidates)
      in
      match Cache.find t.rank_cache key with
      | Some cs ->
          observe t ~domain ~outcome:"cached" t0;
          render ~cached:true cs
      | None ->
          let deadline = t0 +. p.timeout_s in
          via_pool t ~domain ~deadline ~t0 (fun () ->
              let sink = Trace.create () in
              let cfg =
                {
                  p.ds.cfg_dggt with
                  Engine.timeout_s = Some p.timeout_s;
                  trace = Some sink;
                }
              in
              let cs = Engine.synthesize_ranked ~k cfg p.ds.target p.query in
              record_trace t ~domain ~engine:"dggt" ~query:p.query
                ~time_s:(Unix.gettimeofday () -. t0)
                ~ok:(cs <> []) sink;
              (* [] can mean budget exhausted — don't pin it in the cache *)
              if cs <> [] then Cache.add t.rank_cache key cs;
              observe t ~domain ~outcome:(if cs = [] then "failed" else "ok") t0;
              `Ok (render ~cached:false cs)))

(* ------------------------------------------------------------------ *)
(* incremental sessions                                               *)
(* ------------------------------------------------------------------ *)

let reuse_json = Wire.reuse_json

let session_create_handler t (req : Httpd.request) =
  match J.of_string (if req.Httpd.body = "" then "{}" else req.Httpd.body) with
  | Error e -> Httpd.response 400 (error_json e)
  | Ok body -> (
      let dname =
        Option.value (J.str_field "domain" body) ~default:"textediting"
      in
      match find_dstate t dname with
      | None ->
          Httpd.response 400
            (error_json
               (Printf.sprintf "unknown domain %S (see GET /domains)" dname))
      | Some ds -> (
          match Option.value (J.str_field "engine" body) ~default:"dggt" with
          | ("dggt" | "hisyn") as engine_name ->
              let cfg =
                if engine_name = "dggt" then ds.cfg_dggt else ds.cfg_hisyn
              in
              let cfg =
                { cfg with Engine.timeout_s = Some t.params.default_timeout_s }
              in
              let inc =
                Dggt_inc.Session.create
                  { Engine.cfg; target = ds.target }
              in
              let domain = ds.dom.Dggt_domains.Domain.name in
              (* the shard router mints placement-encoding ids and passes
                 them down; direct clients leave the field out *)
              let requested_id =
                match J.str_field "id" body with Some "" -> None | v -> v
              in
              let id =
                Sessions.add ?id:requested_id t.sessions
                  {
                    smu = Mutex.create ();
                    sdomain = domain;
                    sengine_name = engine_name;
                    sgen = ds.gen;
                    inc;
                  }
              in
              respond_json 201
                (J.Obj
                   [
                     ("v", J.Num (float_of_int api_version));
                     ("session", J.Str id);
                     ("domain", J.Str domain);
                     ("engine", J.Str engine_name);
                     ("ttl_s", J.Num t.params.session_ttl_s);
                   ])
          | e -> Httpd.response 400 (Printf.sprintf "unknown engine %S (dggt|hisyn)" e |> error_json)))

(* a session survives only as long as the domain it was built against: a
   reload bumps the registry generation, so [sgen] no longer matches and
   the session is Gone — the client must open a fresh one. Kept distinct
   from 404 (unknown/evicted id) so typing clients know to re-create. *)
let session_lookup t id =
  match Sessions.find t.sessions id with
  | `Missing -> Error (404, "unknown session (expired ids are evicted)")
  | `Expired -> Error (410, "session expired (idle past the TTL)")
  | `Found sr -> (
      match find_dstate t sr.sdomain with
      | Some ds when ds.gen = sr.sgen -> Ok sr
      | _ ->
          ignore (Sessions.remove t.sessions id);
          Error (410, "session invalidated by domain reload"))

let session_query_handler t (req : Httpd.request) id =
  let t0 = Unix.gettimeofday () in
  match session_lookup t id with
  | Error (status, msg) ->
      observe t ~domain:"-" ~outcome:"session_gone" t0;
      Httpd.response status (error_json msg)
  | Ok sr -> (
      match J.of_string req.Httpd.body with
      | Error e -> Httpd.response 400 (error_json e)
      | Ok body -> (
          match J.str_field "query" body with
          | None | Some "" ->
              observe t ~domain:sr.sdomain ~outcome:"bad_request" t0;
              Httpd.response 400
                (error_json "missing required string field \"query\"")
          | Some query ->
              let timeout_s =
                match J.num_field "timeout" body with
                | Some v when v > 0.0 -> Some (Float.min v 60.0)
                | _ -> None (* keep the session default: splice stays armed *)
              in
              let k =
                match J.int_field "k" body with
                | Some v -> max 1 (min v 20)
                | None -> 1
              in
              if stream_requested req then
                let k = if k = 1 then 5 else k in
                let timeout_v =
                  Option.value timeout_s ~default:t.params.default_timeout_s
                in
                stream_ranked t ~domain:sr.sdomain
                  ~engine_label:sr.sengine_name ~query ~t0
                  ~done_frame:(fun o ->
                    Wire.with_fields
                      (Wire.rank_json ~domain:sr.sdomain ~query ~k
                         ~cached:false o.Engine.ranked)
                      [ ("session", J.Str id) ])
                  ~run:(fun ~sink ~on_candidate ->
                    let tweak cfg =
                      {
                        cfg with
                        Engine.trace = Some sink;
                        timeout_s = Some timeout_v;
                      }
                    in
                    Mutex.lock sr.smu;
                    Fun.protect
                      ~finally:(fun () -> Mutex.unlock sr.smu)
                      (fun () ->
                        Dggt_inc.Session.respond ~on_candidate ~tweak sr.inc
                          {
                            Engine.input = Engine.Text query;
                            mode = Engine.Ranked k;
                          }))
              else
                let deadline =
                  t0
                  +. Option.value timeout_s ~default:t.params.default_timeout_s
                in
                via_pool t ~domain:sr.sdomain ~deadline ~t0 (fun () ->
                  let sink = Trace.create () in
                  let tweak cfg =
                    let cfg = { cfg with Engine.trace = Some sink } in
                    match timeout_s with
                    | Some s -> { cfg with Engine.timeout_s = Some s }
                    | None -> cfg
                  in
                  Mutex.lock sr.smu;
                  let (outcome, reuse), alternatives =
                    match
                      let oq = Dggt_inc.Session.query ~tweak sr.inc query in
                      let rk =
                        (* the n-best rides the session's memo tables; k=1
                           keeps the historical payload (no ranked field) *)
                        if k > 1 && not (fst oq).Engine.timed_out then
                          Dggt_inc.Session.ranked ~k sr.inc query
                        else []
                      in
                      (oq, rk)
                    with
                    | v ->
                        Mutex.unlock sr.smu;
                        v
                    | exception e ->
                        Mutex.unlock sr.smu;
                        raise e
                  in
                  record_trace t ~domain:sr.sdomain ~engine:sr.sengine_name
                    ~query ~time_s:outcome.Engine.time_s
                    ~ok:(outcome.Engine.code <> None)
                    sink;
                  let open Dggt_inc.Reuse in
                  Smetrics.observe_reuse t.metrics
                    ~reused:
                      (reuse.words.reused + reuse.pairs.reused
                     + reuse.dgg_rows.reused)
                    ~computed:
                      (reuse.words.computed + reuse.pairs.computed
                     + reuse.dgg_rows.computed)
                    ~splice:reuse.splice;
                  let outcome_label =
                    if outcome.Engine.timed_out then "timeout"
                    else if outcome.Engine.code = None then "failed"
                    else "ok"
                  in
                  observe t ~domain:sr.sdomain ~outcome:outcome_label t0;
                  `Ok
                    (respond_json 200
                       (Wire.with_fields
                          (outcome_json ~domain:sr.sdomain
                             ~engine:sr.sengine_name ~query ~cached:false
                             ~alternatives outcome)
                          [
                            ("session", J.Str id);
                            ("reuse", reuse_json reuse);
                          ])))))

let session_delete_handler t id =
  if Sessions.remove t.sessions id then
    respond_json 200 (J.Obj [ ("ok", J.Bool true); ("session", J.Str id) ])
  else Httpd.response 404 (error_json "unknown session")

(* "/session/<id>" or "/session/<id>/query" *)
let session_path path =
  match String.split_on_char '/' path with
  | [ ""; "session"; id ] when id <> "" -> Some (id, `Root)
  | [ ""; "session"; id; "query" ] when id <> "" -> Some (id, `Query)
  | _ -> None

let origin_fields = function
  | Registry.Builtin -> [ ("origin", J.Str "builtin") ]
  | Registry.Pack { dir; digest } ->
      [
        ("origin", J.Str "pack");
        ("pack_dir", J.Str dir);
        ("pack_digest", J.Str digest);
      ]

let domains_handler t =
  respond_json 200
    (J.Obj
       [
         ("v", J.Num (float_of_int api_version));
         ( "domains",
           J.Arr
             (List.map
                (fun ds ->
                  let d = ds.dom in
                  J.Obj
                    ([
                       ("name", J.Str d.Dggt_domains.Domain.name);
                       ( "aliases",
                         J.Arr (List.map (fun a -> J.Str a) ds.aliases) );
                       ("description", J.Str d.Dggt_domains.Domain.description);
                       ( "apis",
                         J.Num
                           (float_of_int (Dggt_domains.Domain.api_count d)) );
                       ( "queries",
                         J.Num
                           (float_of_int (Dggt_domains.Domain.query_count d))
                       );
                     ]
                    @ origin_fields ds.origin))
                (dstates t)) );
       ])

let version_handler t =
  respond_json 200
    (J.Obj
       [
         ("v", J.Num (float_of_int api_version));
         ("build", J.Str t.build);
         ("generation", J.Num (float_of_int (Registry.generation t.registry)));
         ("pack_digest", J.Str (Registry.pack_digest t.registry));
         (* delivery modes beyond the fixed v1 bodies; clients probe here
            before sending [?stream=1] *)
         ("capabilities", J.list (fun s -> J.Str s) [ "streaming" ]);
         ( "automata",
           J.list
             (fun ds ->
               J.Obj
                 [
                   ("domain", J.Str ds.dom.Dggt_domains.Domain.name);
                   ("digest", J.Str (Dggt_autom.Autom.digest ds.autom));
                   ( "compile_s",
                     J.Num (Dggt_autom.Autom.compile_time_s ds.autom) );
                 ])
             (dstates t) );
       ])

let healthz_handler t =
  respond_json 200
    (J.Obj
       [
         ("status", J.Str "ok");
         ("workers", J.Num (float_of_int (Deadline_pool.workers t.pool)));
         ("queue_depth", J.Num (float_of_int (Deadline_pool.depth t.pool)));
         ("inflight", J.Num (float_of_int (Smetrics.inflight t.metrics)));
       ])

let debug_trace_handler t =
  respond_json 200
    (J.Obj
       [
         ("capacity", J.Num (float_of_int (Ring.capacity t.traces)));
         ("recorded", J.Num (float_of_int (Ring.total t.traces)));
         ("traces", J.list trecord_json (Ring.snapshot t.traces));
       ])

(* ------------------------------------------------------------------ *)
(* lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

(* [(dstate, compiled_now)]. The automaton comes from the registry's
   digest-keyed cache: only a genuinely new/changed grammar pays a
   compile, which the metrics record (count + stage histogram). The old
   per-pair path cache is gone — the automaton's own memo plays that
   role, and [edge2path = None] keeps the hook chain short. *)
let make_dstate ~metrics ~registry ~word_cache ~gen (e : Registry.entry) =
  let d = e.Registry.domain in
  let name = d.Dggt_domains.Domain.name in
  let sink = Trace.create () in
  let autom, compiled = Registry.automaton ~trace:sink registry e in
  if compiled then begin
    Smetrics.observe_autom_compile metrics ~domain:name
      (Dggt_autom.Autom.compile_time_s autom);
    List.iter
      (fun (stage, dur) -> Smetrics.observe_stage metrics ~stage dur)
      (Trace.durations (Trace.result sink))
  end;
  let lookups =
    {
      Engine.word2api =
        Some
          (fun ~lemma ~pos compute ->
            fst
              (Cache.find_or_compute word_cache
                 (gen, name, lemma, Dggt_nlu.Pos.to_string pos)
                 compute));
      Engine.edge2path = None;
    }
  in
  let s_dggt =
    Dggt_domains.Domain.configure ~caches:lookups ~autom d
      (Engine.default Engine.Dggt_alg)
  in
  let s_hisyn =
    Dggt_domains.Domain.configure ~autom d (Engine.default Engine.Hisyn_alg)
  in
  ( {
      dom = d;
      aliases = e.Registry.aliases;
      origin = e.Registry.origin;
      gen;
      ckey = Registry.content_key e;
      autom;
      target = s_dggt.Engine.target;
      cfg_dggt = s_dggt.Engine.cfg;
      cfg_hisyn = s_hisyn.Engine.cfg;
    },
    compiled )

(* [(dstates, compiled)]: how many automata this build actually compiled
   (the rest were registry cache hits) *)
let build_dstates t =
  let gen = Registry.generation t.registry in
  let pairs =
    List.map
      (make_dstate ~metrics:t.metrics ~registry:t.registry
         ~word_cache:t.word_cache ~gen)
      (Registry.entries t.registry)
  in
  ( List.map fst pairs,
    List.length (List.filter (fun (_, compiled) -> compiled) pairs) )

(* ------------------------------------------------------------------ *)
(* warm-start store (--store)                                         *)
(* ------------------------------------------------------------------ *)

module Store = Dggt_store.Store

let warm_caches t =
  { Warmstore.q = t.q_cache; rank = t.rank_cache; word = t.word_cache }

let with_spill_lock t f =
  Mutex.lock t.spill_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.spill_mu) f

(* append one snapshot batch (caches + every live automaton). Failure is
   a warning, never fatal: the store is an optimization, the server's
   answers never depend on it. *)
let spill_store t =
  match t.store with
  | None -> ()
  | Some store ->
      with_spill_lock t (fun () ->
          let automata =
            List.map
              (fun ds -> (ds.dom.Dggt_domains.Domain.name, ds.ckey, ds.autom))
              (dstates t)
          in
          match
            Warmstore.spill store
              ~generation:(Registry.generation t.registry)
              ~pack_digest:(Registry.pack_digest t.registry)
              (warm_caches t) ~automata
          with
          | Ok r -> Smetrics.observe_store_spill t.metrics r.Warmstore.sp_seconds
          | Error msg ->
              Printf.eprintf "dggt serve: store spill failed: %s\n%!" msg)

let compact_store ?drop t =
  match t.store with
  | None -> ()
  | Some store ->
      with_spill_lock t (fun () ->
          match Store.compact ?drop store with
          | Ok _ -> ()
          | Error msg ->
              Printf.eprintf "dggt serve: store compaction failed: %s\n%!" msg)

(* periodic spills; interval <= 0 means shutdown-only *)
let start_spill_thread t =
  match t.store with
  | None -> ()
  | Some _ when t.params.store_interval_s <= 0.0 -> ()
  | Some _ ->
      let th =
        Thread.create
          (fun () ->
            let last = ref (Unix.gettimeofday ()) in
            while not (Atomic.get t.closing) do
              Thread.delay 0.2;
              if
                (not (Atomic.get t.closing))
                && Unix.gettimeofday () -. !last >= t.params.store_interval_s
              then begin
                spill_store t;
                last := Unix.gettimeofday ()
              end
            done)
          ()
      in
      t.spill_thread <- Some th

(* graceful shutdown: one final spill, then a compaction that folds the
   run's appended snapshots down to the newest of each. Idempotent —
   [stop] and [wait] both funnel through here. *)
let finalize_store t =
  if t.store <> None && Atomic.compare_and_set t.finalized false true then begin
    Atomic.set t.closing true;
    (match t.spill_thread with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ());
    t.spill_thread <- None;
    spill_store t;
    compact_store t
  end

(* POST /reload: re-scan the pack directory, atomically swap the registry
   and the per-domain states, and drop every cache. In-flight requests
   keep the dstate they already resolved (immutable), and their late cache
   writes land under the old generation — harmless to post-reload
   lookups. Incremental sessions are left in the store on purpose: their
   [sgen] no longer matches, so the next access answers 410 Gone (clients
   must re-create) instead of a confusable 404. A failed load leaves
   everything exactly as it was. *)
let reload_handler t =
  match t.params.packs_dir with
  | None ->
      respond_json 400
        (J.Obj
           [
             ( "error",
               J.Str "server was started without --packs; nothing to reload" );
           ])
  | Some dir -> (
      match Registry.load_dir t.registry dir with
      | Error e ->
          respond_json 500
            (J.Obj
               [
                 ("error", J.Str "pack reload failed; registry unchanged");
                 ("detail", J.Str (Dggt_pack.Err.to_string e));
               ])
      | Ok packs ->
          let fresh, compiled = build_dstates t in
          Mutex.lock t.dmu;
          t.dstates <- fresh;
          Mutex.unlock t.dmu;
          Cache.clear t.q_cache;
          Cache.clear t.rank_cache;
          Cache.clear t.word_cache;
          (* the on-disk mirror of those cleared caches: drop records
             keyed against a pack digest that no longer matches (cache
             records against the aggregate, automaton records against
             their entry's content key), then persist the fresh
             automatons so a crash right after the reload still boots
             warm *)
          if t.store <> None then begin
            let live_ckeys = List.map (fun ds -> ds.ckey) fresh in
            let pdigest = Registry.pack_digest t.registry in
            compact_store
              ~drop:(fun (h : Dggt_store.Store.header) ->
                if h.Dggt_store.Store.kind = Warmstore.kind_cache then
                  h.Dggt_store.Store.pack_digest <> pdigest
                else if h.Dggt_store.Store.kind = Warmstore.kind_autom then
                  not (List.mem h.Dggt_store.Store.pack_digest live_ckeys)
                else false)
              t;
            spill_store t
          end;
          respond_json 200
            (J.Obj
               [
                 ("v", J.Num (float_of_int api_version));
                 ("ok", J.Bool true);
                 ("packs_loaded", J.Num (float_of_int (List.length packs)));
                 ( "generation",
                   J.Num (float_of_int (Registry.generation t.registry)) );
                 ("pack_digest", J.Str (Registry.pack_digest t.registry));
                 (* how many grammars actually changed: unchanged digests
                    reuse the compiled automaton, pointer-equal *)
                 ("automata_compiled", J.Num (float_of_int compiled));
                 ( "automata_reused",
                   J.Num (float_of_int (List.length fresh - compiled)) );
                 ( "domains",
                   J.Arr
                     (List.map
                        (fun ds ->
                          J.Str ds.dom.Dggt_domains.Domain.name)
                        (dstates t)) );
               ]))

let handler t (req : Httpd.request) =
  match (req.Httpd.meth, req.Httpd.path) with
  | "GET", "/healthz" -> healthz_handler t
  | "GET", "/metrics" ->
      Httpd.response ~content_type:"text/plain; version=0.0.4" 200
        (Smetrics.render t.metrics)
  | "GET", "/domains" -> domains_handler t
  | "GET", "/version" -> version_handler t
  | "GET", "/debug/trace" -> debug_trace_handler t
  | ("GET" | "POST"), "/synthesize" -> synthesize_handler t req
  | ("GET" | "POST"), "/rank" -> rank_handler t req
  | "POST", "/reload" -> reload_handler t
  | "POST", "/session" -> session_create_handler t req
  | ( _,
      ( "/healthz" | "/metrics" | "/domains" | "/version" | "/debug/trace"
      | "/synthesize" | "/rank" | "/reload" | "/session" ) ) ->
      Httpd.response 405 (error_json "method not allowed")
  | meth, path -> (
      match session_path path with
      | Some (id, `Query) when meth = "POST" -> session_query_handler t req id
      | Some (id, `Root) when meth = "DELETE" -> session_delete_handler t id
      | Some _ -> Httpd.response 405 (error_json "method not allowed")
      | None -> Httpd.response 404 (error_json "not found"))

(* the binary's build identity, asked of git once at startup; servers
   deployed outside a checkout report "unknown" *)
let git_describe () =
  match
    Unix.open_process_in "git describe --always --dirty 2>/dev/null"
  with
  | exception _ -> None
  | ic -> (
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> (match line with Some "" | None -> None | s -> s)
      | _ -> None
      | exception _ -> None)

let create params =
  let metrics = Smetrics.create () in
  let pool =
    Deadline_pool.create
      ?workers:(if params.workers > 0 then Some params.workers else None)
      ~capacity:params.queue_capacity ()
  in
  let registry = Registry.create () in
  (match params.packs_dir with
  | None -> ()
  | Some dir -> (
      match Registry.load_dir registry dir with
      | Ok _ -> ()
      | Error e -> failwith ("dggt serve: " ^ Dggt_pack.Err.to_string e)));
  let store =
    match params.store_dir with
    | None -> None
    | Some dir -> (
        match Store.open_dir ~schema:Warmstore.schema_version dir with
        | Ok s -> Some s
        | Error msg -> failwith ("dggt serve: --store " ^ dir ^ ": " ^ msg))
  in
  let stage_cap = max 0 params.cache_size * 4 in
  let word_cache = Cache.create ~capacity:stage_cap in
  let t =
    {
      params;
      pool;
      metrics;
      registry;
      build = Option.value (git_describe ()) ~default:"unknown";
      q_cache = Cache.create ~capacity:params.cache_size;
      rank_cache = Cache.create ~capacity:params.cache_size;
      word_cache;
      sessions =
        Sessions.create ~ttl_s:params.session_ttl_s ~cap:params.session_cap ();
      traces = Ring.create ~capacity:params.trace_buffer;
      dmu = Mutex.create ();
      dstates = [];
      http = None;
      store;
      spill_mu = Mutex.create ();
      closing = Atomic.make false;
      finalized = Atomic.make false;
      spill_thread = None;
    }
  in
  (* warm boot: replay the store BEFORE building the domain states, so
     the seeded automatons make build_dstates' Registry.automaton calls
     cache hits (zero compiles for unchanged content keys) and the LRUs
     are populated before the first request lands *)
  (match store with
  | None -> ()
  | Some s ->
      let r =
        Warmstore.load s
          ~generation:(Registry.generation registry)
          ~pack_digest:(Registry.pack_digest registry)
          ~registry (warm_caches t)
      in
      Smetrics.observe_store_load metrics ~loaded:r.Warmstore.ld_applied
        ~skipped:r.Warmstore.ld_skipped ~rejected:r.Warmstore.ld_rejected;
      Smetrics.set_store_probe metrics (fun () ->
          let bytes, records = Store.file_gauges s in
          { Smetrics.store_log_bytes = bytes; store_records = records }));
  t.dstates <- fst (build_dstates t);
  start_spill_thread t;
  Smetrics.set_queue_probe metrics (fun () -> Deadline_pool.depth pool);
  Smetrics.register_cache metrics "q_cache" (fun () -> Cache.counters t.q_cache);
  Smetrics.register_cache metrics "rank_cache" (fun () ->
      Cache.counters t.rank_cache);
  Smetrics.register_cache metrics "word_cache" (fun () ->
      Cache.counters t.word_cache);
  (* the automata's cross-query path memos, summed over the live domain
     states — the successor of the old per-pair LRU's counters *)
  Smetrics.register_cache metrics "autom_memo" (fun () ->
      List.fold_left
        (fun (acc : Cache.counters) ds ->
          let c = Dggt_autom.Autom.memo_counters ds.autom in
          {
            Cache.hits = acc.Cache.hits + c.Dggt_autom.Autom.hits;
            misses = acc.Cache.misses + c.Dggt_autom.Autom.misses;
            evictions = acc.Cache.evictions;
            size = acc.Cache.size + c.Dggt_autom.Autom.entries;
            capacity = acc.Cache.capacity;
          })
        { Cache.hits = 0; misses = 0; evictions = 0; size = 0; capacity = 0 }
        (dstates t));
  Smetrics.set_sessions_probe metrics (fun () -> Sessions.counters t.sessions);
  let http =
    Httpd.create ~addr:params.addr ?unix_path:params.unix_socket
      ~port:params.port
      (fun req -> handler t req)
  in
  t.http <- Some http;
  t

let port t = match t.http with Some h -> Httpd.port h | None -> t.params.port
let metrics t = t.metrics
let registry t = t.registry

let stop t =
  (match t.http with
  | Some h ->
      Httpd.stop h;
      Httpd.wait h
  | None -> ());
  finalize_store t;
  Deadline_pool.shutdown t.pool

let wait t =
  (match t.http with Some h -> Httpd.wait h | None -> ());
  finalize_store t;
  Deadline_pool.shutdown t.pool

let run params =
  let t = create params in
  (match t.http with Some h -> Httpd.handle_signals h | None -> ());
  Printf.printf
    "dggt serve: listening on %s (%d workers, queue %d, cache %d, \
     %d automata%s)\n\
     %!"
    (match params.unix_socket with
    | Some path -> "unix:" ^ path
    | None -> Printf.sprintf "http://%s:%d" params.addr (port t))
    (Deadline_pool.workers t.pool)
    (Deadline_pool.capacity t.pool)
    params.cache_size
    (List.length (dstates t))
    ((match params.packs_dir with
     | Some d ->
         Printf.sprintf ", packs %s [%d loaded]" d
           (List.length
              (List.filter
                 (fun ds -> ds.origin <> Registry.Builtin)
                 (dstates t)))
     | None -> "")
    ^
    match params.store_dir with
    | Some d -> Printf.sprintf ", store %s" d
    | None -> "");
  wait t;
  Printf.printf "dggt serve: shut down cleanly\n%!"
