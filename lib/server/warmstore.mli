(** The serving layer's half of the warm-start store
    ({!Dggt_store.Store}): typed spill/load of the server's LRU caches
    and compiled automatons. The store itself is generic over opaque
    payload bytes; this module owns every [Marshal] of an engine type
    and the key discipline around it.

    {2 Key discipline}

    - Cache entries are spilled with the registry generation {e
      stripped} from their keys (generations are process-local — they
      restart every boot) and re-keyed under the booting process's
      generation at load, gated on the record's pack digest matching
      the current registry's: the digest, not the generation, pins the
      content the entries were computed against.
    - Automaton records are keyed by the entry's {e content key}
      ({!Dggt_pack.Domain_registry.content_key}), so one changed pack
      invalidates only its own automaton; restore goes through
      {!Dggt_autom.Autom.of_image}, whose structural-digest check is
      the final guard before the tables are trusted.
    - Everything is additionally schema-versioned ({!schema_version});
      records of any other schema are skips.

    Refuse-and-rebuild throughout: any digest, unmarshal or restore
    surprise counts the record rejected and the server recomputes — a
    corrupt store can cost time, never correctness. *)

val schema_version : int
(** Version of the marshalled payload layouts. Bump on {e any} shape
    change of the payload types or their transitive parts
    ([Engine.outcome], [Engine.ranked], [Word2api.candidate],
    [Autom.image]) — that is what keeps [Marshal.from_string] away from
    bytes of another layout. *)

val kind_cache : string
val kind_autom : string

val q_cache_name : string
val rank_cache_name : string
val word_cache_name : string
(** Record names, matching the cache labels in [GET /metrics]. *)

type caches = {
  q :
    ( int * string * string * string * int,
      Dggt_core.Engine.outcome * Dggt_core.Engine.ranked list )
    Cache.t;
  rank :
    (int * string * string * int, Dggt_core.Engine.ranked list) Cache.t;
  word :
    ( int * string * string * string,
      Dggt_core.Word2api.candidate list )
    Cache.t;
}
(** Serve's three LRUs, keyed as the server keys them (leading [int] is
    the registry generation). *)

type spill_report = {
  sp_records : int;
  sp_entries : int;  (** cache entries across the three LRUs *)
  sp_bytes : int;
  sp_seconds : float;
}

val spill :
  Dggt_store.Store.t ->
  generation:int ->
  pack_digest:string ->
  caches ->
  automata:(string * string * Dggt_autom.Autom.t) list ->
  (spill_report, string) result
(** Append one snapshot batch: up to three cache records (empty caches
    spill nothing) in {!Cache.fold}'s LRU-to-MRU order — so a later
    load replays recency exactly — plus one automaton-image record per
    [(domain name, content key, automaton)] row. *)

type load_report = {
  ld_cache_entries : int;  (** cache entries replayed into the LRUs *)
  ld_automata : int;  (** automatons restored and seeded (no compile) *)
  ld_applied : int;  (** records whose payload was applied *)
  ld_skipped : int;
      (** schema mismatches, superseded duplicates, key mismatches *)
  ld_rejected : int;
      (** digest/frame damage plus unmarshal/restore refusals *)
  ld_seconds : float;
}

val load :
  Dggt_store.Store.t ->
  generation:int ->
  pack_digest:string ->
  registry:Dggt_pack.Domain_registry.t ->
  caches ->
  load_report
(** Replay the newest valid snapshot: for each [(kind, name, engine)]
    identity only the newest record applies (periodic spills append
    whole snapshots). Cache records must carry the current [pack_digest]
    and are re-keyed under [generation]; automaton records are restored
    against the registry entry whose content key they carry and seeded
    via {!Dggt_pack.Domain_registry.seed_automaton} — call {e before}
    building domain states so the boot's [automaton] calls hit the
    seeded cache and pay zero compiles. Never raises. *)
