(* Hash table + intrusive circular doubly-linked list. The sentinel node
   closes the ring: sentinel.next is the MRU entry, sentinel.prev the LRU.
   Nodes carry their payload as an option only so the sentinel can exist
   without a key/value witness; real nodes always hold [Some]. *)

type ('k, 'v) node = {
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
  payload : ('k * 'v) option; (* None only for the sentinel *)
}

type ('k, 'v) t = {
  mu : Mutex.t;
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  sentinel : ('k, 'v) node;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  let rec sentinel = { prev = sentinel; next = sentinel; payload = None } in
  {
    mu = Mutex.create ();
    cap = capacity;
    tbl = Hashtbl.create (max 16 (min capacity 4096));
    sentinel;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink n;
          push_front t n;
          (match n.payload with Some (_, v) -> Some v | None -> None)
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t k v =
  if t.cap > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl k with
        | Some old ->
            unlink old;
            Hashtbl.remove t.tbl k
        | None -> ());
        let n = { prev = t.sentinel; next = t.sentinel; payload = Some (k, v) } in
        push_front t n;
        Hashtbl.replace t.tbl k n;
        if Hashtbl.length t.tbl > t.cap then begin
          let lru = t.sentinel.prev in
          unlink lru;
          (match lru.payload with
          | Some (lk, _) -> Hashtbl.remove t.tbl lk
          | None -> ());
          t.evictions <- t.evictions + 1
        end)

let find_or_compute t k compute =
  match find t k with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      add t k v;
      (v, false)

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let capacity t = t.cap

let keys_mru t =
  locked t (fun () ->
      let rec go acc n =
        if n == t.sentinel then List.rev acc
        else
          match n.payload with
          | Some (k, _) -> go (k :: acc) n.next
          | None -> go acc n.next
      in
      go [] t.sentinel.next)

(* Entries in recency order, least-recently-used first. Snapshot taken
   under the lock; callers iterate outside it (see the .mli contract). *)
let entries_lru t =
  locked t (fun () ->
      let rec go acc n =
        if n == t.sentinel then acc
        else
          match n.payload with
          | Some kv -> go (kv :: acc) n.next
          | None -> go acc n.next
      in
      go [] t.sentinel.next)

let fold f init t =
  List.fold_left (fun acc (k, v) -> f acc k v) init (entries_lru t)

let add_seq t seq = Seq.iter (fun (k, v) -> add t k v) seq

let of_seq ~capacity seq =
  let t = create ~capacity in
  add_seq t seq;
  t

let counters t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.cap;
      })

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.sentinel.next <- t.sentinel;
      t.sentinel.prev <- t.sentinel)
