type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
  stream : ((string -> unit) -> unit) option;
      (* when set, [body] is ignored and the producer is run on the
         connection thread with a chunk writer: the response goes out as
         [transfer-encoding: chunked] and the connection closes after
         the terminal chunk *)
}

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | c when c >= 200 && c < 300 -> "OK"
  | c when c >= 400 && c < 500 -> "Client Error"
  | _ -> "Server Error"

let response ?(content_type = "application/json") ?(headers = []) status body =
  { status; headers = ("content-type", content_type) :: headers; body;
    stream = None }

let stream_response ?(content_type = "text/event-stream") ?(headers = [])
    status producer =
  {
    status;
    headers = ("content-type", content_type) :: headers;
    body = "";
    stream = Some producer;
  }

let header (req : request) name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* ------------------------------------------------------------------ *)
(* url decoding                                                       *)
(* ------------------------------------------------------------------ *)

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some h, Some l ->
              Buffer.add_char buf (Char.chr ((h * 16) + l));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | Some i ->
                 Some
                   ( percent_decode (String.sub kv 0 i),
                     percent_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> Some (percent_decode kv, ""))

(* ------------------------------------------------------------------ *)
(* server                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  unix_path : string option;
      (* when set, the listener is a Unix-domain socket at this path; the
         path is unlinked once the accept loop has been joined *)
  handler : request -> response;
  max_header : int;
  max_body : int;
  idle_timeout : float;
  stopped : bool Atomic.t;
  mu : Mutex.t;
  conns_done : Condition.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  mutable active : int;
  mutable accept_thread : Thread.t option;
}

exception Http_error of int * string

let read_more fd buf chunk =
  let n = Unix.read fd chunk 0 (Bytes.length chunk) in
  if n = 0 then false
  else begin
    Buffer.add_subbytes buf chunk 0 n;
    true
  end

(* index of "\r\n\r\n" in the buffer, or None *)
let find_header_end buf =
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let parse_head head =
  match String.split_on_char '\n' head |> List.map (fun l -> String.trim l) with
  | [] | [ "" ] -> raise (Http_error (400, "empty request"))
  | reqline :: header_lines ->
      let meth, target, version =
        match String.split_on_char ' ' reqline with
        | [ m; t; v ] -> (String.uppercase_ascii m, t, v)
        | _ -> raise (Http_error (400, "malformed request line"))
      in
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        raise (Http_error (501, "unsupported HTTP version"));
      let headers =
        List.filter_map
          (fun l ->
            if l = "" then None
            else
              match String.index_opt l ':' with
              | None -> raise (Http_error (400, "malformed header"))
              | Some i ->
                  Some
                    ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
                      String.trim
                        (String.sub l (i + 1) (String.length l - i - 1)) ))
          header_lines
      in
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
            ( String.sub target 0 i,
              parse_query (String.sub target (i + 1) (String.length target - i - 1))
            )
        | None -> (target, [])
      in
      (meth, percent_decode path, query, headers, version)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let write_response fd ~keep_alive (r : response) =
  match r.stream with
  | None ->
      let buf = Buffer.create (String.length r.body + 256) in
      Buffer.add_string buf
        (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason_phrase r.status));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        r.headers;
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n" (String.length r.body));
      Buffer.add_string buf
        (if keep_alive then "connection: keep-alive\r\n"
         else "connection: close\r\n");
      Buffer.add_string buf "\r\n";
      Buffer.add_string buf r.body;
      write_all fd (Buffer.contents buf)
  | Some producer ->
      (* chunked transfer: headers first, then one chunk frame per
         producer emission, then the terminal zero chunk. The connection
         never outlives a streamed response (connection: close): the
         producer runs arbitrary work between chunks, so request
         pipelining behind it would sit on an unbounded delay. A write
         failure mid-stream (client went away — SIGPIPE is ignored, so
         it surfaces as EPIPE) aborts the producer; the caller treats it
         like any connection error. *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason_phrase r.status));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        r.headers;
      Buffer.add_string buf "transfer-encoding: chunked\r\n";
      Buffer.add_string buf "connection: close\r\n";
      Buffer.add_string buf "\r\n";
      write_all fd (Buffer.contents buf);
      let chunk data =
        if String.length data > 0 then
          write_all fd
            (Printf.sprintf "%x\r\n%s\r\n" (String.length data) data)
      in
      producer chunk;
      write_all fd "0\r\n\r\n"

(* One request: returns (request, keep_alive) or raises. [pending] holds
   bytes already read past the previous request's end. *)
let read_request t fd pending =
  let chunk = Bytes.create 8192 in
  let rec fill () =
    match find_header_end pending with
    | Some i -> i
    | None ->
        if Buffer.length pending > t.max_header then
          raise (Http_error (431, "headers too large"));
        if not (read_more fd pending chunk) then raise Exit (* peer closed *);
        fill ()
  in
  let hdr_end = fill () in
  let all = Buffer.contents pending in
  let head = String.sub all 0 hdr_end in
  let rest = String.sub all (hdr_end + 4) (String.length all - hdr_end - 4) in
  let meth, path, query, headers, version = parse_head head in
  if List.assoc_opt "transfer-encoding" headers <> None then
    raise (Http_error (501, "chunked bodies not supported"));
  let clen =
    match List.assoc_opt "content-length" headers with
    | None -> 0
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> n
        | _ -> raise (Http_error (400, "bad content-length")))
  in
  if clen > t.max_body then raise (Http_error (413, "body too large"));
  Buffer.clear pending;
  Buffer.add_string pending rest;
  while Buffer.length pending < clen do
    if not (read_more fd pending chunk) then
      raise (Http_error (400, "truncated body"))
  done;
  let all = Buffer.contents pending in
  let body = String.sub all 0 clen in
  Buffer.clear pending;
  Buffer.add_string pending (String.sub all clen (String.length all - clen));
  let keep_alive =
    match (version, List.assoc_opt "connection" headers) with
    | _, Some c when String.lowercase_ascii c = "close" -> false
    | "HTTP/1.0", Some c -> String.lowercase_ascii c = "keep-alive"
    | "HTTP/1.0", None -> false
    | _ -> true
  in
  ({ meth; path; query; headers; body }, keep_alive)

let conn_loop t fd =
  let pending = Buffer.create 1024 in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout
   with Unix.Unix_error _ -> ());
  let rec loop () =
    if not (Atomic.get t.stopped) then begin
      match read_request t fd pending with
      | req, keep_alive ->
          let resp =
            try t.handler req
            with _ ->
              response 500 {|{"error":"internal server error"}|}
          in
          (* a streamed response always closes the connection (its
             headers said so); don't read another request off it *)
          let keep_alive = keep_alive && Option.is_none resp.stream in
          write_response fd ~keep_alive resp;
          if keep_alive then loop ()
      | exception Http_error (status, msg) ->
          (* parse errors: best-effort report, then drop the connection *)
          (try
             write_response fd ~keep_alive:false
               (response status
                  (Printf.sprintf {|{"error":%S}|} msg))
           with _ -> ())
      | exception Exit -> () (* peer closed between requests *)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          () (* idle timeout *)
    end
  in
  (try loop () with _ -> ());
  Mutex.lock t.mu;
  Hashtbl.remove t.conns fd;
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.conns_done;
  Mutex.unlock t.mu;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopped) then begin
      match Unix.accept ~cloexec:true t.listener with
      | fd, _ ->
          Mutex.lock t.mu;
          if Atomic.get t.stopped then begin
            Mutex.unlock t.mu;
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            Hashtbl.replace t.conns fd ();
            t.active <- t.active + 1;
            Mutex.unlock t.mu;
            ignore (Thread.create (fun () -> conn_loop t fd) ())
          end;
          loop ()
      | exception Unix.Unix_error (ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
          () (* listener closed by stop () *)
      | exception _ -> if not (Atomic.get t.stopped) then loop ()
    end
  in
  loop ()

let create ?(addr = "127.0.0.1") ?(backlog = 128) ?(max_header_bytes = 16384)
    ?(max_body_bytes = 1 lsl 20) ?(idle_timeout_s = 30.0) ?unix_path ~port
    handler =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* cloexec everywhere: the sharding supervisor forks workers from this
     process, and an inherited listener or connection fd would keep the
     peer's EOF from ever arriving after we close our copy *)
  let listener =
    match unix_path with
    | None -> Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
    | Some _ -> Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  (try Unix.setsockopt listener Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  (try
     match unix_path with
     | None ->
         Unix.bind listener
           (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port))
     | Some path ->
         (* a stale socket file from a crashed predecessor would make the
            bind fail; binding over it is what restarts want *)
         (try Unix.unlink path with Unix.Unix_error _ -> ());
         Unix.bind listener (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener backlog;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      listener;
      bound_port;
      unix_path;
      handler;
      max_header = max_header_bytes;
      max_body = max_body_bytes;
      idle_timeout = idle_timeout_s;
      stopped = Atomic.make false;
      mu = Mutex.create ();
      conns_done = Condition.create ();
      conns = Hashtbl.create 16;
      active = 0;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* shutdown, not close: on Linux a blocked accept() is not woken by
       close() from another thread, but shutdown(SHUT_RD) makes it return
       EINVAL. The fd itself is closed in [wait] once the accept thread
       has been joined, so its number cannot be recycled under accept(). *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (* wake connections blocked waiting for the next request; they finish
       the response they are writing, see EOF, and exit *)
    Mutex.lock t.mu;
    let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
    Mutex.unlock t.mu;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      fds
  end

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.lock t.mu;
  while t.active > 0 do
    Condition.wait t.conns_done t.mu
  done;
  Mutex.unlock t.mu

let handle_signals t =
  (* OCaml signal handlers only run at poll points of domain 0, and once
     [wait] is reached every domain-0 thread sits in a blocking section
     (Thread.join, accept(2), read(2)) — a handler that called [stop]
     directly would never execute. So the handler just sets a flag, and a
     watcher thread whose Thread.delay wake-ups provide the poll points
     notices it and performs the actual stop. *)
  let requested = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set requested true) in
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  ignore
    (Thread.create
       (fun () ->
         while not (Atomic.get requested || Atomic.get t.stopped) do
           Thread.delay 0.1
         done;
         if Atomic.get requested then stop t)
       ())
