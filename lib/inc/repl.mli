(** Interactive incremental synthesis loop ([dggt repl]).

    Reads one query revision per line, answers with the synthesized codelet
    (or the failure) and a one-line reuse summary from the underlying
    {!Session}. Commands start with [:]

    - [:help] — list commands
    - [:reset] — drop the session history (next query computes from scratch)
    - [:trace] — toggle the per-query stage narrative ([dggt explain] style)
    - [:stream] — toggle live suggestions: after each answer, a ranked
      top-5 pass streams interim [~ rank. code] lines as the chart's
      n-best improves (the {!Dggt_core.Engine.respond} [on_candidate]
      hook), then prints the final numbered list — the terminal list is
      authoritative, interim lines are previews
    - [:stats] — cumulative reuse totals for the session
    - [:quit] / [:q] / EOF — leave

    [input] and [ppf] exist for tests (feed a script, capture the output);
    the CLI passes neither and talks to the terminal. *)

val run :
  ?input:in_channel ->
  ?ppf:Format.formatter ->
  ?prompt:string ->
  Dggt_core.Engine.session ->
  unit
(** [prompt] defaults to ["dggt> "]. Returns when the input ends. *)
