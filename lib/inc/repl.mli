(** Interactive incremental synthesis loop ([dggt repl]).

    Reads one query revision per line, answers with the synthesized codelet
    (or the failure) and a one-line reuse summary from the underlying
    {!Session}. Commands start with [:]

    - [:help] — list commands
    - [:reset] — drop the session history (next query computes from scratch)
    - [:trace] — toggle the per-query stage narrative ([dggt explain] style)
    - [:stats] — cumulative reuse totals for the session
    - [:quit] / [:q] / EOF — leave

    [input] and [ppf] exist for tests (feed a script, capture the output);
    the CLI passes neither and talks to the terminal. *)

val run :
  ?input:in_channel ->
  ?ppf:Format.formatter ->
  ?prompt:string ->
  Dggt_core.Engine.session ->
  unit
(** [prompt] defaults to ["dggt> "]. Returns when the input ends. *)
