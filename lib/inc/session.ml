open Dggt_nlu
module Engine = Dggt_core.Engine
module Stats = Dggt_core.Stats
module Word2api = Dggt_core.Word2api
module Trace = Dggt_obs.Trace

type wentry = { wv : Word2api.candidate list; mutable wstamp : int }
type pentry = { pv : Dggt_grammar.Gpath.t list; mutable pstamp : int }

type revision = {
  tokens : Token.t list;
  pruned : Depgraph.t;
  outcome : Engine.outcome;
  cfg : Engine.config;
}

type t = {
  base : Engine.session;
  mu : Mutex.t; (* guards the tables and the run counters *)
  words : (string * string, wentry) Hashtbl.t; (* (lemma, pos) -> candidates *)
  pairs : (string * string, pentry) Hashtbl.t; (* (src, dst) -> paths *)
  mutable run : int; (* stamp of the current compute run (liveness) *)
  mutable w_reused : int;
  mutable w_computed : int;
  mutable p_reused : int;
  mutable p_computed : int;
  mutable table_cfg : Engine.config option; (* cfg the entries were built under *)
  mutable prev : revision option;
  mutable revs : int;
}

let create base =
  {
    base;
    mu = Mutex.create ();
    words = Hashtbl.create 64;
    pairs = Hashtbl.create 64;
    run = 0;
    w_reused = 0;
    w_computed = 0;
    p_reused = 0;
    p_computed = 0;
    table_cfg = None;
    prev = None;
    revs = 0;
  }

let base t = t.base
let revisions t = t.revs

(* The hooks layer the session tables over whatever cache the target already
   has: a session miss falls through to it before computing. The compute (or
   fallback) runs outside the lock — EdgeToPath may probe from pool workers,
   and a search can be slow. A racing writer for the same key is benign: both
   computed the same deterministic value. *)

let word_hook t ~lemma ~pos compute =
  let key = (lemma, Pos.to_string pos) in
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.words key with
  | Some e ->
      e.wstamp <- t.run;
      t.w_reused <- t.w_reused + 1;
      Mutex.unlock t.mu;
      e.wv
  | None ->
      Mutex.unlock t.mu;
      let v =
        match t.base.Engine.target.Engine.caches.Engine.word2api with
        | Some lookup -> lookup ~lemma ~pos compute
        | None -> compute ()
      in
      Mutex.lock t.mu;
      t.w_computed <- t.w_computed + 1;
      (match Hashtbl.find_opt t.words key with
      | Some e -> e.wstamp <- t.run
      | None -> Hashtbl.replace t.words key { wv = v; wstamp = t.run });
      Mutex.unlock t.mu;
      v

let pair_hook t ~src ~dst compute =
  let key = (src, dst) in
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.pairs key with
  | Some e ->
      e.pstamp <- t.run;
      t.p_reused <- t.p_reused + 1;
      Mutex.unlock t.mu;
      e.pv
  | None ->
      Mutex.unlock t.mu;
      let v =
        match t.base.Engine.target.Engine.caches.Engine.edge2path with
        | Some lookup -> lookup ~src ~dst compute
        | None -> compute ()
      in
      Mutex.lock t.mu;
      t.p_computed <- t.p_computed + 1;
      (match Hashtbl.find_opt t.pairs key with
      | Some e -> e.pstamp <- t.run
      | None -> Hashtbl.replace t.pairs key { pv = v; pstamp = t.run });
      Mutex.unlock t.mu;
      v

let hooked_target t =
  {
    t.base.Engine.target with
    Engine.caches =
      {
        Engine.word2api = Some (word_hook t);
        edge2path = Some (pair_hook t);
      };
  }

(* Result-affecting config fields, compared field by field. [unit_filter]
   and [trace] are deliberately left out: both are closures (structural
   (=) would raise Invalid_argument) and [trace] never changes the
   synthesized bytes; [unit_filter] is pinned at session creation
   (documented in the mli). *)
let stage_cfg_equal (a : Engine.config) (b : Engine.config) =
  a.Engine.algorithm = b.Engine.algorithm
  && a.Engine.timeout_s = b.Engine.timeout_s
  && a.Engine.max_steps = b.Engine.max_steps
  && a.Engine.top_k = b.Engine.top_k
  && a.Engine.threshold = b.Engine.threshold
  && a.Engine.path_limits = b.Engine.path_limits
  && a.Engine.gprune = b.Engine.gprune
  && a.Engine.sprune = b.Engine.sprune
  && a.Engine.objective = b.Engine.objective
  && a.Engine.orphan_reloc = b.Engine.orphan_reloc
  && a.Engine.max_reloc_graphs = b.Engine.max_reloc_graphs
  && a.Engine.defaults = b.Engine.defaults
  && a.Engine.stop_verbs = b.Engine.stop_verbs

(* The memo-table entries depend on exactly these two knobs (WordToAPI
   computes are thresholded, EdgeToPath searches are limit-bounded); any
   other config change leaves them valid. *)
let tables_valid_for t (cfg : Engine.config) =
  match t.table_cfg with
  | None -> true
  | Some c ->
      c.Engine.threshold = cfg.Engine.threshold
      && c.Engine.path_limits = cfg.Engine.path_limits

(* Keep only the entries the current run touched: session memory stays
   bounded by the live query's footprint. *)
let prune_stale t =
  let ws =
    Hashtbl.fold (fun k e acc -> if e.wstamp <> t.run then k :: acc else acc)
      t.words []
  in
  List.iter (Hashtbl.remove t.words) ws;
  let ps =
    Hashtbl.fold (fun k e acc -> if e.pstamp <> t.run then k :: acc else acc)
      t.pairs []
  in
  List.iter (Hashtbl.remove t.pairs) ps

let trace_reuse (cfg : Engine.config) (r : Reuse.t) =
  Trace.span cfg.Engine.trace "IncrementalReuse" (fun sp ->
      Trace.int sp "revision" r.Reuse.revision;
      Trace.bool sp "splice" r.Reuse.splice;
      Trace.int sp "tokens_kept" r.Reuse.tokens_kept;
      Trace.int sp "tokens_added" r.Reuse.tokens_added;
      Trace.int sp "tokens_removed" r.Reuse.tokens_removed;
      Trace.int sp "edges_kept" r.Reuse.edges_kept;
      Trace.int sp "edges_added" r.Reuse.edges_added;
      Trace.int sp "edges_removed" r.Reuse.edges_removed;
      Trace.int sp "words_reused" r.Reuse.words.Reuse.reused;
      Trace.int sp "words_computed" r.Reuse.words.Reuse.computed;
      Trace.int sp "pairs_reused" r.Reuse.pairs.Reuse.reused;
      Trace.int sp "pairs_computed" r.Reuse.pairs.Reuse.computed;
      Trace.int sp "dgg_rows_reused" r.Reuse.dgg_rows.Reuse.reused;
      Trace.int sp "dgg_rows_computed" r.Reuse.dgg_rows.Reuse.computed)

let query ?tweak t q =
  let cfg =
    match tweak with None -> t.base.Engine.cfg | Some f -> f t.base.Engine.cfg
  in
  let t0 = Unix.gettimeofday () in
  let tokens = Tokenizer.tokenize q in
  let parsed = Engine.parse cfg q in
  let pruned = Engine.prune cfg parsed in
  let td, ed =
    match t.prev with
    | None ->
        ( { Diff.kept = 0; added = List.length tokens; removed = 0; pairs = [] },
          {
            Diff.e_kept = 0;
            e_added = List.length pruned.Depgraph.edges;
            e_removed = 0;
          } )
    | Some r ->
        ( Diff.tokens ~prev:r.tokens ~next:tokens,
          Diff.edges ~prev:r.pruned ~next:pruned )
  in
  let splice =
    match t.prev with
    | Some r ->
        (not r.outcome.Engine.timed_out)
        && stage_cfg_equal r.cfg cfg
        && Diff.equivalent ~prev:r.pruned ~next:pruned
    | None -> false
  in
  t.revs <- t.revs + 1;
  let outcome, words, pairs, dgg_rows =
    if splice then (
      let r = Option.get t.prev in
      let outcome =
        {
          r.outcome with
          Engine.time_s = Unix.gettimeofday () -. t0;
          stats = Stats.copy r.outcome.Engine.stats;
        }
      in
      ( outcome,
        { Reuse.reused = 0; computed = 0 },
        { Reuse.reused = 0; computed = 0 },
        { Reuse.reused = outcome.Engine.stats.Stats.dgg_nodes; computed = 0 } ))
    else (
      Mutex.lock t.mu;
      if not (tables_valid_for t cfg) then (
        Hashtbl.reset t.words;
        Hashtbl.reset t.pairs);
      t.run <- t.run + 1;
      t.w_reused <- 0;
      t.w_computed <- 0;
      t.p_reused <- 0;
      t.p_computed <- 0;
      Mutex.unlock t.mu;
      let outcome = Engine.synthesize_pruned cfg (hooked_target t) pruned in
      Mutex.lock t.mu;
      prune_stale t;
      t.table_cfg <- Some cfg;
      let words = { Reuse.reused = t.w_reused; computed = t.w_computed } in
      let pairs = { Reuse.reused = t.p_reused; computed = t.p_computed } in
      Mutex.unlock t.mu;
      ( outcome,
        words,
        pairs,
        { Reuse.reused = 0; computed = outcome.Engine.stats.Stats.dgg_nodes } ))
  in
  let reuse =
    {
      Reuse.revision = t.revs;
      splice;
      tokens_kept = td.Diff.kept;
      tokens_added = td.Diff.added;
      tokens_removed = td.Diff.removed;
      edges_kept = ed.Diff.e_kept;
      edges_added = ed.Diff.e_added;
      edges_removed = ed.Diff.e_removed;
      words;
      pairs;
      dgg_rows;
    }
  in
  trace_reuse cfg reuse;
  t.prev <- Some { tokens; pruned; outcome; cfg };
  (outcome, reuse)

let respond ?on_candidate ?tweak t req =
  (* serve one-shot requests (ranked hints, streams) through the session
     tables, but put the last revision's reuse accounting back afterwards *)
  Mutex.lock t.mu;
  let saved = (t.w_reused, t.w_computed, t.p_reused, t.p_computed) in
  Mutex.unlock t.mu;
  let cfg =
    match tweak with None -> t.base.Engine.cfg | Some f -> f t.base.Engine.cfg
  in
  let res =
    Engine.respond ?on_candidate
      { Engine.cfg; target = hooked_target t }
      req
  in
  Mutex.lock t.mu;
  let wr, wc, pr, pc = saved in
  t.w_reused <- wr;
  t.w_computed <- wc;
  t.p_reused <- pr;
  t.p_computed <- pc;
  Mutex.unlock t.mu;
  res

let ranked ?(k = 5) t q =
  if k <= 0 then []
  else
    (respond t { Engine.input = Engine.Text q; mode = Engine.Ranked k })
      .Engine.ranked

let reset t =
  Mutex.lock t.mu;
  Hashtbl.reset t.words;
  Hashtbl.reset t.pairs;
  t.table_cfg <- None;
  Mutex.unlock t.mu;
  t.prev <- None;
  t.revs <- 0
