(** Revision diffing for incremental synthesis.

    A session compares each query revision against the previous one at two
    granularities: the raw token stream (what did the user actually type?)
    and the pruned dependency graph (what does the pipeline actually
    consume?). The token/edge diffs drive the reuse statistics; the
    pruned-graph {!equivalent} check gates the whole-suffix splice — see
    {!Session} for why its strictness is what makes the splice sound. *)

type token_diff = {
  kept : int;     (** tokens present in both revisions (LCS length) *)
  added : int;    (** tokens only in the new revision *)
  removed : int;  (** tokens only in the previous revision *)
  pairs : (int * int) list;
      (** matched (previous index, next index) pairs, both ascending — the
          stable-identity map between the two revisions' tokens *)
}

val tokens : prev:Dggt_nlu.Token.t list -> next:Dggt_nlu.Token.t list -> token_diff
(** Longest common subsequence over (kind, text) equality; token indices do
    not participate, so an insertion early in the query still matches every
    later token. O(|prev|·|next|) — queries are tens of tokens. *)

type edge_diff = { e_kept : int; e_added : int; e_removed : int }

val edges : prev:Dggt_nlu.Depgraph.t -> next:Dggt_nlu.Depgraph.t -> edge_diff
(** Multiset intersection of the two graphs' edges keyed by
    (governor lemma, dependent lemma, label) — a measure of how much of the
    dependency structure an edit disturbed, reported per revision. *)

val equivalent : prev:Dggt_nlu.Depgraph.t -> next:Dggt_nlu.Depgraph.t -> bool
(** Order-preserving isomorphism of two pruned graphs: same node count with
    pairwise-equal (text, lemma, POS, literal), edge lists equal in order
    under the positional node map, and roots at the same position. Node ids
    (token indices) may differ — an edit to a word that pruning drops shifts
    every later index without changing what stages 3-6 see.

    When this holds, the entire pipeline suffix (WordToAPI through
    TreeToExpression) is determined to be byte-identical to the previous
    revision's: every stage consumes only lemma/POS/literal content,
    relative order, and structure — never absolute token indices (the final
    DGG tie-break compares node {e creation order}, which the positional map
    preserves). *)
