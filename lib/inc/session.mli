(** An incremental synthesis session: as-you-type queries against one domain.

    A session remembers the previous revision of the query — its token
    stream, pruned dependency graph and outcome — together with the
    WordToAPI candidate sets and EdgeToPath path tables it computed, keyed
    by what the computes actually depend on (lemma+POS for words, API pair
    for paths). A revised query then pays only for what the edit dirtied:

    - {b words/pairs}: stage 3/4 lookups hit the session tables through the
      engine's transparent {!Dggt_core.Engine.lookups} hooks, so reuse
      cannot change a single byte of the result — a hook returns exactly
      what the compute thunk would have;
    - {b whole suffix (splice)}: when the new pruned graph is
      {!Diff.equivalent} to the previous one (e.g. the edit only touched
      words that pruning drops, or whitespace/punctuation), stages 3-6 are
      skipped wholesale and the previous outcome is replayed with fresh
      [time_s] and a {!Dggt_core.Stats.copy} of the counters. This leans on
      the determinism invariant documented at
      {!Dggt_core.Engine.synthesize_pruned}.

    Anything finer — splicing individual DGG rows across a {e changed}
    pruned graph — is unsound here: PathMerge tie-breaks on DGG node
    creation order, which partial reuse would perturb. So the dirtying rule
    is deliberately coarse: {e any} pruned-graph change recomputes stages
    5-6 (with stages 3-4 still served from the tables). The equivalence
    property test over random edit scripts pins byte-identical outcomes
    either way.

    Thread-safety: the lookup hooks are mutex-guarded (the EdgeToPath stage
    may probe them from pool workers); {!query}/{!ranked}/{!reset} calls on
    one session must themselves be serialized by the caller (the server
    holds a per-session lock; the repl is single-threaded). *)

type t

val create : Dggt_core.Engine.session -> t
(** Wrap a configured domain session. The session's own memo tables layer
    {e on top of} any caches already installed in the target: a session
    miss falls through to the shared cache before computing. The config's
    [unit_filter] must not change across revisions of one session (it is a
    closure, so compatibility cannot be checked; every other
    result-affecting field is). *)

val base : t -> Dggt_core.Engine.session
val revisions : t -> int
(** Number of {!query} calls answered so far. *)

val query :
  ?tweak:(Dggt_core.Engine.config -> Dggt_core.Engine.config) ->
  t ->
  string ->
  Dggt_core.Engine.outcome * Reuse.t
(** Synthesize one revision of the query. [tweak] adjusts the base config
    for this call (trace sink, timeout); changing [threshold] or
    [path_limits] invalidates the memo tables, and any result-affecting
    change disables the splice — both keep the equivalence guarantee.
    Emits an ["IncrementalReuse"] span (after the stage spans) when tracing
    is on. Never raises. *)

val respond :
  ?on_candidate:(Dggt_core.Engine.candidate -> unit) ->
  ?tweak:(Dggt_core.Engine.config -> Dggt_core.Engine.config) ->
  t ->
  Dggt_core.Engine.request ->
  Dggt_core.Engine.outcome
(** {!Dggt_core.Engine.respond} through the session's memo tables:
    one-shot requests (ranked hints, streamed candidates) that do not
    advance the revision history or disturb the last {!query}'s reuse
    accounting. [on_candidate] is the streaming hook — see
    {!Dggt_core.Engine.respond}; [tweak] adjusts the base config for this
    call (trace sink, timeout) exactly as in {!query}. *)

val ranked : ?k:int -> t -> string -> Dggt_core.Engine.ranked list
(** Ranked-hints mode ({!Dggt_core.Engine.run_ranked}'s top-k chart)
    through the session's memo tables — [respond] with a [Ranked k] text
    request. Does not advance the revision history or disturb the last
    {!query}'s reuse accounting. *)

val reset : t -> unit
(** Drop the revision history and memo tables; the next {!query} computes
    from scratch. *)
