module Engine = Dggt_core.Engine
module Trace = Dggt_obs.Trace

type totals = {
  mutable queries : int;
  mutable splices : int;
  mutable w_reused : int;
  mutable w_total : int;
  mutable p_reused : int;
  mutable p_total : int;
  mutable rows_replayed : int;
}

let absorb totals (r : Reuse.t) =
  totals.queries <- totals.queries + 1;
  if r.Reuse.splice then totals.splices <- totals.splices + 1;
  totals.w_reused <- totals.w_reused + r.Reuse.words.Reuse.reused;
  totals.w_total <- totals.w_total + Reuse.total r.Reuse.words;
  totals.p_reused <- totals.p_reused + r.Reuse.pairs.Reuse.reused;
  totals.p_total <- totals.p_total + Reuse.total r.Reuse.pairs;
  totals.rows_replayed <- totals.rows_replayed + r.Reuse.dgg_rows.Reuse.reused

let print_outcome ppf (o : Engine.outcome) =
  (match (o.Engine.code, o.Engine.failure) with
  | Some code, _ -> Format.fprintf ppf "%s@." code
  | None, Some why -> Format.fprintf ppf "no codelet: %s@." why
  | None, None -> Format.fprintf ppf "no codelet@.");
  if o.Engine.timed_out then Format.fprintf ppf "(timed out)@."

let help ppf =
  Format.fprintf ppf
    ":help    show this text@\n\
     :reset   drop the session history@\n\
     :trace   toggle the stage-by-stage narrative@\n\
     :stream  toggle live top-5 suggestions (printed as the chart improves)@\n\
     :stats   cumulative reuse totals@\n\
     :quit    leave (also :q or end of input)@."

let print_totals ppf t =
  let pct reused total =
    if total = 0 then 0. else 100. *. float_of_int reused /. float_of_int total
  in
  Format.fprintf ppf
    "%d queries, %d spliced; words reused %d/%d (%.0f%%), pairs reused \
     %d/%d (%.0f%%), %d dgg rows replayed@."
    t.queries t.splices t.w_reused t.w_total
    (pct t.w_reused t.w_total)
    t.p_reused t.p_total
    (pct t.p_reused t.p_total)
    t.rows_replayed

let run ?(input = stdin) ?(ppf = Format.std_formatter) ?(prompt = "dggt> ")
    (base : Engine.session) =
  let session = Session.create base in
  let totals =
    {
      queries = 0;
      splices = 0;
      w_reused = 0;
      w_total = 0;
      p_reused = 0;
      p_total = 0;
      rows_replayed = 0;
    }
  in
  let tracing = ref false in
  let streaming = ref false in
  Format.fprintf ppf "incremental session — :help for commands@.";
  let rec loop () =
    Format.fprintf ppf "%s@?" prompt;
    match input_line input with
    | exception End_of_file -> ()
    | line -> (
        match String.trim line with
        | "" -> loop ()
        | ":quit" | ":q" -> ()
        | ":help" ->
            help ppf;
            loop ()
        | ":reset" ->
            Session.reset session;
            Format.fprintf ppf "session reset@.";
            loop ()
        | ":trace" ->
            tracing := not !tracing;
            Format.fprintf ppf "trace %s@."
              (if !tracing then "on" else "off");
            loop ()
        | ":stream" ->
            streaming := not !streaming;
            Format.fprintf ppf "stream %s@."
              (if !streaming then "on" else "off");
            loop ()
        | ":stats" ->
            print_totals ppf totals;
            loop ()
        | q ->
            let sink = if !tracing then Some (Trace.create ()) else None in
            let tweak cfg = { cfg with Engine.trace = sink } in
            let outcome, reuse = Session.query ~tweak session q in
            print_outcome ppf outcome;
            Format.fprintf ppf "[%s · %.1f ms]@." (Reuse.summary reuse)
              (outcome.Engine.time_s *. 1000.);
            (match sink with
            | Some s -> Format.fprintf ppf "%a@." Trace.pp (Trace.result s)
            | None -> ());
            absorb totals reuse;
            (* live suggestions ride the session's memo tables (cheap after
               the query above); interim lines print as the chart improves,
               the numbered list at the end is the authoritative n-best *)
            if !streaming then begin
              let on_candidate (c : Engine.candidate) =
                Format.fprintf ppf "  ~ %d. %s  (size %d, rev %d)@."
                  c.Engine.rank c.Engine.code c.Engine.size c.Engine.revision
              in
              let o =
                Session.respond ~on_candidate session
                  { Engine.input = Engine.Text q; mode = Engine.Ranked 5 }
              in
              List.iteri
                (fun i (r : Engine.ranked) ->
                  Format.fprintf ppf "%d. %s  (size %d, covers %d)@." (i + 1)
                    r.Engine.code r.Engine.size r.Engine.coverage)
                o.Engine.ranked
            end;
            loop ())
  in
  loop ()
