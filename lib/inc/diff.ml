open Dggt_nlu

type token_diff = {
  kept : int;
  added : int;
  removed : int;
  pairs : (int * int) list;
}

(* content equality: a token keeps its identity across revisions when kind
   and text match; the index is positional and shifts under edits *)
let tok_eq (a : Token.t) (b : Token.t) = a.kind = b.kind && a.text = b.text

let tokens ~prev ~next =
  let a = Array.of_list prev and b = Array.of_list next in
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] / b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if tok_eq a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if tok_eq a.(i) b.(j) && lcs.(i).(j) = 1 + lcs.(i + 1).(j + 1) then
      walk (i + 1) (j + 1) ((a.(i).Token.index, b.(j).Token.index) :: acc)
    else if lcs.(i + 1).(j) >= lcs.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  let pairs = walk 0 0 [] in
  let k = List.length pairs in
  { kept = k; added = m - k; removed = n - k; pairs }

type edge_diff = { e_kept : int; e_added : int; e_removed : int }

let edge_key (dg : Depgraph.t) (e : Depgraph.edge) =
  let lem id =
    match Depgraph.node_opt dg id with
    | Some n -> n.Depgraph.lemma
    | None -> "#" ^ string_of_int id
  in
  (lem e.gov, lem e.dep, e.label)

let edges ~prev ~next =
  let pk = List.map (edge_key prev) prev.Depgraph.edges in
  let nk = List.map (edge_key next) next.Depgraph.edges in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun k ->
      Hashtbl.replace tbl k
        (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    pk;
  let kept =
    List.fold_left
      (fun acc k ->
        match Hashtbl.find_opt tbl k with
        | Some c when c > 0 ->
            Hashtbl.replace tbl k (c - 1);
            acc + 1
        | _ -> acc)
      0 nk
  in
  {
    e_kept = kept;
    e_added = List.length nk - kept;
    e_removed = List.length pk - kept;
  }

let equivalent ~(prev : Depgraph.t) ~(next : Depgraph.t) =
  List.length prev.nodes = List.length next.nodes
  && List.length prev.edges = List.length next.edges
  && List.for_all2
       (fun (a : Depgraph.node) (b : Depgraph.node) ->
         a.text = b.text && a.lemma = b.lemma && a.pos = b.pos && a.lit = b.lit)
       prev.nodes next.nodes
  &&
  (* node ids may differ; map each id to its position in the (token-ordered)
     node list and require edges and root to agree positionally *)
  let positions (dg : Depgraph.t) =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (n : Depgraph.node) -> Hashtbl.replace tbl n.id i) dg.nodes;
    tbl
  in
  let pp = positions prev and np = positions next in
  let posn tbl id = Hashtbl.find_opt tbl id in
  List.for_all2
    (fun (a : Depgraph.edge) (b : Depgraph.edge) ->
      a.label = b.label
      && posn pp a.gov = posn np b.gov
      && posn pp a.dep = posn np b.dep)
    prev.edges next.edges
  && posn pp prev.root = posn np next.root
