type stage = { reused : int; computed : int }

type t = {
  revision : int;
  splice : bool;
  tokens_kept : int;
  tokens_added : int;
  tokens_removed : int;
  edges_kept : int;
  edges_added : int;
  edges_removed : int;
  words : stage;
  pairs : stage;
  dgg_rows : stage;
}

let total s = s.reused + s.computed
let ratio s = if total s = 0 then 0. else float_of_int s.reused /. float_of_int (total s)

let overall_ratio t =
  let r = t.words.reused + t.pairs.reused + t.dgg_rows.reused in
  let c = t.words.computed + t.pairs.computed + t.dgg_rows.computed in
  if r + c = 0 then 0. else float_of_int r /. float_of_int (r + c)

let summary t =
  if t.splice then
    Printf.sprintf "rev %d: spliced (%d dgg rows replayed)" t.revision
      t.dgg_rows.reused
  else
    Printf.sprintf "rev %d: reused %d/%d words, %d/%d pairs; %d searches"
      t.revision t.words.reused (total t.words) t.pairs.reused (total t.pairs)
      t.pairs.computed
