(** Per-revision reuse accounting.

    Every {!Session.query} returns one of these next to the outcome: how much
    of the previous revision's work the session was able to keep. The repl
    prints {!summary} after each answer; the server folds the records into
    the [dggt_inc_*] metrics; [bench incremental] compares the [computed]
    sides against a from-scratch run's counters. *)

type stage = {
  reused : int;   (** lookups served from session memory (no compute) *)
  computed : int; (** compute thunks actually invoked this revision *)
}

type t = {
  revision : int;       (** 1-based revision number within the session *)
  splice : bool;
      (** true when the pruned graph was equivalent to the previous
          revision's and stages 3-6 were skipped wholesale *)
  tokens_kept : int;
  tokens_added : int;
  tokens_removed : int;
  edges_kept : int;
  edges_added : int;
  edges_removed : int;
  words : stage;    (** WordToAPI candidate-set lookups *)
  pairs : stage;    (** EdgeToPath per-pair path searches *)
  dgg_rows : stage; (** DGG nodes: replayed on splice, built otherwise *)
}

val total : stage -> int
val ratio : stage -> float
(** [reused / (reused + computed)]; 0 when no lookups happened. *)

val overall_ratio : t -> float
(** Reused fraction across words, pairs and DGG rows together. *)

val summary : t -> string
(** One-line human summary, e.g.
    ["rev 3: spliced (14 dgg rows replayed)"] or
    ["rev 2: reused 5/6 words, 7/9 pairs; 2 searches"]. *)
