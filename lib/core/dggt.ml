open Dggt_util
open Dggt_nlu
open Dggt_grammar
module Trace = Dggt_obs.Trace

(* The paper's Algorithm 1: a bottom-up traversal of the pruned dependency
   graph builds the dynamic grammar graph, memoizing the optimal partial
   CGT per (word, API) pair; the final answer is read off the root word's
   best API node. Case I (single child) and Case II (sibling children,
   with grammar- and size-based pruning before prefix-tree merging) follow
   the paper; coverage-first comparison and the single-edge fallback are
   this implementation's robustness extensions (see DESIGN.md).

   The walk is generic over the PathMerge objective ({!Semiring.t}): it
   always extends by each child's BEST candidate — so the stream of
   candidates offered to every cell is the same for every objective, the
   Min_size instantiation is byte-identical to the historical ad-hoc memo
   by construction, and Top_k's head provably equals Min_size's answer.
   Top-k therefore ranks the best candidate per surviving derivation the
   min-size DP actually evaluated; full k-best substitution of non-best
   children is future work (DESIGN.md discusses the trade-off). *)

let singleton_cgt g api =
  match Ggraph.api_node g api with
  | Some nid ->
      Some
        (Cgt.merge_path Cgt.empty
           { Gpath.nodes = [| nid |]; edges = [||]; apis = [| api |] })
  | None -> None

(* coverage first (as in the cell order), then size, then the same
   structural tie-break as the baseline; node id (creation order — the
   WordToAPI ranking for single-word queries) breaks residual ties between
   structurally identical options. Score here is the exact float
   comparison the pre-semiring root selection used; the cell order's 1e-9
   epsilon applies only inside {!Semiring.Cell.plus}. *)
let root_compare ((a, ca) : Dgg.node * Semiring.cand) (b, cb) =
  match
    compare
      (List.length cb.Semiring.assignment)
      (List.length ca.Semiring.assignment)
  with
  | 0 -> (
      match compare ca.Semiring.size cb.Semiring.size with
      | 0 -> (
          match compare cb.Semiring.score ca.Semiring.score with
          | 0 -> (
              match Cgt.compare ca.Semiring.cgt cb.Semiring.cgt with
              | 0 -> compare (Dgg.id a) (Dgg.id b)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let synthesize_with_graph ?(objective = Semiring.Min_size) ~budget ~stats
    ?(gprune = true) ?(sprune = true) ?(trace : Trace.span option)
    ?(on_improve : (Semiring.cand -> unit) option) g (dg : Depgraph.t) w2a e2p =
  let dyng = Dgg.create objective in
  let start = Dgg.start dyng in
  let lemma_of id =
    match Depgraph.node_opt dg id with
    | Some n -> n.Depgraph.lemma
    | None -> string_of_int id
  in
  (* the emission seam: a root cell's best just changed, so the candidate
     that caused the change is the walk's current best interpretation of
     the whole query under that root API — stream it out. Only API nodes
     of the root dependency word qualify (they are exactly the cells
     [ranked_of_graph] reads the final n-best off); improvements of inner
     cells or partial-CGT nodes are intermediate state, not candidates. *)
  let emit_root node cand =
    match on_improve with
    | None -> ()
    | Some f -> (
        match Dgg.kind node with
        | Dgg.ApiN { dep; _ } when dep = dg.Depgraph.root -> f cand
        | _ -> ())
  in
  let record_improved node cand =
    let improved = Dgg.improved node cand in
    if improved then begin
      stats.Stats.dgg_improvements <- stats.Stats.dgg_improvements + 1;
      emit_root node cand
    end;
    improved
  in

  (* Seed an API node for a (dep, api) pair as a leaf interpretation. *)
  let seed_leaf dep api =
    match singleton_cgt g api with
    | None -> ()
    | Some cgt ->
        let n = Dgg.add_api dyng ~dep ~api in
        if not (Dgg.solved n) then begin
          Dgg.add_edge dyng ~src:start ~dst:n ~epath:None;
          ignore
            (record_improved n
               {
                 Semiring.size = 1;
                 cgt;
                 assignment = [ (dep, api) ];
                 score = Word2api.score w2a dep api;
               })
        end
  in

  (* Which APIs can a node take? The union of dep_api over its incoming
     edge's paths; for the root, the union of gov_api over its outgoing
     edges' paths. Precomputed in one pass over the edges (the per-node
     closure used to rescan every dependency edge per node — quadratic in
     the query size); accumulation is per-node in edge order, so the
     resulting lists match the old per-node scans element for element. *)
  let node_api_index =
    let tbl = Hashtbl.create 16 in
    (* id -> (incoming rev, outgoing rev) *)
    let get id = Option.value (Hashtbl.find_opt tbl id) ~default:([], []) in
    List.iter
      (fun (e : Depgraph.edge) ->
        List.iter
          (fun (p : Edge2path.epath) ->
            let inc, out = get e.Depgraph.dep in
            Hashtbl.replace tbl e.Depgraph.dep
              (p.Edge2path.dep_api :: inc, out);
            match p.Edge2path.gov_api with
            | Some a ->
                let inc, out = get e.Depgraph.gov in
                Hashtbl.replace tbl e.Depgraph.gov (inc, a :: out)
            | None -> ())
          (Edge2path.paths_of_edge e2p e))
      dg.Depgraph.edges;
    tbl
  in
  let node_apis (n : Depgraph.node) =
    let incoming, outgoing =
      Option.value
        (Hashtbl.find_opt node_api_index n.Depgraph.id)
        ~default:([], [])
    in
    Listutil.uniq (List.rev_append incoming (List.rev outgoing))
  in

  (* Bottom-up: deepest dependency nodes first. *)
  let order =
    List.map (fun (n : Depgraph.node) -> (Depgraph.depth dg n.Depgraph.id, n)) dg.Depgraph.nodes
    |> List.sort (fun (d1, n1) (d2, n2) ->
           match compare d2 d1 with
           | 0 -> compare n1.Depgraph.id n2.Depgraph.id
           | c -> c)
    |> List.map snd
  in

  let process (n1 : Depgraph.node) =
    let id = n1.Depgraph.id in
    let child_edges = Depgraph.children dg id in
    (* usable: paths whose dependent interpretation has a solved API node *)
    let usable (e : Depgraph.edge) =
      Edge2path.paths_of_edge e2p e
      |> List.filter (fun (p : Edge2path.epath) ->
             match Dgg.find_api dyng ~dep:e.Depgraph.dep ~api:p.Edge2path.dep_api with
             | Some child -> Dgg.solved child
             | None -> false)
    in
    let edges_with_paths =
      List.filter_map
        (fun e -> match usable e with [] -> None | ps -> Some (e, ps))
        child_edges
    in
    (* Every candidate API seeds a singleton interpretation (Algorithm 1,
       line 3 for leaves); for governors these are fallbacks that drop the
       subtree — coverage-first accumulation keeps them only when no fuller
       interpretation exists, which is what lets a mis-attached noise child
       degrade gracefully instead of erasing the word. *)
    List.iter (fun api -> seed_leaf id api)
      (Dggt_util.Listutil.uniq (Word2api.apis w2a id @ node_apis n1));
    if edges_with_paths <> [] then begin
      let all_paths = List.concat_map snd edges_with_paths in
      (* group by governor API; a governor API is viable only if it has a
         path for every sibling edge (same condition HISyn's consistency
         check enforces) *)
      let gov_apis =
        Listutil.uniq
          (List.filter_map (fun (p : Edge2path.epath) -> p.Edge2path.gov_api) all_paths)
      in
      let child_extra (p : Edge2path.epath) =
        match
          Dgg.find_api dyng ~dep:p.Edge2path.edge.Depgraph.dep ~api:p.Edge2path.dep_api
        with
        | Some child when Dgg.solved child -> Dgg.size child - 1
        | _ -> 0
      in
      let conflict_tbl = Gprune.prepare g all_paths in
      List.iter
        (fun a ->
          let groups =
            (* gov_api = None marks a root-anchored orphan path (HISyn's
               orphan treatment, reachable here when relocation is disabled
               in ablations): it does not constrain the governor's API, so
               it joins every governor's group; the final well-formedness
               check decides whether it actually fuses. *)
            List.map
              (fun (_, ps) ->
                List.filter
                  (fun (p : Edge2path.epath) ->
                    p.Edge2path.gov_api = Some a || p.Edge2path.gov_api = None)
                  ps)
              edges_with_paths
          in
          if List.for_all (fun gp -> gp <> []) groups then begin
            let case_ii = List.length groups > 1 in
            (* grammar-based pruning happens inside combination generation *)
            let survivors, total =
              Gprune.combos ~budget conflict_tbl ~enabled:(gprune && case_ii) groups
            in
            let after_gprune = List.length survivors in
            if case_ii then begin
              stats.Stats.combos_total <- stats.Stats.combos_total + total;
              stats.Stats.combos_after_gprune <-
                stats.Stats.combos_after_gprune + after_gprune
            end;
            let survivors =
              if case_ii then Sprune.prune ~enabled:sprune ~extra:child_extra survivors
              else survivors
            in
            if case_ii then
              stats.Stats.combos_after_sprune <-
                stats.Stats.combos_after_sprune + List.length survivors;
            if case_ii && Trace.on trace then
              Trace.str trace
                (Printf.sprintf "combos %s:%s" (lemma_of id) a)
                (Printf.sprintf "%d total, %d after gprune, %d after sprune"
                   total after_gprune (List.length survivors));
            let api_node = ref None in
            let get_api_node () =
              match !api_node with
              | Some n -> n
              | None ->
                  let n = Dgg.add_api dyng ~dep:id ~api:a in
                  api_node := Some n;
                  n
            in
            let merged_any = ref false in
            let try_combo idx combo =
                Budget.check budget;
                if case_ii then
                  stats.Stats.combos_merged <- stats.Stats.combos_merged + 1;
                (* merge the combination's paths (the prefix tree) together
                   with the children's optimal partial CGTs *)
                let acc, ok =
                  List.fold_left
                    (fun (acc, ok) (p : Edge2path.epath) ->
                      if not ok then (acc, false)
                      else
                        match
                          Dgg.find_api dyng
                            ~dep:p.Edge2path.edge.Depgraph.dep
                            ~api:p.Edge2path.dep_api
                        with
                        | Some child -> (
                            match Dgg.best child with
                            | Some cb ->
                                ( Semiring.times acc ~path:p.Edge2path.path
                                    ~child:cb,
                                  true )
                            | None -> (acc, false))
                        | None -> (acc, false))
                    (Semiring.one, true) combo
                in
                let merged = acc.Semiring.cgt in
                let assignment = (id, a) :: acc.Semiring.assignment in
                if ok && Synres.injective assignment && Cgt.well_formed g merged
                then begin
                  merged_any := true;
                  let size = Cgt.api_size g merged in
                  let score = Word2api.assignment_score w2a assignment in
                  let cand = { Semiring.size; cgt = merged; assignment; score } in
                  let target = get_api_node () in
                  if case_ii then begin
                    let pcgt = Dgg.add_pcgt dyng ~dep:id ~api:a ~idx in
                    ignore (record_improved pcgt cand);
                    List.iter
                      (fun (p : Edge2path.epath) ->
                        match
                          Dgg.find_api dyng
                            ~dep:p.Edge2path.edge.Depgraph.dep
                            ~api:p.Edge2path.dep_api
                        with
                        | Some child ->
                            Dgg.add_edge dyng ~src:child ~dst:pcgt
                              ~epath:(Some p.Edge2path.id)
                        | None -> ())
                      combo;
                    Dgg.add_edge dyng ~src:pcgt ~dst:target ~epath:None
                  end
                  else begin
                    match combo with
                    | [ p ] -> (
                        match
                          Dgg.find_api dyng
                            ~dep:p.Edge2path.edge.Depgraph.dep
                            ~api:p.Edge2path.dep_api
                        with
                        | Some child ->
                            Dgg.add_edge dyng ~src:child ~dst:target
                              ~epath:(Some p.Edge2path.id)
                        | None -> ())
                    | _ -> ()
                  end;
                  let improved = record_improved target cand in
                  if improved && Trace.on trace then
                    Trace.int trace
                      (Printf.sprintf "min_size %s:%s" (lemma_of id) a)
                      size
                end
            in
            List.iteri try_combo survivors;
            if not !merged_any then
              (* No joint interpretation of the sibling edges exists under
                 this governor (mutually exclusive "or" alternatives, e.g. a
                 matcher grammar that allows one inner argument). Degrade to
                 the best single-edge interpretations so the fullest subtree
                 still survives; coverage-first selection does the rest. *)
              List.iter
                (fun group -> List.iter (fun p -> try_combo 0 [ p ]) group)
                groups
          end)
        gov_apis
    end
  in
  List.iter process order;

  stats.Stats.dgg_nodes <- Dgg.node_count dyng;
  stats.Stats.dgg_edges <- Dgg.edge_count dyng;
  if Trace.on trace then begin
    (* level sizes: how many API interpretations survived per word,
       bottom-up — the width of the dynamic programming table *)
    List.iter
      (fun (n : Depgraph.node) ->
        Trace.int trace
          (Printf.sprintf "dgg level %s" n.Depgraph.lemma)
          (List.length (Dgg.api_nodes_of_dep dyng n.Depgraph.id)))
      order;
    Trace.int trace "dgg_nodes" (Dgg.node_count dyng);
    Trace.int trace "dgg_edges" (Dgg.edge_count dyng)
  end;

  (* the optimal CGT backtrack: the root word's best API node *)
  let res =
    Dgg.api_nodes_of_dep dyng dg.Depgraph.root
    |> List.filter_map (fun n -> Option.map (fun c -> (n, c)) (Dgg.best n))
    |> Listutil.min_by root_compare
    |> Option.map (fun (_, (c : Semiring.cand)) ->
           { Synres.cgt = c.Semiring.cgt; size = c.Semiring.size;
             assignment = c.Semiring.assignment })
  in
  (res, dyng)

let synthesize ?objective ~budget ~stats ?gprune ?sprune ?trace g dg w2a e2p =
  fst
    (synthesize_with_graph ?objective ~budget ~stats ?gprune ?sprune ?trace g
       dg w2a e2p)

let ranked_of_graph dyng ~root =
  Dgg.api_nodes_of_dep dyng root
  |> List.concat_map (fun n ->
         List.mapi (fun i c -> (n, i, c)) (Dgg.choices n))
  |> List.sort (fun (n1, i1, c1) (n2, i2, c2) ->
         match root_compare (n1, c1) (n2, c2) with
         | 0 -> compare i1 i2
         | c -> c)
  |> List.map (fun (_, _, c) -> c)
