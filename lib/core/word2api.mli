(** Step 3: WordToAPI — candidate APIs for each query word.

    Each surviving word of the pruned dependency graph is scored against
    every API's keywords ({!Dggt_nlu.Similarity}); the top-[k] APIs above
    the score threshold become the word's candidates. Literal tokens map to
    the domain's literal-bearing APIs (STRING/NUMBER-like).

    The candidate fan-out is the p_l of the paper's complexity analysis:
    raising [top_k] grows the search space of both engines. *)

type candidate = { api : string; score : float }
(** Scores carry a tiny penalty proportional to the API name's length:
    among equally matching candidates the shorter (more canonical) name
    ranks first — "argument" prefers [hasArgument] over
    [hasAnyTemplateArgument]. *)

type t
(** The WordToAPI map for one query. *)

val build :
  ?top_k:int ->
  ?threshold:float ->
  ?lookup:
    (lemma:string ->
    pos:Dggt_nlu.Pos.t ->
    (unit -> candidate list) ->
    candidate list) ->
  Apidoc.t ->
  Dggt_nlu.Depgraph.t ->
  t
(** Defaults: [top_k = 4], [threshold = Dggt_nlu.Similarity.min_score].
    Candidates are ordered by descending score (ties by API name for
    determinism).

    [lookup] is a memoization hook: when given, each word's candidate list
    is obtained as [lookup ~lemma ~pos compute] instead of calling [compute]
    directly. A caller (the serving layer) can satisfy the lookup from a
    cache keyed on [(lemma, pos)] — word scoring depends only on the lemma,
    the POS tag and the document, so results are reusable across queries.
    The cache key must also distinguish anything that changes scoring:
    the document, [top_k] and [threshold] (the server keys per domain and
    uses one fixed configuration per domain). *)

val candidates : t -> int -> candidate list
(** Candidates of a dependency-graph node id ([] if none). *)

val apis : t -> int -> string list
val has_candidates : t -> int -> bool

val score : t -> int -> string -> float
(** Score of one (node, api) pair; 0 when absent. *)

val assignment_score : t -> (int * string) list -> float
(** Sum of {!score} over an engine assignment (tie-break criterion). *)

val uncovered : t -> int list
(** Node ids that received no candidate, in token order. *)

val restrict : t -> int -> string -> t
(** [restrict t node api] pins node's candidate list to the single [api]
    (used when orphan relocation fixes an interpretation). *)

val restrict_list : t -> int -> string list -> t
(** Keep only the listed APIs (in the node's existing ranking). *)

val merge_modifier : t -> head:int -> modifier:int -> string list -> t
(** Absorption: restrict [head] to the listed shared APIs, adding the
    modifier word's score to each survivor and re-ranking — so "while
    loops" prefers whileStmt (strong on "while") over doStmt (marginally
    stronger on "loops" alone). *)

val cap : t -> int -> t
(** Truncate every candidate list to its first [k] entries. The engine
    builds the map uncapped, lets modifier absorption and unit filtering
    see the full ranking, then caps to the configured fan-out. *)

val pp : Format.formatter -> t -> unit
