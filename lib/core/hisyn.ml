open Dggt_util

(* API-choice consistency: each dependency node must be interpreted as one
   API across the whole combination. *)
let consistent_assignment combo =
  let tbl = Hashtbl.create 8 in
  let ok = ref true in
  let bind node api =
    match Hashtbl.find_opt tbl node with
    | Some a when a <> api -> ok := false
    | Some _ -> ()
    | None -> Hashtbl.add tbl node api
  in
  List.iter
    (fun (p : Edge2path.epath) ->
      (match p.Edge2path.gov_api with
      | Some a -> bind p.Edge2path.edge.Dggt_nlu.Depgraph.gov a
      | None -> ());
      bind p.Edge2path.edge.Dggt_nlu.Depgraph.dep p.Edge2path.dep_api)
    combo;
  if not !ok then None
  else
    let assignment = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    if Synres.injective assignment then Some assignment else None

module Trace = Dggt_obs.Trace

let synthesize ~budget ~stats ?(trace : Trace.span option) g
    (dg : Dggt_nlu.Depgraph.t) w2a e2p =
  let groups =
    List.filter_map
      (fun e ->
        match Edge2path.paths_of_edge e2p e with [] -> None | ps -> Some ps)
      dg.Dggt_nlu.Depgraph.edges
  in
  if groups = [] then None
  else begin
    stats.Stats.hisyn_combos_possible <- Listutil.cartesian_count groups;
    Trace.int trace "combos_possible" stats.Stats.hisyn_combos_possible;
    let best = ref None in
    let consider cgt assignment =
      let size = Cgt.api_size g cgt in
      let score = Word2api.assignment_score w2a assignment in
      match !best with
      | Some (bs, bscore, bcgt, _)
        when bs < size
             || (bs = size
                && (bscore > score +. 1e-9
                   || (Float.abs (bscore -. score) <= 1e-9
                      && Cgt.compare bcgt cgt <= 0))) ->
          ()
      | _ -> best := Some (size, score, cgt, assignment)
    in
    Listutil.iter_cartesian
      (fun combo ->
        Budget.check budget;
        stats.Stats.hisyn_combos_enumerated <-
          stats.Stats.hisyn_combos_enumerated + 1;
        match consistent_assignment combo with
        | None -> ()
        | Some assignment ->
            let cgt =
              List.fold_left
                (fun acc (p : Edge2path.epath) ->
                  Cgt.merge_path acc p.Edge2path.path)
                Cgt.empty combo
            in
            if Cgt.well_formed g cgt then consider cgt assignment)
      groups;
    Trace.int trace "combos_enumerated" stats.Stats.hisyn_combos_enumerated;
    (if Trace.on trace then
       match !best with
       | Some (size, score, _, _) ->
           Trace.int trace "best_size" size;
           Trace.float trace "best_score" score
       | None -> Trace.str trace "best" "(no well-formed combination)");
    Option.map (fun (size, _, cgt, assignment) -> { Synres.cgt; size; assignment }) !best
  end
