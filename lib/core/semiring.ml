(* The PathMerge algebra. One candidate shape, one comparison, one cell
   accumulator — the DGGT chart walk is written once against this module
   and instantiated per objective (see DESIGN.md "Semiring PathMerge").

   The MinSize instantiation must be byte-identical to the historical
   ad-hoc memo (mutable min_size/min_cgt/assignment/score on every DGG
   node, replaced via update_min). Two things carry that proof:

   - [compare_cand] is the total order whose strict "less than" is exactly
     update_min's "better than" predicate, including the 1e-9 score
     epsilon and the CGT structural tie-break;
   - [Cell.plus] with a retention limit of 1 degenerates to "replace the
     stored candidate iff the new one is strictly better", which is
     update_min verbatim. *)

type cand = {
  size : int;
  cgt : Cgt.t;
  assignment : (int * string) list;
  score : float;
}

type t = Min_size | Count | Top_k of int

let retained = function Min_size | Count -> 1 | Top_k k -> max k 1
let counting = function Count -> true | Min_size | Top_k _ -> false

let to_string = function
  | Min_size -> "min-size"
  | Count -> "count"
  | Top_k k -> Printf.sprintf "top-%d" k

let coverage c = List.length c.assignment

(* Coverage first (a partial CGT that interprets more of the query's words
   wins), then size, then the WordToAPI score of the assignment (scores
   within 1e-9 are equal — they come from summed floats), then CGT
   structure — the structural tie-break keeps DGGT and the HISyn baseline
   on the same tree among equal optima. *)
let compare_cand a b =
  match compare (coverage b) (coverage a) with
  | 0 -> (
      match compare a.size b.size with
      | 0 ->
          if a.score > b.score +. 1e-9 then -1
          else if b.score > a.score +. 1e-9 then 1
          else Cgt.compare a.cgt b.cgt
      | c -> c)
  | c -> c

(* The multiplicative identity: extending [one] by a grammar path yields
   the path's own partial CGT. *)
let one = { size = 0; cgt = Cgt.empty; assignment = []; score = 0.0 }

(* [times]: fuse an accumulated partial candidate with one sibling path
   and that child's memoized candidate. The merge order (path into the
   accumulator first, then the child's CGT; child assignment consed in
   front) reproduces the historical fold exactly — assignment order feeds
   Word2api.assignment_score, whose float summation order must not
   change. Size and score are recomputed by the caller once the whole
   combination is fused ([times] is associative on the CGT component
   only, which is all the walk accumulates). *)
let times acc ~path ~child =
  {
    size = 0;
    cgt = Cgt.merge (Cgt.merge_path acc.cgt path) child.cgt;
    assignment = child.assignment @ acc.assignment;
    score = 0.0;
  }

module CgtSet = Set.Make (Cgt)

module Cell = struct
  type nonrec cand = cand

  type t = {
    limit : int;
    counting : bool;
    mutable cands : cand list;  (* sorted best-first; length <= limit *)
    mutable seen : CgtSet.t;    (* Count objective: distinct CGTs offered *)
    mutable distinct : int;
  }

  let best c = match c.cands with [] -> None | h :: _ -> Some h
  let solved c = c.cands <> []
  let choices c = c.cands
  let count c = c.distinct

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest

  (* [plus]: accumulate a candidate. Returns [true] iff the cell's best
     changed — the signal the tracing layer records as a min_size
     improvement. Ties insert AFTER existing equals (the historical memo
     kept the incumbent on an exact tie); an exact duplicate (same order
     class and same assignment) is dropped. *)
  let plus c x =
    if c.counting && not (CgtSet.mem x.cgt c.seen) then begin
      c.seen <- CgtSet.add x.cgt c.seen;
      c.distinct <- c.distinct + 1
    end;
    let improved =
      match c.cands with [] -> true | h :: _ -> compare_cand x h < 0
    in
    let rec ins = function
      | [] -> [ x ]
      | y :: rest as l ->
          let cmp = compare_cand x y in
          if cmp < 0 then x :: l
          else if cmp = 0 && y.assignment = x.assignment then l
          else y :: ins rest
    in
    let merged = ins c.cands in
    c.cands <-
      (if List.length merged > c.limit then take c.limit merged else merged);
    improved
end

(* The additive identity: a cell holding no derivation. *)
let zero obj =
  {
    Cell.limit = retained obj;
    counting = counting obj;
    cands = [];
    seen = CgtSet.empty;
    distinct = 0;
  }

let plus = Cell.plus
