open Dggt_nlu

type candidate = { api : string; score : float }

type t = {
  by_node : (int * candidate list) list; (* in token order *)
}

let name_len_penalty api = 0.001 *. float_of_int (String.length api)

(* A hit on the API's own name subtokens is stronger evidence than a hit
   on its description prose ("operator" names binaryOperator; it merely
   appears in hasLHS's description). *)
let desc_factor = 0.92

let score_word_against_entry ?(desc_only = false) lemma (e : Apidoc.entry) =
  let name_s =
    if desc_only then 0.0
    else Similarity.best_against lemma e.Apidoc.name_keywords
  in
  let desc_s = desc_factor *. Similarity.best_against lemma e.Apidoc.keywords in
  let s = Float.max name_s desc_s in
  if s > 0.0 then s -. name_len_penalty e.Apidoc.api else 0.0

let build ?(top_k = 4) ?(threshold = Similarity.min_score) ?lookup doc
    (g : Depgraph.t) =
  let lit_apis = Apidoc.literal_apis doc in
  let num_apis = Apidoc.number_apis doc in
  let compute (n : Depgraph.node) =
    match n.pos with
    | Pos.LIT | Pos.CD ->
        (* literal tokens map to the literal-bearing APIs; numerals
           prefer number APIs when the document distinguishes them *)
        let pool =
          match n.pos with
          | Pos.CD when num_apis <> [] -> num_apis
          | _ -> lit_apis
        in
        List.map (fun api -> { api; score = 1.0 -. name_len_penalty api }) pool
    | _ ->
        let admissible (e : Apidoc.entry) =
          match e.Apidoc.pos_pref with
          | Apidoc.Any -> true
          | Apidoc.Verbish -> not (Pos.is_noun n.pos)
          | Apidoc.Nounish -> not (Pos.is_verb n.pos)
        in
        let scored =
          List.filter_map
            (fun (e : Apidoc.entry) ->
              if not (admissible e) then None
              else
                (* a quantifying determiner matching a fragment of a
                   camelCase name ("all" in isCatchAll) is coincidence;
                   determiners carry meaning only through descriptions *)
                let desc_only = n.pos = Pos.DT in
                let s = score_word_against_entry ~desc_only n.lemma e in
                if s >= threshold then Some { api = e.Apidoc.api; score = s }
                else None)
            (Apidoc.entries doc)
        in
        let sorted =
          List.sort
            (fun a b ->
              match compare b.score a.score with
              | 0 -> compare a.api b.api
              | c -> c)
            scored
        in
        Dggt_util.Listutil.take top_k sorted
  in
  let cands_of (n : Depgraph.node) =
    match lookup with
    | None -> compute n
    | Some f -> f ~lemma:n.Depgraph.lemma ~pos:n.Depgraph.pos (fun () -> compute n)
  in
  let by_node = List.map (fun (n : Depgraph.node) -> (n.Depgraph.id, cands_of n)) g.Depgraph.nodes in
  { by_node }

let candidates t id =
  match List.assoc_opt id t.by_node with Some cs -> cs | None -> []

let score t id api =
  match List.find_opt (fun c -> c.api = api) (candidates t id) with
  | Some c -> c.score
  | None -> 0.0

let assignment_score t asg =
  List.fold_left (fun acc (id, api) -> acc +. score t id api) 0.0 asg

let apis t id = List.map (fun c -> c.api) (candidates t id)
let has_candidates t id = candidates t id <> []

let uncovered t =
  List.filter_map (fun (id, cs) -> if cs = [] then Some id else None) t.by_node

let restrict_list t node apis =
  {
    by_node =
      List.map
        (fun (id, cs) ->
          if id = node then (id, List.filter (fun c -> List.mem c.api apis) cs)
          else (id, cs))
        t.by_node;
  }

let merge_modifier t ~head ~modifier apis =
  let mod_score api =
    match List.find_opt (fun c -> c.api = api) (candidates t modifier) with
    | Some c -> c.score
    | None -> 0.0
  in
  {
    by_node =
      List.map
        (fun (id, cs) ->
          if id = head then
            ( id,
              List.filter_map
                (fun c ->
                  if List.mem c.api apis then
                    Some { c with score = c.score +. mod_score c.api }
                  else None)
                cs
              |> List.sort (fun a b ->
                     match compare b.score a.score with
                     | 0 -> compare a.api b.api
                     | c -> c) )
          else (id, cs))
        t.by_node;
  }

let cap t k =
  { by_node = List.map (fun (id, cs) -> (id, Dggt_util.Listutil.take k cs)) t.by_node }

let restrict t node api =
  {
    by_node =
      List.map
        (fun (id, cs) ->
          if id = node then
            (id, List.filter (fun c -> c.api = api) cs)
          else (id, cs))
        t.by_node;
  }

let pp fmt t =
  List.iter
    (fun (id, cs) ->
      Format.fprintf fmt "%d -> {%s}@ " id
        (String.concat ", "
           (List.map (fun c -> Printf.sprintf "%s:%.2f" c.api c.score) cs)))
    t.by_node
