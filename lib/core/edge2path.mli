(** Step 4: EdgeToPath — candidate grammar paths per dependency edge.

    For every edge (n1 -> n2) of the pruned dependency graph and every pair
    (a, b) of candidate APIs of n1 and n2, the reversed all-path search
    collects the grammar paths a ~> b. A dependent with no path for any
    candidate pair is an {e orphan} (paper §V-B).

    Paths carry globally unique integer ids (per map) plus a printable
    label "e.k" (edge ordinal, path ordinal) matching the paper's figures. *)

type epath = {
  id : int;             (** unique within this map *)
  label : string;       (** "2.1"-style display label *)
  edge : Dggt_nlu.Depgraph.edge;
  gov_api : string option; (** None for root-anchored orphan paths *)
  dep_api : string;
  path : Dggt_grammar.Gpath.t;
}

type t

val build :
  ?limits:Dggt_grammar.Gpath.limits ->
  ?pair_lookup:
    (src:string ->
    dst:string ->
    (unit -> Dggt_grammar.Gpath.t list) ->
    Dggt_grammar.Gpath.t list) ->
  ?autom:Dggt_autom.Autom.t ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  t
(** Computes candidate paths for every edge. Orphan dependents are only
    {e detected} here; how they are handled differs per engine: the HISyn
    baseline re-anchors them at the grammar root ({!anchor_orphans}),
    DGGT relocates them ({!Orphan}).

    [pair_lookup] is a memoization hook for the per-pair all-path search:
    when given, the paths for [(src_api, dst_api)] come from
    [pair_lookup ~src ~dst compute] instead of a direct search. The search
    depends only on the grammar graph, the API pair and [limits] — both
    query-independent — so a serving layer can back the hook with a cache
    keyed [(domain, src, dst)] and reuse results across requests.

    [autom] is the fast path: per-pair searches run on the compiled
    automaton's state tables ({!Dggt_autom.Autom.paths_between_apis}) —
    byte-identical paths, ids and labels, at table-walk cost plus the
    automaton's cross-query memo. It must be compiled from {e this}
    graph ([Dggt_autom.Autom.graph autom == g]); a mismatched automaton
    is ignored and the per-query DFS runs instead. [pair_lookup] still
    wraps the automaton-backed compute, so reuse accounting and serving
    caches keep working unchanged. *)

val paths_of_edge : t -> Dggt_nlu.Depgraph.edge -> epath list
val all : t -> epath list
val orphans : t -> int list
(** Dependent node ids whose edge has no candidate path, token order. *)

val total_path_count : t -> int
(** Cached at construction — O(1), safe to poll per request (the tracer
    does). *)

val find : t -> int -> epath option
(** Hash lookup by path id — O(1). *)

val anchor_orphans :
  ?limits:Dggt_grammar.Gpath.limits ->
  ?autom:Dggt_autom.Autom.t ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  t ->
  Dggt_nlu.Depgraph.t * t
(** The HISyn treatment: every orphan becomes a child of the dependency
    root, with candidate paths searched from the {e grammar root} down to
    the orphan's APIs ([gov_api = None]). Returns the rewritten dependency
    graph and the extended map. [autom] accelerates the root-anchored
    searches exactly as in {!build}. *)

val pp : Dggt_grammar.Ggraph.t -> Format.formatter -> t -> unit
