open Dggt_nlu
open Dggt_grammar

type epath = {
  id : int;
  label : string;
  edge : Depgraph.edge;
  gov_api : string option;
  dep_api : string;
  path : Gpath.t;
}

type t = {
  by_edge : ((int * int) * epath list) list; (* (gov, dep) keyed, edge order *)
  orphan_ids : int list;
  next_id : int;
}

let edge_key (e : Depgraph.edge) = (e.Depgraph.gov, e.Depgraph.dep)

let search_pairs ?limits ?pair_lookup g govs deps =
  (* all paths for each (gov_api, dep_api) pair, deduplicated *)
  let search a b =
    let compute () = Gpath.search_between_apis ?limits g ~src_api:a ~dst_api:b in
    match pair_lookup with
    | None -> compute ()
    | Some f -> f ~src:a ~dst:b compute
  in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          if a = b then []
          else search a b |> List.map (fun p -> (Some a, b, p)))
        deps)
    govs

let build ?limits ?pair_lookup g (dg : Depgraph.t) w2a =
  let next_id = ref 0 in
  let by_edge =
    List.mapi
      (fun edge_idx (e : Depgraph.edge) ->
        let govs = Word2api.apis w2a e.Depgraph.gov in
        let deps = Word2api.apis w2a e.Depgraph.dep in
        let found = search_pairs ?limits ?pair_lookup g govs deps in
        let eps =
          List.mapi
            (fun k (gov_api, dep_api, path) ->
              let id = !next_id in
              incr next_id;
              {
                id;
                label = Printf.sprintf "%d.%d" (edge_idx + 1) (k + 1);
                edge = e;
                gov_api;
                dep_api;
                path;
              })
            found
        in
        (edge_key e, eps))
      dg.Depgraph.edges
  in
  let orphan_ids =
    List.filter_map
      (fun ((_, dep), eps) -> if eps = [] then Some dep else None)
      by_edge
    |> List.sort_uniq compare
  in
  { by_edge; orphan_ids; next_id = !next_id }

let paths_of_edge t e =
  match List.assoc_opt (edge_key e) t.by_edge with Some l -> l | None -> []

let all t = List.concat_map snd t.by_edge
let orphans t = t.orphan_ids
let total_path_count t = List.length (all t)
let find t id = List.find_opt (fun p -> p.id = id) (all t)

let anchor_orphans ?limits g (dg : Depgraph.t) w2a t =
  (* Rewrite each orphan's edge to hang off the dependency root, and search
     paths from the grammar root down to the orphan's candidate APIs. *)
  let orphan_set = t.orphan_ids in
  let dg' =
    {
      dg with
      Depgraph.edges =
        List.map
          (fun (e : Depgraph.edge) ->
            if List.mem e.Depgraph.dep orphan_set && e.Depgraph.gov <> dg.Depgraph.root
            then { e with Depgraph.gov = dg.Depgraph.root }
            else e)
          dg.Depgraph.edges;
    }
  in
  let next_id = ref t.next_id in
  let by_edge =
    List.mapi
      (fun edge_idx (e : Depgraph.edge) ->
        if List.mem e.Depgraph.dep orphan_set then begin
          let deps = Word2api.apis w2a e.Depgraph.dep in
          let found =
            List.concat_map
              (fun b ->
                match Ggraph.api_node g b with
                | None -> []
                | Some dst ->
                    Gpath.search_from_root ?limits g ~dst
                    |> List.map (fun p -> (None, b, p)))
              deps
          in
          let eps =
            List.mapi
              (fun k (gov_api, dep_api, path) ->
                let id = !next_id in
                incr next_id;
                {
                  id;
                  label = Printf.sprintf "%d.%d*" (edge_idx + 1) (k + 1);
                  edge = e;
                  gov_api;
                  dep_api;
                  path;
                })
              found
          in
          (edge_key e, eps)
        end
        else
          (* carry over the existing paths, updating nothing *)
          (edge_key e, paths_of_edge t e))
      dg'.Depgraph.edges
  in
  (dg', { by_edge; orphan_ids = []; next_id = !next_id })

let pp g fmt t =
  List.iter
    (fun (_, eps) ->
      List.iter
        (fun p ->
          Format.fprintf fmt "%s: %s->%s %a@ " p.label
            (Option.value p.gov_api ~default:"<root>")
            p.dep_api (Gpath.pp g) p.path)
        eps)
    t.by_edge
