open Dggt_nlu
open Dggt_grammar

type epath = {
  id : int;
  label : string;
  edge : Depgraph.edge;
  gov_api : string option;
  dep_api : string;
  path : Gpath.t;
}

(* Entries stay an edge-ordered array (pp and [all] need edge order);
   per-edge and per-id lookups go through hash tables built once at
   construction, and the aggregates the tracer asks for on every request
   ([all], [total_path_count]) are cached up front. All fields are
   read-only after [make]: one map is shared freely across domains. *)
type t = {
  entries : ((int * int) * epath list) array; (* (gov, dep) keyed, edge order *)
  by_key : (int * int, epath list) Hashtbl.t;
  by_id : (int, epath) Hashtbl.t;
  all_paths : epath list; (* concatenation of [entries], edge order *)
  total : int;
  orphan_ids : int list;
  next_id : int;
}

let edge_key (e : Depgraph.edge) = (e.Depgraph.gov, e.Depgraph.dep)

let make entries ~orphan_ids ~next_id =
  let by_key = Hashtbl.create (max 8 (Array.length entries)) in
  let by_id = Hashtbl.create 64 in
  Array.iter
    (fun (key, eps) ->
      (* first entry wins, matching the old assoc-list lookup when two
         dependency edges share a (gov, dep) pair *)
      if not (Hashtbl.mem by_key key) then Hashtbl.add by_key key eps;
      List.iter (fun p -> Hashtbl.replace by_id p.id p) eps)
    entries;
  let all_paths = List.concat_map snd (Array.to_list entries) in
  {
    entries;
    by_key;
    by_id;
    all_paths;
    total = List.length all_paths;
    orphan_ids;
    next_id;
  }

(* all candidate (gov_api, dep_api) pairs, gov-major, self-pairs skipped —
   the order the per-edge reassembly below consumes them in *)
let candidate_pairs govs deps =
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a = b then None else Some (a, b)) deps)
    govs

(* The per-pair search, automaton-accelerated when the caller compiled
   one for this graph. The physical-equality guard turns a mismatched
   automaton (compiled from some other graph) into a correct DFS run
   instead of paths over the wrong node ids; Engine.target pairs the two
   by construction, so the guard never fires on the normal path. *)
let searcher ?limits ?autom g =
  match autom with
  | Some a when Dggt_autom.Autom.graph a == g ->
      fun ~src_api ~dst_api ->
        Dggt_autom.Autom.paths_between_apis ?limits a ~src_api ~dst_api
  | _ -> fun ~src_api ~dst_api -> Gpath.search_between_apis ?limits g ~src_api ~dst_api

let root_searcher ?limits ?autom g =
  match autom with
  | Some a when Dggt_autom.Autom.graph a == g ->
      fun ~dst -> Dggt_autom.Autom.paths_from_root ?limits a ~dst
  | _ -> fun ~dst -> Gpath.search_from_root ?limits g ~dst

let build ?limits ?pair_lookup ?autom g (dg : Depgraph.t) w2a =
  let searcher = searcher ?limits ?autom g in
  let search (a, b) =
    let compute () = searcher ~src_api:a ~dst_api:b in
    match pair_lookup with
    | None -> compute ()
    | Some f -> f ~src:a ~dst:b compute
  in
  let edge_pairs =
    List.map
      (fun (e : Depgraph.edge) ->
        let govs = Word2api.apis w2a e.Depgraph.gov in
        let deps = Word2api.apis w2a e.Depgraph.dep in
        (e, candidate_pairs govs deps))
      dg.Depgraph.edges
  in
  let results =
    List.map search (List.concat_map snd edge_pairs) |> Array.of_list
  in
  let cursor = ref 0 in
  let next_id = ref 0 in
  let entries =
    List.mapi
      (fun edge_idx (e, pairs) ->
        let found =
          List.concat_map
            (fun (a, b) ->
              let paths = results.(!cursor) in
              incr cursor;
              List.map (fun p -> (Some a, b, p)) paths)
            pairs
        in
        let eps =
          List.mapi
            (fun k (gov_api, dep_api, path) ->
              let id = !next_id in
              incr next_id;
              {
                id;
                label = Printf.sprintf "%d.%d" (edge_idx + 1) (k + 1);
                edge = e;
                gov_api;
                dep_api;
                path;
              })
            found
        in
        (edge_key e, eps))
      edge_pairs
  in
  let orphan_ids =
    List.filter_map
      (fun ((_, dep), eps) -> if eps = [] then Some dep else None)
      entries
    |> List.sort_uniq compare
  in
  make (Array.of_list entries) ~orphan_ids ~next_id:!next_id

let paths_of_edge t e =
  match Hashtbl.find_opt t.by_key (edge_key e) with Some l -> l | None -> []

let all t = t.all_paths
let orphans t = t.orphan_ids
let total_path_count t = t.total
let find t id = Hashtbl.find_opt t.by_id id

let anchor_orphans ?limits ?autom g (dg : Depgraph.t) w2a t =
  let search_root = root_searcher ?limits ?autom g in
  (* Rewrite each orphan's edge to hang off the dependency root, and search
     paths from the grammar root down to the orphan's candidate APIs. *)
  let orphan_set = t.orphan_ids in
  let dg' =
    {
      dg with
      Depgraph.edges =
        List.map
          (fun (e : Depgraph.edge) ->
            if List.mem e.Depgraph.dep orphan_set && e.Depgraph.gov <> dg.Depgraph.root
            then { e with Depgraph.gov = dg.Depgraph.root }
            else e)
          dg.Depgraph.edges;
    }
  in
  (* per orphan edge, the candidate APIs (with their resolved grammar
     nodes) whose root-anchored searches run below *)
  let edge_deps =
    List.map
      (fun (e : Depgraph.edge) ->
        if List.mem e.Depgraph.dep orphan_set then
          (e, `Orphan (Word2api.apis w2a e.Depgraph.dep))
        else (e, `Kept))
      dg'.Depgraph.edges
  in
  let tasks =
    List.concat_map
      (function
        | _, `Orphan deps -> List.map (fun b -> (b, Ggraph.api_node g b)) deps
        | _, `Kept -> [])
      edge_deps
  in
  let results =
    List.map
      (fun (_, dst) ->
        match dst with None -> [] | Some dst -> search_root ~dst)
      tasks
    |> Array.of_list
  in
  let cursor = ref 0 in
  let next_id = ref t.next_id in
  let entries =
    List.mapi
      (fun edge_idx (e, kind) ->
        match kind with
        | `Orphan deps ->
            let found =
              List.concat_map
                (fun b ->
                  let paths = results.(!cursor) in
                  incr cursor;
                  List.map (fun p -> (None, b, p)) paths)
                deps
            in
            let eps =
              List.mapi
                (fun k (gov_api, dep_api, path) ->
                  let id = !next_id in
                  incr next_id;
                  {
                    id;
                    label = Printf.sprintf "%d.%d*" (edge_idx + 1) (k + 1);
                    edge = e;
                    gov_api;
                    dep_api;
                    path;
                  })
                found
            in
            (edge_key e, eps)
        | `Kept ->
            (* carry over the existing paths, updating nothing *)
            (edge_key e, paths_of_edge t e))
      edge_deps
  in
  (dg', make (Array.of_list entries) ~orphan_ids:[] ~next_id:!next_id)

let pp g fmt t =
  Array.iter
    (fun (_, eps) ->
      List.iter
        (fun p ->
          Format.fprintf fmt "%s: %s->%s %a@ " p.label
            (Option.value p.gov_api ~default:"<root>")
            p.dep_api (Gpath.pp g) p.path)
        eps)
    t.entries
