(** The PathMerge semiring: the algebra the DGGT dynamic program runs
    over, factored out of the chart walk so min-size, count and top-k
    ranked synthesis are instantiations of one DP (see DESIGN.md).

    A {e candidate} is a partial CGT with its bookkeeping (API size, the
    word→API assignment that produced it, the assignment's WordToAPI
    score). The walk combines candidates multiplicatively along grammar
    paths ({!times}, identity {!one}) and accumulates alternatives
    additively into per-node {!Cell.t}s ({!plus}, identity {!zero}).

    The {!Min_size} instantiation retains one candidate per cell under
    {!compare_cand} — byte-identical to the historical mutable
    [min_size]/[min_cgt] memo by construction. {!Count} additionally
    counts distinct CGTs offered to each cell. {!Top_k} retains a bounded
    best-first list per cell, which is what makes real n-best enumeration
    (and streaming ranked suggestions) a read off the finished chart
    instead of a re-run. *)

type cand = {
  size : int;  (** [Cgt.api_size] of [cgt] (0 while partial) *)
  cgt : Cgt.t;
  assignment : (int * string) list;
      (** dependency word -> API, innermost child first *)
  score : float;  (** [Word2api.assignment_score] of [assignment] *)
}

type t = Min_size | Count | Top_k of int
(** The objective. Structural equality is meaningful (used by the
    incremental session's configuration comparison). *)

val retained : t -> int
(** Candidates kept per cell: 1, 1, [max k 1]. *)

val counting : t -> bool
val to_string : t -> string

val coverage : cand -> int
(** Number of query words the candidate interprets. *)

val compare_cand : cand -> cand -> int
(** The documented tie-break as a total order, best first: coverage
    (descending), then size, then score (descending, scores within 1e-9
    considered equal), then [Cgt.compare]. [compare_cand a b < 0] is
    exactly the historical [update_min] "a is strictly better than b". *)

val one : cand
(** Multiplicative identity: the empty partial candidate. *)

val times : cand -> path:Dggt_grammar.Gpath.t -> child:cand -> cand
(** Fuse one sibling grammar path and its child's memoized candidate into
    the accumulator, preserving the historical merge and assignment
    order. The caller recomputes [size]/[score] when the combination is
    complete. *)

(** A chart cell: the bounded best-first accumulation of candidates at
    one DGG node. Only {!plus} mutates a cell — the walk is the sole
    writer; everything else reads. *)
module Cell : sig
  type nonrec cand = cand
  type t

  val best : t -> cand option
  val solved : t -> bool
  val choices : t -> cand list
  (** All retained candidates, best first (at most {!retained}). *)

  val count : t -> int
  (** Distinct CGTs offered ({!Count} objective; 0 otherwise). *)

  val plus : t -> cand -> bool
  (** Accumulate; [true] iff the cell's best candidate changed. Ties keep
      the incumbent; exact duplicates are dropped. *)
end

val zero : t -> Cell.t
(** Additive identity: a fresh empty cell for the objective. *)

val plus : Cell.t -> cand -> bool
(** Alias of {!Cell.plus}. *)
