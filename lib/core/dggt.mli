(** Dynamic grammar graph-based translation — the paper's Algorithm 1.

    DGGT replaces HISyn's global combination enumeration with dynamic
    programming over the pruned dependency graph, processed bottom-up:

    - a leaf word's candidate APIs seed singleton partial CGTs;
    - a governor with a single child (Case I) extends each child partial
      CGT along each candidate grammar path, keeping the smallest per
      (word, API) pair;
    - a governor with sibling children (Case II) enumerates only the
      per-level combinations of its children's paths — grammar-based and
      size-based pruning run {e before} prefix trees are merged — and
      records each survivor as a partial-CGT node;
    - the optimal global CGT is read off the root word's best API node
      (the memoized cell makes the paper's backtrack a lookup).

    The walk is one generic chart traversal over the {!Semiring} algebra,
    instantiated per objective. It always extends by each child's best
    candidate, so the candidate stream into every cell — and therefore
    the winning CGT, the statistics and the emitted trace notes — is
    identical for every objective; {!Semiring.Top_k} merely retains more
    of that stream per cell.

    Complexity: O(sum over levels of p^e) instead of O(product). *)

val synthesize :
  ?objective:Semiring.t ->
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?gprune:bool ->
  ?sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option
(** Both pruning optimizations default to enabled; [objective] defaults
    to {!Semiring.Min_size}. Raises {!Dggt_util.Budget.Exhausted} on
    budget exhaustion. Returns the graph structure statistics through
    [stats]. When [trace] is given (the engine's open PathMerge span),
    decision-level notes are recorded on it: per-governor combination
    counts before/after each pruning pass, [min_size] improvements per
    (word, API) memo, and the final DGG level sizes. *)

val synthesize_with_graph :
  ?objective:Semiring.t ->
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?gprune:bool ->
  ?sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  ?on_improve:(Semiring.cand -> unit) ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option * Dgg.t
(** Same, also exposing the constructed dynamic grammar graph (used by
    the ranked mode, the CLI's explain mode and tests).

    [on_improve] is the streaming emission seam: it fires inside the
    chart walk each time a {e root} cell's best-first bounded cell
    changes — i.e. whenever one of the root dependency word's API-node
    cells (exactly the cells {!ranked_of_graph} later reads the n-best
    off) accepts a new best candidate. The callback receives the
    candidate that caused the change, in walk order: a strictly
    improving sequence per root cell, whose last emission per cell is
    that cell's final best. It must not mutate the graph; it runs on
    the synthesizing thread, so a slow callback slows the walk. [None]
    (the default) is a single closure check per improvement. *)

val root_compare : Dgg.node * Semiring.cand -> Dgg.node * Semiring.cand -> int
(** The final selection order over root-level candidates: coverage
    (descending), size, exact score (descending), [Cgt.compare], node
    creation order. This is the historical pre-semiring root selection;
    it refines {!Semiring.compare_cand} by replacing the score epsilon
    with exact comparison and adding the node-id tail. *)

val ranked_of_graph : Dgg.t -> root:int -> Semiring.cand list
(** The paper's §VII-B.4 usage mode: every candidate retained by the root
    word's API-node cells, best first under {!root_compare} (cell rank
    breaks residual ties). Under {!Semiring.Top_k} this is a real n-best
    list — up to k candidates per root interpretation, not one; its head
    is {!synthesize}'s answer. Read-only: call after
    {!synthesize_with_graph} on the finished graph. *)
