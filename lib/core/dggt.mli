(** Dynamic grammar graph-based translation — the paper's Algorithm 1.

    DGGT replaces HISyn's global combination enumeration with dynamic
    programming over the pruned dependency graph, processed bottom-up:

    - a leaf word's candidate APIs seed singleton partial CGTs;
    - a governor with a single child (Case I) extends each child partial
      CGT along each candidate grammar path, keeping the smallest per
      (word, API) pair;
    - a governor with sibling children (Case II) enumerates only the
      per-level combinations of its children's paths — grammar-based and
      size-based pruning run {e before} prefix trees are merged — and
      records each survivor as a partial-CGT node;
    - the optimal global CGT is read off the root word's best API node
      (the memoized [min_cgt] makes the paper's backtrack a lookup).

    Complexity: O(sum over levels of p^e) instead of O(product). *)

val synthesize :
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?gprune:bool ->
  ?sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option
(** Both pruning optimizations default to enabled. Raises
    {!Dggt_util.Budget.Exhausted} on budget exhaustion. Returns the graph
    structure statistics through [stats]. When [trace] is given (the
    engine's open PathMerge span), decision-level notes are recorded on it:
    per-governor combination counts before/after each pruning pass,
    [min_size] improvements per (word, API) memo, and the final DGG level
    sizes. *)

val synthesize_ranked :
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?gprune:bool ->
  ?sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  k:int ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t list
(** The paper's §VII-B.4 usage mode: instead of only the optimal CGT,
    return up to [k] candidate codelets ranked by (coverage, size, score)
    — one per distinct interpretation of the root word, read directly off
    the dynamic grammar graph's root API nodes. The head of the list is
    exactly {!synthesize}'s answer. *)

val synthesize_with_graph :
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?gprune:bool ->
  ?sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option * Dgg.t
(** Same, also exposing the constructed dynamic grammar graph (used by the
    CLI's explain mode and by tests). *)
