type node_kind =
  | Start
  | ApiN of { dep : int; api : string }
  | PcgtN of { dep : int; api : string; idx : int }

type node = { id : int; kind : node_kind; cell : Semiring.Cell.t }

type edge = { src : int; dst : int; epath : int option }

type t = {
  objective : Semiring.t;
  mutable rev_nodes : node list;
  mutable rev_edges : edge list;
  mutable count : int;
  api_tbl : (int * string, node) Hashtbl.t;
  start_node : node;
}

let mk_node t kind =
  let n = { id = t.count; kind; cell = Semiring.zero t.objective } in
  t.rev_nodes <- n :: t.rev_nodes;
  t.count <- t.count + 1;
  n

let create objective =
  let start_cell = Semiring.zero objective in
  (* the start node holds the empty derivation (size 0): paths extend it *)
  ignore (Semiring.plus start_cell Semiring.one);
  let start = { id = 0; kind = Start; cell = start_cell } in
  {
    objective;
    rev_nodes = [ start ];
    rev_edges = [];
    count = 1;
    api_tbl = Hashtbl.create 32;
    start_node = start;
  }

let objective t = t.objective
let start t = t.start_node
let id n = n.id
let kind n = n.kind

let find_api t ~dep ~api = Hashtbl.find_opt t.api_tbl (dep, api)

let add_api t ~dep ~api =
  match find_api t ~dep ~api with
  | Some n -> n
  | None ->
      let n = mk_node t (ApiN { dep; api }) in
      Hashtbl.add t.api_tbl (dep, api) n;
      n

let add_pcgt t ~dep ~api ~idx = mk_node t (PcgtN { dep; api; idx })

let add_edge t ~src ~dst ~epath =
  t.rev_edges <- { src = src.id; dst = dst.id; epath } :: t.rev_edges

let best n = Semiring.Cell.best n.cell
let solved n = Semiring.Cell.solved n.cell
let choices n = Semiring.Cell.choices n.cell
let cand_count n = List.length (Semiring.Cell.choices n.cell)
let distinct_count n = Semiring.Cell.count n.cell

let size n =
  match Semiring.Cell.best n.cell with
  | Some c -> c.Semiring.size
  | None -> max_int

let improved n cand = Semiring.plus n.cell cand

let nodes t = List.rev t.rev_nodes
let edges t = List.rev t.rev_edges
let node_count t = t.count
let edge_count t = List.length t.rev_edges

let api_nodes_of_dep t dep =
  nodes t
  |> List.filter (fun n -> match n.kind with ApiN a -> a.dep = dep | _ -> false)

let pp fmt t =
  List.iter
    (fun n ->
      let label =
        match n.kind with
        | Start -> "START"
        | ApiN a -> Printf.sprintf "API(%d,%s)" a.dep a.api
        | PcgtN p -> Printf.sprintf "PCGT(%d,%s,#%d)" p.dep p.api p.idx
      in
      if solved n then Format.fprintf fmt "%s min_size=%d@ " label (size n)
      else Format.fprintf fmt "%s unset@ " label)
    (nodes t)
