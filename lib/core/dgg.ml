type node_kind =
  | Start
  | ApiN of { dep : int; api : string }
  | PcgtN of { dep : int; api : string; idx : int }

type node = {
  id : int;
  kind : node_kind;
  mutable min_size : int;
  mutable min_cgt : Cgt.t;
  mutable assignment : (int * string) list;
  mutable score : float; (* WordToAPI score of [assignment] *)
}

type edge = { src : int; dst : int; epath : int option }

type t = {
  mutable rev_nodes : node list;
  mutable rev_edges : edge list;
  mutable count : int;
  api_tbl : (int * string, node) Hashtbl.t;
  start_node : node;
}

let mk_node t kind =
  let n =
    { id = t.count; kind; min_size = max_int; min_cgt = Cgt.empty;
      assignment = []; score = 0.0 }
  in
  t.rev_nodes <- n :: t.rev_nodes;
  t.count <- t.count + 1;
  n

let create () =
  let start =
    { id = 0; kind = Start; min_size = 0; min_cgt = Cgt.empty; assignment = [];
      score = 0.0 }
  in
  { rev_nodes = [ start ]; rev_edges = []; count = 1; api_tbl = Hashtbl.create 32; start_node = start }

let start t = t.start_node

let find_api t ~dep ~api = Hashtbl.find_opt t.api_tbl (dep, api)

let add_api t ~dep ~api =
  match find_api t ~dep ~api with
  | Some n -> n
  | None ->
      let n = mk_node t (ApiN { dep; api }) in
      Hashtbl.add t.api_tbl (dep, api) n;
      n

let add_pcgt t ~dep ~api ~idx = mk_node t (PcgtN { dep; api; idx })

let add_edge t ~src ~dst ~epath =
  t.rev_edges <- { src = src.id; dst = dst.id; epath } :: t.rev_edges

let set_ n = n.min_size < max_int

let update_min n ~size ~cgt ~assignment ~score =
  (* Coverage first (a partial CGT that interprets more of the query's
     words wins), then size, then the WordToAPI score of the assignment,
     then CGT structure — the structural tie-break keeps DGGT and the
     HISyn baseline on the same tree among equal optima. *)
  let cov = List.length assignment in
  let cur_cov = List.length n.assignment in
  let better =
    (not (set_ n))
    || cov > cur_cov
    || (cov = cur_cov
       && (size < n.min_size
          || (size = n.min_size
             && (score > n.score +. 1e-9
                || (Float.abs (score -. n.score) <= 1e-9
                   && Cgt.compare cgt n.min_cgt < 0)))))
  in
  if better then begin
    n.min_size <- size;
    n.min_cgt <- cgt;
    n.assignment <- assignment;
    n.score <- score
  end;
  better

let set n = set_ n

let nodes t = List.rev t.rev_nodes
let edges t = List.rev t.rev_edges
let node_count t = t.count
let edge_count t = List.length t.rev_edges

let api_nodes_of_dep t dep =
  nodes t
  |> List.filter (fun n -> match n.kind with ApiN a -> a.dep = dep | _ -> false)

let pp fmt t =
  List.iter
    (fun n ->
      let label =
        match n.kind with
        | Start -> "START"
        | ApiN a -> Printf.sprintf "API(%d,%s)" a.dep a.api
        | PcgtN p -> Printf.sprintf "PCGT(%d,%s,#%d)" p.dep p.api p.idx
      in
      if set n then Format.fprintf fmt "%s min_size=%d@ " label n.min_size
      else Format.fprintf fmt "%s unset@ " label)
    (nodes t)
