open Dggt_util
open Dggt_nlu
module Trace = Dggt_obs.Trace

type algorithm = Hisyn_alg | Dggt_alg

type lookups = {
  word2api :
    (lemma:string ->
    pos:Pos.t ->
    (unit -> Word2api.candidate list) ->
    Word2api.candidate list)
    option;
  edge2path :
    (src:string ->
    dst:string ->
    (unit -> Dggt_grammar.Gpath.t list) ->
    Dggt_grammar.Gpath.t list)
    option;
}

let no_lookups = { word2api = None; edge2path = None }

type target = {
  graph : Dggt_grammar.Ggraph.t;
  doc : Apidoc.t;
  caches : lookups;
  autom : Dggt_autom.Autom.t option;
}

let target ?(caches = no_lookups) ?autom graph doc =
  { graph; doc; caches; autom }

type config = {
  algorithm : algorithm;
  timeout_s : float option;
  max_steps : int option;
  top_k : int;
  threshold : float;
  path_limits : Dggt_grammar.Gpath.limits;
  gprune : bool;
  sprune : bool;
  objective : Semiring.t;
  orphan_reloc : bool;
  max_reloc_graphs : int;
  defaults : (string * string) list;
  unit_filter : (string -> bool) option;
  stop_verbs : string list;
  trace : Trace.sink option;
}

let default algorithm =
  {
    algorithm;
    timeout_s = Some 20.0;
    max_steps = None;
    top_k = 4;
    threshold = Similarity.min_score;
    path_limits = Dggt_grammar.Gpath.default_limits;
    gprune = true;
    sprune = true;
    objective = Semiring.Min_size;
    orphan_reloc = true;
    max_reloc_graphs = 8;
    defaults = [];
    unit_filter = None;
    stop_verbs = [];
    trace = None;
  }

type ranked = {
  expr : Tree2expr.expr;
  code : string;
  size : int;
  coverage : int;
  score : float;
}

type outcome = {
  expr : Tree2expr.expr option;
  code : string option;
  cgt_size : int option;
  ranked : ranked list;
  time_s : float;
  timed_out : bool;
  failure : string option;
  stats : Stats.t;
}

let stage_names =
  [
    "DependencyParse"; "QueryPrune"; "WordToAPI"; "EdgeToPath"; "PathMerge";
    "TreeToExpr";
  ]

(* An adjectival or compound modifier that shares candidate APIs with its
   head noun refines the head rather than naming a second entity:
   "capitalized words" is one CAPSTOKEN mention, "constructor expressions"
   one cxxConstructExpr. Restrict the head to the shared APIs and drop the
   modifier word. *)
let absorb_modifiers doc (dg : Depgraph.t) w2a =
  (* Only noun-marked (entity) APIs may swallow a modifier: "copy
     constructors" must stay cxxConstructorDecl + isCopyConstructor, not
     collapse into the narrowing matcher. When the document declares no
     noun APIs at all, every shared API qualifies. *)
  let nounish api =
    match Apidoc.find doc api with
    | Some e -> e.Apidoc.pos_pref = Apidoc.Nounish
    | None -> false
  in
  let has_noun_marks =
    List.exists (fun (e : Apidoc.entry) -> e.Apidoc.pos_pref = Apidoc.Nounish)
      (Apidoc.entries doc)
  in
  List.fold_left
    (fun (dg, w2a) (e : Depgraph.edge) ->
      match e.Depgraph.label with
      | Dggt_nlu.Dep.Amod | Dggt_nlu.Dep.Compound ->
          let head = Word2api.apis w2a e.Depgraph.gov in
          let modif = Word2api.apis w2a e.Depgraph.dep in
          (* Entity (noun-marked) APIs absorb preferentially; when the head
             has no entity reading at all ("right hand side" only matches
             traversal matchers), any shared API may absorb. *)
          let head_has_noun = has_noun_marks && List.exists nounish head in
          let shared =
            List.filter
              (fun a -> List.mem a modif && ((not head_has_noun) || nounish a))
              head
          in
          if shared = [] then (dg, w2a)
          else
            ( Queryprune.drop_nodes dg [ e.Depgraph.dep ],
              Word2api.merge_modifier w2a ~head:e.Depgraph.gov
                ~modifier:e.Depgraph.dep shared )
      | _ -> (dg, w2a))
    (dg, w2a) dg.Depgraph.edges

(* The subject of a conditional clause names the iterated unit ("if a
   *sentence* starts with ..."); when the domain distinguishes unit/scope
   APIs, restrict such words to them. *)
let apply_unit_filter cfg (dg : Depgraph.t) w2a =
  match cfg.unit_filter with
  | None -> w2a
  | Some f ->
      List.fold_left
        (fun w2a (e : Depgraph.edge) ->
          match e.Depgraph.label with
          | Dggt_nlu.Dep.Nsubj -> (
              let cands = Word2api.apis w2a e.Depgraph.dep in
              match List.filter f cands with
              | [] -> w2a
              | api :: _ -> Word2api.restrict w2a e.Depgraph.dep api)
          | _ -> w2a)
        w2a dg.Depgraph.edges

let make_budget cfg =
  match (cfg.timeout_s, cfg.max_steps) with
  | Some s, Some n -> Budget.of_seconds_and_steps s n
  | Some s, None -> Budget.of_seconds s
  | None, Some n -> Budget.of_steps n
  | None, None -> Budget.unlimited ()

(* ------------------------------------------------------------------ *)
(* trace note helpers (all guarded: no work when tracing is off)      *)
(* ------------------------------------------------------------------ *)

let lemma_of (dg : Depgraph.t) id =
  match Depgraph.node_opt dg id with
  | Some n -> n.Depgraph.lemma
  | None -> string_of_int id

let trace_word_candidates sp (dg : Depgraph.t) w2a =
  if Trace.on sp then
    List.iter
      (fun (n : Depgraph.node) ->
        let rendered =
          match Word2api.candidates w2a n.Depgraph.id with
          | [] -> "(none)"
          | cs ->
              String.concat " "
                (List.map
                   (fun (c : Word2api.candidate) ->
                     Printf.sprintf "%s:%.2f" c.Word2api.api c.Word2api.score)
                   cs)
        in
        Trace.str sp
          (Printf.sprintf "word[%d] %s" n.Depgraph.id n.Depgraph.lemma)
          rendered)
      dg.Depgraph.nodes

let trace_edge_paths sp (dg : Depgraph.t) e2p =
  if Trace.on sp then
    List.iter
      (fun (e : Depgraph.edge) ->
        Trace.int sp
          (Printf.sprintf "edge %s->%s(%s)" (lemma_of dg e.Depgraph.gov)
             (lemma_of dg e.Depgraph.dep)
             (Dggt_nlu.Dep.to_string e.Depgraph.label))
          (List.length (Edge2path.paths_of_edge e2p e)))
      dg.Depgraph.edges

let trace_dropped sp key (before : Depgraph.t) (after : Depgraph.t) =
  if Trace.on sp then
    match
      List.filter
        (fun (n : Depgraph.node) -> not (Depgraph.mem after n.Depgraph.id))
        before.Depgraph.nodes
    with
    | [] -> ()
    | dropped ->
        Trace.str sp key
          (String.concat " "
             (List.map (fun (n : Depgraph.node) -> n.Depgraph.lemma) dropped))

(* ------------------------------------------------------------------ *)
(* pipeline stages                                                    *)
(* ------------------------------------------------------------------ *)

(* Step 2: POS-based pruning plus the domain's stop-verb drop. *)
let prune_query cfg (dg : Depgraph.t) =
  Trace.span cfg.trace "QueryPrune" (fun sp ->
      let pruned = Queryprune.prune dg in
      (* command verbs without API meaning ("find", "list" in code-search
         domains) would otherwise soak up spurious keyword matches *)
      let pruned =
        match Depgraph.node_opt pruned pruned.Depgraph.root with
        | Some rn
          when Pos.is_verb rn.Depgraph.pos
               && List.mem rn.Depgraph.lemma cfg.stop_verbs ->
            Trace.str sp "stop_verb" rn.Depgraph.lemma;
            Queryprune.drop_nodes pruned [ pruned.Depgraph.root ]
        | _ -> pruned
      in
      Trace.int sp "nodes_before" (List.length dg.Depgraph.nodes);
      Trace.int sp "nodes_after" (List.length pruned.Depgraph.nodes);
      trace_dropped sp "dropped" dg pruned;
      pruned)

(* Steps 3 and 4, shared by both engines and the ranked mode. *)
let front cfg tgt stats (pruned : Depgraph.t) =
  let tr = cfg.trace in
  let pruned, w2a =
    Trace.span tr "WordToAPI" (fun sp ->
        let w2a =
          Word2api.build ~top_k:max_int ~threshold:cfg.threshold
            ?lookup:tgt.caches.word2api tgt.doc pruned
        in
        let absorbed, w2a = absorb_modifiers tgt.doc pruned w2a in
        trace_dropped sp "absorbed_modifiers" pruned absorbed;
        let w2a = apply_unit_filter cfg absorbed w2a in
        let w2a = Word2api.cap w2a cfg.top_k in
        let covered = Queryprune.drop_nodes absorbed (Word2api.uncovered w2a) in
        trace_dropped sp "uncovered_words" absorbed covered;
        trace_word_candidates sp covered w2a;
        (covered, w2a))
  in
  stats.Stats.dep_edges <- List.length pruned.Depgraph.edges;
  let e2p =
    Trace.span tr "EdgeToPath" (fun sp ->
        let e2p =
          Edge2path.build ~limits:cfg.path_limits
            ?pair_lookup:tgt.caches.edge2path ?autom:tgt.autom tgt.graph
            pruned w2a
        in
        trace_edge_paths sp pruned e2p;
        Trace.int sp "total_paths" (Edge2path.total_path_count e2p);
        (if Trace.on sp then
           match Edge2path.orphans e2p with
           | [] -> ()
           | orphans ->
               Trace.str sp "orphans"
                 (String.concat " " (List.map (lemma_of pruned) orphans)));
        e2p)
  in
  stats.Stats.orig_paths <- Edge2path.total_path_count e2p;
  let orphans = Edge2path.orphans e2p in
  stats.Stats.orphan_count <- List.length orphans;
  (pruned, w2a, e2p, orphans)

(* literal bindings: (api, literal) pairs in token order, for the nodes the
   winning assignment actually interpreted *)
let literal_bindings (dg : Depgraph.t) (assignment : (int * string) list) =
  dg.Depgraph.nodes
  |> List.filter_map (fun (n : Depgraph.node) ->
         match (n.Depgraph.lit, List.assoc_opt n.Depgraph.id assignment) with
         | Some v, Some api -> Some (api, v)
         | _ -> None)

(* Step 6. *)
let finish cfg tgt dg (res : Synres.t option) ~time_s ~timed_out ~stats =
  Trace.span cfg.trace "TreeToExpr" (fun sp ->
      match res with
      | None ->
          Trace.str sp "skipped"
            (if timed_out then "budget exhausted" else "no CGT to linearize");
          {
            expr = None;
            code = None;
            cgt_size = None;
            ranked = [];
            time_s;
            timed_out;
            failure =
              Some (if timed_out then "timeout" else "no well-formed CGT found");
            stats;
          }
      | Some r -> (
          let lits = literal_bindings dg r.Synres.assignment in
          Trace.int sp "cgt_size" r.Synres.size;
          Trace.int sp "words_covered" (List.length r.Synres.assignment);
          match
            Result.map Tree2expr.normalize
              (Tree2expr.of_cgt ~lits ~defaults:cfg.defaults tgt.graph
                 r.Synres.cgt)
          with
          | Ok expr ->
              let code = Tree2expr.to_string expr in
              Trace.str sp "code" code;
              {
                expr = Some expr;
                code = Some code;
                cgt_size = Some r.Synres.size;
                ranked = [];
                time_s;
                timed_out;
                failure = None;
                stats;
              }
          | Error e ->
              let msg = Format.asprintf "linearization: %a" Tree2expr.pp_error e in
              Trace.str sp "failure" msg;
              {
                expr = None;
                code = None;
                cgt_size = Some r.Synres.size;
                ranked = [];
                time_s;
                timed_out;
                failure = Some msg;
                stats;
              }))

(* Step 5, DGGT: orphan relocation + dynamic-grammar-graph merging.
   Generic over the PathMerge implementation: [merge] gets each candidate
   dependency graph and returns the synthesis result plus (for the real
   DGGT walk) the dynamic grammar graph it built — the ranked mode reads
   its n-best list off the winning variant's graph. *)
let run_dggt_with cfg tgt stats (pruned : Depgraph.t)
    ~(merge :
       trace:Trace.span option ->
       Depgraph.t ->
       Word2api.t ->
       Edge2path.t ->
       Synres.t option * Dgg.t option) =
  let pruned, w2a, e2p, orphans = front cfg tgt stats pruned in
  Trace.span cfg.trace "PathMerge" (fun sp ->
      Trace.str sp "engine" "dggt";
      if orphans = [] || not cfg.orphan_reloc then begin
        let dg, e2p =
          if orphans = [] then (pruned, e2p)
          else
            (* ablation: fall back to the baseline's root anchoring *)
            Trace.span cfg.trace "OrphanAnchor" (fun asp ->
                let dg, e2p =
                  Edge2path.anchor_orphans ~limits:cfg.path_limits
                    ?autom:tgt.autom tgt.graph pruned w2a e2p
                in
                Trace.int asp "paths_after_anchor"
                  (Edge2path.total_path_count e2p);
                (dg, e2p))
        in
        stats.Stats.paths_after_reloc <- Edge2path.total_path_count e2p;
        stats.Stats.reloc_graphs <- 1;
        let res, dyng = merge ~trace:sp dg w2a e2p in
        (dg, res, dyng)
      end
      else begin
        let variants =
          Trace.span cfg.trace "OrphanRelocation" (fun osp ->
              let variants =
                Orphan.relocate ~max_graphs:cfg.max_reloc_graphs tgt.graph
                  pruned w2a ~orphans
              in
              Trace.int osp "orphan_count" (List.length orphans);
              Trace.int osp "variants" (List.length variants);
              if Trace.on osp then
                List.iteri
                  (fun i v ->
                    Trace.str osp
                      (Printf.sprintf "variant[%d]" i)
                      (String.concat " "
                         (List.map
                            (fun o ->
                              match Depgraph.parent v o with
                              | Some e ->
                                  Printf.sprintf "%s under %s" (lemma_of v o)
                                    (lemma_of v e.Depgraph.gov)
                              | None ->
                                  Printf.sprintf "%s unattached" (lemma_of v o))
                            orphans)))
                  variants;
              variants)
        in
        stats.Stats.reloc_graphs <- List.length variants;
        let best =
          List.fold_left
            (fun (i, acc) dg ->
              let e2p =
                Edge2path.build ~limits:cfg.path_limits
                  ?pair_lookup:tgt.caches.edge2path ?autom:tgt.autom
                  tgt.graph dg w2a
              in
              if Trace.on sp then
                Trace.int sp
                  (Printf.sprintf "variant[%d] paths" i)
                  (Edge2path.total_path_count e2p);
              stats.Stats.paths_after_reloc <-
                max stats.Stats.paths_after_reloc
                  (Edge2path.total_path_count e2p);
              let res, dyng = merge ~trace:sp dg w2a e2p in
              let acc =
                match (acc, res) with
                | None, Some r -> Some (dg, r, dyng)
                | Some (_, b, _), Some r
                (* the paper's minimality is among CGTs covering the query's
                   semantics: a variant interpreting more of the words beats
                   a smaller CGT that dropped a subtree *)
                  when let cov x = List.length x.Synres.assignment in
                       cov r > cov b
                       || (cov r = cov b && r.Synres.size < b.Synres.size) ->
                    Some (dg, r, dyng)
                | _ -> acc
              in
              (i + 1, acc))
            (0, None) variants
          |> snd
        in
        match best with
        | Some (dg, r, dyng) -> (dg, Some r, dyng)
        | None -> (pruned, None, None)
      end)

(* The real DGGT PathMerge as [run_dggt_with]'s merge. [on_cand] is the
   streaming seam: it receives the relocation variant's dependency graph
   (needed to bind query literals at linearization time) together with
   each root-cell improvement the chart walk emits. *)
let run_dggt ?(on_cand : (Depgraph.t -> Semiring.cand -> unit) option) cfg tgt
    budget stats (pruned : Depgraph.t) =
  run_dggt_with cfg tgt stats pruned ~merge:(fun ~trace dg w2a e2p ->
      let on_improve = Option.map (fun f c -> f dg c) on_cand in
      let res, dyng =
        Dggt.synthesize_with_graph ~objective:cfg.objective ~budget ~stats
          ~gprune:cfg.gprune ~sprune:cfg.sprune ?trace ?on_improve tgt.graph
          dg w2a e2p
      in
      (res, Some dyng))

(* Step 5, HISyn baseline: root anchoring + exhaustive enumeration. *)
let run_hisyn cfg tgt budget stats (pruned : Depgraph.t) =
  let pruned, w2a, e2p, orphans = front cfg tgt stats pruned in
  Trace.span cfg.trace "PathMerge" (fun sp ->
      Trace.str sp "engine" "hisyn";
      let dg, e2p =
        if orphans = [] then (pruned, e2p)
        else
          Trace.span cfg.trace "OrphanAnchor" (fun asp ->
              let dg, e2p =
                Edge2path.anchor_orphans ~limits:cfg.path_limits
                  ?autom:tgt.autom tgt.graph pruned w2a e2p
              in
              Trace.int asp "paths_after_anchor" (Edge2path.total_path_count e2p);
              (dg, e2p))
      in
      stats.Stats.paths_after_reloc <- Edge2path.total_path_count e2p;
      stats.Stats.reloc_graphs <- 1;
      let res =
        match Hisyn.synthesize ~budget ~stats ?trace:sp tgt.graph dg w2a e2p with
        | Some r -> Some r
        | None
          when dg.Depgraph.edges = []
               || List.for_all
                    (fun e -> Edge2path.paths_of_edge e2p e = [])
                    dg.Depgraph.edges -> (
            (* single-word query (or nothing connected): the best lone API *)
            match Word2api.candidates w2a dg.Depgraph.root with
            | { Word2api.api; _ } :: _ -> (
                match Dggt_grammar.Ggraph.api_node tgt.graph api with
                | Some nid ->
                    let cgt =
                      Cgt.merge_path Cgt.empty
                        {
                          Dggt_grammar.Gpath.nodes = [| nid |];
                          edges = [||];
                          apis = [| api |];
                        }
                    in
                    Trace.str sp "fallback" ("single word -> " ^ api);
                    Some
                      {
                        Synres.cgt;
                        size = 1;
                        assignment = [ (dg.Depgraph.root, api) ];
                      }
                | None -> None)
            | [] -> None)
        | None -> None
      in
      (dg, res))

(* Stages 3-6 over an already-pruned graph. Exposed (as [synthesize_pruned])
   so the incremental layer can parse and prune first, decide from the
   pruned graph whether the previous revision's result still applies, and
   only then pay for the expensive suffix of the pipeline. *)
let synthesize_pruned cfg tgt (pruned : Depgraph.t) =
  let stats = Stats.create () in
  let budget = make_budget cfg in
  let t0 = Unix.gettimeofday () in
  let run () =
    match cfg.algorithm with
    | Dggt_alg ->
        let dg, res, _dyng = run_dggt cfg tgt budget stats pruned in
        (dg, res)
    | Hisyn_alg -> run_hisyn cfg tgt budget stats pruned
  in
  match run () with
  | dg', res ->
      let time_s = Unix.gettimeofday () -. t0 in
      finish cfg tgt dg' res ~time_s ~timed_out:false ~stats
  | exception Budget.Exhausted ->
      let time_s =
        match cfg.timeout_s with
        | Some limit -> limit
        | None -> Unix.gettimeofday () -. t0
      in
      finish cfg tgt pruned None ~time_s ~timed_out:true ~stats

let synthesize_graph cfg tgt (dg : Depgraph.t) =
  synthesize_pruned cfg tgt (prune_query cfg dg)

let parse_query cfg query =
  Trace.span cfg.trace "DependencyParse" (fun sp ->
      let dg = Depparser.parse query in
      Trace.int sp "nodes" (List.length dg.Depgraph.nodes);
      Trace.int sp "edges" (List.length dg.Depgraph.edges);
      if Trace.on sp then Trace.str sp "parse" (Depgraph.to_string dg);
      dg)

let synthesize cfg tgt query = synthesize_graph cfg tgt (parse_query cfg query)
let parse = parse_query
let prune = prune_query

type session = { cfg : config; target : target }

let with_cfg f s = { s with cfg = f s.cfg }

(* ------------------------------------------------------------------ *)
(* PathMerge seam + ranked mode                                       *)
(* ------------------------------------------------------------------ *)

type merge_fn =
  budget:Budget.t ->
  stats:Stats.t ->
  gprune:bool ->
  sprune:bool ->
  ?trace:Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option

let synthesize_with_merge ~(merge : merge_fn) cfg tgt query =
  let cfg = { cfg with algorithm = Dggt_alg } in
  let stats = Stats.create () in
  let budget = make_budget cfg in
  let t0 = Unix.gettimeofday () in
  let pruned = prune_query cfg (parse_query cfg query) in
  match
    run_dggt_with cfg tgt stats pruned ~merge:(fun ~trace dg w2a e2p ->
        let res =
          match trace with
          | Some sp ->
              merge ~budget ~stats ~gprune:cfg.gprune ~sprune:cfg.sprune
                ~trace:sp tgt.graph dg w2a e2p
          | None ->
              merge ~budget ~stats ~gprune:cfg.gprune ~sprune:cfg.sprune
                tgt.graph dg w2a e2p
        in
        (res, None))
  with
  | dg', res, _dyng ->
      let time_s = Unix.gettimeofday () -. t0 in
      finish cfg tgt dg' res ~time_s ~timed_out:false ~stats
  | exception Budget.Exhausted ->
      let time_s =
        match cfg.timeout_s with
        | Some limit -> limit
        | None -> Unix.gettimeofday () -. t0
      in
      finish cfg tgt pruned None ~time_s ~timed_out:true ~stats

(* ------------------------------------------------------------------ *)
(* consolidated request API: plain / ranked as one shape, streaming   *)
(* as a delivery mode of the same request                             *)
(* ------------------------------------------------------------------ *)

type input = Text of string | Graph of Depgraph.t
type mode = Plain | Ranked of int
type request = { input : input; mode : mode }

type candidate = {
  rank : int;
  code : string;
  size : int;
  coverage : int;
  score : float;
  revision : int;
}

(* Live n-best bookkeeping for streaming: every root-cell improvement is
   linearized and slotted into a running best list ordered like
   [Dggt.root_compare]'s observable part (coverage desc, size asc, score
   desc, code); entries that land in the top [k] are emitted with their
   current rank and a monotone revision number. The interim list is a
   best-effort view — orphan-relocation variants each stream their own
   improvements — and only the terminal ranked list, read off the winning
   variant's finished chart, is authoritative. *)
let make_emitter ~k cfg tgt (emit : candidate -> unit) =
  let order (a : ranked) (b : ranked) =
    match compare b.coverage a.coverage with
    | 0 -> (
        match compare a.size b.size with
        | 0 -> (
            match compare b.score a.score with
            | 0 -> compare a.code b.code
            | c -> c)
        | c -> c)
    | c -> c
  in
  let entries : ranked list ref = ref [] in
  let revision = ref 0 in
  fun (dg : Depgraph.t) (c : Semiring.cand) ->
    let lits = literal_bindings dg c.Semiring.assignment in
    match
      Result.map Tree2expr.normalize
        (Tree2expr.of_cgt ~lits ~defaults:cfg.defaults tgt.graph c.Semiring.cgt)
    with
    | Error _ -> ()
    | Ok expr ->
        let entry =
          {
            expr;
            code = Tree2expr.to_string expr;
            size = c.Semiring.size;
            coverage = Semiring.coverage c;
            score = c.Semiring.score;
          }
        in
        let improves =
          match
            List.find_opt (fun (e : ranked) -> e.code = entry.code) !entries
          with
          | Some old -> order entry old < 0
          | None -> true
        in
        if improves then begin
          entries :=
            List.sort order
              (entry
              :: List.filter (fun (e : ranked) -> e.code <> entry.code) !entries
              );
          let rec index i = function
            | [] -> None
            | (e : ranked) :: tl ->
                if e.code == entry.code then Some i else index (i + 1) tl
          in
          match index 0 !entries with
          | Some i when i < k ->
              incr revision;
              emit
                {
                  rank = i + 1;
                  code = entry.code;
                  size = entry.size;
                  coverage = entry.coverage;
                  score = entry.score;
                  revision = !revision;
                }
          | _ -> ()
        end

(* Ranked mode is the full DGGT pipeline — same orphan relocation, same
   variant selection — run under the Top_k objective; the n-best is then
   a read off the winning variant's finished chart. k = 1 degenerates to
   the Min_size cells, so the head is the plain run's codelet by
   construction. *)
let respond_ranked ?on_candidate ~k cfg tgt (pruned : Depgraph.t) =
  let k = max 1 k in
  let cfg = { cfg with algorithm = Dggt_alg; objective = Semiring.Top_k k } in
  let stats = Stats.create () in
  let budget = make_budget cfg in
  let t0 = Unix.gettimeofday () in
  let on_cand = Option.map (fun f -> make_emitter ~k cfg tgt f) on_candidate in
  match run_dggt ?on_cand cfg tgt budget stats pruned with
  | dg, res, dyng -> (
      let time_s = Unix.gettimeofday () -. t0 in
      let outcome = finish cfg tgt dg res ~time_s ~timed_out:false ~stats in
      match dyng with
      | None -> outcome
      | Some dyng ->
          (* the head is pinned to the plain run's codelet (already
             linearized by [finish]): [Dgg.best]'s root selection compares
             scores exactly while cell order uses the 1e-9 epsilon, so a
             pure re-sort of the chart can put an epsilon-tied sibling
             first — an invariant, not a sorting accident (DESIGN.md) *)
          let seen = Hashtbl.create 8 in
          let ranked =
            Dggt.ranked_of_graph dyng ~root:dg.Depgraph.root
            |> List.filter_map (fun (c : Semiring.cand) ->
                   let lits = literal_bindings dg c.Semiring.assignment in
                   match
                     Result.map Tree2expr.normalize
                       (Tree2expr.of_cgt ~lits ~defaults:cfg.defaults tgt.graph
                          c.Semiring.cgt)
                   with
                   | Ok expr ->
                       let code = Tree2expr.to_string expr in
                       if Hashtbl.mem seen code then None
                       else begin
                         Hashtbl.add seen code ();
                         Some
                           {
                             expr;
                             code;
                             size = c.Semiring.size;
                             coverage = Semiring.coverage c;
                             score = c.Semiring.score;
                           }
                       end
                   | Error _ -> None)
          in
          let ranked =
            match outcome.code with
            | Some rc -> (
                match
                  List.partition (fun (r : ranked) -> r.code = rc) ranked
                with
                | [ hd ], rest -> hd :: rest
                | _ -> ranked)
            | None -> ranked
          in
          { outcome with ranked = Listutil.take k ranked })
  | exception Budget.Exhausted ->
      let time_s =
        match cfg.timeout_s with
        | Some limit -> limit
        | None -> Unix.gettimeofday () -. t0
      in
      finish cfg tgt pruned None ~time_s ~timed_out:true ~stats

let respond ?on_candidate (s : session) (req : request) =
  let graph_of () =
    match req.input with
    | Text q -> parse_query s.cfg q
    | Graph dg -> dg
  in
  match req.mode with
  | Plain ->
      (* the streaming seam only exists on the DGGT chart walk; a Plain
         request has no n-best to improve, so the callback never fires *)
      synthesize_graph s.cfg s.target (graph_of ())
  | Ranked k ->
      respond_ranked ?on_candidate ~k s.cfg s.target
        (prune_query s.cfg (graph_of ()))

let run_streaming ?(k = 5) ~on_candidate s query =
  respond ~on_candidate s { input = Text query; mode = Ranked k }

(* thin wrappers over [respond]; kept for one PR, then callers should be
   on the request shape *)
let run s query = respond s { input = Text query; mode = Plain }
let run_graph s dg = respond s { input = Graph dg; mode = Plain }

let synthesize_ranked ?(k = 5) cfg tgt query =
  if k <= 0 then []
  else
    (respond { cfg; target = tgt } { input = Text query; mode = Ranked k })
      .ranked

let run_ranked ?k s query = synthesize_ranked ?k s.cfg s.target query
