open Dggt_util
open Dggt_nlu

type algorithm = Hisyn_alg | Dggt_alg

type lookups = {
  word2api :
    (lemma:string ->
    pos:Pos.t ->
    (unit -> Word2api.candidate list) ->
    Word2api.candidate list)
    option;
  edge2path :
    (src:string ->
    dst:string ->
    (unit -> Dggt_grammar.Gpath.t list) ->
    Dggt_grammar.Gpath.t list)
    option;
}

let no_lookups = { word2api = None; edge2path = None }

type config = {
  algorithm : algorithm;
  timeout_s : float option;
  max_steps : int option;
  top_k : int;
  threshold : float;
  path_limits : Dggt_grammar.Gpath.limits;
  gprune : bool;
  sprune : bool;
  orphan_reloc : bool;
  max_reloc_graphs : int;
  defaults : (string * string) list;
  unit_filter : (string -> bool) option;
  stop_verbs : string list;
  lookups : lookups;
}

let default algorithm =
  {
    algorithm;
    timeout_s = Some 20.0;
    max_steps = None;
    top_k = 4;
    threshold = Similarity.min_score;
    path_limits = Dggt_grammar.Gpath.default_limits;
    gprune = true;
    sprune = true;
    orphan_reloc = true;
    max_reloc_graphs = 8;
    defaults = [];
    unit_filter = None;
    stop_verbs = [];
    lookups = no_lookups;
  }

type outcome = {
  expr : Tree2expr.expr option;
  code : string option;
  cgt_size : int option;
  time_s : float;
  timed_out : bool;
  failure : string option;
  stats : Stats.t;
}

(* An adjectival or compound modifier that shares candidate APIs with its
   head noun refines the head rather than naming a second entity:
   "capitalized words" is one CAPSTOKEN mention, "constructor expressions"
   one cxxConstructExpr. Restrict the head to the shared APIs and drop the
   modifier word. *)
let absorb_modifiers doc (dg : Depgraph.t) w2a =
  (* Only noun-marked (entity) APIs may swallow a modifier: "copy
     constructors" must stay cxxConstructorDecl + isCopyConstructor, not
     collapse into the narrowing matcher. When the document declares no
     noun APIs at all, every shared API qualifies. *)
  let nounish api =
    match Apidoc.find doc api with
    | Some e -> e.Apidoc.pos_pref = Apidoc.Nounish
    | None -> false
  in
  let has_noun_marks =
    List.exists (fun (e : Apidoc.entry) -> e.Apidoc.pos_pref = Apidoc.Nounish)
      (Apidoc.entries doc)
  in
  List.fold_left
    (fun (dg, w2a) (e : Depgraph.edge) ->
      match e.Depgraph.label with
      | Dggt_nlu.Dep.Amod | Dggt_nlu.Dep.Compound ->
          let head = Word2api.apis w2a e.Depgraph.gov in
          let modif = Word2api.apis w2a e.Depgraph.dep in
          (* Entity (noun-marked) APIs absorb preferentially; when the head
             has no entity reading at all ("right hand side" only matches
             traversal matchers), any shared API may absorb. *)
          let head_has_noun = has_noun_marks && List.exists nounish head in
          let shared =
            List.filter
              (fun a -> List.mem a modif && ((not head_has_noun) || nounish a))
              head
          in
          if shared = [] then (dg, w2a)
          else
            ( Queryprune.drop_nodes dg [ e.Depgraph.dep ],
              Word2api.merge_modifier w2a ~head:e.Depgraph.gov
                ~modifier:e.Depgraph.dep shared )
      | _ -> (dg, w2a))
    (dg, w2a) dg.Depgraph.edges

(* The subject of a conditional clause names the iterated unit ("if a
   *sentence* starts with ..."); when the domain distinguishes unit/scope
   APIs, restrict such words to them. *)
let apply_unit_filter cfg (dg : Depgraph.t) w2a =
  match cfg.unit_filter with
  | None -> w2a
  | Some f ->
      List.fold_left
        (fun w2a (e : Depgraph.edge) ->
          match e.Depgraph.label with
          | Dggt_nlu.Dep.Nsubj -> (
              let cands = Word2api.apis w2a e.Depgraph.dep in
              match List.filter f cands with
              | [] -> w2a
              | api :: _ -> Word2api.restrict w2a e.Depgraph.dep api)
          | _ -> w2a)
        w2a dg.Depgraph.edges

let make_budget cfg =
  match (cfg.timeout_s, cfg.max_steps) with
  | Some s, Some n -> Budget.of_seconds_and_steps s n
  | Some s, None -> Budget.of_seconds s
  | None, Some n -> Budget.of_steps n
  | None, None -> Budget.unlimited ()

(* literal bindings: (api, literal) pairs in token order, for the nodes the
   winning assignment actually interpreted *)
let literal_bindings (dg : Depgraph.t) (assignment : (int * string) list) =
  dg.Depgraph.nodes
  |> List.filter_map (fun (n : Depgraph.node) ->
         match (n.Depgraph.lit, List.assoc_opt n.Depgraph.id assignment) with
         | Some v, Some api -> Some (api, v)
         | _ -> None)

let finish cfg g dg (res : Synres.t option) ~time_s ~timed_out ~stats =
  match res with
  | None ->
      {
        expr = None;
        code = None;
        cgt_size = None;
        time_s;
        timed_out;
        failure = Some (if timed_out then "timeout" else "no well-formed CGT found");
        stats;
      }
  | Some r -> (
      let lits = literal_bindings dg r.Synres.assignment in
      match
        Result.map Tree2expr.normalize
          (Tree2expr.of_cgt ~lits ~defaults:cfg.defaults g r.Synres.cgt)
      with
      | Ok expr ->
          {
            expr = Some expr;
            code = Some (Tree2expr.to_string expr);
            cgt_size = Some r.Synres.size;
            time_s;
            timed_out;
            failure = None;
            stats;
          }
      | Error e ->
          {
            expr = None;
            code = None;
            cgt_size = Some r.Synres.size;
            time_s;
            timed_out;
            failure = Some (Format.asprintf "linearization: %a" Tree2expr.pp_error e);
            stats;
          })

let run_dggt cfg g doc budget stats (pruned : Depgraph.t) =
  let w2a = Word2api.build ~top_k:max_int ~threshold:cfg.threshold
      ?lookup:cfg.lookups.word2api doc pruned in
  let pruned, w2a = absorb_modifiers doc pruned w2a in
  let w2a = apply_unit_filter cfg pruned w2a in
  let w2a = Word2api.cap w2a cfg.top_k in
  let pruned = Queryprune.drop_nodes pruned (Word2api.uncovered w2a) in
  stats.Stats.dep_edges <- List.length pruned.Depgraph.edges;
  let e2p = Edge2path.build ~limits:cfg.path_limits ?pair_lookup:cfg.lookups.edge2path g
      pruned w2a in
  stats.Stats.orig_paths <- Edge2path.total_path_count e2p;
  let orphans = Edge2path.orphans e2p in
  stats.Stats.orphan_count <- List.length orphans;
  if orphans = [] || not cfg.orphan_reloc then begin
    let dg, e2p =
      if orphans = [] then (pruned, e2p)
      else
        (* ablation: fall back to the baseline's root anchoring *)
        Edge2path.anchor_orphans ~limits:cfg.path_limits g pruned w2a e2p
    in
    stats.Stats.paths_after_reloc <- Edge2path.total_path_count e2p;
    stats.Stats.reloc_graphs <- 1;
    let res =
      Dggt.synthesize ~budget ~stats ~gprune:cfg.gprune ~sprune:cfg.sprune g dg
        w2a e2p
    in
    (dg, res)
  end
  else begin
    let variants =
      Orphan.relocate ~max_graphs:cfg.max_reloc_graphs g pruned w2a ~orphans
    in
    stats.Stats.reloc_graphs <- List.length variants;
    let best =
      List.fold_left
        (fun acc dg ->
          let e2p = Edge2path.build ~limits:cfg.path_limits ?pair_lookup:cfg.lookups.edge2path g dg
            w2a in
          stats.Stats.paths_after_reloc <-
            max stats.Stats.paths_after_reloc (Edge2path.total_path_count e2p);
          let res =
            Dggt.synthesize ~budget ~stats ~gprune:cfg.gprune ~sprune:cfg.sprune
              g dg w2a e2p
          in
          match (acc, res) with
          | None, Some r -> Some (dg, r)
          | Some (_, b), Some r
          (* the paper's minimality is among CGTs covering the query's
             semantics: a variant interpreting more of the words beats a
             smaller CGT that dropped a subtree *)
            when let cov x = List.length x.Synres.assignment in
                 cov r > cov b || (cov r = cov b && r.Synres.size < b.Synres.size)
            ->
              Some (dg, r)
          | _ -> acc)
        None variants
    in
    match best with
    | Some (dg, r) -> (dg, Some r)
    | None -> (pruned, None)
  end

let run_hisyn cfg g doc budget stats (pruned : Depgraph.t) =
  let w2a = Word2api.build ~top_k:max_int ~threshold:cfg.threshold
      ?lookup:cfg.lookups.word2api doc pruned in
  let pruned, w2a = absorb_modifiers doc pruned w2a in
  let w2a = apply_unit_filter cfg pruned w2a in
  let w2a = Word2api.cap w2a cfg.top_k in
  let pruned = Queryprune.drop_nodes pruned (Word2api.uncovered w2a) in
  stats.Stats.dep_edges <- List.length pruned.Depgraph.edges;
  let e2p = Edge2path.build ~limits:cfg.path_limits ?pair_lookup:cfg.lookups.edge2path g
      pruned w2a in
  stats.Stats.orig_paths <- Edge2path.total_path_count e2p;
  let orphans = Edge2path.orphans e2p in
  stats.Stats.orphan_count <- List.length orphans;
  let dg, e2p =
    if orphans = [] then (pruned, e2p)
    else Edge2path.anchor_orphans ~limits:cfg.path_limits g pruned w2a e2p
  in
  stats.Stats.paths_after_reloc <- Edge2path.total_path_count e2p;
  stats.Stats.reloc_graphs <- 1;
  let res =
    match Hisyn.synthesize ~budget ~stats g dg w2a e2p with
    | Some r -> Some r
    | None when dg.Depgraph.edges = [] || List.for_all
        (fun e -> Edge2path.paths_of_edge e2p e = []) dg.Depgraph.edges -> (
        (* single-word query (or nothing connected): the best lone API *)
        match Word2api.candidates w2a dg.Depgraph.root with
        | { Word2api.api; _ } :: _ -> (
            match Dggt_grammar.Ggraph.api_node g api with
            | Some nid ->
                let cgt =
                  Cgt.merge_path Cgt.empty
                    {
                      Dggt_grammar.Gpath.nodes = [| nid |];
                      edges = [||];
                      apis = [| api |];
                    }
                in
                Some { Synres.cgt; size = 1; assignment = [ (dg.Depgraph.root, api) ] }
            | None -> None)
        | [] -> None)
    | None -> None
  in
  (dg, res)

let synthesize_graph cfg g doc (dg : Depgraph.t) =
  let stats = Stats.create () in
  let budget = make_budget cfg in
  let t0 = Unix.gettimeofday () in
  let run () =
    let pruned = Queryprune.prune dg in
    (* command verbs without API meaning ("find", "list" in code-search
       domains) would otherwise soak up spurious keyword matches *)
    let pruned =
      let rn = Depgraph.node_opt pruned pruned.Depgraph.root in
      match rn with
      | Some rn
        when Pos.is_verb rn.Depgraph.pos && List.mem rn.Depgraph.lemma cfg.stop_verbs
        ->
          Queryprune.drop_nodes pruned [ pruned.Depgraph.root ]
      | _ -> pruned
    in
    match cfg.algorithm with
    | Dggt_alg -> run_dggt cfg g doc budget stats pruned
    | Hisyn_alg -> run_hisyn cfg g doc budget stats pruned
  in
  match run () with
  | dg', res ->
      let time_s = Unix.gettimeofday () -. t0 in
      finish cfg g dg' res ~time_s ~timed_out:false ~stats
  | exception Budget.Exhausted ->
      let time_s =
        match cfg.timeout_s with
        | Some limit -> limit
        | None -> Unix.gettimeofday () -. t0
      in
      finish cfg g dg None ~time_s ~timed_out:true ~stats

let synthesize cfg g doc query =
  synthesize_graph cfg g doc (Depparser.parse query)

let synthesize_ranked ?(k = 5) cfg g doc query =
  let budget = make_budget cfg in
  let stats = Stats.create () in
  try
    let pruned = Queryprune.prune (Depparser.parse query) in
    let pruned =
      match Depgraph.node_opt pruned pruned.Depgraph.root with
      | Some rn
        when Pos.is_verb rn.Depgraph.pos && List.mem rn.Depgraph.lemma cfg.stop_verbs
        ->
          Queryprune.drop_nodes pruned [ pruned.Depgraph.root ]
      | _ -> pruned
    in
    let w2a = Word2api.build ~top_k:max_int ~threshold:cfg.threshold
      ?lookup:cfg.lookups.word2api doc pruned in
    let pruned, w2a = absorb_modifiers doc pruned w2a in
    let w2a = apply_unit_filter cfg pruned w2a in
    let w2a = Word2api.cap w2a cfg.top_k in
    let pruned = Queryprune.drop_nodes pruned (Word2api.uncovered w2a) in
    let e2p = Edge2path.build ~limits:cfg.path_limits ?pair_lookup:cfg.lookups.edge2path g
      pruned w2a in
    let orphans = Edge2path.orphans e2p in
    let dg, e2p =
      if orphans = [] then (pruned, e2p)
      else
        (* ranked mode keeps a single dependency graph: relocate orphans to
           their first plausible governor so every hint shares one parse *)
        let variants =
          Orphan.relocate ~max_graphs:1 g pruned w2a ~orphans
        in
        let dg = match variants with v :: _ -> v | [] -> pruned in
        (dg, Edge2path.build ~limits:cfg.path_limits ?pair_lookup:cfg.lookups.edge2path g dg
            w2a)
    in
    let ranked =
      Dggt.synthesize_ranked ~budget ~stats ~gprune:cfg.gprune
        ~sprune:cfg.sprune ~k g dg w2a e2p
    in
    List.filter_map
      (fun (r : Synres.t) ->
        let lits = literal_bindings dg r.Synres.assignment in
        match
          Result.map Tree2expr.normalize
            (Tree2expr.of_cgt ~lits ~defaults:cfg.defaults g r.Synres.cgt)
        with
        | Ok expr -> Some (expr, Tree2expr.to_string expr)
        | Error _ -> None)
      ranked
  with Budget.Exhausted -> []
