(** The dynamic grammar graph (paper §IV-B.1).

    Three node kinds: the start node; API nodes N_(dep word, API); and
    partial-CGT nodes recording one surviving path combination of sibling
    edges. Two edge kinds: path edges (carrying the epath id of the grammar
    path they represent) and auxiliary zero-length edges (start -> API,
    PCGT -> its root API).

    Every node memoizes the optimal partial CGT from the start node to
    itself ([min_cgt]) and its size in APIs ([min_size]) — the dynamic
    programming state that lets DGGT assemble the global optimum without
    re-merging shared substructure. The [assignment] records which API each
    covered dependency word resolved to (needed to bind query literals when
    the chosen CGT is linearized). *)

type node_kind =
  | Start
  | ApiN of { dep : int; api : string }
      (** candidate API [api] for dependency node [dep] *)
  | PcgtN of { dep : int; api : string; idx : int }
      (** [idx]-th surviving combination for governor [dep] resolved as
          [api] *)

type node = {
  id : int;
  kind : node_kind;
  mutable min_size : int;   (** [max_int] until set *)
  mutable min_cgt : Cgt.t;
  mutable assignment : (int * string) list;
  mutable score : float;    (** WordToAPI score of [assignment] *)
}

type edge = { src : int; dst : int; epath : int option (** None = auxiliary *) }

type t

val create : unit -> t
val start : t -> node
val add_api : t -> dep:int -> api:string -> node
(** Returns the existing node when (dep, api) was added before. *)

val find_api : t -> dep:int -> api:string -> node option
val add_pcgt : t -> dep:int -> api:string -> idx:int -> node
val add_edge : t -> src:node -> dst:node -> epath:int option -> unit

val update_min :
  node -> size:int -> cgt:Cgt.t -> assignment:(int * string) list ->
  score:float -> bool
(** Keep the better of the current and proposed partial CGTs: more words
    covered, then fewer APIs, then higher WordToAPI score, then CGT
    structure. Returns [true] when the proposal replaced the memo — the
    tracing layer records exactly these [min_size] improvements. *)

val set : node -> bool
(** Has [min_size] been set? *)

val nodes : t -> node list
val edges : t -> edge list
val node_count : t -> int
val edge_count : t -> int
val api_nodes_of_dep : t -> int -> node list
(** All API nodes registered for a dependency node, insertion order. *)

val pp : Format.formatter -> t -> unit
