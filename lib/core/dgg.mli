(** The dynamic grammar graph (paper §IV-B.1).

    Three node kinds: the start node; API nodes N_(dep word, API); and
    partial-CGT nodes recording one surviving path combination of sibling
    edges. Two edge kinds: path edges (carrying the epath id of the grammar
    path they represent) and auxiliary zero-length edges (start -> API,
    PCGT -> its root API).

    Every node owns a chart cell ({!Semiring.Cell.t}) memoizing the best
    partial CGT(s) from the start node to itself under the graph's
    objective — the dynamic programming state that lets DGGT assemble the
    global optimum without re-merging shared substructure. The DP state is
    sealed: only {!improved} (the semiring accumulation) writes a cell;
    everything else goes through the read-only accessors below. *)

type node_kind =
  | Start
  | ApiN of { dep : int; api : string }
      (** candidate API [api] for dependency node [dep] *)
  | PcgtN of { dep : int; api : string; idx : int }
      (** [idx]-th surviving combination for governor [dep] resolved as
          [api] *)

type node

type edge = { src : int; dst : int; epath : int option (** None = auxiliary *) }

type t

val create : Semiring.t -> t
(** A fresh graph whose cells accumulate under the given objective. The
    start node holds the empty derivation (size 0). *)

val objective : t -> Semiring.t
val start : t -> node
val id : node -> int
val kind : node -> node_kind

val add_api : t -> dep:int -> api:string -> node
(** Returns the existing node when (dep, api) was added before. *)

val find_api : t -> dep:int -> api:string -> node option
val add_pcgt : t -> dep:int -> api:string -> idx:int -> node
val add_edge : t -> src:node -> dst:node -> epath:int option -> unit

val improved : node -> Semiring.cand -> bool
(** Accumulate a candidate into the node's cell ({!Semiring.Cell.plus}).
    Returns [true] when the node's best candidate changed — the tracing
    layer records exactly these [min_size] improvements. The only cell
    mutator. *)

val best : node -> Semiring.cand option
(** The node's optimal partial CGT, when one has been derived. *)

val solved : node -> bool
(** Has any candidate reached this node? *)

val size : node -> int
(** [size] of {!best}; [max_int] when unsolved (the historical
    [min_size] sentinel). *)

val choices : node -> Semiring.cand list
(** All retained candidates, best first (more than one only under
    {!Semiring.Top_k}). *)

val cand_count : node -> int
val distinct_count : node -> int
(** Distinct CGTs offered to the cell ({!Semiring.Count} objective). *)

val nodes : t -> node list
val edges : t -> edge list
val node_count : t -> int
val edge_count : t -> int

val api_nodes_of_dep : t -> int -> node list
(** All API nodes registered for a dependency node, insertion order. *)

val pp : Format.formatter -> t -> unit
