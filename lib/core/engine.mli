(** The end-to-end synthesis driver: query text in, codelet out.

    Runs the six-step pipeline with either engine for step 5:

    + dependency parsing ({!Dggt_nlu.Depparser});
    + query-graph pruning ({!Queryprune}), plus removal of words the
      WordToAPI step cannot cover;
    + WordToAPI ({!Word2api});
    + EdgeToPath ({!Edge2path});
    + PathMerging — {!Hisyn} (exhaustive baseline) or {!Dggt}; orphans are
      root-anchored (HISyn) or relocated ({!Orphan}, DGGT);
    + TreeToExpression ({!Tree2expr}) with query-literal binding.

    The {e what} to synthesize against is a {!target} — the domain's
    grammar graph and API document plus optional per-stage caches — built
    once per domain; the {e how} is a {!config}. Every stage emits a
    {!Dggt_obs.Trace} span when [config.trace] is set, recording its
    decisions (word→API candidates with scores, per-edge path counts,
    relocation choices, DGG [min_size] updates); with [trace = None] the
    instrumentation is a single pattern match per stage and the pipeline
    behaves exactly as before.

    Timeouts follow the paper's protocol: a wall-clock budget (default
    20 s) checked inside the enumeration loops; an exhausted budget makes
    the query a timeout (counted as an error, time capped at the limit). *)

type algorithm = Hisyn_alg | Dggt_alg

type lookups = {
  word2api :
    (lemma:string ->
    pos:Dggt_nlu.Pos.t ->
    (unit -> Word2api.candidate list) ->
    Word2api.candidate list)
    option;  (** {!Word2api.build}'s [lookup] hook *)
  edge2path :
    (src:string ->
    dst:string ->
    (unit -> Dggt_grammar.Gpath.t list) ->
    Dggt_grammar.Gpath.t list)
    option;  (** {!Edge2path.build}'s [pair_lookup] hook *)
}
(** Optional memoization hooks threaded into the per-stage builders. Both
    stages compute query-independent facts — a word's candidate APIs and the
    grammar paths between an API pair — so a serving layer can back these
    with shared caches and skip recomputation on repeat traffic. The hooks
    receive a [compute] thunk and must return its (possibly cached) result;
    cache keys must cover everything scoring depends on besides the
    arguments: the document/grammar and the configuration. *)

val no_lookups : lookups

type target = {
  graph : Dggt_grammar.Ggraph.t;
  doc : Apidoc.t;
  caches : lookups;
      (** per-stage memoization; {!no_lookups} = compute everything. Part
          of the target, not the config: installing caches means building
          a different target, never mutating how the engine runs. *)
  autom : Dggt_autom.Autom.t option;
      (** the grammar compiled into state tables
          ({!Dggt_autom.Autom.compile}); when present, EdgeToPath runs
          on the automaton's transition tables and cross-query path memo
          instead of the per-query DFS — byte-identical codelets, epath
          labels and statistics. Must be compiled from [graph] (the
          registry and {!Dggt_domains.Domain.configure} guarantee it);
          [None] falls back to the DFS. *)
}
(** What to synthesize against. Build one per domain (grammar, document
    and automaton are immutable and shared freely across threads) and
    reuse it for every query — {!Dggt_domains.Domain.configure} returns
    a ready {!session}. *)

val target :
  ?caches:lookups ->
  ?autom:Dggt_autom.Autom.t ->
  Dggt_grammar.Ggraph.t ->
  Apidoc.t ->
  target
(** [caches] defaults to {!no_lookups}; [autom] to [None] (DFS
    EdgeToPath). *)

type config = {
  algorithm : algorithm;
  timeout_s : float option;   (** None = no wall-clock limit *)
  max_steps : int option;     (** deterministic budget for tests *)
  top_k : int;                (** WordToAPI candidate fan-out *)
  threshold : float;          (** WordToAPI score threshold *)
  path_limits : Dggt_grammar.Gpath.limits;
  gprune : bool;              (** grammar-based pruning (DGGT) *)
  sprune : bool;              (** size-based pruning (DGGT) *)
  objective : Semiring.t;
      (** the PathMerge semiring instantiation (DGGT). {!Semiring.Min_size}
          (the default) is the paper's objective; {!Semiring.Top_k} makes
          every chart cell retain a bounded n-best (what {!run_ranked}
          uses); {!Semiring.Count} additionally counts distinct CGTs per
          cell. The winning codelet and the statistics are identical for
          every objective — the walk always extends by best candidates. *)
  orphan_reloc : bool;        (** orphan relocation (DGGT); false falls
                                  back to HISyn's root anchoring *)
  max_reloc_graphs : int;
  defaults : (string * string) list;
      (** nonterminal -> default codelet for argument completion
          ({!Tree2expr.of_cgt}); [] for domains without required args *)
  unit_filter : (string -> bool) option;
      (** restricts the candidate APIs of a conditional clause's subject
          (the iterated unit) to scope-like APIs; None = no restriction *)
  stop_verbs : string list;
      (** imperative root verbs with no API meaning in the domain ("find",
          "list" for code search): dropped before WordToAPI *)
  trace : Dggt_obs.Trace.sink option;
      (** stage-level tracing sink; [None] (the default) is the zero-cost
          off switch. Sinks are single-request: build one per call. *)
}
(** How to run. Parallelism note: the engine computes one query strictly
    sequentially — [BENCH_parallel.json] showed intra-query fan-out of
    the per-pair searches running 0.6–0.9x {e slower} than sequential,
    so that knob is gone. Throughput comes from running {e whole
    queries} concurrently (the server's worker pool,
    {!Dggt_eval.Runner}'s [pool]); per-query search cost is attacked by
    the compiled automaton ([target.autom]) instead. *)

val default : algorithm -> config
(** 20 s timeout, top_k 4, default path limits, all optimizations on,
    tracing off. *)

type ranked = {
  expr : Tree2expr.expr;
  code : string;   (** [Tree2expr.to_string] of [expr] *)
  size : int;      (** CGT size in APIs *)
  coverage : int;  (** query words the candidate interprets *)
  score : float;   (** WordToAPI score of its assignment *)
}
(** One entry of an n-best list. *)

type outcome = {
  expr : Tree2expr.expr option;  (** the synthesized codelet *)
  code : string option;          (** [Tree2expr.to_string] of [expr] *)
  cgt_size : int option;
  ranked : ranked list;
      (** the n-best list, best first — populated by [Ranked]-mode
          {!respond} (its head is [code] whenever a codelet was found);
          [[]] in [Plain] mode and on timeout *)
  time_s : float;                (** wall-clock, capped at the limit on
                                     timeout *)
  timed_out : bool;
  failure : string option;       (** set when no codelet was produced *)
  stats : Stats.t;
}

val synthesize : config -> target -> string -> outcome
(** Never raises. *)

type session = { cfg : config; target : target }
(** A ready-to-run pairing of the {e how} ({!config}) with the {e what}
    ({!target}). {!Dggt_domains.Domain.configure} returns one; callers that
    need a variant configuration (a trace sink, a different timeout) update
    [cfg] with {!with_cfg} — the target, holding the forced grammar and the
    shared caches, is reused as is. *)

val with_cfg : (config -> config) -> session -> session
(** [with_cfg f s] is [{ s with cfg = f s.cfg }]. *)

(** {2 The request shape}

    One entry point for every delivery mode. A {!request} says {e what}
    to answer ([input]: query text, or a pre-built dependency graph) and
    {e in which shape} ([mode]: the plain single-codelet outcome, or an
    n-best list of [k] ranked candidates); {!respond} executes it over a
    {!session}. Streaming is not a third mode but a delivery option of
    the same request: pass [on_candidate] and [Ranked]-mode responses
    additionally emit every improving root-cell candidate while the
    chart walk runs — the returned outcome (with its final [ranked]
    list) is byte-identical with and without the callback. *)

type input =
  | Text of string            (** run the full pipeline from stage 1 *)
  | Graph of Dggt_nlu.Depgraph.t
      (** skip parsing: synthesize from a pre-built dependency graph (no
          DependencyParse span is emitted when tracing) *)

type mode =
  | Plain  (** one codelet; [outcome.ranked] is [[]] *)
  | Ranked of int
      (** up to [k] candidate codelets (paper §VII-B.4), best first, in
          [outcome.ranked] — the full DGGT pipeline run under
          {!Semiring.Top_k}[ k] (the algorithm is forced to [Dggt_alg]),
          so the list is a real n-best read off the finished chart,
          sorted by {!Dggt.root_compare} and duplicate-free (by code).
          The head is pinned to the [Plain] codelet — an invariant, not
          a sorting accident: root selection compares scores exactly
          while cell order uses the 1e-9 epsilon, so an epsilon-tied
          sibling could otherwise sort first (see DESIGN.md). [k <= 1]
          degenerates to the {!Semiring.Min_size} chart. Timeouts yield
          [ranked = []] with [timed_out] set. *)

type request = { input : input; mode : mode }

type candidate = {
  rank : int;      (** 1-based position in the live n-best at emission *)
  code : string;
  size : int;      (** CGT size in APIs *)
  coverage : int;  (** query words the candidate interprets *)
  score : float;   (** WordToAPI score of its assignment *)
  revision : int;  (** monotone per-request emission counter, from 1 *)
}
(** One streamed emission: the chart walk found a candidate that entered
    (or moved up in) the current top-[k]. Revisions are strictly
    increasing; ranks are positions in the {e live} list, so a later
    revision can demote an earlier code. Candidates are interim — under
    orphan relocation each variant streams its own improvements — and
    only the terminal [outcome.ranked] list is authoritative. *)

val respond : ?on_candidate:(candidate -> unit) -> session -> request -> outcome
(** Execute one request. Never raises (callback exceptions excepted —
    [on_candidate] runs on the synthesizing thread, inside the budget'd
    region, and is only consulted in [Ranked] mode: [Plain] requests
    have no n-best to improve, so the callback never fires there). *)

val run_streaming :
  ?k:int -> on_candidate:(candidate -> unit) -> session -> string -> outcome
(** [run_streaming ~k ~on_candidate s q] is
    [respond ~on_candidate s { input = Text q; mode = Ranked k }]
    ([k] defaults to 5): emit-as-you-improve delivery of the ranked
    request. Time-to-first-candidate is bounded by the first root-cell
    improvement, not by the full search ([bench stream] pins the gap). *)

(** {2 Deprecated wrappers}

    Thin aliases of {!respond} kept for one PR; new callers should build
    a {!request}. *)

val run : session -> string -> outcome
(** [run s q] is [respond s { input = Text q; mode = Plain }]. Never
    raises. *)

val absorb_modifiers :
  Apidoc.t -> Dggt_nlu.Depgraph.t -> Word2api.t -> Dggt_nlu.Depgraph.t * Word2api.t
(** The modifier-absorption step, exposed for tests and debugging tools:
    an amod/compound dependent sharing candidate APIs with its head noun
    refines the head ("constructor expressions" -> cxxConstructExpr) and
    disappears as a separate word. *)

val synthesize_ranked : ?k:int -> config -> target -> string -> ranked list
(** [(respond { cfg; target } { input = Text q; mode = Ranked k }).ranked]
    (default [k = 5]; [k <= 0] yields [[]] without running). See
    {!mode}'s [Ranked] case for the list's contract. *)

val run_ranked : ?k:int -> session -> string -> ranked list
(** {!synthesize_ranked} over a {!session}. *)

type merge_fn =
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  gprune:bool ->
  sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option
(** The PathMerge seam: the signature of a step-5 implementation as the
    DGGT pipeline calls it (once per relocation variant). *)

val synthesize_with_merge : merge:merge_fn -> config -> target -> string -> outcome
(** {!synthesize} with a replacement PathMerge spliced into the DGGT
    pipeline (the algorithm is forced to [Dggt_alg]; orphan relocation,
    variant selection, budget and timeout handling are unchanged). Used
    by [bench pathmerge] and the property suite to run the pre-semiring
    reference walk ({!Dggt_eval.Refmerge}) against the semiring one on
    identical inputs. Never raises. *)

val synthesize_graph : config -> target -> Dggt_nlu.Depgraph.t -> outcome
(** Skip parsing: synthesize from a pre-built dependency graph (used by
    tests to pin parses, and by the property suite to fuzz graph shapes).
    No DependencyParse span is emitted when tracing. *)

(** {2 Stage boundaries}

    The incremental layer ({!Dggt_inc.Session}) needs to stop the pipeline
    between stages: parse and prune first, compare the pruned graph against
    the previous revision's, and only run the expensive stages 3-6 when the
    comparison says it must. [synthesize q] is exactly
    [synthesize_pruned (prune (parse q))]; splitting the call changes
    nothing about the result or the emitted trace spans. *)

val parse : config -> string -> Dggt_nlu.Depgraph.t
(** Stage 1 alone (emits the DependencyParse span when tracing). *)

val prune : config -> Dggt_nlu.Depgraph.t -> Dggt_nlu.Depgraph.t
(** Stage 2 alone — POS pruning plus the domain's stop-verb drop (emits the
    QueryPrune span when tracing). *)

val synthesize_pruned : config -> target -> Dggt_nlu.Depgraph.t -> outcome
(** Stages 3-6 over an already-pruned dependency graph. The pruned graph
    (node lemmas/POS/literals in order, edge list in order, root position)
    together with the target and the config determines the outcome's
    codelet and statistics completely — the invariant the incremental
    splice rests on. Never raises. *)

val run_graph : session -> Dggt_nlu.Depgraph.t -> outcome
(** [respond s { input = Graph dg; mode = Plain }]. *)

val stage_names : string list
(** The span names of the six pipeline stages, in pipeline order:
    DependencyParse, QueryPrune, WordToAPI, EdgeToPath, PathMerge,
    TreeToExpr. Sub-spans (OrphanRelocation, OrphanAnchor) nest under
    PathMerge and are not listed. *)
