(** The HISyn baseline's PathMerging (paper §II step 5, §III-A).

    Enumerates {e every} combination of candidate grammar paths — one per
    dependency edge — merges each combination into a candidate CGT, filters
    the ill-formed ones, and keeps the smallest. Worst-case cost is
    the product of the per-edge path counts, which is what DGGT eliminates.

    The budget is ticked once per combination; when it is exhausted the
    enumeration aborts with {!Dggt_util.Budget.Exhausted}, which the engine
    reports as a timeout (the paper's 20 s protocol). *)


val synthesize :
  budget:Dggt_util.Budget.t ->
  stats:Stats.t ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Word2api.t ->
  Edge2path.t ->
  Synres.t option
(** [None] when no combination merges into a well-formed CGT. Edges with an
    empty candidate-path list are skipped (their subtree words go
    uncovered), matching HISyn's behaviour after root-anchoring fails. *)
