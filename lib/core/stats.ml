type t = {
  mutable dep_edges : int;
  mutable orig_paths : int;
  mutable paths_after_reloc : int;
  mutable orphan_count : int;
  mutable reloc_graphs : int;
  mutable combos_total : int;
  mutable combos_after_gprune : int;
  mutable combos_after_sprune : int;
  mutable combos_merged : int;
  mutable hisyn_combos_enumerated : int;
  mutable hisyn_combos_possible : int;
  mutable dgg_nodes : int;
  mutable dgg_edges : int;
  mutable dgg_improvements : int;
}

let create () =
  {
    dep_edges = 0;
    orig_paths = 0;
    paths_after_reloc = 0;
    orphan_count = 0;
    reloc_graphs = 0;
    combos_total = 0;
    combos_after_gprune = 0;
    combos_after_sprune = 0;
    combos_merged = 0;
    hisyn_combos_enumerated = 0;
    hisyn_combos_possible = 0;
    dgg_nodes = 0;
    dgg_edges = 0;
    dgg_improvements = 0;
  }

let copy s =
  {
    dep_edges = s.dep_edges;
    orig_paths = s.orig_paths;
    paths_after_reloc = s.paths_after_reloc;
    orphan_count = s.orphan_count;
    reloc_graphs = s.reloc_graphs;
    combos_total = s.combos_total;
    combos_after_gprune = s.combos_after_gprune;
    combos_after_sprune = s.combos_after_sprune;
    combos_merged = s.combos_merged;
    hisyn_combos_enumerated = s.hisyn_combos_enumerated;
    hisyn_combos_possible = s.hisyn_combos_possible;
    dgg_nodes = s.dgg_nodes;
    dgg_edges = s.dgg_edges;
    dgg_improvements = s.dgg_improvements;
  }

(* all fields are immediate ints, so structural equality is exactly
   field-by-field equality *)
let equal (a : t) (b : t) = a = b

(* [add] aggregates counters across the relocation-graph variants explored
   for ONE query (Engine.run_dggt forks the dependency graph per orphan
   placement). Two aggregation rules apply, field by field:

   - [max] for fields that describe the QUERY or its best parse — each
     variant re-measures the same quantity, so summing would double-count
     it (a query with 4 dep edges explored over 3 variants still has 4
     edges, not 12);
   - [+] for fields that count WORK PERFORMED — every variant's
     enumeration, pruning and merging effort really happened, so the
     paper's Table III work totals are the sum over variants.

   The mixture is deliberate; the unit test test_stats_add_semantics pins
   it. *)
let add a b =
  {
    (* query-shaped: max *)
    dep_edges = max a.dep_edges b.dep_edges;
    orig_paths = max a.orig_paths b.orig_paths;
    paths_after_reloc = max a.paths_after_reloc b.paths_after_reloc;
    orphan_count = max a.orphan_count b.orphan_count;
    hisyn_combos_possible = max a.hisyn_combos_possible b.hisyn_combos_possible;
    (* work-shaped: sum *)
    reloc_graphs = a.reloc_graphs + b.reloc_graphs;
    combos_total = a.combos_total + b.combos_total;
    combos_after_gprune = a.combos_after_gprune + b.combos_after_gprune;
    combos_after_sprune = a.combos_after_sprune + b.combos_after_sprune;
    combos_merged = a.combos_merged + b.combos_merged;
    hisyn_combos_enumerated = a.hisyn_combos_enumerated + b.hisyn_combos_enumerated;
    dgg_nodes = a.dgg_nodes + b.dgg_nodes;
    dgg_edges = a.dgg_edges + b.dgg_edges;
    dgg_improvements = a.dgg_improvements + b.dgg_improvements;
  }

let gprune_removed t = t.combos_total - t.combos_after_gprune
let sprune_removed t = t.combos_after_gprune - t.combos_after_sprune

let pp fmt t =
  Format.fprintf fmt
    "edges=%d paths=%d->%d orphans=%d graphs=%d combos=%d -gp-> %d -sp-> %d merged=%d hisyn_enum=%d dgg=%d/%d improved=%d"
    t.dep_edges t.orig_paths t.paths_after_reloc t.orphan_count t.reloc_graphs
    t.combos_total t.combos_after_gprune t.combos_after_sprune t.combos_merged
    t.hisyn_combos_enumerated t.dgg_nodes t.dgg_edges t.dgg_improvements
