(** Counters collected during synthesis — the quantities reported in the
    paper's Table III (paths before/after orphan relocation, combinations
    before/after each pruning stage, …). *)

type t = {
  mutable dep_edges : int;          (** edges in the pruned dependency graph *)
  mutable orig_paths : int;         (** candidate paths before relocation *)
  mutable paths_after_reloc : int;  (** candidate paths after relocation *)
  mutable orphan_count : int;
  mutable reloc_graphs : int;       (** dependency-graph variants explored *)
  mutable combos_total : int;       (** combinations before pruning (sibling levels) *)
  mutable combos_after_gprune : int;
  mutable combos_after_sprune : int;
  mutable combos_merged : int;      (** prefix trees actually built *)
  mutable hisyn_combos_enumerated : int; (** baseline: combinations visited *)
  mutable hisyn_combos_possible : int;   (** baseline: full product (saturated) *)
  mutable dgg_nodes : int;          (** nodes in the dynamic grammar graph *)
  mutable dgg_edges : int;
  mutable dgg_improvements : int;
      (** DGG chart-cell best-candidate improvements (semiring [plus]
          calls that changed a node's best — the PathMerge work the trace
          layer narrates as [min_size] updates) *)
}

val create : unit -> t

val copy : t -> t
(** A detached clone. The incremental session replays a previous
    revision's counters into fresh outcomes; sharing the mutable record
    would let a later stage scribble on history. *)

val equal : t -> t -> bool
(** Field-by-field equality — the equivalence checks of the incremental
    property tests and [bench incremental] compare whole counter sets. *)

val add : t -> t -> t
(** Aggregate across the relocation-graph variants of one query. The
    aggregation differs per field, on purpose:

    - {e query-shaped} fields take the [max] — they re-measure the same
      query in every variant, so summing would double-count: [dep_edges],
      [orig_paths], [paths_after_reloc], [orphan_count],
      [hisyn_combos_possible];
    - {e work-shaped} fields take the sum — each variant's effort really
      happened: [reloc_graphs], [combos_total], [combos_after_gprune],
      [combos_after_sprune], [combos_merged], [hisyn_combos_enumerated],
      [dgg_nodes], [dgg_edges], [dgg_improvements]. *)

val pp : Format.formatter -> t -> unit
val gprune_removed : t -> int
val sprune_removed : t -> int
