(** A mutex-guarded ring buffer of the most recent values.

    The server keeps one of these holding the last N completed request
    traces behind [GET /debug/trace]: workers {!add} concurrently, the
    endpoint {!snapshot}s. Old entries are overwritten, never freed one by
    one — memory is bounded by [capacity] regardless of traffic. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] makes an always-empty ring ({!add} is a no-op), the
    same convention as the cache's disabled mode. *)

val capacity : 'a t -> int
val length : 'a t -> int
val total : 'a t -> int
(** Values ever added, including the evicted ones. *)

val add : 'a t -> 'a -> unit
(** Record a value, evicting the oldest when full. Thread-safe. *)

val snapshot : 'a t -> 'a list
(** The retained values, newest first. Thread-safe. *)

val clear : 'a t -> unit
