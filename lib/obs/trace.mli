(** Stage-level tracing for the six-step pipeline.

    A {!sink} collects timed, named spans ("DependencyParse", "WordToAPI",
    ...) with arbitrary key/value notes recorded at decision granularity
    (per-word candidate APIs, per-edge path counts, [min_size] updates).
    The engine receives the sink as an option threaded through its
    configuration: [None] keeps tracing off, and every instrumentation
    point is a single [match] on that option — no timestamps are taken, no
    strings are built, so the traced-off engine behaves like the untraced
    one (the bench suite pins this; see EXPERIMENTS.md).

    A sink is single-threaded by design: each request/query builds its own
    (the server's ring buffer of {e completed} traces is the shared,
    mutex-guarded structure — see {!Ring}). *)

(** Note values. Kept as a tiny sum so renderers (the [dggt explain]
    narrative, the server's [/debug/trace] JSON) can print them natively. *)
type value = Bool of bool | Int of int | Float of float | Str of string

type span
(** An open span. Handles are only valid against the sink that created
    them, until {!finish}. *)

type event = {
  id : int;                      (** creation order — also start order *)
  parent : int option;           (** enclosing span's id *)
  stage : string;
  start_s : float;               (** seconds since the sink was created *)
  dur_s : float;
  notes : (string * value) list; (** in emission order *)
}

type t = { events : event list }
(** A completed trace, events in start order. *)

type sink

val create : ?clock:(unit -> float) -> ?max_notes:int -> unit -> sink
(** [clock] defaults to [Unix.gettimeofday] (a monotonic-enough wall clock
    for stage spans; tests inject a deterministic one). [max_notes]
    (default 1024) caps the notes of each span — decision-granularity
    instrumentation on adversarial queries must not make traces unbounded;
    a truncated span gets a final [notes_dropped] count. *)

val enter : sink -> string -> span
(** Open a span; it nests under the innermost span still open. *)

val finish : sink -> span -> unit
(** Close the span (and any of its children left open, which share its end
    time). Finishing a span that is not open is a no-op. *)

val result : sink -> t
(** Snapshot the completed trace. Spans still open are included with their
    duration measured up to now. *)

(** {2 Optional-sink conveniences}

    The engine carries [sink option]; these make the off path one pattern
    match with no allocation. *)

val span : sink option -> string -> (span option -> 'a) -> 'a
(** [span (Some s) name f] runs [f (Some sp)] inside a fresh span, closing
    it even if [f] raises (budget exhaustion propagates through traced
    stages). [span None name f] is exactly [f None]. *)

val note : span option -> string -> value -> unit
val int : span option -> string -> int -> unit
val str : span option -> string -> string -> unit
val float : span option -> string -> float -> unit
val bool : span option -> string -> bool -> unit

val on : span option -> bool
(** [true] when tracing is live — guards note construction that would
    otherwise build strings eagerly. *)

(** {2 Reading a trace} *)

val durations : t -> (string * float) list
(** Per-stage wall time: top-level (parentless) events as
    [(stage, dur_s)], in start order. This is what feeds the per-stage
    latency histograms in [/metrics]. *)

val find : t -> string -> event option
(** First event with the given stage name, at any depth. *)

val pp_value : Format.formatter -> value -> unit

val pp : Format.formatter -> t -> unit
(** The [dggt explain] narrative: a numbered, indented stage-by-stage
    rendering with durations and notes. *)
