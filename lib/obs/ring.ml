type 'a t = {
  mu : Mutex.t;
  slots : 'a option array; (* [||] when capacity <= 0 *)
  mutable count : int;     (* values ever added *)
}

let create ~capacity =
  { mu = Mutex.create (); slots = Array.make (max 0 capacity) None; count = 0 }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let capacity t = Array.length t.slots
let total t = locked t (fun () -> t.count)
let length t = locked t (fun () -> min t.count (Array.length t.slots))

let add t v =
  let n = Array.length t.slots in
  if n > 0 then
    locked t (fun () ->
        t.slots.(t.count mod n) <- Some v;
        t.count <- t.count + 1)

let snapshot t =
  locked t (fun () ->
      let n = Array.length t.slots in
      let kept = min t.count n in
      List.init kept (fun i ->
          (* i = 0 is the newest: walk backwards from the write cursor *)
          match t.slots.((t.count - 1 - i + (n * (kept + 1))) mod n) with
          | Some v -> v
          | None -> assert false))

let clear t =
  locked t (fun () ->
      Array.fill t.slots 0 (Array.length t.slots) None;
      t.count <- 0)
