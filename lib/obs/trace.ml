type value = Bool of bool | Int of int | Float of float | Str of string

type event = {
  id : int;
  parent : int option;
  stage : string;
  start_s : float;
  dur_s : float;
  notes : (string * value) list;
}

type t = { events : event list }

type span = {
  sid : int;
  sparent : int option;
  sname : string;
  sstart : float;
  limit : int;
  mutable snotes : (string * value) list; (* newest first *)
  mutable ncount : int;
  mutable ndropped : int;
}

type sink = {
  clock : unit -> float;
  origin : float;
  max_notes : int;
  mutable next_id : int;
  mutable open_spans : span list; (* innermost first *)
  mutable closed : event list;    (* newest first *)
}

let create ?(clock = Unix.gettimeofday) ?(max_notes = 1024) () =
  { clock; origin = clock (); max_notes; next_id = 0; open_spans = []; closed = [] }

let now sink = sink.clock () -. sink.origin

let enter sink name =
  let sp =
    {
      sid = sink.next_id;
      sparent =
        (match sink.open_spans with s :: _ -> Some s.sid | [] -> None);
      sname = name;
      sstart = now sink;
      limit = sink.max_notes;
      snotes = [];
      ncount = 0;
      ndropped = 0;
    }
  in
  sink.next_id <- sink.next_id + 1;
  sink.open_spans <- sp :: sink.open_spans;
  sp

let event_of ~end_s sp =
  let notes =
    let base = List.rev sp.snotes in
    if sp.ndropped = 0 then base
    else base @ [ ("notes_dropped", Int sp.ndropped) ]
  in
  {
    id = sp.sid;
    parent = sp.sparent;
    stage = sp.sname;
    start_s = sp.sstart;
    dur_s = Float.max 0.0 (end_s -. sp.sstart);
    notes;
  }

let finish sink sp =
  if List.memq sp sink.open_spans then begin
    let end_s = now sink in
    (* children left open close with the same end time *)
    let rec pop = function
      | [] -> []
      | s :: rest ->
          sink.closed <- event_of ~end_s s :: sink.closed;
          if s == sp then rest else pop rest
    in
    sink.open_spans <- pop sink.open_spans
  end

let result sink =
  let end_s = now sink in
  let still_open = List.map (event_of ~end_s) sink.open_spans in
  let events =
    List.sort
      (fun a b -> compare a.id b.id)
      (List.rev_append sink.closed still_open)
  in
  { events }

(* --- optional-sink conveniences ----------------------------------- *)

let span sink name f =
  match sink with
  | None -> f None
  | Some s ->
      let sp = enter s name in
      Fun.protect ~finally:(fun () -> finish s sp) (fun () -> f (Some sp))

let note sp key v =
  match sp with
  | None -> ()
  | Some sp ->
      if sp.ncount >= sp.limit then sp.ndropped <- sp.ndropped + 1
      else begin
        sp.snotes <- (key, v) :: sp.snotes;
        sp.ncount <- sp.ncount + 1
      end

let int sp key v = note sp key (Int v)
let str sp key v = note sp key (Str v)
let float sp key v = note sp key (Float v)
let bool sp key v = note sp key (Bool v)
let on = function Some _ -> true | None -> false

(* --- reading ------------------------------------------------------- *)

let durations t =
  List.filter_map
    (fun e -> if e.parent = None then Some (e.stage, e.dur_s) else None)
    t.events

let find t stage = List.find_opt (fun e -> e.stage = stage) t.events

let pp_value fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf fmt "%.0f" f
      else Format.fprintf fmt "%g" f
  | Str s -> Format.pp_print_string fmt s

let pp_dur fmt d =
  if d >= 1.0 then Format.fprintf fmt "%.2f s" d
  else if d >= 0.001 then Format.fprintf fmt "%.2f ms" (d *. 1000.0)
  else Format.fprintf fmt "%.1f us" (d *. 1e6)

let pp fmt t =
  let children parent =
    List.filter (fun e -> e.parent = parent) t.events
  in
  let rec render depth ordinal e =
    let indent = String.make (2 + (4 * depth)) ' ' in
    (match ordinal with
    | Some n -> Format.fprintf fmt "%s%d. %-18s %a@." indent n e.stage pp_dur e.dur_s
    | None -> Format.fprintf fmt "%s- %-18s %a@." indent e.stage pp_dur e.dur_s);
    List.iter
      (fun (k, v) ->
        Format.fprintf fmt "%s     %s = %a@." indent k pp_value v)
      e.notes;
    List.iter (render (depth + 1) None) (children (Some e.id))
  in
  List.iteri (fun i e -> render 0 (Some (i + 1)) e) (children None)
