(** The front router: one client-facing HTTP port, N worker processes.

    [dggt serve --shards N] runs this instead of a single in-process
    server. The router owns a {!Supervisor} (spawn / heartbeat / respawn
    / drain of N [dggt serve --unix-socket] children) and proxies every
    client request over the worker's Unix socket, choosing the worker by
    a consistent-hash {!Ring}:

    - {e stateless} requests ([/synthesize], [/rank]) hash the request's
      {e domain name}, so each domain's whole-query and stage caches
      concentrate on one worker instead of being diluted N ways;
      [/domains] and [/debug/trace] go to the first healthy worker (all
      workers answer identically). A transport failure {e before any
      response byte} is retried against the (re)spawned worker for up to
      the retry window — a worker crash under load costs latency, never
      a failed stateless request;
    - {e sticky} requests ([/session/...]) ride the placement baked into
      the session id. The router mints every session id as
      [<uid>.w<slot>e<epoch>]: the ring places the fresh [uid], and the
      suffix pins the slot and the worker epoch it was created under
      ({!Supervisor} increments the epoch on every respawn). Sticky
      requests are never retried across a replacement — the session's
      in-memory state died with the worker — and an epoch mismatch
      answers [410 Gone] so typing clients re-create, exactly like the
      single-process server's reload-stranded sessions;
    - [POST /reload] fans out to every worker and reports per-shard
      results; [GET /metrics] scrapes every worker and merges the
      expositions ({!Promerge}: [shard="<n>"] on every sample, HELP/TYPE
      deduped) plus the router's own [dggt_shard_*] series (per-worker
      request counts by status class, respawns, heartbeat failures,
      retries, sticky 410s, proxy latency histogram); [GET /version]
      reports the shard topology — worker count, pids, epochs, states,
      per-worker pack digests — and flags digest mismatches between
      workers; [GET /healthz] is the router's own liveness.

    Streamed responses ([?stream=1] SSE) pass through chunk-by-chunk:
    the worker writes one SSE frame per chunk and the router re-emits
    each chunk as it arrives ({!Proxy.Stream}), so frame boundaries and
    pacing survive and nothing is buffered. *)

type params = {
  addr : string;
  port : int;                  (** 0 = ephemeral, read back with {!port} *)
  shards : int;
  exe : string;                (** worker executable (the dggt binary);
                                   workers run
                                   [exe serve --unix-socket <sock> <worker_args>] *)
  worker_args : string list;   (** extra argv for every worker (pool size,
                                   cache size, --packs, ...) *)
  store_dir : string option;   (** warm-start root: worker [i] gets
                                   [--store <dir>/shard-<i>], so each
                                   worker's spills stay its own and PR 8
                                   warm boots compose with sharding *)
  sockets_dir : string option; (** where the worker sockets live;
                                   [None] = a fresh per-router directory
                                   under the system temp dir *)
  hb_interval_s : float;       (** supervisor heartbeat period *)
  proxy_timeout_s : float;     (** per-read timeout on proxied requests *)
  retry_window_s : float;      (** how long a stateless request keeps
                                   retrying across a crash/respawn before
                                   giving up with 502 *)
  ready_timeout_s : float;     (** how long {!create} waits for all
                                   workers' first heartbeat; 0 = don't
                                   wait (the retry window covers
                                   stragglers) *)
}

val default_params : params
(** 127.0.0.1:8080, 2 shards, [exe] unset (callers pass the dggt
    binary, usually [Sys.executable_name]), no store, temp sockets,
    heartbeat 0.5 s, proxy timeout 30 s, retry window 20 s, ready
    timeout 60 s. *)

type t

val create : params -> t
(** Spawn the workers, bind the client port, and (per
    [ready_timeout_s]) wait for the fleet's first heartbeats. Raises
    [Invalid_argument] on [shards <= 0] or an empty [exe]. *)

val port : t -> int
val supervisor : t -> Supervisor.t
val ring : t -> Ring.t

val stop : t -> unit
(** Drain: stop accepting, finish in-flight proxied requests, then
    {!Supervisor.stop} the workers (SIGTERM, grace, SIGKILL). Blocks;
    idempotent. *)

val wait : t -> unit
(** Block until the router has been stopped ({!stop} or a signal wired
    via [Httpd.handle_signals]), then stop the workers. *)

val run : params -> unit
(** CLI entry point: {!create}, install SIGINT/SIGTERM handlers (SIGTERM
    drains gracefully), print the topology, serve until a signal
    arrives, shut the fleet down cleanly. *)
