(* A deliberately small HTTP/1.1 client: request line + headers out,
   status line + headers in, then either a content-length body or chunked
   frames. It only ever talks to our own Httpd over a local Unix socket,
   so the parser handles exactly what Httpd emits (no continuation
   headers, no trailers). *)

type body = Fixed of string | Stream of ((string -> unit) -> unit)

type response = {
  status : int;
  headers : (string * string) list;
  body : body;
}

let max_line = 16 * 1024

(* read one CRLF-terminated line (returned without the terminator) *)
let read_line fd =
  let buf = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > max_line then failwith "header line too long"
    else
      match Unix.read fd one 0 1 with
      | 0 -> failwith "connection closed mid-line"
      | _ ->
          let c = Bytes.get one 0 in
          if c = '\n' then begin
            let s = Buffer.contents buf in
            let n = String.length s in
            if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
          end
          else begin
            Buffer.add_char buf c;
            go ()
          end
  in
  go ()

let read_exactly fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> failwith "connection closed mid-body"
    | k -> off := !off + k
  done;
  Bytes.unsafe_to_string b

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  let n = Bytes.length b in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let parse_status_line line =
  (* "HTTP/1.1 200 OK" *)
  match String.split_on_char ' ' line with
  | _ :: code :: _ -> (
      match int_of_string_opt code with
      | Some c -> c
      | None -> failwith ("bad status line: " ^ line))
  | _ -> failwith ("bad status line: " ^ line)

let parse_header line =
  match String.index_opt line ':' with
  | None -> failwith ("bad header line: " ^ line)
  | Some i ->
      ( String.lowercase_ascii (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let rec read_headers fd acc =
  match read_line fd with
  | "" -> List.rev acc
  | line -> read_headers fd (parse_header line :: acc)

(* one chunked frame's payload; "" on the terminal zero chunk *)
let read_chunk fd =
  let size_line = read_line fd in
  let size =
    (* chunk extensions (";...") never appear in our Httpd's output, but
       strip them anyway *)
    let s =
      match String.index_opt size_line ';' with
      | Some i -> String.sub size_line 0 i
      | None -> size_line
    in
    match int_of_string_opt ("0x" ^ String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> failwith ("bad chunk size: " ^ size_line)
  in
  if size = 0 then begin
    (* terminal chunk's trailing CRLF (we never send trailers) *)
    ignore (read_line fd);
    None
  end
  else begin
    let payload = read_exactly fd size in
    (match read_line fd with
    | "" -> ()
    | s -> failwith ("missing chunk terminator: " ^ s));
    Some payload
  end

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request ~socket ?(timeout_s = 30.0) ?(headers = []) ?body ~meth ~path () =
  let fd =
    (* cloexec: a worker forked mid-request must not inherit this fd *)
    try Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
    with e -> failwith (Printexc.to_string e)
  in
  match
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%s %s HTTP/1.1\r\nhost: dggt-shard\r\n" meth path);
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
      headers;
    (match body with
    | Some body ->
        Buffer.add_string b
          (Printf.sprintf "content-length: %d\r\n" (String.length body))
    | None -> ());
    Buffer.add_string b "connection: close\r\n\r\n";
    (match body with Some body -> Buffer.add_string b body | None -> ());
    write_all fd (Buffer.contents b);
    let status = parse_status_line (read_line fd) in
    let headers = read_headers fd [] in
    (status, headers)
  with
  | exception e ->
      (* nothing (or only a partial head) arrived: the retryable case *)
      close_quietly fd;
      Error (Printexc.to_string e)
  | status, headers ->
      let chunked =
        match List.assoc_opt "transfer-encoding" headers with
        | Some te -> String.lowercase_ascii te = "chunked"
        | None -> false
      in
      if chunked then
        (* hand the open connection to the pump; one emit per frame *)
        let pump emit =
          Fun.protect
            ~finally:(fun () -> close_quietly fd)
            (fun () ->
              let rec go () =
                match read_chunk fd with
                | Some payload ->
                    emit payload;
                    go ()
                | None -> ()
              in
              go ())
        in
        Ok { status; headers; body = Stream pump }
      else begin
        match
          let len =
            match List.assoc_opt "content-length" headers with
            | Some l -> (
                match int_of_string_opt (String.trim l) with
                | Some n when n >= 0 -> n
                | _ -> failwith ("bad content-length: " ^ l))
            | None -> 0
          in
          read_exactly fd len
        with
        | body ->
            close_quietly fd;
            Ok { status; headers; body = Fixed body }
        | exception e ->
            close_quietly fd;
            (* the head arrived, so this response is {e not} retryable;
               surface it as a 502-shaped failure rather than Error *)
            Ok
              {
                status = 502;
                headers = [ ("content-type", "application/json") ];
                body =
                  Fixed
                    (Printf.sprintf
                       "{\"error\": \"worker body read failed: %s\"}"
                       (String.escaped (Printexc.to_string e)));
              }
      end

let fixed_body r =
  match r.body with
  | Fixed s -> s
  | Stream pump ->
      let b = Buffer.create 1024 in
      pump (Buffer.add_string b);
      Buffer.contents b
