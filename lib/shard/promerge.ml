(* Prometheus text manipulation by line shape: '#' starts a comment,
   anything else is "name[{labels}] value". We only ever feed this our
   own Smetrics.render output, but the line handling is shape-driven, not
   name-driven, so pack-added series merge correctly too. *)

let is_comment line = String.length line > 0 && line.[0] = '#'

(* the metric name a "# HELP name ..." / "# TYPE name ..." line is about;
   None for other comments *)
let comment_subject line =
  match String.split_on_char ' ' line with
  | "#" :: ("HELP" | "TYPE") :: name :: _ -> Some name
  | _ -> None

let relabel_line ~shard line =
  let tag = Printf.sprintf "shard=\"%d\"" shard in
  match String.index_opt line '{' with
  | Some i ->
      String.sub line 0 (i + 1)
      ^ tag ^ ","
      ^ String.sub line (i + 1) (String.length line - i - 1)
  | None -> (
      match String.index_opt line ' ' with
      | Some i ->
          String.sub line 0 i
          ^ "{" ^ tag ^ "}"
          ^ String.sub line i (String.length line - i)
      | None -> line (* malformed; pass through untouched *))

let lines s = String.split_on_char '\n' s

let relabel ~shard s =
  lines s
  |> List.map (fun line ->
         if line = "" || is_comment line then line
         else relabel_line ~shard line)
  |> String.concat "\n"

let merge scrapes ~extra =
  let seen = Hashtbl.create 64 in
  let b = Buffer.create 4096 in
  List.iter
    (fun (shard, text) ->
      List.iter
        (fun line ->
          if line = "" then ()
          else if is_comment line then begin
            match comment_subject line with
            | Some name ->
                (* HELP and TYPE dedup independently *)
                let key =
                  (match String.split_on_char ' ' line with
                  | _ :: kind :: _ -> kind
                  | _ -> "")
                  ^ ":" ^ name
                in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  Buffer.add_string b line;
                  Buffer.add_char b '\n'
                end
            | None ->
                Buffer.add_string b line;
                Buffer.add_char b '\n'
          end
          else begin
            Buffer.add_string b (relabel_line ~shard line);
            Buffer.add_char b '\n'
          end)
        (lines text))
    scrapes;
  Buffer.add_string b extra;
  Buffer.contents b
