(** Worker process supervision for the shard router.

    Owns N worker slots. Each slot runs one [dggt serve --unix-socket]
    child process on a fixed socket path; the supervisor spawns them,
    heartbeats them ([GET /version] over the socket), reaps and respawns
    crashed ones with bounded exponential backoff, and tears everything
    down on {!stop} (SIGTERM, a drain grace, then SIGKILL stragglers).

    Epochs are the sticky-routing contract: every (re)spawn of a slot
    increments its epoch, and the router bakes [(slot, epoch)] into the
    session ids it mints — so a session whose worker died is detected by
    a plain epoch comparison, no session table needed ({!Router}
    answers 410 on mismatch, because the worker's in-memory session
    state died with the process).

    Failure detection is two-pronged: [waitpid WNOHANG] on each child
    pid catches real exits within a monitor tick, and the heartbeat
    catches livelocked workers — [hb_tolerance] consecutive failed
    heartbeats kill (SIGKILL) and respawn the worker. The monitor only
    ever waits on its own child pids, so it cannot steal exit statuses
    from unrelated children of the process (e.g. in-process test
    harnesses that also fork). *)

type state =
  | Starting  (** spawned, no successful heartbeat yet *)
  | Healthy
  | Backoff   (** dead, waiting out the respawn backoff *)
  | Stopped   (** supervisor is shutting down *)

type worker = {
  slot : int;
  pid : int;           (** current child pid; [-1] while in backoff *)
  epoch : int;         (** increments on every (re)spawn, from 1 *)
  state : state;
  respawns : int;      (** respawns so far (first spawn not counted) *)
  hb_failures : int;   (** cumulative failed heartbeats *)
  socket : string;     (** the slot's Unix-socket path (stable) *)
}

type params = {
  shards : int;
  sockets_dir : string;        (** created if missing; socket paths are
                                   [<dir>/w<slot>.sock] *)
  argv : slot:int -> socket:string -> string array;
      (** the worker command line for a slot; [argv.(0)] is the
          executable path *)
  hb_interval_s : float;       (** heartbeat period (default 0.5) *)
  hb_timeout_s : float;        (** per-heartbeat socket timeout (2.0) *)
  hb_tolerance : int;          (** consecutive failures before the
                                   worker is killed and respawned (3);
                                   a [Starting] worker is exempt — boot
                                   (automaton compiles, store replay)
                                   may legitimately outlast several
                                   heartbeat periods *)
  backoff_base_s : float;      (** first respawn delay (0.1) *)
  backoff_cap_s : float;       (** backoff ceiling (5.0); the delay
                                   doubles per consecutive death and
                                   resets once a respawned worker
                                   reaches [Healthy] *)
}

val default_params : params
(** 2 shards under [/tmp], [argv] unset (raises — callers always supply
    it), heartbeat 0.5 s / 2 s / tolerance 3, backoff 0.1 s doubling to
    5 s. *)

type t

val start : params -> t
(** Spawn every slot's worker and the monitor thread. Returns
    immediately; workers come up asynchronously (poll {!workers} or
    {!await_healthy}). *)

val workers : t -> worker list
(** Snapshot of all slots, in slot order. *)

val find : t -> int -> worker option
(** Snapshot of one slot. *)

val await_healthy : t -> timeout_s:float -> bool
(** Block until every slot is [Healthy] (true) or the timeout passes
    (false — some slots may still be starting; the router serves from
    whatever is healthy). *)

val note_transport_failure : t -> int -> unit
(** The router failed to reach this slot's socket. Wakes the monitor to
    heartbeat it immediately instead of waiting out the interval,
    shortening the crash-to-respawn window under load. *)

val stop : ?grace_s:float -> t -> unit
(** Drain: SIGTERM every live worker, wait up to [grace_s] (default 5)
    for clean exits, SIGKILL the rest, reap everything, join the
    monitor, unlink the sockets. Idempotent. *)
