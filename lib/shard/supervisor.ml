(* One slot = one child process + its lifecycle bookkeeping. All slot
   mutation happens under [mu]; the monitor thread is the only writer
   besides [stop], request threads only snapshot. *)

type state = Starting | Healthy | Backoff | Stopped

type worker = {
  slot : int;
  pid : int;
  epoch : int;
  state : state;
  respawns : int;
  hb_failures : int;
  socket : string;
}

type params = {
  shards : int;
  sockets_dir : string;
  argv : slot:int -> socket:string -> string array;
  hb_interval_s : float;
  hb_timeout_s : float;
  hb_tolerance : int;
  backoff_base_s : float;
  backoff_cap_s : float;
}

let default_params =
  {
    shards = 2;
    sockets_dir = Filename.concat (Filename.get_temp_dir_name ()) "dggt-shard";
    argv = (fun ~slot:_ ~socket:_ -> failwith "Supervisor.params.argv unset");
    hb_interval_s = 0.5;
    hb_timeout_s = 2.0;
    hb_tolerance = 3;
    backoff_base_s = 0.1;
    backoff_cap_s = 5.0;
  }

(* the mutable slot record behind the public snapshot *)
type slot_st = {
  s_slot : int;
  s_socket : string;
  mutable s_pid : int; (* -1 while down *)
  mutable s_epoch : int;
  mutable s_state : state;
  mutable s_respawns : int; (* spawns - 1: the first spawn is free *)
  mutable s_hb_failures : int; (* cumulative *)
  mutable s_hb_streak : int; (* consecutive, resets on success *)
  mutable s_deaths : int; (* consecutive, resets on Healthy; drives backoff *)
  mutable s_next_spawn : float; (* earliest respawn time while Backoff *)
  mutable s_last_hb : float;
}

type t = {
  params : params;
  mu : Mutex.t;
  slots : slot_st array;
  mutable closing : bool;
  mutable monitor : Thread.t option;
  mutable nudged : bool; (* a transport failure asked for an early heartbeat *)
}

let snapshot_slot s =
  {
    slot = s.s_slot;
    pid = s.s_pid;
    epoch = s.s_epoch;
    state = s.s_state;
    respawns = s.s_respawns;
    hb_failures = s.s_hb_failures;
    socket = s.s_socket;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let workers t =
  locked t (fun () -> Array.to_list (Array.map snapshot_slot t.slots))

let find t slot =
  locked t (fun () ->
      if slot >= 0 && slot < Array.length t.slots then
        Some (snapshot_slot t.slots.(slot))
      else None)

let rec mkdir_p dir =
  if dir = "/" || dir = "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* spawn the slot's child; caller holds the lock. A stale socket from the
   previous incarnation is unlinked here too (the worker also does it),
   so a connect between death and respawn fails fast instead of reaching
   a dead listener's backlog. *)
let spawn_locked t s =
  (try Unix.unlink s.s_socket with Unix.Unix_error _ -> ());
  let argv = t.params.argv ~slot:s.s_slot ~socket:s.s_socket in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  s.s_pid <- pid;
  s.s_epoch <- s.s_epoch + 1;
  s.s_respawns <- s.s_respawns + 1;
  s.s_state <- Starting;
  s.s_hb_streak <- 0;
  s.s_last_hb <- 0.0

let backoff_delay t deaths =
  Float.min t.params.backoff_cap_s
    (t.params.backoff_base_s *. (2.0 ** float_of_int (max 0 (deaths - 1))))

(* the slot's child died (reaped or killed); schedule the respawn *)
let mark_dead_locked t s now =
  s.s_pid <- -1;
  s.s_deaths <- s.s_deaths + 1;
  s.s_state <- Backoff;
  s.s_next_spawn <- now +. backoff_delay t s.s_deaths

let kill_quietly pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* reap exactly this child, non-blocking; true when it exited. Never
   waits on -1: other subsystems (git_describe, tests) have children of
   their own and their statuses are not ours to take. *)
let reaped pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true

let heartbeat t s =
  match
    Proxy.request ~socket:s.s_socket ~timeout_s:t.params.hb_timeout_s
      ~meth:"GET" ~path:"/version" ()
  with
  | Ok resp ->
      ignore (Proxy.fixed_body resp);
      resp.Proxy.status = 200
  | Error _ -> false

let monitor_tick t =
  let now = Unix.gettimeofday () in
  (* phase 1 (locked): reap deaths, fire due respawns, pick heartbeat
     candidates *)
  let to_heartbeat =
    locked t (fun () ->
        if t.closing then []
        else begin
          Array.iter
            (fun s ->
              match s.s_state with
              | Stopped -> ()
              | Backoff -> if now >= s.s_next_spawn then spawn_locked t s
              | Starting | Healthy ->
                  if s.s_pid >= 0 && reaped s.s_pid then
                    mark_dead_locked t s now)
            t.slots;
          let nudged = t.nudged in
          t.nudged <- false;
          Array.to_list t.slots
          |> List.filter_map (fun s ->
                 match s.s_state with
                 | (Starting | Healthy)
                   when nudged || now -. s.s_last_hb >= t.params.hb_interval_s
                   ->
                     s.s_last_hb <- now;
                     Some s
                 | _ -> None)
        end)
  in
  (* phase 2 (unlocked): heartbeats are blocking socket I/O *)
  List.iter
    (fun s ->
      let ok = heartbeat t s in
      locked t (fun () ->
          if (not t.closing) && s.s_state <> Stopped && s.s_pid >= 0 then
            if ok then begin
              s.s_state <- Healthy;
              s.s_hb_streak <- 0;
              (* a full successful heartbeat means the respawn took: the
                 next death starts the backoff ladder over *)
              s.s_deaths <- 0
            end
            else begin
              s.s_hb_failures <- s.s_hb_failures + 1;
              s.s_hb_streak <- s.s_hb_streak + 1;
              (* a Starting worker is still booting (automaton compiles,
                 store replay): only waitpid liveness applies to it *)
              if s.s_state = Healthy && s.s_hb_streak >= t.params.hb_tolerance
              then begin
                kill_quietly s.s_pid Sys.sigkill;
                ignore (Unix.waitpid [] s.s_pid);
                mark_dead_locked t s (Unix.gettimeofday ())
              end
            end))
    to_heartbeat

let monitor_loop t =
  let rec go () =
    if not (locked t (fun () -> t.closing)) then begin
      monitor_tick t;
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let start params =
  if params.shards <= 0 then invalid_arg "Supervisor.start: shards must be > 0";
  mkdir_p params.sockets_dir;
  let slots =
    Array.init params.shards (fun i ->
        {
          s_slot = i;
          s_socket =
            Filename.concat params.sockets_dir (Printf.sprintf "w%d.sock" i);
          s_pid = -1;
          s_epoch = 0;
          s_state = Backoff;
          s_respawns = -1;
          s_hb_failures = 0;
          s_hb_streak = 0;
          s_deaths = 0;
          s_next_spawn = 0.0;
          s_last_hb = 0.0;
        })
  in
  let t =
    {
      params;
      mu = Mutex.create ();
      slots;
      closing = false;
      monitor = None;
      nudged = false;
    }
  in
  locked t (fun () -> Array.iter (fun s -> spawn_locked t s) t.slots);
  t.monitor <- Some (Thread.create monitor_loop t);
  t

let await_healthy t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let all_healthy () =
    locked t (fun () -> Array.for_all (fun s -> s.s_state = Healthy) t.slots)
  in
  let rec go () =
    if all_healthy () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let note_transport_failure t slot =
  locked t (fun () ->
      if slot >= 0 && slot < Array.length t.slots then t.nudged <- true)

let stop ?(grace_s = 5.0) t =
  let join_monitor =
    locked t (fun () ->
        if t.closing then None
        else begin
          t.closing <- true;
          t.monitor
        end)
  in
  match join_monitor with
  | None -> ()
  | Some th ->
      (try Thread.join th with _ -> ());
      let live =
        locked t (fun () ->
            Array.to_list t.slots
            |> List.filter_map (fun s ->
                   let pid = s.s_pid in
                   s.s_state <- Stopped;
                   if pid >= 0 then Some pid else None))
      in
      List.iter (fun pid -> kill_quietly pid Sys.sigterm) live;
      let deadline = Unix.gettimeofday () +. grace_s in
      let rec drain pending =
        if pending = [] then ()
        else if Unix.gettimeofday () >= deadline then
          (* stragglers: SIGKILL and reap for certain *)
          List.iter
            (fun pid ->
              kill_quietly pid Sys.sigkill;
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            pending
        else begin
          let still = List.filter (fun pid -> not (reaped pid)) pending in
          if still <> [] then Thread.delay 0.02;
          drain still
        end
      in
      drain live;
      locked t (fun () ->
          Array.iter
            (fun s ->
              s.s_pid <- -1;
              try Unix.unlink s.s_socket with Unix.Unix_error _ -> ())
            t.slots)
