(** One-shot HTTP/1.1 client over a Unix-domain socket — the router's
    side of the worker wire.

    Each call opens a fresh connection, sends one request with
    [connection: close], and reads one response. No pooling: connects on
    a local Unix socket are a few microseconds, and one-shot connections
    make the failure model trivial — a worker crash surfaces as exactly
    one transport error on exactly the requests it was serving.

    The error/response split is the router's retry contract:
    [Error _] means the transport failed {e before a complete status
    line and header block arrived} — nothing was delivered to the
    client, so a stateless request may safely be retried against the
    respawned worker. Once a [response] is returned, bytes are
    attributable to the client and the router must not retry. *)

type body =
  | Fixed of string
      (** a [content-length] (or empty) body, fully read; the connection
          is already closed *)
  | Stream of ((string -> unit) -> unit)
      (** a [transfer-encoding: chunked] body, {e not yet read}: the
          connection stays open until the pump is run. [Stream pump]
          calls the emit function once per upstream chunk frame — the
          worker writes one SSE frame per chunk, so frame boundaries
          survive the proxy — and closes the connection when the
          terminal chunk arrives (or on any error, which it re-raises).
          The pump must be run exactly once. *)

type response = {
  status : int;
  headers : (string * string) list; (** names lowercased *)
  body : body;
}

val request :
  socket:string ->
  ?timeout_s:float ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  (response, string) result
(** [path] is the full request target, query string included.
    [timeout_s] (default 30) bounds each socket read, not the whole
    exchange — a streaming response may legitimately take longer than
    any fixed budget, but a worker that stops mid-frame for [timeout_s]
    is treated as dead. [body] implies [content-length]; the request
    always carries [connection: close]. *)

val fixed_body : response -> string
(** The body of a [Fixed] response; drains a [Stream] into one string
    (convenience for callers that don't need frame boundaries, e.g. the
    metrics scraper and the heartbeat). *)
