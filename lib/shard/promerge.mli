(** Merging worker [/metrics] scrapes into one Prometheus exposition.

    Merge rules (documented in DESIGN.md §Sharded serving):

    - every {e sample} line gains a [shard="<slot>"] label, so
      same-named series from different workers never collide and
      aggregation stays a PromQL [sum by] away;
    - [# HELP] / [# TYPE] comment lines are kept once per metric name —
      first worker wins; workers run the same binary, so the texts are
      identical anyway;
    - blank lines are dropped; everything else passes through in worker
      order, followed by the router's own [dggt_shard_*] section
      verbatim (router series carry their own labels and are never
      relabeled). *)

val relabel : shard:int -> string -> string
(** One worker's exposition with [shard="<n>"] injected into every
    sample line: ["name{a=\"b\"} 1"] becomes
    ["name{shard=\"n\",a=\"b\"} 1"], and a bare ["name 1"] becomes
    ["name{shard=\"n\"} 1"]. Comment and blank lines are unchanged. *)

val merge : (int * string) list -> extra:string -> string
(** [merge scrapes ~extra]: relabeled worker scrapes (pairs of slot and
    exposition text) concatenated under the dedup rule above, with
    [extra] appended. *)
