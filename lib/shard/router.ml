module Httpd = Dggt_server.Httpd
module J = Dggt_server.Jsonio
module Hist = Dggt_server.Smetrics.Hist
module Strutil = Dggt_util.Strutil

type params = {
  addr : string;
  port : int;
  shards : int;
  exe : string;
  worker_args : string list;
  store_dir : string option;
  sockets_dir : string option;
  hb_interval_s : float;
  proxy_timeout_s : float;
  retry_window_s : float;
  ready_timeout_s : float;
}

let default_params =
  {
    addr = "127.0.0.1";
    port = 8080;
    shards = 2;
    exe = "";
    worker_args = [];
    store_dir = None;
    sockets_dir = None;
    hb_interval_s = 0.5;
    proxy_timeout_s = 30.0;
    retry_window_s = 20.0;
    ready_timeout_s = 60.0;
  }

(* router-side counters; all under [mu] (the Hist is not self-locking) *)
type rmetrics = {
  mu : Mutex.t;
  requests : (int * string, int ref) Hashtbl.t; (* (slot, status class) *)
  mutable retries : int;
  mutable sticky_gone : int;
  proxy_latency : Hist.t;
}

type t = {
  params : params;
  ring : Ring.t;
  sup : Supervisor.t;
  rm : rmetrics;
  umu : Mutex.t; (* guards the uid counter *)
  mutable uid_counter : int;
  mutable http : Httpd.t option;
}

let api_version = Dggt_server.Wire.api_version
let error_json = Dggt_server.Wire.error_json

(* ------------------------------------------------------------------ *)
(* router metrics                                                     *)
(* ------------------------------------------------------------------ *)

let class_of_status s =
  if s >= 500 then "5xx"
  else if s >= 400 then "4xx"
  else if s >= 300 then "3xx"
  else "2xx"

let count_request t slot cls =
  Mutex.lock t.rm.mu;
  (match Hashtbl.find_opt t.rm.requests (slot, cls) with
  | Some r -> incr r
  | None -> Hashtbl.replace t.rm.requests (slot, cls) (ref 1));
  Mutex.unlock t.rm.mu

let count_retry t =
  Mutex.lock t.rm.mu;
  t.rm.retries <- t.rm.retries + 1;
  Mutex.unlock t.rm.mu

let count_sticky_gone t =
  Mutex.lock t.rm.mu;
  t.rm.sticky_gone <- t.rm.sticky_gone + 1;
  Mutex.unlock t.rm.mu

let observe_latency t seconds =
  Mutex.lock t.rm.mu;
  Hist.observe t.rm.proxy_latency seconds;
  Mutex.unlock t.rm.mu

let fmt_float v =
  if Float.abs v = Float.infinity then "+Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* the router's own exposition — appended after the merged worker
   scrapes; these series carry their own shard labels *)
let render_shard_metrics t =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let ws = Supervisor.workers t.sup in
  line "# HELP dggt_shard_workers Worker slots behind the router.";
  line "# TYPE dggt_shard_workers gauge";
  line "dggt_shard_workers %d" (List.length ws);
  line "# HELP dggt_shard_worker_up Worker health (1 = heartbeat ok).";
  line "# TYPE dggt_shard_worker_up gauge";
  List.iter
    (fun (w : Supervisor.worker) ->
      line "dggt_shard_worker_up{shard=\"%d\"} %d" w.Supervisor.slot
        (if w.Supervisor.state = Supervisor.Healthy then 1 else 0))
    ws;
  line "# HELP dggt_shard_respawns_total Worker respawns by the supervisor.";
  line "# TYPE dggt_shard_respawns_total counter";
  List.iter
    (fun (w : Supervisor.worker) ->
      line "dggt_shard_respawns_total{shard=\"%d\"} %d" w.Supervisor.slot
        w.Supervisor.respawns)
    ws;
  line "# HELP dggt_shard_heartbeat_failures_total Failed worker heartbeats.";
  line "# TYPE dggt_shard_heartbeat_failures_total counter";
  List.iter
    (fun (w : Supervisor.worker) ->
      line "dggt_shard_heartbeat_failures_total{shard=\"%d\"} %d"
        w.Supervisor.slot w.Supervisor.hb_failures)
    ws;
  Mutex.lock t.rm.mu;
  let reqs =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.rm.requests []
    |> List.sort compare
  in
  let retries = t.rm.retries and sticky_gone = t.rm.sticky_gone in
  let buckets = Hist.buckets t.rm.proxy_latency in
  let lat_sum = Hist.sum t.rm.proxy_latency in
  let lat_count = Hist.count t.rm.proxy_latency in
  Mutex.unlock t.rm.mu;
  line
    "# HELP dggt_shard_requests_total Proxied requests by worker and status \
     class.";
  line "# TYPE dggt_shard_requests_total counter";
  List.iter
    (fun ((slot, cls), n) ->
      line "dggt_shard_requests_total{shard=\"%d\",class=%S} %d" slot cls n)
    reqs;
  line
    "# HELP dggt_shard_retries_total Stateless requests retried after a \
     transport failure.";
  line "# TYPE dggt_shard_retries_total counter";
  line "dggt_shard_retries_total %d" retries;
  line
    "# HELP dggt_shard_sticky_gone_total Sticky requests answered 410 because \
     the session's worker was replaced.";
  line "# TYPE dggt_shard_sticky_gone_total counter";
  line "dggt_shard_sticky_gone_total %d" sticky_gone;
  line "# HELP dggt_shard_proxy_latency_seconds Proxied request latency.";
  line "# TYPE dggt_shard_proxy_latency_seconds histogram";
  List.iter
    (fun (le, cum) ->
      line "dggt_shard_proxy_latency_seconds_bucket{le=%S} %d" (fmt_float le)
        cum)
    buckets;
  line "dggt_shard_proxy_latency_seconds_sum %s" (fmt_float lat_sum);
  line "dggt_shard_proxy_latency_seconds_count %d" lat_count;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* request forwarding                                                 *)
(* ------------------------------------------------------------------ *)

let urlencode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

(* the worker-side request target: path plus re-encoded query string *)
let target (req : Httpd.request) =
  match req.Httpd.query with
  | [] -> req.Httpd.path
  | q ->
      req.Httpd.path ^ "?"
      ^ String.concat "&"
          (List.map (fun (k, v) -> urlencode k ^ "=" ^ urlencode v) q)

let content_type_of (headers : (string * string) list) =
  List.assoc_opt "content-type" headers

(* forward one request to [slot]'s worker. [retryable] requests (the
   stateless ones) are re-sent across the crash/respawn window as long
   as the transport failed before any response byte; sticky requests
   surface the failure immediately (their state died with the worker).
   A chunked upstream body becomes a chunked downstream response whose
   producer pumps one chunk per upstream frame — SSE passes through
   unbuffered. *)
let forward t ~slot ~retryable ~meth ~path ?body () =
  let deadline = Unix.gettimeofday () +. t.params.retry_window_s in
  let rec attempt () =
    let socket =
      match Supervisor.find t.sup slot with
      | Some w -> w.Supervisor.socket
      | None -> Printf.sprintf "/nonexistent/w%d.sock" slot
    in
    let t0 = Unix.gettimeofday () in
    match
      Proxy.request ~socket ~timeout_s:t.params.proxy_timeout_s ~meth ~path
        ?body ()
    with
    | Ok resp ->
        observe_latency t (Unix.gettimeofday () -. t0);
        count_request t slot (class_of_status resp.Proxy.status);
        (match resp.Proxy.body with
        | Proxy.Fixed b ->
            Httpd.response
              ?content_type:(content_type_of resp.Proxy.headers)
              resp.Proxy.status b
        | Proxy.Stream pump -> Httpd.stream_response resp.Proxy.status pump)
    | Error msg ->
        Supervisor.note_transport_failure t.sup slot;
        count_request t slot "transport_error";
        if retryable && Unix.gettimeofday () < deadline then begin
          count_retry t;
          Thread.delay 0.05;
          attempt ()
        end
        else
          Httpd.response 502
            (error_json
               (Printf.sprintf "worker %d unreachable: %s" slot msg))
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* routing keys                                                       *)
(* ------------------------------------------------------------------ *)

(* the domain a stateless request targets, lowercased; mirrors the
   worker's own parameter carriage (GET: query string, POST: JSON body)
   and its "textediting" default *)
let domain_key (req : Httpd.request) =
  let named =
    match List.assoc_opt "domain" req.Httpd.query with
    | Some d -> Some d
    | None -> (
        if req.Httpd.body = "" then None
        else
          match J.of_string req.Httpd.body with
          | Ok b -> J.str_field "domain" b
          | Error _ -> None)
  in
  Strutil.lowercase (Option.value named ~default:"textediting")

let first_healthy_slot t =
  match
    List.find_opt
      (fun (w : Supervisor.worker) -> w.Supervisor.state = Supervisor.Healthy)
      (Supervisor.workers t.sup)
  with
  | Some w -> w.Supervisor.slot
  | None -> 0

(* which worker serves a stateless request: /synthesize and /rank hash
   their domain (cache affinity); everything else is replicated state,
   any healthy worker will do *)
let stateless_slot t (req : Httpd.request) =
  match req.Httpd.path with
  | "/synthesize" | "/rank" ->
      Option.value (Ring.lookup t.ring (domain_key req)) ~default:0
  | _ -> first_healthy_slot t

(* ------------------------------------------------------------------ *)
(* sticky sessions                                                    *)
(* ------------------------------------------------------------------ *)

(* "<uid>.w<slot>e<epoch>" <-> (uid, slot, epoch) *)
let parse_placement id =
  match String.rindex_opt id '.' with
  | None -> None
  | Some i -> (
      let suffix = String.sub id (i + 1) (String.length id - i - 1) in
      if String.length suffix < 4 || suffix.[0] <> 'w' then None
      else
        match String.index_opt suffix 'e' with
        | None -> None
        | Some j -> (
            match
              ( int_of_string_opt (String.sub suffix 1 (j - 1)),
                int_of_string_opt
                  (String.sub suffix (j + 1) (String.length suffix - j - 1))
              )
            with
            | Some slot, Some epoch when slot >= 0 && epoch >= 1 ->
                Some (slot, epoch)
            | _ -> None))

let mint_uid t =
  Mutex.lock t.umu;
  let n = t.uid_counter in
  t.uid_counter <- n + 1;
  Mutex.unlock t.umu;
  Printf.sprintf "u%x-%06x" n
    (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff)

(* POST /session: mint the uid, place it on the ring, pin the owning
   worker's current epoch into the id, and have the worker create the
   session under exactly that id. The id is (re)built inside the retry
   loop: if the worker dies between placement and creation, the retry
   pins the respawned epoch. *)
let session_create_handler t (req : Httpd.request) =
  match
    J.of_string (if req.Httpd.body = "" then "{}" else req.Httpd.body)
  with
  | Error e -> Httpd.response 400 (error_json e)
  | Ok (J.Obj fields) ->
      let uid = mint_uid t in
      let slot = Option.value (Ring.lookup t.ring uid) ~default:0 in
      let deadline = Unix.gettimeofday () +. t.params.retry_window_s in
      let rec attempt () =
        let w = Supervisor.find t.sup slot in
        let epoch, socket =
          match w with
          | Some w -> (w.Supervisor.epoch, w.Supervisor.socket)
          | None -> (1, Printf.sprintf "/nonexistent/w%d.sock" slot)
        in
        let id = Printf.sprintf "%s.w%de%d" uid slot epoch in
        let body =
          J.to_string
            (J.Obj
               (List.filter (fun (k, _) -> k <> "id") fields
               @ [ ("id", J.Str id) ]))
        in
        let t0 = Unix.gettimeofday () in
        match
          Proxy.request ~socket ~timeout_s:t.params.proxy_timeout_s
            ~meth:"POST" ~path:"/session" ~body ()
        with
        | Ok resp ->
            observe_latency t (Unix.gettimeofday () -. t0);
            count_request t slot (class_of_status resp.Proxy.status);
            Httpd.response
              ?content_type:(content_type_of resp.Proxy.headers)
              resp.Proxy.status (Proxy.fixed_body resp)
        | Error msg ->
            Supervisor.note_transport_failure t.sup slot;
            count_request t slot "transport_error";
            if Unix.gettimeofday () < deadline then begin
              count_retry t;
              Thread.delay 0.05;
              attempt ()
            end
            else
              Httpd.response 502
                (error_json
                   (Printf.sprintf "worker %d unreachable: %s" slot msg))
      in
      attempt ()
  | Ok _ -> Httpd.response 400 (error_json "request body must be an object")

(* /session/<id>[/query]: the id itself says where to go. An epoch
   mismatch means the owning worker was replaced since the session was
   created — its state is gone, and unlike the stateless paths this is
   not retryable: 410, mirroring the single-process server's
   reload-stranded sessions. Ids without our suffix (created before a
   router sat in front, or hand-made) fall back to hashing the whole id:
   stable routing, but no replacement detection. *)
let sticky_handler t (req : Httpd.request) id =
  match parse_placement id with
  | Some (slot, epoch) when slot < t.params.shards -> (
      match Supervisor.find t.sup slot with
      | Some w when w.Supervisor.epoch <> epoch ->
          count_sticky_gone t;
          Httpd.response 410
            (error_json
               "session lost: its worker was replaced (create a new session)")
      | _ ->
          forward t ~slot ~retryable:false ~meth:req.Httpd.meth
            ~path:(target req) ~body:req.Httpd.body ())
  | _ ->
      let slot = Option.value (Ring.lookup t.ring id) ~default:0 in
      forward t ~slot ~retryable:false ~meth:req.Httpd.meth
        ~path:(target req) ~body:req.Httpd.body ()

(* ------------------------------------------------------------------ *)
(* fan-out endpoints                                                  *)
(* ------------------------------------------------------------------ *)

(* scrape every worker; workers that fail to answer are skipped (their
   series simply age out downstream) but noted as a comment *)
let metrics_handler t =
  let scrapes =
    List.filter_map
      (fun (w : Supervisor.worker) ->
        match
          Proxy.request ~socket:w.Supervisor.socket
            ~timeout_s:t.params.proxy_timeout_s ~meth:"GET" ~path:"/metrics"
            ()
        with
        | Ok resp when resp.Proxy.status = 200 ->
            Some (w.Supervisor.slot, Proxy.fixed_body resp)
        | Ok resp ->
            ignore (Proxy.fixed_body resp);
            None
        | Error _ -> None)
      (Supervisor.workers t.sup)
  in
  Httpd.response ~content_type:"text/plain; version=0.0.4" 200
    (Promerge.merge scrapes ~extra:(render_shard_metrics t))

let reload_handler t =
  let results =
    List.map
      (fun (w : Supervisor.worker) ->
        match
          Proxy.request ~socket:w.Supervisor.socket
            ~timeout_s:t.params.proxy_timeout_s ~meth:"POST" ~path:"/reload"
            ~body:"" ()
        with
        | Ok resp ->
            let body = Proxy.fixed_body resp in
            let payload =
              match J.of_string body with Ok v -> v | Error _ -> J.Str body
            in
            (w.Supervisor.slot, resp.Proxy.status, payload)
        | Error msg ->
            (w.Supervisor.slot, 502, J.Obj [ ("error", J.Str msg) ]))
      (Supervisor.workers t.sup)
  in
  let all_ok = List.for_all (fun (_, status, _) -> status = 200) results in
  Httpd.response
    (if all_ok then 200 else 502)
    (J.to_string
       (J.Obj
          [
            ("v", J.Num (float_of_int api_version));
            ("ok", J.Bool all_ok);
            ( "shards",
              J.Arr
                (List.map
                   (fun (slot, status, payload) ->
                     J.Obj
                       [
                         ("shard", J.Num (float_of_int slot));
                         ("status", J.Num (float_of_int status));
                         ("response", payload);
                       ])
                   results) );
          ]))

let state_str = function
  | Supervisor.Starting -> "starting"
  | Supervisor.Healthy -> "healthy"
  | Supervisor.Backoff -> "backoff"
  | Supervisor.Stopped -> "stopped"

(* shard topology: the supervisor's view of each slot, enriched with the
   worker's own /version answer (build, generation, pack digest) when it
   is reachable. Pack digests are the reload-consistency check: after a
   partially-failed /reload fan-out, workers can diverge — the router
   flags that rather than hiding it. *)
let version_handler t =
  let ws =
    List.map
      (fun (w : Supervisor.worker) ->
        let remote =
          match
            Proxy.request ~socket:w.Supervisor.socket
              ~timeout_s:t.params.proxy_timeout_s ~meth:"GET" ~path:"/version"
              ()
          with
          | Ok resp when resp.Proxy.status = 200 -> (
              match J.of_string (Proxy.fixed_body resp) with
              | Ok v -> Some v
              | Error _ -> None)
          | Ok resp ->
              ignore (Proxy.fixed_body resp);
              None
          | Error _ -> None
        in
        (w, remote))
      (Supervisor.workers t.sup)
  in
  let digests =
    List.filter_map
      (fun (_, remote) -> Option.bind remote (J.str_field "pack_digest"))
      ws
  in
  let mismatch =
    match digests with
    | [] -> false
    | d :: rest -> List.exists (fun d' -> d' <> d) rest
  in
  Httpd.response 200
    (J.to_string
       (J.Obj
          [
            ("v", J.Num (float_of_int api_version));
            ("role", J.Str "router");
            ("shards", J.Num (float_of_int t.params.shards));
            ("pack_digest_mismatch", J.Bool mismatch);
            ( "workers",
              J.Arr
                (List.map
                   (fun ((w : Supervisor.worker), remote) ->
                     let remote_fields =
                       match remote with
                       | None -> []
                       | Some v ->
                           List.filter_map
                             (fun key ->
                               Option.map
                                 (fun s -> (key, J.Str s))
                                 (J.str_field key v))
                             [ "build"; "pack_digest" ]
                           @
                           (match J.num_field "generation" v with
                           | Some g -> [ ("generation", J.Num g) ]
                           | None -> [])
                     in
                     J.Obj
                       ([
                          ("shard", J.Num (float_of_int w.Supervisor.slot));
                          ("pid", J.Num (float_of_int w.Supervisor.pid));
                          ("epoch", J.Num (float_of_int w.Supervisor.epoch));
                          ("state", J.Str (state_str w.Supervisor.state));
                          ( "respawns",
                            J.Num (float_of_int w.Supervisor.respawns) );
                          ( "heartbeat_failures",
                            J.Num (float_of_int w.Supervisor.hb_failures) );
                          ("socket", J.Str w.Supervisor.socket);
                        ]
                       @ remote_fields))
                   ws) );
          ]))

let healthz_handler t =
  let ws = Supervisor.workers t.sup in
  let healthy =
    List.length
      (List.filter
         (fun (w : Supervisor.worker) ->
           w.Supervisor.state = Supervisor.Healthy)
         ws)
  in
  Httpd.response 200
    (J.to_string
       (J.Obj
          [
            ("status", J.Str (if healthy > 0 then "ok" else "degraded"));
            ("role", J.Str "router");
            ("workers", J.Num (float_of_int (List.length ws)));
            ("healthy", J.Num (float_of_int healthy));
          ]))

(* ------------------------------------------------------------------ *)
(* dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let session_path path =
  match String.split_on_char '/' path with
  | [ ""; "session"; id ] when id <> "" -> Some id
  | [ ""; "session"; id; "query" ] when id <> "" -> Some id
  | _ -> None

let handler t (req : Httpd.request) =
  match (req.Httpd.meth, req.Httpd.path) with
  | "GET", "/healthz" -> healthz_handler t
  | "GET", "/metrics" -> metrics_handler t
  | "GET", "/version" -> version_handler t
  | "POST", "/reload" -> reload_handler t
  | "POST", "/session" -> session_create_handler t req
  | meth, path -> (
      match session_path path with
      | Some id -> sticky_handler t req id
      | None ->
          let slot = stateless_slot t req in
          forward t ~slot ~retryable:(meth <> "DELETE") ~meth
            ~path:(target req) ~body:req.Httpd.body ())

(* ------------------------------------------------------------------ *)
(* lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir = "/" || dir = "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dir_counter = Atomic.make 0

let fresh_sockets_dir () =
  (* socket paths must stay under the 108-byte sun_path limit, so the
     directory name is kept short *)
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dggt-sh-%d-%d" (Unix.getpid ())
       (Atomic.fetch_and_add dir_counter 1))

let create params =
  if params.shards <= 0 then invalid_arg "Router.create: shards must be > 0";
  if params.exe = "" then invalid_arg "Router.create: exe must be set";
  let sockets_dir =
    match params.sockets_dir with
    | Some d -> d
    | None -> fresh_sockets_dir ()
  in
  let argv ~slot ~socket =
    let store_args =
      match params.store_dir with
      | None -> []
      | Some root ->
          let dir = Filename.concat root (Printf.sprintf "shard-%d" slot) in
          mkdir_p dir;
          [ "--store"; dir ]
    in
    Array.of_list
      ((params.exe :: "serve" :: "--unix-socket" :: socket
       :: params.worker_args)
      @ store_args)
  in
  let sup =
    Supervisor.start
      {
        Supervisor.default_params with
        Supervisor.shards = params.shards;
        sockets_dir;
        argv;
        hb_interval_s = params.hb_interval_s;
      }
  in
  let t =
    {
      params;
      ring = Ring.make params.shards;
      sup;
      rm =
        {
          mu = Mutex.create ();
          requests = Hashtbl.create 16;
          retries = 0;
          sticky_gone = 0;
          proxy_latency = Hist.create ();
        };
      umu = Mutex.create ();
      uid_counter = 0;
      http = None;
    }
  in
  let http =
    Httpd.create ~addr:params.addr ~port:params.port (fun req -> handler t req)
  in
  t.http <- Some http;
  if params.ready_timeout_s > 0.0 then
    ignore (Supervisor.await_healthy sup ~timeout_s:params.ready_timeout_s);
  t

let port t = match t.http with Some h -> Httpd.port h | None -> t.params.port
let supervisor t = t.sup
let ring t = t.ring

let stop t =
  (match t.http with
  | Some h ->
      Httpd.stop h;
      Httpd.wait h
  | None -> ());
  Supervisor.stop t.sup

let wait t =
  (match t.http with Some h -> Httpd.wait h | None -> ());
  Supervisor.stop t.sup

let run params =
  let t = create params in
  (match t.http with Some h -> Httpd.handle_signals h | None -> ());
  Printf.printf
    "dggt serve: router on http://%s:%d, %d shard workers (sockets in %s%s)\n%!"
    params.addr (port t) params.shards
    (match Supervisor.workers t.sup with
    | w :: _ -> Filename.dirname w.Supervisor.socket
    | [] -> "?")
    (match params.store_dir with
    | Some d -> Printf.sprintf ", store %s" d
    | None -> "");
  wait t;
  Printf.printf "dggt serve: router shut down cleanly\n%!"
