(** Consistent-hash ring over worker slots.

    The router keys every request by domain name (stateless) or session
    uid (sticky), hashes the key onto a circle, and walks clockwise to
    the first placement point — each slot owns many points ("virtual
    nodes"), so keys spread evenly and a slot joining or leaving moves
    only the keys between its points and their predecessors: an expected
    [K/N] of the keyspace, not a full reshuffle (the property the ring
    exists for; modular hashing would move almost everything).

    Placement is a pure function of [(slots, replicas)] — no clock, no
    randomness — so every router instance built with the same shape
    routes identically, and tests can assert exact placements. *)

type t

val make : ?replicas:int -> int -> t
(** [make n] is a ring over slots [0 .. n-1]. [replicas] (default 64) is
    the number of placement points per slot; more points smooth the
    distribution at the cost of a larger sorted array. [n <= 0] is the
    empty ring. *)

val slots : t -> int

val lookup : t -> string -> int option
(** The slot owning [key]: the first placement point at or clockwise
    after [MD5(key)], wrapping around. [None] only for the empty ring.
    Total and deterministic. *)

val spread : t -> string list -> int array
(** Keys-per-slot census for a key list — how the distribution and
    movement tests observe the ring. [spread t keys].(s) counts the keys
    that {!lookup} places on slot [s]. *)
