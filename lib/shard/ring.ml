(* Classic consistent hashing: every slot drops [replicas] placement
   points on a 63-bit circle, lookup binary-searches the sorted point
   array for the successor of the key's hash. MD5 (stdlib Digest) is the
   point/key hash — not for security, for its even spread; the first 8
   digest bytes give the position, masked positive so comparisons stay
   plain int. *)

type t = {
  n : int;
  points : (int * int) array; (* (position, slot), sorted by position *)
}

let hash s =
  let d = Digest.string s in
  Int64.to_int
    (Int64.logand
       (String.get_int64_be d 0)
       0x3FFF_FFFF_FFFF_FFFFL)

let make ?(replicas = 64) n =
  if n <= 0 then { n = 0; points = [||] }
  else begin
    let points = Array.make (n * replicas) (0, 0) in
    for slot = 0 to n - 1 do
      for r = 0 to replicas - 1 do
        points.((slot * replicas) + r) <-
          (hash (Printf.sprintf "slot-%d-point-%d" slot r), slot)
      done
    done;
    (* ties (astronomically unlikely) resolve by slot number, keeping the
       order deterministic across builds *)
    Array.sort compare points;
    { n; points }
  end

let slots t = t.n

let lookup t key =
  if t.n = 0 then None
  else begin
    let h = hash key in
    let len = Array.length t.points in
    (* first index with position >= h, or 0 (wrap) when h is past the
       last point *)
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    let i = if !lo = len then 0 else !lo in
    Some (snd t.points.(i))
  end

let spread t keys =
  let counts = Array.make (max t.n 1) 0 in
  List.iter
    (fun k ->
      match lookup t k with
      | Some s -> counts.(s) <- counts.(s) + 1
      | None -> ())
    keys;
  counts
