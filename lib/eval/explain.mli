(** The [dggt explain] narrative: run one query with stage tracing on and
    render the pipeline's decisions stage by stage — the dependency parse,
    what pruning dropped, each word's candidate APIs with scores, per-edge
    grammar path counts, relocation variants, DGG [min_size] updates, and
    the final linearization. The CLI and the e2e test share this renderer
    so what's tested is exactly what users see. *)

val run :
  Format.formatter ->
  ?timeout_s:float ->
  ?algorithm:Dggt_core.Engine.algorithm ->
  ?top:int ->
  Dggt_domains.Domain.t ->
  string ->
  Dggt_core.Engine.outcome
(** Synthesize [query] against the domain with a fresh trace sink, print
    the narrative, and return the outcome (the caller decides exit codes).
    With [top > 1] (DGGT engine, successful synthesis) a rank-narration
    section follows: the query re-run under {!Dggt_core.Semiring.Top_k}
    and the n-best candidates the chart kept, head first. Defaults: 20 s
    timeout, DGGT engine, [top = 1] (no rank section). *)
