open Dggt_util
open Dggt_nlu
open Dggt_grammar
open Dggt_core
module Trace = Dggt_obs.Trace

(* The pre-semiring PathMerge, kept verbatim as the oracle for [bench
   pathmerge] and the semiring property suite: every DGG node carries the
   historical mutable (min_size, min_cgt, assignment, score) quadruple,
   replaced through [update_min]. Structured as {!Dggt_core.Engine.merge_fn}
   so the DGGT pipeline (orphan relocation, variant selection, budget) is
   shared — only step 5's chart differs. Outcomes, statistics and trace
   notes must stay byte-identical to {!Dggt_core.Dggt.synthesize} under
   {!Dggt_core.Semiring.Min_size}; the gate in CI holds this file and the
   semiring walk to each other. *)

type rnode = {
  id : int;
  mutable min_size : int; (* max_int until set *)
  mutable min_cgt : Cgt.t;
  mutable assignment : (int * string) list;
  mutable score : float;
}

type rgraph = {
  mutable node_count : int;
  mutable edge_count : int;
  api_tbl : (int * string, rnode) Hashtbl.t;
  mutable rev_apis : (int * rnode) list; (* (dep, node), newest first *)
}

let mk_graph () =
  (* node 0 is the start node; it never enters api_tbl *)
  { node_count = 1; edge_count = 0; api_tbl = Hashtbl.create 32; rev_apis = [] }

let mk_node rg =
  let n =
    { id = rg.node_count; min_size = max_int; min_cgt = Cgt.empty;
      assignment = []; score = 0.0 }
  in
  rg.node_count <- rg.node_count + 1;
  n

let find_api rg ~dep ~api = Hashtbl.find_opt rg.api_tbl (dep, api)

let add_api rg ~dep ~api =
  match find_api rg ~dep ~api with
  | Some n -> n
  | None ->
      let n = mk_node rg in
      Hashtbl.add rg.api_tbl (dep, api) n;
      rg.rev_apis <- (dep, n) :: rg.rev_apis;
      n

let add_edge rg = rg.edge_count <- rg.edge_count + 1

let set_ n = n.min_size < max_int

let update_min n ~size ~cgt ~assignment ~score =
  let cov = List.length assignment in
  let cur_cov = List.length n.assignment in
  let better =
    (not (set_ n))
    || cov > cur_cov
    || (cov = cur_cov
       && (size < n.min_size
          || (size = n.min_size
             && (score > n.score +. 1e-9
                || (Float.abs (score -. n.score) <= 1e-9
                   && Cgt.compare cgt n.min_cgt < 0)))))
  in
  if better then begin
    n.min_size <- size;
    n.min_cgt <- cgt;
    n.assignment <- assignment;
    n.score <- score
  end;
  better

let singleton_cgt g api =
  match Ggraph.api_node g api with
  | Some nid ->
      Some
        (Cgt.merge_path Cgt.empty
           { Gpath.nodes = [| nid |]; edges = [||]; apis = [| api |] })
  | None -> None

let synthesize ~budget ~stats ~gprune ~sprune ?(trace : Trace.span option) g
    (dg : Depgraph.t) w2a e2p =
  let rg = mk_graph () in
  let lemma_of id =
    match Depgraph.node_opt dg id with
    | Some n -> n.Depgraph.lemma
    | None -> string_of_int id
  in
  let record_improved improved =
    if improved then
      stats.Stats.dgg_improvements <- stats.Stats.dgg_improvements + 1;
    improved
  in

  let seed_leaf dep api =
    match singleton_cgt g api with
    | None -> ()
    | Some cgt ->
        let n = add_api rg ~dep ~api in
        if not (set_ n) then begin
          add_edge rg;
          ignore
            (record_improved
               (update_min n ~size:1 ~cgt ~assignment:[ (dep, api) ]
                  ~score:(Word2api.score w2a dep api)))
        end
  in

  let node_api_index =
    let tbl = Hashtbl.create 16 in
    let get id = Option.value (Hashtbl.find_opt tbl id) ~default:([], []) in
    List.iter
      (fun (e : Depgraph.edge) ->
        List.iter
          (fun (p : Edge2path.epath) ->
            let inc, out = get e.Depgraph.dep in
            Hashtbl.replace tbl e.Depgraph.dep
              (p.Edge2path.dep_api :: inc, out);
            match p.Edge2path.gov_api with
            | Some a ->
                let inc, out = get e.Depgraph.gov in
                Hashtbl.replace tbl e.Depgraph.gov (inc, a :: out)
            | None -> ())
          (Edge2path.paths_of_edge e2p e))
      dg.Depgraph.edges;
    tbl
  in
  let node_apis (n : Depgraph.node) =
    let incoming, outgoing =
      Option.value
        (Hashtbl.find_opt node_api_index n.Depgraph.id)
        ~default:([], [])
    in
    Listutil.uniq (List.rev_append incoming (List.rev outgoing))
  in

  let order =
    List.map (fun (n : Depgraph.node) -> (Depgraph.depth dg n.Depgraph.id, n)) dg.Depgraph.nodes
    |> List.sort (fun (d1, n1) (d2, n2) ->
           match compare d2 d1 with
           | 0 -> compare n1.Depgraph.id n2.Depgraph.id
           | c -> c)
    |> List.map snd
  in

  let process (n1 : Depgraph.node) =
    let id = n1.Depgraph.id in
    let child_edges = Depgraph.children dg id in
    let usable (e : Depgraph.edge) =
      Edge2path.paths_of_edge e2p e
      |> List.filter (fun (p : Edge2path.epath) ->
             match find_api rg ~dep:e.Depgraph.dep ~api:p.Edge2path.dep_api with
             | Some child -> set_ child
             | None -> false)
    in
    let edges_with_paths =
      List.filter_map
        (fun e -> match usable e with [] -> None | ps -> Some (e, ps))
        child_edges
    in
    List.iter (fun api -> seed_leaf id api)
      (Listutil.uniq (Word2api.apis w2a id @ node_apis n1));
    if edges_with_paths <> [] then begin
      let all_paths = List.concat_map snd edges_with_paths in
      let gov_apis =
        Listutil.uniq
          (List.filter_map (fun (p : Edge2path.epath) -> p.Edge2path.gov_api) all_paths)
      in
      let child_extra (p : Edge2path.epath) =
        match
          find_api rg ~dep:p.Edge2path.edge.Depgraph.dep ~api:p.Edge2path.dep_api
        with
        | Some child when set_ child -> child.min_size - 1
        | _ -> 0
      in
      let conflict_tbl = Gprune.prepare g all_paths in
      List.iter
        (fun a ->
          let groups =
            List.map
              (fun (_, ps) ->
                List.filter
                  (fun (p : Edge2path.epath) ->
                    p.Edge2path.gov_api = Some a || p.Edge2path.gov_api = None)
                  ps)
              edges_with_paths
          in
          if List.for_all (fun gp -> gp <> []) groups then begin
            let case_ii = List.length groups > 1 in
            let survivors, total =
              Gprune.combos ~budget conflict_tbl ~enabled:(gprune && case_ii) groups
            in
            let after_gprune = List.length survivors in
            if case_ii then begin
              stats.Stats.combos_total <- stats.Stats.combos_total + total;
              stats.Stats.combos_after_gprune <-
                stats.Stats.combos_after_gprune + after_gprune
            end;
            let survivors =
              if case_ii then Sprune.prune ~enabled:sprune ~extra:child_extra survivors
              else survivors
            in
            if case_ii then
              stats.Stats.combos_after_sprune <-
                stats.Stats.combos_after_sprune + List.length survivors;
            if case_ii && Trace.on trace then
              Trace.str trace
                (Printf.sprintf "combos %s:%s" (lemma_of id) a)
                (Printf.sprintf "%d total, %d after gprune, %d after sprune"
                   total after_gprune (List.length survivors));
            let api_node = ref None in
            let get_api_node () =
              match !api_node with
              | Some n -> n
              | None ->
                  let n = add_api rg ~dep:id ~api:a in
                  api_node := Some n;
                  n
            in
            let merged_any = ref false in
            let try_combo _idx combo =
              Budget.check budget;
              if case_ii then
                stats.Stats.combos_merged <- stats.Stats.combos_merged + 1;
              let merged, assignment, ok =
                List.fold_left
                  (fun (cgt, asg, ok) (p : Edge2path.epath) ->
                    if not ok then (cgt, asg, false)
                    else
                      match
                        find_api rg ~dep:p.Edge2path.edge.Depgraph.dep
                          ~api:p.Edge2path.dep_api
                      with
                      | Some child when set_ child ->
                          ( Cgt.merge (Cgt.merge_path cgt p.Edge2path.path)
                              child.min_cgt,
                            child.assignment @ asg,
                            true )
                      | _ -> (cgt, asg, false))
                  (Cgt.empty, [], true)
                  combo
              in
              let assignment = (id, a) :: assignment in
              if ok && Synres.injective assignment && Cgt.well_formed g merged
              then begin
                merged_any := true;
                let size = Cgt.api_size g merged in
                let score = Word2api.assignment_score w2a assignment in
                let target = get_api_node () in
                if case_ii then begin
                  let pcgt = mk_node rg in
                  ignore
                    (record_improved
                       (update_min pcgt ~size ~cgt:merged ~assignment ~score));
                  List.iter (fun (_ : Edge2path.epath) -> add_edge rg) combo;
                  add_edge rg (* pcgt -> target auxiliary *)
                end
                else begin
                  match combo with [ _ ] -> add_edge rg | _ -> ()
                end;
                let improved =
                  record_improved
                    (update_min target ~size ~cgt:merged ~assignment ~score)
                in
                if improved && Trace.on trace then
                  Trace.int trace
                    (Printf.sprintf "min_size %s:%s" (lemma_of id) a)
                    size
              end
            in
            List.iteri try_combo survivors;
            if not !merged_any then
              List.iter
                (fun group -> List.iter (fun p -> try_combo 0 [ p ]) group)
                groups
          end)
        gov_apis
    end
  in
  List.iter process order;

  stats.Stats.dgg_nodes <- rg.node_count;
  stats.Stats.dgg_edges <- rg.edge_count;
  let apis = List.rev rg.rev_apis in
  if Trace.on trace then begin
    List.iter
      (fun (n : Depgraph.node) ->
        Trace.int trace
          (Printf.sprintf "dgg level %s" n.Depgraph.lemma)
          (List.length
             (List.filter (fun (dep, _) -> dep = n.Depgraph.id) apis)))
      order;
    Trace.int trace "dgg_nodes" rg.node_count;
    Trace.int trace "dgg_edges" rg.edge_count
  end;

  let best =
    List.filter_map
      (fun (dep, n) -> if dep = dg.Depgraph.root && set_ n then Some n else None)
      apis
    |> Listutil.min_by (fun (a : rnode) b ->
           match
             compare (List.length b.assignment) (List.length a.assignment)
           with
           | 0 -> (
               match compare a.min_size b.min_size with
               | 0 -> (
                   match compare b.score a.score with
                   | 0 -> (
                       match Cgt.compare a.min_cgt b.min_cgt with
                       | 0 -> compare a.id b.id
                       | c -> c)
                   | c -> c)
               | c -> c)
           | c -> c)
  in
  Option.map
    (fun (n : rnode) ->
      { Synres.cgt = n.min_cgt; size = n.min_size; assignment = n.assignment })
    best
