(** Executes a benchmark domain's query set under one engine configuration
    and collects per-query results — the raw material every table and
    figure of the paper's evaluation is computed from. *)

type qresult = {
  query : Dggt_domains.Domain.query;
  outcome : Dggt_core.Engine.outcome;
  correct : bool;
  stage_s : (string * float) list;
      (** per-stage wall-clock seconds ({!Dggt_obs.Trace.durations} of the
          query's trace); [] unless the run enabled [stage_timing] *)
}

type run = {
  domain_name : string;
  algorithm : Dggt_core.Engine.algorithm;
  timeout_s : float;
  results : qresult list;
}

val run_domain :
  ?timeout_s:float ->
  ?tweak:(Dggt_core.Engine.config -> Dggt_core.Engine.config) ->
  ?progress:(int -> int -> unit) ->
  ?stage_timing:bool ->
  ?pool:Dggt_par.Pool.t ->
  ?autom:Dggt_autom.Autom.t ->
  Dggt_domains.Domain.t ->
  Dggt_core.Engine.algorithm ->
  run
(** Default timeout 20 s — the paper's interactive-use cutoff. [tweak]
    post-processes the domain-configured engine config (used by the
    ablation bench to toggle optimizations). [progress done n] is called
    after each query with the {e count} of finished queries (completion
    order, not query order, under a pool). [stage_timing] (default off)
    attaches a fresh trace sink per query and records the per-stage
    durations in [stage_s]; leave it off when measuring end-to-end
    latency for the tables.

    [pool] fans {e whole queries} out over worker domains
    ({!Dggt_par.Pool.map_ordered}) — each query is synthesized
    sequentially, results come back in query order and are byte-identical
    to a sequential run; this is the batch-throughput knob (queries/sec),
    not a latency one. [autom] passes a compiled grammar automaton to
    {!Dggt_domains.Domain.configure}, accelerating every query's
    EdgeToPath stage. *)

val accuracy : run -> float
val timeouts : run -> int
val total_time : run -> float
val times : run -> float list
(** Per-query times in query order. *)

val stage_means : run -> (string * float) list
(** Mean seconds per pipeline stage across the run's queries, in pipeline
    order; [] when the run was made without [stage_timing]. *)
