(** Pack-pinned evaluation envelopes.

    A domain pack may pin performance expectations in its manifest
    ([expect-accuracy], [expect-p95-ms] — see {!Dggt_pack.Loader});
    [dggt eval --check-envelope] evaluates the pack's query set and fails
    (non-zero exit) when a measurement falls outside the envelope, which
    is how CI catches accuracy or latency regressions against
    [examples/packs/*]. This module is the measurement + comparison, kept
    out of the CLI so the gate is testable. *)

type expectation = {
  min_accuracy : float option;  (** accuracy floor, fraction in [0, 1] *)
  max_p95_ms : float option;    (** p95 latency ceiling, milliseconds *)
}

type verdict = {
  accuracy : float;          (** measured: fraction of correct queries *)
  p95_ms : float;            (** measured: nearest-rank p95, milliseconds *)
  violations : string list;  (** one human-readable line per breach; [[]]
                                 when the run is inside the envelope *)
}

val p95_ms : Runner.run -> float
(** Nearest-rank 95th percentile of the run's per-query wall times, in
    milliseconds; 0 for an empty run. Timed-out queries count at their
    full budget. *)

val check : expectation -> Runner.run -> verdict
(** Compare a finished run against the envelope. [None] bounds never
    violate (an absent key opts that axis out). *)

val ok : verdict -> bool
