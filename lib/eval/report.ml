open Dggt_core
open Dggt_domains

type comparison = { dom : Domain.t; hisyn : Runner.run; dggt : Runner.run }

let domains () = [ Text_editing.domain; Astmatcher.domain ]

let compare_domain ?(timeout_s = 20.0) ?(progress = fun _ _ _ -> ()) dom =
  let hisyn =
    Runner.run_domain ~timeout_s ~progress:(progress "hisyn") dom Engine.Hisyn_alg
  in
  let dggt =
    Runner.run_domain ~timeout_s ~progress:(progress "dggt") dom Engine.Dggt_alg
  in
  { dom; hisyn; dggt }

(* ------------------------------------------------------------------ *)
(* Table I                                                            *)
(* ------------------------------------------------------------------ *)

let table1 fmt =
  Format.fprintf fmt "Table I: testing domains and test cases@.";
  Format.fprintf fmt
    "  (paper: TextEditing 52 APIs / 200 queries; ASTMatcher 505 APIs / 100 queries)@.@.";
  Format.fprintf fmt "  %-12s %7s %9s  %s@." "Domain" "#APIs" "#Queries" "Source";
  List.iter
    (fun (d : Domain.t) ->
      Format.fprintf fmt "  %-12s %7d %9d  %s@." d.Domain.name (Domain.api_count d)
        (Domain.query_count d) d.Domain.source)
    (domains ());
  Format.fprintf fmt "@.  Example queries and codelets:@.";
  List.iter
    (fun (d : Domain.t) ->
      List.iteri
        (fun i (q : Domain.query) ->
          if i < 3 then
            Format.fprintf fmt "  [%s] %s@.      => %s@." d.Domain.name
              q.Domain.text q.Domain.expected)
        d.Domain.queries)
    (domains ())

(* ------------------------------------------------------------------ *)
(* Table II                                                           *)
(* ------------------------------------------------------------------ *)

(* the paper's laptop rows, for side-by-side printing *)
let paper_table2 = function
  | "ASTMatcher" -> Some (537.7, 25.02, 3.463, 0.744, 0.765)
  | "TextEditing" -> Some (1887.0, 133.2, 12.86, 0.675, 0.791)
  | _ -> None

let table2 fmt comparisons =
  Format.fprintf fmt
    "Table II: performance comparison (%.0f s timeout; paper laptop row in parentheses)@.@."
    (match comparisons with c :: _ -> c.hisyn.Runner.timeout_s | [] -> 20.0);
  Format.fprintf fmt "  %-12s %22s %22s %22s %18s %18s@." "Domain" "Speedup max"
    "Speedup mean" "Speedup median" "Acc HISyn" "Acc DGGT";
  List.iter
    (fun c ->
      let s = Metrics.speedups ~baseline:c.hisyn ~optimized:c.dggt in
      let fmt_pair mine paper = Printf.sprintf "%10.1f (%8.1f)" mine paper in
      let fmt_acc mine paper = Printf.sprintf "%6.3f (%6.3f)" mine paper in
      match paper_table2 c.dom.Domain.name with
      | Some (pmax, pmean, pmed, phacc, pdacc) ->
          Format.fprintf fmt "  %-12s %22s %22s %22s %18s %18s@."
            c.dom.Domain.name
            (fmt_pair s.Metrics.max pmax)
            (fmt_pair s.Metrics.mean pmean)
            (fmt_pair s.Metrics.median pmed)
            (fmt_acc (Runner.accuracy c.hisyn) phacc)
            (fmt_acc (Runner.accuracy c.dggt) pdacc)
      | None ->
          Format.fprintf fmt "  %-12s %22.1f %22.1f %22.1f %18.3f %18.3f@."
            c.dom.Domain.name s.Metrics.max s.Metrics.mean s.Metrics.median
            (Runner.accuracy c.hisyn) (Runner.accuracy c.dggt))
    comparisons;
  List.iter
    (fun c ->
      Format.fprintf fmt
        "  [%s] HISyn: %.1f s total, %d timeouts | DGGT: %.2f s total, %d timeouts@."
        c.dom.Domain.name (Runner.total_time c.hisyn) (Runner.timeouts c.hisyn)
        (Runner.total_time c.dggt) (Runner.timeouts c.dggt))
    comparisons

(* ------------------------------------------------------------------ *)
(* Table III                                                          *)
(* ------------------------------------------------------------------ *)

let run_one (dom : Domain.t) algorithm ~timeout_s (q : Domain.query) =
  Engine.run
    (Domain.configure dom
       { (Engine.default algorithm) with Engine.timeout_s = Some timeout_s })
    q.Domain.text

(* Hard-case selection: the combination product the baseline faces, probed
   with a tiny step budget (the product is recorded before enumeration). *)
let combos_possible dom (q : Domain.query) =
  let o =
    Engine.run
      (Domain.configure dom
         {
           (Engine.default Engine.Hisyn_alg) with
           Engine.timeout_s = None;
           max_steps = Some 2_000;
         })
      q.Domain.text
  in
  o.Engine.stats.Stats.hisyn_combos_possible

let table3 fmt ?ids (dom : Domain.t) =
  let queries =
    match ids with
    | Some ids ->
        List.filter (fun (q : Domain.query) -> List.mem q.Domain.id ids)
          dom.Domain.queries
    | None ->
        dom.Domain.queries
        |> List.map (fun q -> (combos_possible dom q, q))
        |> List.sort (fun (a, _) (b, _) -> compare b a)
        |> Dggt_util.Listutil.take 4
        |> List.map snd
  in
  Format.fprintf fmt
    "Table III: detailed DGGT results on hard cases (%s)@." dom.Domain.name;
  Format.fprintf fmt
    "  (paper cases 1-4: combos 3.8e6..1.3e10, >90%% pruned, speedups 1887x-8186x)@.@.";
  Format.fprintf fmt "  %4s %5s %9s %12s | %9s %9s %8s %8s %7s | %9s@."
    "id" "#edge" "#path" "#comb" "#path'" "#comb'" "gprune" "sprune" "remain"
    "speedup";
  List.iter
    (fun (q : Domain.query) ->
      let h = run_one dom Engine.Hisyn_alg ~timeout_s:20.0 q in
      let d = run_one dom Engine.Dggt_alg ~timeout_s:20.0 q in
      let hs = h.Engine.stats and ds = d.Engine.stats in
      let speedup = h.Engine.time_s /. Float.max d.Engine.time_s 1e-6 in
      Format.fprintf fmt "  %4d %5d %9d %12d | %9d %9d %8d %8d %7d | %8.1fx%s@."
        q.Domain.id hs.Stats.dep_edges hs.Stats.orig_paths
        hs.Stats.hisyn_combos_possible ds.Stats.paths_after_reloc
        ds.Stats.combos_total (Stats.gprune_removed ds) (Stats.sprune_removed ds)
        ds.Stats.combos_after_sprune speedup
        (if h.Engine.timed_out then " (baseline timed out)" else ""))
    queries

(* ------------------------------------------------------------------ *)
(* Figures                                                            *)
(* ------------------------------------------------------------------ *)

let bar fmt label count total =
  let width = if total = 0 then 0 else count * 50 / total in
  Format.fprintf fmt "  %-14s %4d  %s@." label count (String.make width '#')

let fig7 fmt c =
  Format.fprintf fmt "Figure 7: execution-time distribution (%s)@."
    c.dom.Domain.name;
  Format.fprintf fmt
    "  (paper, laptop: DGGT finishes ~74-89%% of cases under 0.1 s; HISyn ~45-59%%)@.";
  let show name run =
    let b = Metrics.buckets run in
    let total = List.length run.Runner.results in
    Format.fprintf fmt "  %s:@." name;
    bar fmt "< 0.1 s" b.Metrics.under_100ms total;
    bar fmt "0.1 - 1 s" b.Metrics.ms100_to_1s total;
    bar fmt "1 s - limit" b.Metrics.over_1s total;
    bar fmt "timeout" b.Metrics.timed_out total;
    Format.fprintf fmt "  (under 0.1 s: %.1f%%)@.@."
      (100.0 *. float_of_int b.Metrics.under_100ms /. float_of_int (max 1 total))
  in
  show "HISyn" c.hisyn;
  show "DGGT" c.dggt

let fig8 fmt c =
  Format.fprintf fmt "Figure 8: accumulated execution time (%s)@." c.dom.Domain.name;
  Format.fprintf fmt
    "  (paper: DGGT's curve rises far slower than HISyn's on both domains)@.@.";
  let acc_h = Array.of_list (Metrics.accumulated c.hisyn) in
  let acc_d = Array.of_list (Metrics.accumulated c.dggt) in
  let n = Array.length acc_h in
  Format.fprintf fmt "  %8s %14s %14s@." "case" "HISyn (s)" "DGGT (s)";
  let steps = 10 in
  for i = 1 to steps do
    let idx = min (n - 1) ((i * n / steps) - 1) in
    if idx >= 0 then
      Format.fprintf fmt "  %8d %14.2f %14.4f@." (idx + 1) acc_h.(idx) acc_d.(idx)
  done

(* ------------------------------------------------------------------ *)
(* Per-stage latency                                                  *)
(* ------------------------------------------------------------------ *)

let stage_table fmt ?(timeout_s = 20.0) ?(tweak = Fun.id) ?limit (dom : Domain.t) =
  let dom =
    match limit with
    | None -> dom
    | Some n -> { dom with Domain.queries = Dggt_util.Listutil.take n dom.Domain.queries }
  in
  let r =
    Runner.run_domain ~timeout_s ~tweak ~stage_timing:true dom Engine.Dggt_alg
  in
  let means = Runner.stage_means r in
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 means in
  let maxima =
    List.map
      (fun (stage, _) ->
        ( stage,
          List.fold_left
            (fun acc (q : Runner.qresult) ->
              match List.assoc_opt stage q.Runner.stage_s with
              | Some d -> Float.max acc d
              | None -> acc)
            0.0 r.Runner.results ))
      means
  in
  Format.fprintf fmt
    "Per-stage latency: DGGT engine, %s (%d queries, %.0f s timeout)@.@."
    dom.Domain.name
    (List.length r.Runner.results)
    timeout_s;
  Format.fprintf fmt "  %-16s %12s %12s %7s@." "stage" "mean (ms)" "max (ms)"
    "share";
  List.iter
    (fun (stage, mean) ->
      Format.fprintf fmt "  %-16s %12.3f %12.3f %6.1f%%@." stage (mean *. 1e3)
        (1e3 *. Option.value (List.assoc_opt stage maxima) ~default:0.0)
        (100.0 *. mean /. Float.max total 1e-12))
    means

(* ------------------------------------------------------------------ *)
(* Ablation                                                           *)
(* ------------------------------------------------------------------ *)

let ablation fmt ?(timeout_s = 20.0) dom =
  Format.fprintf fmt
    "Ablation: DGGT with each optimization disabled (%s, %.0f s timeout)@.@."
    dom.Domain.name timeout_s;
  Format.fprintf fmt "  %-24s %10s %9s %9s %12s@." "configuration" "total(s)"
    "timeouts" "accuracy" "merges";
  let variants =
    [
      ("full DGGT", Fun.id);
      ( "no grammar pruning",
        fun (c : Engine.config) -> { c with Engine.gprune = false } );
      ( "no size pruning",
        fun (c : Engine.config) -> { c with Engine.sprune = false } );
      ( "no orphan relocation",
        fun (c : Engine.config) -> { c with Engine.orphan_reloc = false } );
      ( "no pruning at all",
        fun (c : Engine.config) ->
          { c with Engine.gprune = false; sprune = false } );
    ]
  in
  List.iter
    (fun (name, tweak) ->
      let r = Runner.run_domain ~timeout_s ~tweak dom Engine.Dggt_alg in
      let merges =
        List.fold_left
          (fun acc (q : Runner.qresult) ->
            acc + q.Runner.outcome.Engine.stats.Stats.combos_merged)
          0 r.Runner.results
      in
      Format.fprintf fmt "  %-24s %10.2f %9d %9.3f %12d@." name
        (Runner.total_time r) (Runner.timeouts r) (Runner.accuracy r) merges)
    variants
