open Dggt_core
open Dggt_domains
module Trace = Dggt_obs.Trace

let run fmt ?(timeout_s = 20.0) ?(algorithm = Engine.Dggt_alg) ?(top = 1)
    (dom : Domain.t) query =
  let sink = Trace.create () in
  let ses =
    Domain.configure dom
      {
        (Engine.default algorithm) with
        Engine.timeout_s = Some timeout_s;
        trace = Some sink;
      }
  in
  let o = Engine.run ses query in
  let trace = Trace.result sink in
  Format.fprintf fmt "domain: %s (%s engine)@." dom.Domain.name
    (match algorithm with Engine.Dggt_alg -> "dggt" | Engine.Hisyn_alg -> "hisyn");
  Format.fprintf fmt "query:  %s@.@." query;
  Trace.pp fmt trace;
  Format.fprintf fmt "@.%a@." Stats.pp o.Engine.stats;
  (match o.Engine.code with
  | Some code ->
      Format.fprintf fmt "@.codelet (%d APIs, %.3f ms):@.  %s@."
        (Option.value o.Engine.cgt_size ~default:0)
        (o.Engine.time_s *. 1e3) code
  | None ->
      Format.fprintf fmt "@.no codelet (%s, %.3f ms)@."
        (Option.value o.Engine.failure ~default:"unknown failure")
        (o.Engine.time_s *. 1e3));
  (* rank narration: re-run under the Top-k semiring and show what the
     chart kept beyond the winner — same pipeline, wider cells *)
  if top > 1 && o.Engine.code <> None && algorithm = Engine.Dggt_alg then begin
    let hints = Engine.run_ranked ~k:top ses query in
    Format.fprintf fmt "@.top-%d candidates (Top-k semiring chart):@." top;
    List.iteri
      (fun i (r : Engine.ranked) ->
        Format.fprintf fmt "  %d. %s@.     size %d, covers %d words, score %.2f%s@."
          (i + 1) r.Engine.code r.Engine.size r.Engine.coverage r.Engine.score
          (if i = 0 then "  (the winner above)" else ""))
      hints
  end;
  o
