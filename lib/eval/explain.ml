open Dggt_core
open Dggt_domains
module Trace = Dggt_obs.Trace

let run fmt ?(timeout_s = 20.0) ?(algorithm = Engine.Dggt_alg) (dom : Domain.t)
    query =
  let sink = Trace.create () in
  let ses =
    Domain.configure dom
      {
        (Engine.default algorithm) with
        Engine.timeout_s = Some timeout_s;
        trace = Some sink;
      }
  in
  let o = Engine.run ses query in
  let trace = Trace.result sink in
  Format.fprintf fmt "domain: %s (%s engine)@." dom.Domain.name
    (match algorithm with Engine.Dggt_alg -> "dggt" | Engine.Hisyn_alg -> "hisyn");
  Format.fprintf fmt "query:  %s@.@." query;
  Trace.pp fmt trace;
  Format.fprintf fmt "@.%a@." Stats.pp o.Engine.stats;
  (match o.Engine.code with
  | Some code ->
      Format.fprintf fmt "@.codelet (%d APIs, %.3f ms):@.  %s@."
        (Option.value o.Engine.cgt_size ~default:0)
        (o.Engine.time_s *. 1e3) code
  | None ->
      Format.fprintf fmt "@.no codelet (%s, %.3f ms)@."
        (Option.value o.Engine.failure ~default:"unknown failure")
        (o.Engine.time_s *. 1e3));
  o
