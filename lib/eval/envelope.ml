type expectation = {
  min_accuracy : float option;
  max_p95_ms : float option;
}

type verdict = {
  accuracy : float;
  p95_ms : float;
  violations : string list;
}

(* nearest-rank p95 over the run's per-query times; timeouts count at
   their full budget, which is exactly the pessimism we want — a run that
   starts timing out blows its latency ceiling *)
let p95_ms (r : Runner.run) =
  match List.sort compare (Runner.times r) with
  | [] -> 0.0
  | times ->
      let n = List.length times in
      let rank = max 0 (int_of_float (ceil (0.95 *. float_of_int n)) - 1) in
      List.nth times rank *. 1000.0

let check exp (r : Runner.run) =
  let accuracy = Runner.accuracy r in
  let p95 = p95_ms r in
  let violations =
    (match exp.min_accuracy with
    | Some floor when accuracy < floor ->
        [
          Printf.sprintf "accuracy %.3f below the expect-accuracy floor %.3f"
            accuracy floor;
        ]
    | _ -> [])
    @
    match exp.max_p95_ms with
    | Some ceiling when p95 > ceiling ->
        [
          Printf.sprintf "p95 %.1f ms above the expect-p95-ms ceiling %.1f ms"
            p95 ceiling;
        ]
    | _ -> []
  in
  { accuracy; p95_ms = p95; violations }

let ok v = v.violations = []
