open Dggt_core
open Dggt_domains

type qresult = {
  query : Domain.query;
  outcome : Engine.outcome;
  correct : bool;
  stage_s : (string * float) list;
}

type run = {
  domain_name : string;
  algorithm : Engine.algorithm;
  timeout_s : float;
  results : qresult list;
}

let run_domain ?(timeout_s = 20.0) ?(tweak = Fun.id) ?(progress = fun _ _ -> ())
    ?(stage_timing = false) ?pool ?autom (dom : Domain.t) algorithm =
  let ses =
    Domain.configure ?autom dom
      { (Engine.default algorithm) with Engine.timeout_s = Some timeout_s }
    |> Engine.with_cfg tweak
  in
  let n = List.length dom.Domain.queries in
  (* completion counter, not an index: under a pool queries finish out of
     order, so progress reports "how many done", monotonically *)
  let finished = Atomic.make 0 in
  let eval (q : Domain.query) =
    let sink = if stage_timing then Some (Dggt_obs.Trace.create ()) else None in
    let outcome =
      Engine.respond
        (Engine.with_cfg (fun c -> { c with Engine.trace = sink }) ses)
        { Engine.input = Engine.Text q.Domain.text; mode = Engine.Plain }
    in
    let stage_s =
      match sink with
      | None -> []
      | Some s -> Dggt_obs.Trace.durations (Dggt_obs.Trace.result s)
    in
    progress (Atomic.fetch_and_add finished 1 + 1) n;
    {
      query = q;
      outcome;
      correct = Domain.check dom outcome.Engine.expr q;
      stage_s;
    }
  in
  let results =
    match pool with
    | None -> List.map eval dom.Domain.queries
    | Some p -> Dggt_par.Pool.map_ordered p eval dom.Domain.queries
  in
  { domain_name = dom.Domain.name; algorithm; timeout_s; results }

let accuracy r =
  let ok = List.length (List.filter (fun q -> q.correct) r.results) in
  float_of_int ok /. float_of_int (max 1 (List.length r.results))

let timeouts r =
  List.length (List.filter (fun q -> q.outcome.Engine.timed_out) r.results)

let times r = List.map (fun q -> q.outcome.Engine.time_s) r.results
let total_time r = List.fold_left ( +. ) 0.0 (times r)

let stage_means r =
  (* mean per-stage wall-clock across the run's queries, pipeline order *)
  let sums = Hashtbl.create 8 in
  List.iter
    (fun q ->
      List.iter
        (fun (stage, d) ->
          let s, c =
            Option.value (Hashtbl.find_opt sums stage) ~default:(0.0, 0)
          in
          Hashtbl.replace sums stage (s +. d, c + 1))
        q.stage_s)
    r.results;
  List.filter_map
    (fun stage ->
      match Hashtbl.find_opt sums stage with
      | Some (s, c) -> Some (stage, s /. float_of_int (max 1 c))
      | None -> None)
    Engine.stage_names
