(** Reference PathMerge: the pre-semiring DFS-of-record walk, preserved as
    an executable oracle. [bench pathmerge] and the semiring property tests
    run it through {!Dggt_core.Engine.synthesize_with_merge} and demand the
    outcome (code, CGT size, failure, timeout, statistics — including
    [dgg_improvements]) be byte-identical to the semiring walk under
    {!Dggt_core.Semiring.Min_size}. Keep this file frozen: it encodes the
    historical [update_min] replacement rule (coverage desc, size asc,
    score desc with the 1e-9 epsilon, {!Dggt_core.Cgt.compare} asc) that
    the semiring's [compare_cand] must reproduce. *)

val synthesize :
  budget:Dggt_util.Budget.t ->
  stats:Dggt_core.Stats.t ->
  gprune:bool ->
  sprune:bool ->
  ?trace:Dggt_obs.Trace.span ->
  Dggt_grammar.Ggraph.t ->
  Dggt_nlu.Depgraph.t ->
  Dggt_core.Word2api.t ->
  Dggt_core.Edge2path.t ->
  Dggt_core.Synres.t option
(** One PathMerge run over an already-pruned dependency graph with its
    WordToAPI and EdgeToPath tables. Mutates [stats] exactly as the
    semiring walk does and emits the same trace notes. Raises
    {!Dggt_util.Budget.Exhausted} on budget overrun (the caller —
    {!Dggt_core.Engine.synthesize_with_merge} — turns that into a
    timeout outcome, as the engine does for the production walk). *)
