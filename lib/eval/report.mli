(** Regenerates every table and figure of the paper's evaluation section
    (§VII), printing our measurements next to the paper's published numbers
    so the reproduction can be judged at a glance.

    Absolute times differ by construction — the substrate is our own OCaml
    NLU stack, not the authors' Python + CoreNLP testbed — the comparison
    targets the {e shape}: who wins, by what order of magnitude, where the
    timeouts sit. *)

type comparison = {
  dom : Dggt_domains.Domain.t;
  hisyn : Runner.run;
  dggt : Runner.run;
}

val compare_domain :
  ?timeout_s:float ->
  ?progress:(string -> int -> int -> unit) ->
  Dggt_domains.Domain.t ->
  comparison
(** Run both engines over the domain (the shared experiment behind Table II
    and Figures 7-8). [progress label i n] reports per-engine progress. *)

val table1 : Format.formatter -> unit
(** Table I: domain statistics and example query/codelet pairs. *)

val table2 : Format.formatter -> comparison list -> unit
(** Table II: speedup max/mean/median and accuracy per domain, with the
    paper's laptop row quoted alongside. *)

val table3 : Format.formatter -> ?ids:int list -> Dggt_domains.Domain.t -> unit
(** Table III: per-case optimization breakdown (paths before/after orphan
    relocation, combinations before/after grammar- and size-based pruning,
    speedup) on hard cases. Without [ids], the four queries with the
    largest baseline combination product are selected automatically. *)

val fig7 : Format.formatter -> comparison -> unit
(** Figure 7: response-time distribution histogram (text rendering). *)

val fig8 : Format.formatter -> comparison -> unit
(** Figure 8: accumulated execution time curves (text rendering, sampled). *)

val ablation : Format.formatter -> ?timeout_s:float -> Dggt_domains.Domain.t -> unit
(** §V synergy claim: DGGT with each optimization disabled in turn. *)

val stage_table :
  Format.formatter ->
  ?timeout_s:float ->
  ?tweak:(Dggt_core.Engine.config -> Dggt_core.Engine.config) ->
  ?limit:int ->
  Dggt_domains.Domain.t ->
  unit
(** Per-stage latency breakdown (mean, max, share of pipeline time) for the
    DGGT engine over the domain's queries, measured with stage tracing on.
    [tweak] post-processes the engine config (the bench smoke uses it to
    attach a {!Dggt_par.Pool}); [limit] caps the query count — the CI bench
    smoke uses a small prefix. *)
