type node_kind = Nt of string | Deriv of int | Api of string

type node = { id : int; kind : node_kind }

type edge = { id : int; src : int; dst : int; prod : int; pos : int; alt : bool }

type t = {
  cfg : Cfg.t;
  nodes : node array;
  edges : edge array;
  children : int list array;
  parents : int list array;
  api_index : (string, int) Hashtbl.t;
  nt_index : (string, int) Hashtbl.t;
  root : int;
  dist_mu : Mutex.t;
  dists : (int, int array) Hashtbl.t;
}

type builder = {
  mutable bnodes : node list; (* reversed *)
  mutable bedges : edge list; (* reversed *)
  mutable nnodes : int;
  mutable nedges : int;
  api_tbl : (string, int) Hashtbl.t;
  nt_tbl : (string, int) Hashtbl.t;
}

let new_node b kind =
  let id = b.nnodes in
  b.bnodes <- { id; kind } :: b.bnodes;
  b.nnodes <- id + 1;
  id

let new_edge b ~src ~dst ~prod ~pos ~alt =
  let id = b.nedges in
  b.bedges <- { id; src; dst; prod; pos; alt } :: b.bedges;
  b.nedges <- id + 1

let build (cfg : Cfg.t) =
  let b =
    {
      bnodes = [];
      bedges = [];
      nnodes = 0;
      nedges = 0;
      api_tbl = Hashtbl.create 64;
      nt_tbl = Hashtbl.create 64;
    }
  in
  (* one node per nonterminal and per terminal *)
  List.iter
    (fun nt -> Hashtbl.replace b.nt_tbl nt (new_node b (Nt nt)))
    cfg.Cfg.nonterminals;
  List.iter
    (fun api -> Hashtbl.replace b.api_tbl api (new_node b (Api api)))
    cfg.Cfg.terminals;
  let sym_node = function
    | Cfg.T s -> Hashtbl.find b.api_tbl s
    | Cfg.N s -> Hashtbl.find b.nt_tbl s
  in
  (* Attach one production's RHS below [parent]. [alt] marks or-edges.
     Head-API productions hang their remaining symbols under the API. *)
  let attach_rhs ~parent ~alt (p : Cfg.production) =
    match p.rhs with
    | [] -> assert false (* Bnf.parse rejects empty alternatives *)
    | [ sym ] -> new_edge b ~src:parent ~dst:(sym_node sym) ~prod:p.id ~pos:0 ~alt
    | Cfg.T api :: args ->
        let api_n = Hashtbl.find b.api_tbl api in
        new_edge b ~src:parent ~dst:api_n ~prod:p.id ~pos:0 ~alt;
        List.iteri
          (fun i sym ->
            new_edge b ~src:api_n ~dst:(sym_node sym) ~prod:p.id ~pos:(i + 1)
              ~alt:false)
          args
    | syms ->
        List.iteri
          (fun i sym -> new_edge b ~src:parent ~dst:(sym_node sym) ~prod:p.id ~pos:i ~alt)
          syms
  in
  List.iter
    (fun nt ->
      let nt_n = Hashtbl.find b.nt_tbl nt in
      let prods = Cfg.productions_of cfg nt in
      let multi = List.length prods > 1 in
      List.iter
        (fun (p : Cfg.production) ->
          if multi && List.length p.rhs > 1 then begin
            (* alternative with several symbols: interpose a derivation
               node so the or-choice is a single edge *)
            let d = new_node b (Deriv p.id) in
            new_edge b ~src:nt_n ~dst:d ~prod:p.id ~pos:0 ~alt:true;
            attach_rhs ~parent:d ~alt:false p
          end
          else attach_rhs ~parent:nt_n ~alt:multi p)
        prods)
    cfg.Cfg.nonterminals;
  let nodes = Array.of_list (List.rev b.bnodes) in
  let edges = Array.of_list (List.rev b.bedges) in
  let children = Array.make (Array.length nodes) [] in
  let parents = Array.make (Array.length nodes) [] in
  (* Populate adjacency in reverse so the lists end up in edge-id order,
     which is (prod, pos) order by construction. *)
  for i = Array.length edges - 1 downto 0 do
    let e = edges.(i) in
    children.(e.src) <- e.id :: children.(e.src);
    parents.(e.dst) <- e.id :: parents.(e.dst)
  done;
  {
    cfg;
    nodes;
    edges;
    children;
    parents;
    (* the builder's name tables double as the graph's permanent node
       indexes: read-only after build, so domain-safe without a lock *)
    api_index = b.api_tbl;
    nt_index = b.nt_tbl;
    root = Hashtbl.find b.nt_tbl cfg.Cfg.start;
    dist_mu = Mutex.create ();
    dists = Hashtbl.create 64;
  }

let node_name t id =
  match t.nodes.(id).kind with
  | Nt s -> s
  | Api s -> s
  | Deriv p -> Printf.sprintf "%s#%d" t.cfg.Cfg.productions.(p).Cfg.lhs p

let api_node t name = Hashtbl.find_opt t.api_index name
let nt_node t name = Hashtbl.find_opt t.nt_index name
let is_api t id = match t.nodes.(id).kind with Api _ -> true | _ -> false

let api_nodes t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> match n.kind with Api s -> Some (s, n.id) | _ -> None)

let out_edges t id = List.map (fun e -> t.edges.(e)) t.children.(id)
let in_edges t id = List.map (fun e -> t.edges.(e)) t.parents.(id)
let edge t id = t.edges.(id)
let node_count t = Array.length t.nodes
let edge_count t = Array.length t.edges

(* shortest-path distances, memoized per source (BFS). Doubles as the
   reachability oracle. The memo lives in the graph value, guarded by a
   mutex, so one graph can be shared by concurrent workers (the server's
   worker pool); the BFS itself runs outside the lock — a racing pair of
   first lookups may both compute, and the loser's array is discarded. *)
let dist_from t a =
  Mutex.lock t.dist_mu;
  match Hashtbl.find_opt t.dists a with
  | Some d ->
      Mutex.unlock t.dist_mu;
      d
  | None ->
      Mutex.unlock t.dist_mu;
      let d = Array.make (Array.length t.nodes) max_int in
      d.(a) <- 0;
      let queue = Queue.create () in
      Queue.add a queue;
      while not (Queue.is_empty queue) do
        let id = Queue.take queue in
        List.iter
          (fun eid ->
            let dst = t.edges.(eid).dst in
            if d.(dst) = max_int then begin
              d.(dst) <- d.(id) + 1;
              Queue.add dst queue
            end)
          t.children.(id)
      done;
      Mutex.lock t.dist_mu;
      let d =
        match Hashtbl.find_opt t.dists a with
        | Some winner -> winner
        | None ->
            Hashtbl.add t.dists a d;
            d
      in
      Mutex.unlock t.dist_mu;
      d

let distance t a b = (dist_from t a).(b)
let reachable t a b = distance t a b < max_int

let pp_stats fmt t =
  let apis = List.length (api_nodes t) in
  Format.fprintf fmt "grammar graph: %d nodes (%d APIs), %d edges, root=%s"
    (node_count t) apis (edge_count t) (node_name t t.root)
