(** Grammar graphs (paper §II, §IV-A).

    The grammar graph is the CFG rendered as a directed graph with three
    node kinds:

    - {e nonterminal nodes}, one per nonterminal;
    - {e derivation nodes}, one per production of a nonterminal that has
      several productions and a multi-symbol right-hand side;
    - {e API nodes}, one per terminal.

    Edge structure encodes the paper's two edge flavours. Edges out of a
    nonterminal with several productions are "or" edges ([alt = true]):
    mutually exclusive alternatives. All other edges are concatenation
    edges. Additionally, a production whose right-hand side begins with an
    API terminal ("head API", e.g. [insert ::= INSERT insert_arg]) hangs the
    remaining symbols {e under the API node}, so that grammar paths descend
    from an API to the APIs of its arguments — the shape the reversed
    all-path search of EdgeToPath expects.

    Every edge carries its production id; a valid code generation tree uses
    at most one production per node (which subsumes the "conflicting or
    edges" rule of grammar-based pruning). *)

type node_kind =
  | Nt of string
  | Deriv of int  (** production id *)
  | Api of string

type node = { id : int; kind : node_kind }

type edge = {
  id : int;
  src : int;
  dst : int;
  prod : int;    (** production this edge realizes *)
  pos : int;     (** position of [dst] within the production's RHS *)
  alt : bool;    (** true when [src] is a nonterminal with alternatives *)
}

type t = private {
  cfg : Cfg.t;
  nodes : node array;       (** indexed by node id *)
  edges : edge array;       (** indexed by edge id *)
  children : int list array; (** node id -> outgoing edge ids, by (prod, pos) *)
  parents : int list array;  (** node id -> incoming edge ids *)
  api_index : (string, int) Hashtbl.t;
      (** API name -> node id; built once in {!build}, read-only after *)
  nt_index : (string, int) Hashtbl.t;
      (** nonterminal name -> node id; built once in {!build} *)
  root : int;               (** node of the start nonterminal *)
  dist_mu : Mutex.t;        (** guards [dists] *)
  dists : (int, int array) Hashtbl.t;
      (** per-source shortest-path memo ({!distance}); mutex-guarded so a
          graph can be shared by concurrent synthesis workers *)
}

val build : Cfg.t -> t

val node_name : t -> int -> string
(** Nonterminal/API name; derivation nodes render as "lhs#k". *)

val api_node : t -> string -> int option
(** Hash lookup in [api_index] — O(1), safe from any domain. *)

val nt_node : t -> string -> int option
val is_api : t -> int -> bool
val api_nodes : t -> (string * int) list

val out_edges : t -> int -> edge list
val in_edges : t -> int -> edge list
val edge : t -> int -> edge

val node_count : t -> int
val edge_count : t -> int

val reachable : t -> int -> int -> bool
(** [reachable g a b]: is there a directed path from node [a] to node [b]?
    (Used by orphan relocation's ancestor test.) Memoized per source. *)

val distance : t -> int -> int -> int
(** Length (in edges) of the shortest directed path from [a] to [b];
    [max_int] when unreachable. Memoized per source — the all-path search
    uses it to cut branches that cannot complete within the length cap. *)

val dist_from : t -> int -> int array
(** The whole distance row for source [a]: [(dist_from g a).(b) =
    distance g a b]. One memo lookup (one mutex acquisition) for the
    entire row — hot loops that probe many targets against one source
    (the all-path DFS) should hoist this instead of calling {!distance}
    per probe. The returned array is shared with the memo: treat it as
    read-only. *)

val pp_stats : Format.formatter -> t -> unit
