type t = { nodes : int array; edges : int array; apis : string array }

let size p = Array.length p.apis
let top p = p.nodes.(0)
let bottom p = p.nodes.(Array.length p.nodes - 1)

let equal a b = a.nodes = b.nodes && a.edges = b.edges

let pp g fmt p =
  Format.fprintf fmt "[%s]"
    (String.concat " -> "
       (Array.to_list (Array.map (Ggraph.node_name g) p.nodes)))

type limits = { max_nodes : int; max_paths : int; max_steps : int }

let default_limits = { max_nodes = 24; max_paths = 400; max_steps = 200_000 }

let of_rev_chain g rev_nodes rev_edges =
  let nodes = Array.of_list rev_nodes in
  let edges = Array.of_list rev_edges in
  let apis =
    Array.to_list nodes
    |> List.filter_map (fun id ->
           if Ggraph.is_api g id then Some (Ggraph.node_name g id) else None)
    |> Array.of_list
  in
  { nodes; edges; apis }

let search ?(limits = default_limits) g ~src ~dst =
  if src = dst then
    if Ggraph.is_api g src then [ { nodes = [| src |]; edges = [||]; apis = [| Ggraph.node_name g src |] } ]
    else []
  else begin
    let found = ref [] in
    let count = ref 0 in
    let steps = ref 0 in
    (* Iterative-deepening reversed DFS: walk parent edges from [dst]; the
       chain accumulates the downward order, so paths come out top-first.
       Each round collects only the paths of length in (prev_cap, cap], so
       shorter grammar paths are always delivered before any cap bites —
       on dense recursive grammars (the 505-API matcher grammar has
       hundreds of parents on shared nodes) exhaustive simple-path search
       is intractable, and the step budget truncates the long tail. A
       branch is entered only when the shortest src ~> branch distance
       still fits the round's remaining length budget.

       Two per-step structures are hoisted out of the DFS: the src
       distance row (one memo/mutex acquisition per search, not one per
       step — under domain-parallel EdgeToPath the per-step lock would
       serialize every worker on the shared memo) and an on-path bit per
       node replacing the O(length) List.mem membership scan. [on_path]
       marks the current node and every chain ancestor plus [dst], which
       is exactly the set the old [e.src <> node && e.src <> dst &&
       not (List.mem e.src chain_nodes)] test excluded; [src] is never
       marked (recursion stops there), so re-entering it to emit a path
       stays possible. *)
    let exception Done in
    let dist_src = Ggraph.dist_from g src in
    let on_path = Array.make (Ggraph.node_count g) false in
    let rec go node chain_nodes chain_edges depth ~lo ~cap =
      incr steps;
      if !steps > limits.max_steps || !count >= limits.max_paths then raise Done;
      if depth <= cap then begin
        if node = src then begin
          if depth > lo then begin
            found := of_rev_chain g (node :: chain_nodes) chain_edges :: !found;
            incr count
          end
        end
        else begin
          on_path.(node) <- true;
          List.iter
            (fun eid ->
              let e = g.Ggraph.edges.(eid) in
              if (not on_path.(e.Ggraph.src))
                 && dist_src.(e.Ggraph.src) <= cap - depth - 1
              then
                go e.Ggraph.src (node :: chain_nodes) (e.Ggraph.id :: chain_edges)
                  (depth + 1) ~lo ~cap)
            g.Ggraph.parents.(node);
          on_path.(node) <- false
        end
      end
    in
    (try
       if dist_src.(dst) < max_int then begin
         let lo = ref 0 in
         let cap = ref (min 4 limits.max_nodes) in
         let continue = ref true in
         while !continue do
           go dst [] [] 1 ~lo:!lo ~cap:!cap;
           if !cap >= limits.max_nodes then continue := false
           else begin
             lo := !cap;
             cap := min (!cap + 3) limits.max_nodes
           end
         done
       end
     with Done -> ());
    List.rev !found
  end

let search_between_apis ?limits g ~src_api ~dst_api =
  match (Ggraph.api_node g src_api, Ggraph.api_node g dst_api) with
  | Some src, Some dst -> search ?limits g ~src ~dst
  | _ -> []

let search_from_root ?limits g ~dst = search ?limits g ~src:g.Ggraph.root ~dst
