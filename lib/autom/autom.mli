(** The compiled grammar automaton: {!Dggt_grammar.Ggraph} precompiled
    into immutable state tables, so EdgeToPath's per-query path work
    becomes table lookups instead of repeated graph-walking.

    {!compile} runs once per grammar — at pack-load / registry-swap time,
    never per request — and produces:

    - {e epsilon-closure sets}: per node, every node reachable by
      descending without passing {e through} an API node (the GLR
      closure construction applied to the grammar graph: nonterminal and
      derivation nodes are expanded, API nodes are frontier states);
    - {e transition tables}: the reversed search's parent transitions as
      flat int arrays indexed by node id — one bounds-checked array read
      per step where the interpreted walk paid a list traversal and an
      edge-record load;
    - {e distance rows}: the shortest-path row of every API node and the
      grammar root, precomputed — path-existence checks and the search's
      branch-and-bound test are O(1) array reads with no memo mutex;
    - a {e path memo}: enumerated path sets keyed by
      [(src, dst, limits)], shared across queries (the per-pair path set
      is query-independent), mutex-guarded and bounded.

    {!paths} is {e byte-identical} to {!Dggt_grammar.Gpath.search} —
    same paths, same order, same truncation under every limit — because
    it ports the same iterative-deepening control flow (step budget
    counted per visit, distance-based branch cut, round structure) onto
    the compiled tables. The equivalence is property-tested on random
    grammars and on every API pair of the built-in domains.

    The automaton is immutable after compile (the memo is internally
    synchronized): share one freely across worker domains. *)

type t

val compile :
  ?trace:Dggt_obs.Trace.sink -> ?memo_cap:int -> Dggt_grammar.Ggraph.t -> t
(** Build the state tables for a grammar graph. Cost is one pass per
    node over its closure plus one BFS per API node — milliseconds even
    on the 505-API matcher grammar; amortized across every query served
    against the pack. Emits an [AutomatonCompile] span (node/edge/API
    counts, closure size, digest) when [trace] is given. [memo_cap]
    (default 65536) bounds the path-memo entry count; a full memo stops
    inserting (results are still computed and returned), so behavior
    stays deterministic. *)

val graph : t -> Dggt_grammar.Ggraph.t
(** The graph the automaton was compiled from. Consumers that pair an
    automaton with a graph ({!Dggt_core.Edge2path}) require physical
    equality with this value. *)

val digest : t -> string
(** Hex digest over the grammar graph's structure (node kinds, edges,
    root). Two automatons of structurally identical grammars share it —
    what [GET /version] reports and the registry cache keys on. *)

val compile_time_s : t -> float
(** Wall-clock seconds {!compile} took. A restored automaton
    ({!of_image}) reports the original compile's time. *)

(** {2 Serialized images}

    The warm-start path: an {!image} is the compiled tables as pure
    data — marshallable with stdlib [Marshal] (no mutex, no atomics, no
    graph pointer), so a server can spill them to disk and skip
    {!compile} on the next boot. *)

type image

val to_image : t -> image
(** The automaton's derived tables, digest and compile time. The memo is
    {e not} captured: a restored automaton starts with an empty path
    memo (its entries are cheap to re-earn and their keys embed
    [Gpath.limits], which the store has no business versioning). *)

val of_image : ?memo_cap:int -> Dggt_grammar.Ggraph.t -> image -> (t, string) result
(** Reattach an image to a grammar graph, with a fresh (empty) memo.
    Refuses — [Error] with a diagnostic, never a wrong automaton — when
    the graph's structural digest ({!digest}) differs from the one the
    image was compiled from, or the table sizes disagree with the node
    count. The resulting automaton satisfies {!graph}[ t == g], the
    physical equality {!Dggt_core.Edge2path} requires. *)

val image_digest : image -> string
(** The {!digest} of the grammar the image was compiled from. *)

val image_compile_time_s : image -> float

(** {2 Compiled-table reads} *)

val closure : t -> int -> int array
(** Epsilon-closure of a node: itself plus every node reachable through
    non-API nodes, ascending node-id order. API members other than the
    node itself are frontier states (not expanded). *)

val closure_apis : t -> int -> string array
(** Names of the API nodes in {!closure}, ascending node-id order — the
    grammar's "first API layer" below the node. *)

val distance : t -> src:int -> dst:int -> int
(** Shortest-path length from [src] to [dst]; [max_int] when
    unreachable. O(1) array read when [src] is an API node or the root
    (the precompiled rows); falls back to the graph's memo otherwise. *)

val reachable : t -> src:int -> dst:int -> bool

(** {2 Path enumeration (the EdgeToPath fast path)} *)

val paths :
  ?limits:Dggt_grammar.Gpath.limits ->
  t ->
  src:int ->
  dst:int ->
  Dggt_grammar.Gpath.t list
(** All simple paths from [src] down to [dst] — byte-identical to
    {!Dggt_grammar.Gpath.search} under the same limits, computed by the
    compiled table walk and memoized per [(src, dst, limits)]. *)

val paths_between_apis :
  ?limits:Dggt_grammar.Gpath.limits ->
  t ->
  src_api:string ->
  dst_api:string ->
  Dggt_grammar.Gpath.t list
(** Byte-identical to {!Dggt_grammar.Gpath.search_between_apis};
    unknown names yield []. *)

val paths_from_root :
  ?limits:Dggt_grammar.Gpath.limits -> t -> dst:int -> Dggt_grammar.Gpath.t list
(** Byte-identical to {!Dggt_grammar.Gpath.search_from_root} (the HISyn
    orphan treatment's root-anchored search). *)

(** {2 Introspection} *)

type memo_counters = { hits : int; misses : int; entries : int }

val memo_counters : t -> memo_counters
(** Lifetime hit/miss counts and current entry count of the path memo
    (feeds the server's [dggt_cache_*{cache="autom_memo"}] series). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: nodes, APIs, transitions, mean closure size,
    distance rows, digest prefix, compile time. *)
