open Dggt_grammar
module Trace = Dggt_obs.Trace

(* Memoized path enumerations. The key carries the limits: the same pair
   under a tighter budget yields a different (shorter) path set, and a
   cache that ignored that would silently change results. Same discipline
   as Ggraph.dist_from: compute outside the lock, a racing loser's value
   is discarded. A full memo stops inserting — never evicts — so a given
   automaton answers every (src, dst, limits) identically for its whole
   lifetime regardless of traffic order. *)
type memo = {
  mu : Mutex.t;
  tbl : (int * int * Gpath.limits, Gpath.t list) Hashtbl.t;
  cap : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type t = {
  g : Ggraph.t;
  api : bool array; (* node id -> is this an API node *)
  api_name : string array; (* node id -> name when [api], "" otherwise *)
  par_src : int array array;
      (* node id -> parent node ids, in parent-edge order — the reversed
         walk's transition table *)
  par_edge : int array array; (* node id -> parent edge ids, same order *)
  closures : int array array; (* node id -> epsilon-closure, ascending *)
  dist_rows : int array array;
      (* node id -> shortest-path row, [||] when not precompiled (only
         API nodes and the root get rows; those are the only sources
         EdgeToPath ever searches from) *)
  digest : string;
  compile_s : float;
  memo : memo;
}

let graph t = t.g
let digest t = t.digest
let compile_time_s t = t.compile_s

(* ------------------------------------------------------------------ *)
(* compile                                                            *)
(* ------------------------------------------------------------------ *)

(* structural digest: node kinds, edge tuples and the root pin the
   automaton's behavior completely, so two loads of byte-identical pack
   files agree on it *)
let digest_of (g : Ggraph.t) =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (n : Ggraph.node) ->
      (match n.Ggraph.kind with
      | Ggraph.Nt s -> Printf.bprintf buf "N%s" s
      | Ggraph.Deriv p -> Printf.bprintf buf "D%d" p
      | Ggraph.Api s -> Printf.bprintf buf "A%s" s);
      Buffer.add_char buf '\000')
    g.Ggraph.nodes;
  Array.iter
    (fun (e : Ggraph.edge) ->
      Printf.bprintf buf "%d>%d:%d:%d:%b\000" e.Ggraph.src e.Ggraph.dst
        e.Ggraph.prod e.Ggraph.pos e.Ggraph.alt)
    g.Ggraph.edges;
  Printf.bprintf buf "root=%d" g.Ggraph.root;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Epsilon-closure, GLR style: a worklist seeded with the node, expanding
   every member that is not an API frontier (the seed expands even when
   it is an API — its closure is what lies below it). [stamp] doubles as
   the visited set across all nodes without reallocation. *)
let closures_of (g : Ggraph.t) ~api =
  let n = Ggraph.node_count g in
  let stamp = Array.make n (-1) in
  Array.init n (fun v ->
      let acc = ref [] in
      let todo = Queue.create () in
      stamp.(v) <- v;
      Queue.add v todo;
      while not (Queue.is_empty todo) do
        let u = Queue.take todo in
        acc := u :: !acc;
        if u = v || not api.(u) then
          List.iter
            (fun eid ->
              let w = g.Ggraph.edges.(eid).Ggraph.dst in
              if stamp.(w) <> v then begin
                stamp.(w) <- v;
                Queue.add w todo
              end)
            g.Ggraph.children.(u)
      done;
      let arr = Array.of_list !acc in
      Array.sort compare arr;
      arr)

let compile ?trace ?(memo_cap = 65536) (g : Ggraph.t) =
  Trace.span trace "AutomatonCompile" (fun sp ->
      let t0 = Unix.gettimeofday () in
      let n = Ggraph.node_count g in
      let api = Array.make n false in
      let api_name = Array.make n "" in
      Array.iter
        (fun (nd : Ggraph.node) ->
          match nd.Ggraph.kind with
          | Ggraph.Api name ->
              api.(nd.Ggraph.id) <- true;
              api_name.(nd.Ggraph.id) <- name
          | Ggraph.Nt _ | Ggraph.Deriv _ -> ())
        g.Ggraph.nodes;
      (* parent transition tables, in the adjacency lists' (edge-id) order
         so the table walk visits branches exactly as the DFS did *)
      let par_src =
        Array.init n (fun v ->
            Array.of_list
              (List.map (fun eid -> g.Ggraph.edges.(eid).Ggraph.src)
                 g.Ggraph.parents.(v)))
      in
      let par_edge = Array.init n (fun v -> Array.of_list g.Ggraph.parents.(v)) in
      let closures = closures_of g ~api in
      (* distance rows for every source the engine searches from: API
         nodes (EdgeToPath pairs) and the root (orphan anchoring). Rows
         come from the graph's own memo, so an engine falling back to the
         DFS on the same graph shares them rather than recomputing. *)
      let dist_rows = Array.make n [||] in
      Array.iteri
        (fun v is_api ->
          if is_api || v = g.Ggraph.root then
            dist_rows.(v) <- Ggraph.dist_from g v)
        api;
      let digest = digest_of g in
      let compile_s = Unix.gettimeofday () -. t0 in
      let t =
        {
          g;
          api;
          api_name;
          par_src;
          par_edge;
          closures;
          dist_rows;
          digest;
          compile_s;
          memo =
            {
              mu = Mutex.create ();
              tbl = Hashtbl.create 1024;
              cap = memo_cap;
              hits = Atomic.make 0;
              misses = Atomic.make 0;
            };
        }
      in
      Trace.int sp "nodes" n;
      Trace.int sp "edges" (Ggraph.edge_count g);
      Trace.int sp "apis" (List.length (Ggraph.api_nodes g));
      Trace.int sp "closure_total"
        (Array.fold_left (fun a c -> a + Array.length c) 0 closures);
      Trace.str sp "digest" digest;
      Trace.float sp "compile_s" compile_s;
      t)

(* ------------------------------------------------------------------ *)
(* serialized images                                                  *)
(* ------------------------------------------------------------------ *)

(* Everything [compile] derives from the graph, as pure marshallable
   data: no mutex, no atomics, no graph pointer — the two things a
   [Marshal] of [t] itself would choke on (custom blocks) or duplicate
   (the grammar, which the restorer already has). *)
type image = {
  i_api : bool array;
  i_api_name : string array;
  i_par_src : int array array;
  i_par_edge : int array array;
  i_closures : int array array;
  i_dist_rows : int array array;
  i_digest : string;
  i_compile_s : float;
}

let to_image t =
  {
    i_api = t.api;
    i_api_name = t.api_name;
    i_par_src = t.par_src;
    i_par_edge = t.par_edge;
    i_closures = t.closures;
    i_dist_rows = t.dist_rows;
    i_digest = t.digest;
    i_compile_s = t.compile_s;
  }

let image_digest i = i.i_digest
let image_compile_time_s i = i.i_compile_s

let of_image ?(memo_cap = 65536) (g : Ggraph.t) (i : image) =
  let d = digest_of g in
  let n = Ggraph.node_count g in
  if d <> i.i_digest then
    Error
      (Printf.sprintf
         "automaton image was built from a different grammar (image digest \
          %s.., grammar %s..)"
         (String.sub i.i_digest 0 (min 12 (String.length i.i_digest)))
         (String.sub d 0 12))
  else if
    Array.length i.i_api <> n
    || Array.length i.i_api_name <> n
    || Array.length i.i_par_src <> n
    || Array.length i.i_par_edge <> n
    || Array.length i.i_closures <> n
    || Array.length i.i_dist_rows <> n
  then Error "automaton image table sizes do not match the grammar"
  else
    Ok
      {
        g;
        api = i.i_api;
        api_name = i.i_api_name;
        par_src = i.i_par_src;
        par_edge = i.i_par_edge;
        closures = i.i_closures;
        dist_rows = i.i_dist_rows;
        digest = i.i_digest;
        compile_s = i.i_compile_s;
        memo =
          {
            mu = Mutex.create ();
            tbl = Hashtbl.create 1024;
            cap = memo_cap;
            hits = Atomic.make 0;
            misses = Atomic.make 0;
          };
      }

(* ------------------------------------------------------------------ *)
(* compiled-table reads                                               *)
(* ------------------------------------------------------------------ *)

let closure t v = t.closures.(v)

let closure_apis t v =
  let members = t.closures.(v) in
  let count = ref 0 in
  Array.iter (fun u -> if t.api.(u) then incr count) members;
  let out = Array.make !count "" in
  let j = ref 0 in
  Array.iter
    (fun u ->
      if t.api.(u) then begin
        out.(!j) <- t.api_name.(u);
        incr j
      end)
    members;
  out

let dist_row t src =
  let row = t.dist_rows.(src) in
  if Array.length row > 0 then row else Ggraph.dist_from t.g src

let distance t ~src ~dst = (dist_row t src).(dst)
let reachable t ~src ~dst = distance t ~src ~dst < max_int

(* ------------------------------------------------------------------ *)
(* the table walk                                                     *)
(* ------------------------------------------------------------------ *)

(* A faithful port of Gpath.search onto the compiled tables: the same
   iterative-deepening rounds, the same per-visit step counting, the
   same distance-based branch cut, the same parent order — so the paths,
   their order, and every cap truncation are byte-identical (the test
   suite pins this on random grammars and both built-in domains). What
   changes is the cost per visit: parent fan-out is two flat array reads
   instead of a list traversal with edge-record loads, the distance row
   is a precompiled array (no memo mutex), and the chain lives in two
   preallocated arrays instead of per-step cons cells. *)
let run_search t (limits : Gpath.limits) ~src ~dst =
  if src = dst then
    if t.api.(src) then
      [ { Gpath.nodes = [| src |]; edges = [||]; apis = [| t.api_name.(src) |] } ]
    else []
  else begin
    let found = ref [] in
    let count = ref 0 in
    let steps = ref 0 in
    let exception Done in
    let dist_src = dist_row t src in
    let on_path = Array.make (Array.length t.api) false in
    (* chain.(d) = node visited at round-depth d (dst sits at depth 1);
       chain_edge.(d) = edge between the depth-(d+1) node and it. Both
       only written at depths <= cap <= max_nodes. *)
    let chain = Array.make (limits.Gpath.max_nodes + 2) 0 in
    let chain_edge = Array.make (limits.Gpath.max_nodes + 2) 0 in
    let emit depth =
      let nodes =
        Array.init depth (fun i -> if i = 0 then src else chain.(depth - i))
      in
      let edges = Array.init (depth - 1) (fun i -> chain_edge.(depth - 1 - i)) in
      let napis = ref 0 in
      Array.iter (fun id -> if t.api.(id) then incr napis) nodes;
      let apis = Array.make !napis "" in
      let j = ref 0 in
      Array.iter
        (fun id ->
          if t.api.(id) then begin
            apis.(!j) <- t.api_name.(id);
            incr j
          end)
        nodes;
      found := { Gpath.nodes; edges; apis } :: !found;
      incr count
    in
    let rec go node depth ~lo ~cap =
      incr steps;
      if !steps > limits.Gpath.max_steps || !count >= limits.Gpath.max_paths
      then raise Done;
      if depth <= cap then begin
        if node = src then begin
          if depth > lo then emit depth
        end
        else begin
          on_path.(node) <- true;
          chain.(depth) <- node;
          let srcs = t.par_src.(node) in
          let eids = t.par_edge.(node) in
          let budget = cap - depth - 1 in
          for i = 0 to Array.length srcs - 1 do
            let s = srcs.(i) in
            if (not on_path.(s)) && dist_src.(s) <= budget then begin
              chain_edge.(depth) <- eids.(i);
              go s (depth + 1) ~lo ~cap
            end
          done;
          on_path.(node) <- false
        end
      end
    in
    (try
       if dist_src.(dst) < max_int then begin
         let lo = ref 0 in
         let cap = ref (min 4 limits.Gpath.max_nodes) in
         let continue = ref true in
         while !continue do
           go dst 1 ~lo:!lo ~cap:!cap;
           if !cap >= limits.Gpath.max_nodes then continue := false
           else begin
             lo := !cap;
             cap := min (!cap + 3) limits.Gpath.max_nodes
           end
         done
       end
     with Done -> ());
    List.rev !found
  end

let paths ?(limits = Gpath.default_limits) t ~src ~dst =
  let key = (src, dst, limits) in
  let m = t.memo in
  Mutex.lock m.mu;
  match Hashtbl.find_opt m.tbl key with
  | Some r ->
      Mutex.unlock m.mu;
      Atomic.incr m.hits;
      r
  | None ->
      Mutex.unlock m.mu;
      Atomic.incr m.misses;
      let r = run_search t limits ~src ~dst in
      Mutex.lock m.mu;
      let r =
        match Hashtbl.find_opt m.tbl key with
        | Some winner -> winner
        | None ->
            if Hashtbl.length m.tbl < m.cap then Hashtbl.add m.tbl key r;
            r
      in
      Mutex.unlock m.mu;
      r

let paths_between_apis ?limits t ~src_api ~dst_api =
  match (Ggraph.api_node t.g src_api, Ggraph.api_node t.g dst_api) with
  | Some src, Some dst -> paths ?limits t ~src ~dst
  | _ -> []

let paths_from_root ?limits t ~dst = paths ?limits t ~src:t.g.Ggraph.root ~dst

(* ------------------------------------------------------------------ *)
(* introspection                                                      *)
(* ------------------------------------------------------------------ *)

type memo_counters = { hits : int; misses : int; entries : int }

let memo_counters t =
  let m = t.memo in
  Mutex.lock m.mu;
  let entries = Hashtbl.length m.tbl in
  Mutex.unlock m.mu;
  { hits = Atomic.get m.hits; misses = Atomic.get m.misses; entries }

let pp_stats fmt t =
  let n = Array.length t.api in
  let apis = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.api in
  let transitions =
    Array.fold_left (fun a p -> a + Array.length p) 0 t.par_src
  in
  let closure_total =
    Array.fold_left (fun a c -> a + Array.length c) 0 t.closures
  in
  let rows =
    Array.fold_left
      (fun a r -> if Array.length r > 0 then a + 1 else a)
      0 t.dist_rows
  in
  Format.fprintf fmt
    "automaton: %d nodes (%d APIs), %d transitions, mean closure %.1f, %d \
     distance rows, digest %s, compiled in %.1f ms"
    n apis transitions
    (float_of_int closure_total /. float_of_int (max 1 n))
    rows
    (String.sub t.digest 0 8)
    (t.compile_s *. 1000.0)
