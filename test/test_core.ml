(* Tests for dggt_core: the six-step pipeline, both engines, and the three
   optimizations. The fixture grammar is the paper's Figure 4 fragment. *)

open Dggt_grammar
open Dggt_core
module Nlu = Dggt_nlu

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let fig4_bnf =
  {|
cmd        ::= insert ;
insert     ::= INSERT insert_arg ;
insert_arg ::= string pos iter ;
string     ::= STRING ;
pos        ::= position | START ;
position   ::= POSITION pos_arg ;
pos_arg    ::= after | startfrom ;
after      ::= AFTER string ;
startfrom  ::= STARTFROM string ;
iter       ::= iterscope | ALL ;
iterscope  ::= ITERATIONSCOPE scope ;
scope      ::= linescope | DOCSCOPE ;
linescope  ::= LINESCOPE ;
|}

let fig4_graph =
  lazy
    (let cfg = Result.get_ok (Cfg.of_text ~start:"cmd" fig4_bnf) in
     Ggraph.build cfg)

let fig4_doc =
  lazy
    (Apidoc.make ~literal_apis:[ "STRING" ]
       [
         ("INSERT", "insert add append a string at a position");
         ("STRING", "a literal string of characters text");
         ("START", "the start beginning of the scope");
         ("POSITION", "a position in the text");
         ("AFTER", "position after a string");
         ("STARTFROM", "position starting from a string");
         ("ALL", "all occurrences everywhere");
         ("ITERATIONSCOPE", "iterate over every each scope");
         ("LINESCOPE", "line scope each line");
         ("DOCSCOPE", "whole document file scope");
       ])

let engine_cfg alg = { (Engine.default alg) with Engine.timeout_s = Some 5.0 }

let fig4_target =
  lazy (Engine.target (Lazy.force fig4_graph) (Lazy.force fig4_doc))

let synth alg q =
  Engine.synthesize (engine_cfg alg) (Lazy.force fig4_target) q

(* ------------------------------------------------------------------ *)
(* Apidoc                                                             *)
(* ------------------------------------------------------------------ *)

let test_apidoc_keywords () =
  let kws = Apidoc.derive_keywords ~api:"IterationScope" ~description:"iterate over every scope" in
  check_b "description words" true (List.mem "iterate" kws && List.mem "scope" kws);
  check_b "function words dropped" false (List.mem "over" kws);
  check_b "every kept" true (List.mem "every" kws);
  (* name subtokens live in a separate field *)
  let doc = Apidoc.make [ ("IterationScope", "iterate over every scope") ] in
  (match Apidoc.find doc "IterationScope" with
  | Some e ->
      check_b "name subtokens" true
        (e.Apidoc.name_keywords = [ "iteration"; "scope" ])
  | None -> Alcotest.fail "entry missing");
  (* plural description words are lemmatized *)
  let kws = Apidoc.derive_keywords ~api:"X" ~description:"matches expressions" in
  check_b "lemmatized" true (List.mem "expression" kws)

let test_apidoc_lookup () =
  let doc = Lazy.force fig4_doc in
  check_i "size" 10 (Apidoc.size doc);
  check_b "find" true (Apidoc.find doc "INSERT" <> None);
  check_b "find missing" true (Apidoc.find doc "NOPE" = None);
  Alcotest.(check (list string)) "literal apis" [ "STRING" ] (Apidoc.literal_apis doc);
  check_b "keywords_of missing empty" true (Apidoc.keywords_of doc "NOPE" = [])

(* ------------------------------------------------------------------ *)
(* Queryprune                                                         *)
(* ------------------------------------------------------------------ *)

let texts (g : Nlu.Depgraph.t) =
  List.map (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.text) g.Nlu.Depgraph.nodes

let test_queryprune_function_words () =
  let g = Nlu.Depparser.parse "insert a string at the start of each line" in
  let p = Queryprune.prune g in
  let kept = texts p in
  check_b "verbs survive" true (List.mem "insert" kept);
  check_b "nouns survive" true (List.mem "string" kept && List.mem "line" kept);
  check_b "quantifier survives" true (List.mem "each" kept);
  check_b "articles dropped" false (List.mem "a" kept || List.mem "the" kept);
  check_b "prepositions dropped" false (List.mem "at" kept || List.mem "of" kept);
  check_b "still a tree" true (Nlu.Depgraph.is_tree p)

let test_queryprune_reconnects () =
  (* "argument is a float literal": pruning the copula must splice
     "literal" up to "argument" *)
  let g = Nlu.Depparser.parse "search for call expressions whose argument is a float literal" in
  let p = Queryprune.prune g in
  let id_of txt =
    (List.find (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.text = txt) p.Nlu.Depgraph.nodes).Nlu.Depgraph.id
  in
  check_b "copula gone" false (List.mem "is" (texts p));
  match Nlu.Depgraph.parent p (id_of "literal") with
  | Some e -> check_s "literal reattached" "argument" (Nlu.Depgraph.node p e.Nlu.Depgraph.gov).Nlu.Depgraph.text
  | None -> Alcotest.fail "literal lost its governor"

let test_queryprune_stopword_root () =
  let g = Nlu.Depparser.parse "please delete the first word" in
  let p = Queryprune.prune g in
  check_s "root promoted to delete" "delete"
    (Nlu.Depgraph.node p p.Nlu.Depgraph.root).Nlu.Depgraph.text

let test_queryprune_drop_nodes () =
  let g = Nlu.Depparser.parse "insert a string at the start" in
  let p = Queryprune.prune g in
  let id_of txt =
    (List.find (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.text = txt) p.Nlu.Depgraph.nodes).Nlu.Depgraph.id
  in
  let p' = Queryprune.drop_nodes p [ id_of "start" ] in
  check_b "dropped" false (List.mem "start" (texts p'));
  check_b "still tree" true (Nlu.Depgraph.is_tree p')

(* ------------------------------------------------------------------ *)
(* Word2api                                                           *)
(* ------------------------------------------------------------------ *)

let test_word2api_basic () =
  let g = Queryprune.prune (Nlu.Depparser.parse "insert a string at the start of each line") in
  let w2a = Word2api.build (Lazy.force fig4_doc) g in
  let apis_of txt =
    let n = List.find (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.text = txt) g.Nlu.Depgraph.nodes in
    Word2api.apis w2a n.Nlu.Depgraph.id
  in
  check_b "insert -> INSERT" true (List.mem "INSERT" (apis_of "insert"));
  check_b "string -> STRING" true (List.mem "STRING" (apis_of "string"));
  check_b "start has START and STARTFROM" true
    (List.mem "START" (apis_of "start") && List.mem "STARTFROM" (apis_of "start"));
  check_b "line -> LINESCOPE" true (List.mem "LINESCOPE" (apis_of "line"))

let test_word2api_literals () =
  let g = Queryprune.prune (Nlu.Depparser.parse "insert \"-\" at the start") in
  let w2a = Word2api.build (Lazy.force fig4_doc) g in
  let lit_node =
    List.find (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.lit <> None) g.Nlu.Depgraph.nodes
  in
  Alcotest.(check (list string)) "literal maps to STRING" [ "STRING" ]
    (Word2api.apis w2a lit_node.Nlu.Depgraph.id)

let test_word2api_topk_threshold () =
  let g = Queryprune.prune (Nlu.Depparser.parse "insert a string") in
  let w2a1 = Word2api.build ~top_k:1 (Lazy.force fig4_doc) g in
  List.iter
    (fun (n : Nlu.Depgraph.node) ->
      check_b "top_k bound" true (List.length (Word2api.apis w2a1 n.Nlu.Depgraph.id) <= 1))
    g.Nlu.Depgraph.nodes;
  let w2a_strict = Word2api.build ~threshold:2.0 (Lazy.force fig4_doc) g in
  check_i "impossible threshold leaves everything uncovered"
    (List.length g.Nlu.Depgraph.nodes)
    (List.length (Word2api.uncovered w2a_strict))

let test_word2api_restrict () =
  let g = Queryprune.prune (Nlu.Depparser.parse "insert at the start") in
  let w2a = Word2api.build (Lazy.force fig4_doc) g in
  let start_node =
    List.find (fun (n : Nlu.Depgraph.node) -> n.Nlu.Depgraph.text = "start") g.Nlu.Depgraph.nodes
  in
  let w2a' = Word2api.restrict w2a start_node.Nlu.Depgraph.id "START" in
  Alcotest.(check (list string)) "restricted" [ "START" ]
    (Word2api.apis w2a' start_node.Nlu.Depgraph.id)

(* ------------------------------------------------------------------ *)
(* Edge2path                                                          *)
(* ------------------------------------------------------------------ *)

let build_e2p q =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse q) in
  let w2a = Word2api.build (Lazy.force fig4_doc) dg in
  (g, dg, w2a, Edge2path.build g dg w2a)

let test_edge2path_basic () =
  let _, dg, _, e2p = build_e2p "insert a string" in
  let edge = List.hd dg.Nlu.Depgraph.edges in
  let ps = Edge2path.paths_of_edge e2p edge in
  check_b "has paths" true (List.length ps >= 1);
  List.iter
    (fun (p : Edge2path.epath) ->
      check_b "gov api is a candidate" true (p.Edge2path.gov_api <> None);
      check_b "labels start at 1." true
        (Dggt_util.Strutil.starts_with ~prefix:"1." p.Edge2path.label))
    ps;
  check_i "total count agrees" (List.length (Edge2path.all e2p))
    (Edge2path.total_path_count e2p)

let test_edge2path_orphans () =
  (* "each" (ITERATIONSCOPE) under "line" (LINESCOPE): LINESCOPE has no
     descendant ITERATIONSCOPE, so "each" must be an orphan. *)
  let _, _, _, e2p = build_e2p "insert a string at the start of each line" in
  check_b "orphans detected" true (List.length (Edge2path.orphans e2p) >= 1)

let test_edge2path_anchor () =
  let g, dg, w2a, e2p = build_e2p "insert a string at the start of each line" in
  let dg', e2p' = Edge2path.anchor_orphans g dg w2a e2p in
  check_i "no orphans left" 0 (List.length (Edge2path.orphans e2p'));
  (* anchored orphans hang off the dependency root *)
  List.iter
    (fun o ->
      match Nlu.Depgraph.parent dg' o with
      | Some e -> check_i "anchored to root" dg'.Nlu.Depgraph.root e.Nlu.Depgraph.gov
      | None -> Alcotest.fail "orphan lost")
    (Edge2path.orphans e2p);
  (* root-anchored paths carry gov_api = None *)
  let anchored =
    List.filter (fun (p : Edge2path.epath) -> p.Edge2path.gov_api = None) (Edge2path.all e2p')
  in
  check_b "anchored paths exist" true (anchored <> [])

(* ------------------------------------------------------------------ *)
(* Cgt                                                                *)
(* ------------------------------------------------------------------ *)

let test_cgt_merge_paths () =
  let g = Lazy.force fig4_graph in
  let ps = Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING" in
  let short = List.find (fun p -> Gpath.size p = 2) ps in
  let cgt = Cgt.of_paths g [ short ] in
  check_i "api size" 2 (Cgt.api_size g cgt);
  check_b "tree" true (Cgt.is_tree g cgt);
  check_b "valid" true (Cgt.is_grammar_valid g cgt);
  (match Cgt.root g cgt with
  | Some r -> check_s "root is INSERT" "INSERT" (Ggraph.node_name g r)
  | None -> Alcotest.fail "no root");
  (* merging a path with itself is idempotent *)
  check_b "idempotent merge" true (Cgt.equal cgt (Cgt.merge cgt cgt))

let test_cgt_conflict_invalid () =
  let g = Lazy.force fig4_graph in
  let to_start = Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"START" in
  let to_position = Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"POSITION" in
  let cgt = Cgt.of_paths g [ List.hd to_start; List.hd to_position ] in
  (* START and POSITION are exclusive alternatives of pos *)
  check_b "conflicting or-edges rejected" false (Cgt.is_grammar_valid g cgt)

let test_cgt_empty_and_lone () =
  let g = Lazy.force fig4_graph in
  check_b "empty well-formed" true (Cgt.well_formed g Cgt.empty);
  check_b "empty has no root" true (Cgt.root g Cgt.empty = None);
  let nid = Option.get (Ggraph.api_node g "INSERT") in
  let lone =
    Cgt.merge_path Cgt.empty { Gpath.nodes = [| nid |]; edges = [||]; apis = [| "INSERT" |] }
  in
  check_i "lone node size" 1 (Cgt.api_size g lone);
  check_b "lone node tree" true (Cgt.is_tree g lone);
  check_b "lone root" true (Cgt.root g lone = Some nid)

let test_cgt_disjoint_not_tree () =
  let g = Lazy.force fig4_graph in
  let a = Gpath.search_between_apis g ~src_api:"POSITION" ~dst_api:"AFTER" in
  let b = Gpath.search_between_apis g ~src_api:"ITERATIONSCOPE" ~dst_api:"LINESCOPE" in
  let cgt = Cgt.of_paths g [ List.hd a; List.hd b ] in
  check_b "two components" false (Cgt.is_tree g cgt)

(* ------------------------------------------------------------------ *)
(* Tree2expr                                                          *)
(* ------------------------------------------------------------------ *)

let test_tree2expr_linearize () =
  let g = Lazy.force fig4_graph in
  let insert_string =
    List.find (fun p -> Gpath.size p = 2)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let insert_start = Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"START" in
  let cgt = Cgt.of_paths g (insert_string :: insert_start) in
  match Tree2expr.of_cgt ~lits:[ ("STRING", ":") ] g cgt with
  | Ok e ->
      check_s "code" "INSERT(STRING(\":\"), START())" (Tree2expr.to_string e);
      check_s "api" "INSERT" e.Tree2expr.api;
      check_i "two args" 2 (List.length e.Tree2expr.args)
  | Error err -> Alcotest.failf "linearization failed: %a" Tree2expr.pp_error err

let test_tree2expr_arg_order () =
  (* argument order must follow the grammar RHS (string pos iter), not the
     merge order *)
  let g = Lazy.force fig4_graph in
  let p_string =
    List.find (fun p -> Gpath.size p = 2)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let p_start = List.hd (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"START") in
  let p_all = List.hd (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"ALL") in
  let orders = [ [ p_all; p_start; p_string ]; [ p_string; p_start; p_all ] ] in
  let codes =
    List.map
      (fun ps ->
        match Tree2expr.of_cgt g (Cgt.of_paths g ps) with
        | Ok e -> Tree2expr.to_string e
        | Error _ -> "fail")
      orders
  in
  check_s "merge order irrelevant" (List.nth codes 0) (List.nth codes 1);
  check_s "grammar order" "INSERT(STRING(), START(), ALL())" (List.nth codes 0)

let test_tree2expr_errors () =
  let g = Lazy.force fig4_graph in
  (match Tree2expr.of_cgt g Cgt.empty with
  | Error Tree2expr.Empty_cgt -> ()
  | _ -> Alcotest.fail "expected Empty_cgt");
  let a = Gpath.search_between_apis g ~src_api:"POSITION" ~dst_api:"AFTER" in
  let b = Gpath.search_between_apis g ~src_api:"ITERATIONSCOPE" ~dst_api:"LINESCOPE" in
  match Tree2expr.of_cgt g (Cgt.of_paths g [ List.hd a; List.hd b ]) with
  | Error Tree2expr.Not_a_tree -> ()
  | _ -> Alcotest.fail "expected Not_a_tree"

let test_expr_parse_roundtrip () =
  let cases =
    [
      "INSERT(STRING(\":\"), END(), ITERATIONSCOPE(LINESCOPE(), ALL()))";
      "DELETE(WORDTOKEN())";
      "CHARNUM(14)";
      "cxxConstructExpr(hasDeclaration(cxxMethodDecl(hasName(\"PI\"))))";
      "END";
    ]
  in
  List.iter
    (fun s ->
      match Tree2expr.parse s with
      | Ok e ->
          let printed = Tree2expr.to_string e in
          let reparsed = Result.get_ok (Tree2expr.parse printed) in
          check_b ("round-trip " ^ s) true (Tree2expr.equal e reparsed)
      | Error m -> Alcotest.failf "parse %S failed: %s" s m)
    cases;
  (match Tree2expr.parse "F(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for F(");
  match Tree2expr.parse "F(\"a\" \"b\")" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for juxtaposed literals"

let test_expr_equal () =
  let p s = Result.get_ok (Tree2expr.parse s) in
  check_b "equal" true (Tree2expr.equal (p "A(B(), C())") (p "A(B, C)"));
  check_b "order matters" false (Tree2expr.equal (p "A(B, C)") (p "A(C, B)"));
  check_b "literal matters" false (Tree2expr.equal (p "A(\"x\")") (p "A(\"y\")"));
  Alcotest.(check (list string)) "api multiset" [ "A"; "B"; "C" ]
    (Tree2expr.api_multiset (p "C(A, B)"))

(* ------------------------------------------------------------------ *)
(* Sprune                                                             *)
(* ------------------------------------------------------------------ *)

let mk_epath id (p : Gpath.t) gov dep edge =
  { Edge2path.id; label = string_of_int id; edge; gov_api = Some gov; dep_api = dep; path = p }

let test_sprune_bounds () =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse "insert a string") in
  let edge = List.hd dg.Nlu.Depgraph.edges in
  let short =
    List.find (fun p -> Gpath.size p = 2)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let long =
    List.find (fun p -> Gpath.size p = 4)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let e1 = mk_epath 0 short "INSERT" "STRING" edge in
  let e2 = mk_epath 1 long "INSERT" "STRING" edge in
  let b1 = Sprune.bounds_of ~extra:(fun _ -> 0) [ e1 ] in
  check_i "singleton lo" 2 b1.Sprune.lo;
  check_i "singleton hi" 2 b1.Sprune.hi;
  let b12 = Sprune.bounds_of ~extra:(fun _ -> 0) [ e1; e2 ] in
  (* union of APIs: INSERT STRING POSITION STARTFROM/AFTER -> 4; sum - 1 = 5 *)
  check_i "pair lo" 4 b12.Sprune.lo;
  check_i "pair hi" 5 b12.Sprune.hi;
  (* extra shifts both bounds *)
  let b12x = Sprune.bounds_of ~extra:(fun _ -> 3) [ e1; e2 ] in
  check_i "extra lo" 10 b12x.Sprune.lo;
  check_i "extra hi" 11 b12x.Sprune.hi

let test_sprune_prunes_dominated () =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse "insert a string") in
  let edge = List.hd dg.Nlu.Depgraph.edges in
  let short =
    List.find (fun p -> Gpath.size p = 2)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let long =
    List.find (fun p -> Gpath.size p = 4)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let c_small = [ mk_epath 0 short "INSERT" "STRING" edge ] in
  let c_big = [ mk_epath 1 long "INSERT" "STRING" edge ] in
  let kept = Sprune.prune ~enabled:true ~extra:(fun _ -> 0) [ c_small; c_big ] in
  check_i "dominated combo pruned" 1 (List.length kept);
  let kept = Sprune.prune ~enabled:false ~extra:(fun _ -> 0) [ c_small; c_big ] in
  check_i "disabled keeps all" 2 (List.length kept)

(* ------------------------------------------------------------------ *)
(* Gprune                                                             *)
(* ------------------------------------------------------------------ *)

let test_gprune_combos () =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse "insert a string at the start") in
  let e_string, e_start =
    match dg.Nlu.Depgraph.edges with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two edges"
  in
  let short_string =
    List.find (fun p -> Gpath.size p = 2)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let long_string =
    List.find
      (fun p -> Array.exists (( = ) "STARTFROM") p.Gpath.apis)
      (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"STRING")
  in
  let p_start = List.hd (Gpath.search_between_apis g ~src_api:"INSERT" ~dst_api:"START") in
  let eps =
    [
      mk_epath 0 short_string "INSERT" "STRING" e_string;
      mk_epath 1 long_string "INSERT" "STRING" e_string;
      mk_epath 2 p_start "INSERT" "START" e_start;
    ]
  in
  let t = Gprune.prepare g eps in
  (* long_string goes through POSITION, conflicting with START at pos *)
  check_b "conflict found" true (List.mem (1, 2) (Gprune.conflict_pairs t));
  let groups = [ [ List.nth eps 0; List.nth eps 1 ]; [ List.nth eps 2 ] ] in
  let survivors, total = Gprune.combos t ~enabled:true groups in
  check_i "total combos" 2 total;
  check_i "one survivor" 1 (List.length survivors);
  let survivors_off, _ = Gprune.combos t ~enabled:false groups in
  check_i "disabled keeps both" 2 (List.length survivors_off)

(* ------------------------------------------------------------------ *)
(* Orphan                                                             *)
(* ------------------------------------------------------------------ *)

let test_orphan_relocation () =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse "insert a string at the start of each line") in
  let w2a = Word2api.build (Lazy.force fig4_doc) dg in
  let e2p = Edge2path.build g dg w2a in
  let orphans = Edge2path.orphans e2p in
  check_b "fixture has orphans" true (orphans <> []);
  List.iter
    (fun o ->
      let govs = Orphan.governor_candidates g dg w2a ~orphan:o in
      check_b "insert can govern orphans" true
        (List.exists
           (fun gv -> (Nlu.Depgraph.node dg gv).Nlu.Depgraph.text = "insert")
           govs);
      check_b "orphan is not its own governor" false (List.mem o govs))
    orphans;
  let variants = Orphan.relocate g dg w2a ~orphans in
  check_b "variants produced" true (List.length variants >= 1);
  List.iter
    (fun v ->
      check_i "same node count" (List.length dg.Nlu.Depgraph.nodes)
        (List.length v.Nlu.Depgraph.nodes))
    variants;
  (* relocated variants resolve the orphans *)
  check_b "some variant has no orphan" true
    (List.exists
       (fun v ->
         let e2p' = Edge2path.build g v w2a in
         Edge2path.orphans e2p' = [])
       variants)

let test_orphan_caps () =
  let g = Lazy.force fig4_graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse "insert a string at the start of each line") in
  let w2a = Word2api.build (Lazy.force fig4_doc) dg in
  let e2p = Edge2path.build g dg w2a in
  let variants = Orphan.relocate ~max_graphs:1 g dg w2a ~orphans:(Edge2path.orphans e2p) in
  check_i "cap respected" 1 (List.length variants)

(* ------------------------------------------------------------------ *)
(* Engines                                                            *)
(* ------------------------------------------------------------------ *)

let test_engines_agree_on_fixture () =
  let queries =
    [
      "insert a string";
      "insert a string at the start";
      "insert \"-\" at the start of each line";
      "insert a string at the start of each line";
      "insert a string everywhere in the document";
    ]
  in
  List.iter
    (fun q ->
      let h = synth Engine.Hisyn_alg q in
      let d = synth Engine.Dggt_alg q in
      (* DGGT (with orphan relocation and graceful subtree skipping) solves
         a superset of what the baseline solves *)
      if h.Engine.code <> None then
        check_b (q ^ ": DGGT solves whatever HISyn solves") true
          (d.Engine.code <> None);
      (* when the baseline finds a (full-coverage) answer on an orphan-free
         query, DGGT finds the identical one *)
      if h.Engine.code <> None && h.Engine.stats.Stats.orphan_count = 0 then begin
        check_b (q ^ ": same code when orphan-free") true
          (h.Engine.code = d.Engine.code);
        match (h.Engine.cgt_size, d.Engine.cgt_size) with
        | Some hs, Some ds -> check_i (q ^ ": same size") hs ds
        | _ -> ()
      end)
    queries

let test_engine_insert_example () =
  let d = synth Engine.Dggt_alg "insert \":\" at the start of each line" in
  check_s "paper example"
    "INSERT(STRING(\":\"), START(), ITERATIONSCOPE(LINESCOPE()))"
    (Option.value d.Engine.code ~default:"FAIL")

let test_engine_timeout () =
  let cfg =
    { (Engine.default Engine.Hisyn_alg) with Engine.timeout_s = None; max_steps = Some 3 }
  in
  let o =
    Engine.synthesize cfg (Lazy.force fig4_target)
      "insert a string at the start of each line"
  in
  check_b "timed out" true o.Engine.timed_out;
  check_b "no code" true (o.Engine.code = None);
  check_b "failure recorded" true (o.Engine.failure = Some "timeout")

let test_engine_single_word () =
  let h = synth Engine.Hisyn_alg "insert" in
  let d = synth Engine.Dggt_alg "insert" in
  check_s "hisyn lone api" "INSERT()" (Option.value h.Engine.code ~default:"FAIL");
  check_s "dggt lone api" "INSERT()" (Option.value d.Engine.code ~default:"FAIL")

let test_engine_garbage () =
  let o = synth Engine.Dggt_alg "frobnicate the zyzzyx" in
  check_b "fails gracefully" true (o.Engine.code = None && o.Engine.failure <> None);
  let o = synth Engine.Dggt_alg "" in
  check_b "empty query fails gracefully" true (o.Engine.code = None)

let test_engine_ablation_flags () =
  (* with all optimizations off, DGGT must still agree with itself on *)
  let q = "insert \"-\" at the start of each line" in
  let base = synth Engine.Dggt_alg q in
  let off =
    Engine.synthesize
      { (engine_cfg Engine.Dggt_alg) with Engine.gprune = false; sprune = false }
      (Lazy.force fig4_target) q
  in
  check_b "same result without pruning" true (base.Engine.code = off.Engine.code);
  check_b "pruning saves merges" true
    (base.Engine.stats.Stats.combos_merged <= off.Engine.stats.Stats.combos_merged)

let test_engine_stats_populated () =
  let o = synth Engine.Dggt_alg "insert \"-\" at the start of each line" in
  let s = o.Engine.stats in
  check_b "dep edges" true (s.Stats.dep_edges >= 3);
  check_b "paths counted" true (s.Stats.orig_paths > 0);
  check_b "dgg built" true (s.Stats.dgg_nodes > 0 && s.Stats.dgg_edges > 0);
  let h = synth Engine.Hisyn_alg "insert \"-\" at the start of each line" in
  check_b "hisyn enumerations counted" true
    (h.Engine.stats.Stats.hisyn_combos_enumerated > 0)

(* The headline property: DGGT is a lossless optimization of HISyn — same
   sizes whenever the baseline finishes. Queries are random phrase
   compositions over the fixture vocabulary. *)
let prop_engines_equivalent =
  let gen =
    QCheck.Gen.(
      let verb = oneofl [ "insert"; "add"; "append"; "put" ] in
      let obj = oneofl [ "a string"; "\":\""; "\"-\"" ] in
      let where =
        oneofl
          [ ""; " at the start"; " at the start of each line";
            " after \"x\""; " in the document"; " everywhere"; " of each line" ]
      in
      let iter = oneofl [ ""; " in every line"; " in the whole document" ] in
      map
        (fun (v, o, w, i) -> v ^ " " ^ o ^ w ^ i)
        (quad verb obj where iter))
  in
  QCheck.Test.make ~name:"DGGT subsumes HISyn; equal on orphan-free queries"
    ~count:60
    (QCheck.make gen ~print:Fun.id)
    (fun q ->
      let h = synth Engine.Hisyn_alg q in
      let d = synth Engine.Dggt_alg q in
      match (h.Engine.timed_out, d.Engine.timed_out) with
      | false, false ->
          (* DGGT explores relocated graphs and skips unreachable subtrees,
             so it may solve queries the baseline cannot; the reverse must
             not happen. On orphan-free queries results coincide exactly. *)
          (h.Engine.cgt_size = None || d.Engine.cgt_size <> None)
          && (h.Engine.code = None
             || h.Engine.stats.Stats.orphan_count > 0
             || h.Engine.code = d.Engine.code)
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Ranked hints (paper SVII-B.4)                                      *)
(* ------------------------------------------------------------------ *)

let test_ranked_hints () =
  let cfg = engine_cfg Engine.Dggt_alg in
  let tgt = Lazy.force fig4_target in
  let q = "insert \"-\" at the start of each line" in
  let hints = Engine.synthesize_ranked ~k:5 cfg tgt q in
  check_b "at least one hint" true (hints <> []);
  check_b "k bound respected" true (List.length hints <= 5);
  (* the top hint is the single-result answer *)
  let top = (List.hd hints).Engine.code in
  let single = Engine.synthesize cfg tgt q in
  check_s "head of ranking = best codelet" (Option.value single.Engine.code ~default:"?") top;
  (* hints are distinct codelets *)
  let codes = List.map (fun (r : Engine.ranked) -> r.Engine.code) hints in
  check_i "no duplicate hints" (List.length codes)
    (List.length (Dggt_util.Listutil.uniq codes))

let test_ranked_hints_multiple () =
  (* "start" maps to both START and STARTFROM: two root-compatible
     interpretations of the argument produce distinct hints when the
     argument word is ambiguous at the root... the fixture's root word
     "insert" has one API, so ranking still yields one root — assert the
     mechanics rather than a fixed count. *)
  let cfg = engine_cfg Engine.Dggt_alg in
  let tgt = Lazy.force fig4_target in
  let hints = Engine.synthesize_ranked ~k:3 cfg tgt "insert a string" in
  check_b "ranked succeeds on simple query" true (List.length hints >= 1);
  let hints0 = Engine.synthesize_ranked ~k:0 cfg tgt "insert a string" in
  check_i "k=0 yields nothing" 0 (List.length hints0)

let test_ranked_hints_garbage () =
  let cfg = engine_cfg Engine.Dggt_alg in
  let tgt = Lazy.force fig4_target in
  check_i "garbage yields no hints" 0
    (List.length (Engine.synthesize_ranked ~k:3 cfg tgt "zyzzyx frobnicate"))

(* Stats.add mixes two aggregation rules on purpose (see stats.ml): max for
   query-shaped fields, sum for work-shaped ones. This pins the split so a
   refactor cannot silently turn a max into a +. *)
let test_stats_add_semantics () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.dep_edges <- 4;
  b.Stats.dep_edges <- 3;
  a.Stats.orig_paths <- 10;
  b.Stats.orig_paths <- 12;
  a.Stats.paths_after_reloc <- 8;
  b.Stats.paths_after_reloc <- 6;
  a.Stats.orphan_count <- 1;
  b.Stats.orphan_count <- 2;
  a.Stats.hisyn_combos_possible <- 100;
  b.Stats.hisyn_combos_possible <- 90;
  a.Stats.reloc_graphs <- 1;
  b.Stats.reloc_graphs <- 2;
  a.Stats.combos_total <- 20;
  b.Stats.combos_total <- 30;
  a.Stats.combos_after_gprune <- 15;
  b.Stats.combos_after_gprune <- 25;
  a.Stats.combos_after_sprune <- 10;
  b.Stats.combos_after_sprune <- 20;
  a.Stats.combos_merged <- 5;
  b.Stats.combos_merged <- 7;
  a.Stats.hisyn_combos_enumerated <- 50;
  b.Stats.hisyn_combos_enumerated <- 60;
  a.Stats.dgg_nodes <- 9;
  b.Stats.dgg_nodes <- 11;
  a.Stats.dgg_edges <- 13;
  b.Stats.dgg_edges <- 17;
  a.Stats.dgg_improvements <- 6;
  b.Stats.dgg_improvements <- 8;
  let s = Stats.add a b in
  (* query-shaped fields take the max over variants *)
  check_i "dep_edges is max" 4 s.Stats.dep_edges;
  check_i "orig_paths is max" 12 s.Stats.orig_paths;
  check_i "paths_after_reloc is max" 8 s.Stats.paths_after_reloc;
  check_i "orphan_count is max" 2 s.Stats.orphan_count;
  check_i "hisyn_combos_possible is max" 100 s.Stats.hisyn_combos_possible;
  (* work-shaped fields sum — every variant's effort happened *)
  check_i "reloc_graphs sums" 3 s.Stats.reloc_graphs;
  check_i "combos_total sums" 50 s.Stats.combos_total;
  check_i "combos_after_gprune sums" 40 s.Stats.combos_after_gprune;
  check_i "combos_after_sprune sums" 30 s.Stats.combos_after_sprune;
  check_i "combos_merged sums" 12 s.Stats.combos_merged;
  check_i "hisyn_combos_enumerated sums" 110 s.Stats.hisyn_combos_enumerated;
  check_i "dgg_nodes sums" 20 s.Stats.dgg_nodes;
  check_i "dgg_edges sums" 30 s.Stats.dgg_edges;
  check_i "dgg_improvements sums" 14 s.Stats.dgg_improvements;
  (* adding a fresh zero record is the identity *)
  let z = Stats.add s (Stats.create ()) in
  check_b "zero is identity" true (z = s)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_engines_equivalent ]

let suite =
  [
    Alcotest.test_case "apidoc keywords" `Quick test_apidoc_keywords;
    Alcotest.test_case "apidoc lookup" `Quick test_apidoc_lookup;
    Alcotest.test_case "queryprune drops function words" `Quick test_queryprune_function_words;
    Alcotest.test_case "queryprune reconnects" `Quick test_queryprune_reconnects;
    Alcotest.test_case "queryprune stopword root" `Quick test_queryprune_stopword_root;
    Alcotest.test_case "queryprune drop_nodes" `Quick test_queryprune_drop_nodes;
    Alcotest.test_case "word2api basics" `Quick test_word2api_basic;
    Alcotest.test_case "word2api literals" `Quick test_word2api_literals;
    Alcotest.test_case "word2api top_k/threshold" `Quick test_word2api_topk_threshold;
    Alcotest.test_case "word2api restrict" `Quick test_word2api_restrict;
    Alcotest.test_case "edge2path basics" `Quick test_edge2path_basic;
    Alcotest.test_case "edge2path orphan detection" `Quick test_edge2path_orphans;
    Alcotest.test_case "edge2path root anchoring" `Quick test_edge2path_anchor;
    Alcotest.test_case "cgt merge" `Quick test_cgt_merge_paths;
    Alcotest.test_case "cgt or-conflict invalid" `Quick test_cgt_conflict_invalid;
    Alcotest.test_case "cgt empty/lone" `Quick test_cgt_empty_and_lone;
    Alcotest.test_case "cgt disjoint not tree" `Quick test_cgt_disjoint_not_tree;
    Alcotest.test_case "tree2expr linearize" `Quick test_tree2expr_linearize;
    Alcotest.test_case "tree2expr argument order" `Quick test_tree2expr_arg_order;
    Alcotest.test_case "tree2expr errors" `Quick test_tree2expr_errors;
    Alcotest.test_case "expr parse round-trip" `Quick test_expr_parse_roundtrip;
    Alcotest.test_case "expr equality" `Quick test_expr_equal;
    Alcotest.test_case "sprune bounds" `Quick test_sprune_bounds;
    Alcotest.test_case "sprune dominated" `Quick test_sprune_prunes_dominated;
    Alcotest.test_case "gprune combos" `Quick test_gprune_combos;
    Alcotest.test_case "orphan relocation" `Quick test_orphan_relocation;
    Alcotest.test_case "orphan caps" `Quick test_orphan_caps;
    Alcotest.test_case "engines agree on fixture" `Quick test_engines_agree_on_fixture;
    Alcotest.test_case "engine paper example" `Quick test_engine_insert_example;
    Alcotest.test_case "engine timeout protocol" `Quick test_engine_timeout;
    Alcotest.test_case "engine single word" `Quick test_engine_single_word;
    Alcotest.test_case "engine garbage input" `Quick test_engine_garbage;
    Alcotest.test_case "engine ablation flags" `Quick test_engine_ablation_flags;
    Alcotest.test_case "engine stats" `Quick test_engine_stats_populated;
    Alcotest.test_case "stats add semantics" `Quick test_stats_add_semantics;
    Alcotest.test_case "ranked hints" `Quick test_ranked_hints;
    Alcotest.test_case "ranked hints bounds" `Quick test_ranked_hints_multiple;
    Alcotest.test_case "ranked hints garbage" `Quick test_ranked_hints_garbage;
  ]
  @ qsuite
