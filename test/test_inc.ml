(* Tests for dggt_inc: revision diffing, session reuse, the whole-suffix
   splice, trace notes, and the equivalence guarantee — the incremental
   path must be byte-identical to a from-scratch run, property-tested over
   random edit scripts on both benchmark domains. *)

module Engine = Dggt_core.Engine
module Stats = Dggt_core.Stats
module Trace = Dggt_obs.Trace
module Diff = Dggt_inc.Diff
module Session = Dggt_inc.Session
module Reuse = Dggt_inc.Reuse
module Token = Dggt_nlu.Token
module Tokenizer = Dggt_nlu.Tokenizer

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let te = Dggt_domains.Text_editing.domain
let am = Dggt_domains.Astmatcher.domain

let base_session ?(timeout = 10.0) dom =
  Dggt_domains.Domain.configure dom
    { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some timeout }

(* ------------------------------------------------------------------ *)
(* diff                                                               *)
(* ------------------------------------------------------------------ *)

let test_diff_tokens () =
  let tk s = Tokenizer.tokenize s in
  (* pure append *)
  let d = Diff.tokens ~prev:(tk "delete all numbers")
      ~next:(tk "delete all the numbers") in
  check_i "kept" 3 d.Diff.kept;
  check_i "added" 1 d.Diff.added;
  check_i "removed" 0 d.Diff.removed;
  (* an early insertion still matches every later token: indices do not
     participate in the LCS equality *)
  let d = Diff.tokens ~prev:(tk "print every line")
      ~next:(tk "now print every line") in
  check_i "insert kept" 3 d.Diff.kept;
  check_i "insert added" 1 d.Diff.added;
  (* matched pairs are ascending on both sides *)
  let ascending ps =
    let rec go = function
      | (a, b) :: ((c, d) :: _ as rest) -> a < c && b < d && go rest
      | _ -> true
    in
    go ps
  in
  check_b "pairs ascending" true (ascending d.Diff.pairs);
  check_i "pair count = kept" d.Diff.kept (List.length d.Diff.pairs);
  (* replacement *)
  let d = Diff.tokens ~prev:(tk "delete all numbers")
      ~next:(tk "select all numbers") in
  check_i "replace kept" 2 d.Diff.kept;
  check_i "replace added" 1 d.Diff.added;
  check_i "replace removed" 1 d.Diff.removed;
  (* first revision against nothing *)
  let d = Diff.tokens ~prev:[] ~next:(tk "delete all numbers") in
  check_i "empty prev kept" 0 d.Diff.kept;
  check_i "empty prev added" 3 d.Diff.added

let test_diff_equivalent () =
  let cfg = (base_session te).Engine.cfg in
  let pruned q = Engine.prune cfg (Engine.parse cfg q) in
  let q = "delete all numbers in every line" in
  check_b "same query equivalent" true
    (Diff.equivalent ~prev:(pruned q) ~next:(pruned q));
  (* trailing punctuation is dropped by pruning: the graphs stay
     equivalent even though the token streams differ *)
  check_b "punct-only edit equivalent" true
    (Diff.equivalent ~prev:(pruned q) ~next:(pruned (q ^ " .")));
  (* a content-word change is not equivalent *)
  check_b "content edit not equivalent" false
    (Diff.equivalent ~prev:(pruned q)
       ~next:(pruned "select all numbers in every line"));
  check_b "append not equivalent" false
    (Diff.equivalent ~prev:(pruned "delete all numbers") ~next:(pruned q))

(* ------------------------------------------------------------------ *)
(* outcome equality — the equivalence guarantee's yardstick            *)
(* ------------------------------------------------------------------ *)

let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.code = b.Engine.code
  && a.Engine.cgt_size = b.Engine.cgt_size
  && a.Engine.failure = b.Engine.failure
  && a.Engine.timed_out = b.Engine.timed_out
  && Stats.equal a.Engine.stats b.Engine.stats

(* ------------------------------------------------------------------ *)
(* session reuse                                                      *)
(* ------------------------------------------------------------------ *)

let test_session_append_reuse () =
  let base = base_session te in
  let s = Session.create base in
  let q1 = "insert \"> \" at the start" in
  let q2 = "insert \"> \" at the start of each line" in
  let o1, r1 = Session.query s q1 in
  check_i "rev 1" 1 r1.Reuse.revision;
  check_b "rev 1 no splice" false r1.Reuse.splice;
  check_b "rev 1 computed words" true (r1.Reuse.words.Reuse.computed > 0);
  check_b "rev 1 matches scratch" true (outcome_equal o1 (Engine.run base q1));
  let o2, r2 = Session.query s q2 in
  check_i "rev 2" 2 r2.Reuse.revision;
  check_b "rev 2 reused words" true (r2.Reuse.words.Reuse.reused > 0);
  check_b "rev 2 token diff adds" true (r2.Reuse.tokens_added > 0);
  check_i "rev 2 removed none" 0 r2.Reuse.tokens_removed;
  check_b "rev 2 matches scratch" true (outcome_equal o2 (Engine.run base q2));
  check_i "revisions" 2 (Session.revisions s)

(* on an append-one-word revision the session must hit strictly fewer
   EdgeToPath searches than a from-scratch run of the same query *)
let test_session_fewer_searches () =
  let base = base_session te in
  let q1 = "delete all numbers in every" in
  let q2 = "delete all numbers in every line" in
  let s = Session.create base in
  ignore (Session.query s q1);
  let _, r2 = Session.query s q2 in
  (* count the scratch run's searches through a transparent hook *)
  let scratch = ref 0 in
  let counting =
    {
      base with
      Engine.target =
        {
          base.Engine.target with
          Engine.caches =
            {
              Engine.word2api = None;
              edge2path =
                Some
                  (fun ~src:_ ~dst:_ compute ->
                    incr scratch;
                    compute ());
            };
        };
    }
  in
  ignore (Engine.run counting q2);
  check_b
    (Printf.sprintf "incremental searches %d < scratch %d"
       r2.Reuse.pairs.Reuse.computed !scratch)
    true
    (r2.Reuse.pairs.Reuse.computed < !scratch)

let test_session_splice () =
  let base = base_session te in
  let s = Session.create base in
  let q = "delete all numbers in every line" in
  let o1, _ = Session.query s q in
  (* punctuation-only edit: the pruned graph is unchanged, so stages 3-6
     are skipped and the previous outcome is replayed *)
  let o2, r2 = Session.query s (q ^ " .") in
  check_b "spliced" true r2.Reuse.splice;
  check_i "no word lookups" 0 (Reuse.total r2.Reuse.words);
  check_i "no pair lookups" 0 (Reuse.total r2.Reuse.pairs);
  check_i "dgg rows replayed" o1.Engine.stats.Stats.dgg_nodes
    r2.Reuse.dgg_rows.Reuse.reused;
  check_i "nothing recomputed" 0 r2.Reuse.dgg_rows.Reuse.computed;
  check_b "spliced outcome matches" true (outcome_equal o1 o2);
  check_b "stats are a copy, not shared" true
    (o1.Engine.stats != o2.Engine.stats);
  (* a result-affecting config change must disarm the splice *)
  let o3, r3 =
    Session.query ~tweak:(fun c -> { c with Engine.top_k = c.Engine.top_k + 1 })
      s (q ^ " .")
  in
  check_b "cfg change disarms splice" false r3.Reuse.splice;
  check_b "recomputed under new cfg" true
    (outcome_equal o3
       (Engine.run
          (Engine.with_cfg
             (fun c -> { c with Engine.top_k = c.Engine.top_k + 1 })
             base)
          (q ^ " .")))

let test_session_table_invalidation () =
  let base = base_session te in
  let s = Session.create base in
  let q = "delete all numbers" in
  ignore (Session.query s q);
  (* changing the threshold invalidates the word/pair tables: nothing may
     be served from entries built under the old threshold *)
  let tweak c = { c with Engine.threshold = c.Engine.threshold +. 0.07 } in
  let o2, r2 = Session.query ~tweak s q in
  check_b "no splice across threshold change" false r2.Reuse.splice;
  check_b "words recomputed" true (r2.Reuse.words.Reuse.computed > 0);
  check_b "matches scratch under new threshold" true
    (outcome_equal o2 (Engine.run (Engine.with_cfg tweak base) q));
  (* the same tweak again on an identical query splices (cfg now matches) *)
  let _, r3 = Session.query ~tweak s q in
  check_b "repeat under same tweak splices" true r3.Reuse.splice;
  (* and on an append it serves from the tables rebuilt under the tweak *)
  let _, r4 = Session.query ~tweak s (q ^ " in every line") in
  check_b "tables valid under repeated tweak" true
    (r4.Reuse.words.Reuse.reused > 0)

let test_session_reset () =
  let base = base_session te in
  let s = Session.create base in
  let q = "delete all numbers" in
  ignore (Session.query s q);
  Session.reset s;
  check_i "revisions cleared" 0 (Session.revisions s);
  let _, r = Session.query s q in
  check_i "fresh rev 1" 1 r.Reuse.revision;
  check_b "no splice after reset" false r.Reuse.splice

let test_session_ranked () =
  let base = base_session te in
  let s = Session.create base in
  let q = "delete all numbers in every line" in
  ignore (Session.query s q);
  let revs = Session.revisions s in
  let hints = Session.ranked ~k:5 s q in
  let code (r : Engine.ranked) = r.Engine.code in
  check_b "ranked equals scratch" true
    (List.map code hints = List.map code (Engine.run_ranked ~k:5 base q));
  check_i "ranked does not advance revisions" revs (Session.revisions s)

let test_session_trace_notes () =
  let base = base_session te in
  let s = Session.create base in
  let q = "delete all numbers" in
  let run_traced query =
    let sink = Trace.create () in
    let _, r =
      Session.query ~tweak:(fun c -> { c with Engine.trace = Some sink }) s
        query
    in
    (Trace.result sink, r)
  in
  let tr, r1 = run_traced q in
  (match Trace.find tr "IncrementalReuse" with
  | None -> Alcotest.fail "IncrementalReuse span missing"
  | Some ev ->
      let note k = List.assoc_opt k ev.Trace.notes in
      check_b "revision note" true (note "revision" = Some (Trace.Int 1));
      check_b "splice note" true (note "splice" = Some (Trace.Bool false));
      check_b "words_computed note" true
        (note "words_computed"
        = Some (Trace.Int r1.Reuse.words.Reuse.computed));
      check_b "pairs_reused note" true
        (note "pairs_reused" = Some (Trace.Int r1.Reuse.pairs.Reuse.reused)));
  (* the stage spans still surround the reuse span on the compute path *)
  check_b "stage spans present" true
    (List.for_all
       (fun st -> Trace.find tr st <> None)
       Engine.stage_names);
  let tr2, _ = run_traced (q ^ " .") in
  match Trace.find tr2 "IncrementalReuse" with
  | None -> Alcotest.fail "IncrementalReuse span missing on splice"
  | Some ev ->
      check_b "splice note true" true
        (List.assoc_opt "splice" ev.Trace.notes = Some (Trace.Bool true));
      (* spliced revisions skip stages 3-6 *)
      check_b "no EdgeToPath span on splice" true
        (Trace.find tr2 "EdgeToPath" = None)

(* ------------------------------------------------------------------ *)
(* equivalence property over random edit scripts                      *)
(* ------------------------------------------------------------------ *)

(* split a query into edit units, never breaking a quoted literal *)
let edit_chunks q =
  let out = ref [] and buf = Buffer.create 16 and quoted = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if c = '"' then begin
        quoted := not !quoted;
        Buffer.add_char buf c
      end
      else if c = ' ' && not !quoted then flush ()
      else Buffer.add_char buf c)
    q;
  flush ();
  List.rev !out

type op = Append | Drop | Punct

(* a seed picks the query and drives the edit script deterministically *)
let script_gen =
  QCheck.Gen.(
    triple (oneofl [ `Te; `Am ]) nat
      (list_size (1 -- 4) (oneofl [ Append; Drop; Punct ])))

let revisions_of_script dom qidx ops =
  let qs =
    List.filter
      (fun q -> not q.Dggt_domains.Domain.hard)
      dom.Dggt_domains.Domain.queries
  in
  let q = (List.nth qs (qidx mod List.length qs)).Dggt_domains.Domain.text in
  let chunks = Array.of_list (edit_chunks q) in
  let n = Array.length chunks in
  let prefix k =
    String.concat " " (Array.to_list (Array.sub chunks 0 k))
  in
  let k = ref (max 1 (n - List.length ops)) in
  let revs = ref [ prefix !k ] in
  List.iter
    (fun op ->
      match op with
      | Append ->
          k := min n (!k + 1);
          revs := prefix !k :: !revs
      | Drop ->
          k := max 1 (!k - 1);
          revs := prefix !k :: !revs
      | Punct -> revs := (prefix !k ^ " .") :: !revs)
    ops;
  List.rev !revs

let prop_edit_script_equivalence =
  QCheck.Test.make
    ~name:"incremental output is byte-identical over random edit scripts"
    ~count:10
    (QCheck.make script_gen
       ~print:(fun (d, q, ops) ->
         Printf.sprintf "(%s, q%d, [%s])"
           (match d with `Te -> "te" | `Am -> "am")
           q
           (String.concat ";"
              (List.map
                 (function
                   | Append -> "append" | Drop -> "drop" | Punct -> "punct")
                 ops))))
    (fun (which, qidx, ops) ->
      let dom = match which with `Te -> te | `Am -> am in
      let base = base_session ~timeout:5.0 dom in
      let s = Session.create base in
      List.for_all
        (fun rev ->
          let inc, _ = Session.query s rev in
          let scratch = Engine.run base rev in
          (* a timeout on either side makes the comparison indeterminate *)
          inc.Engine.timed_out || scratch.Engine.timed_out
          || outcome_equal inc scratch)
        (revisions_of_script dom qidx ops))

(* ranking equivalence rides the same session state: after an edit script,
   ranked hints through the warm tables equal the scratch ranking *)
let test_ranked_equivalence_both_domains () =
  List.iter
    (fun dom ->
      let base = base_session dom in
      let qs =
        List.filter
          (fun q -> not q.Dggt_domains.Domain.hard)
          dom.Dggt_domains.Domain.queries
      in
      let q = (List.hd qs).Dggt_domains.Domain.text in
      let chunks = edit_chunks q in
      let prefixq =
        String.concat " "
          (List.filteri (fun i _ -> i < max 1 (List.length chunks - 1)) chunks)
      in
      let s = Session.create base in
      ignore (Session.query s prefixq);
      ignore (Session.query s q);
      check_b
        (dom.Dggt_domains.Domain.name ^ " ranked matches scratch")
        true
        (List.map
           (fun (r : Engine.ranked) -> r.Engine.code)
           (Session.ranked ~k:5 s q)
        = List.map
            (fun (r : Engine.ranked) -> r.Engine.code)
            (Engine.run_ranked ~k:5 base q)))
    [ te; am ]

let suite =
  [
    Alcotest.test_case "diff tokens (LCS)" `Quick test_diff_tokens;
    Alcotest.test_case "diff pruned-graph equivalence" `Quick
      test_diff_equivalent;
    Alcotest.test_case "session append reuse" `Quick test_session_append_reuse;
    Alcotest.test_case "session fewer searches than scratch" `Quick
      test_session_fewer_searches;
    Alcotest.test_case "session splice" `Quick test_session_splice;
    Alcotest.test_case "session table invalidation" `Quick
      test_session_table_invalidation;
    Alcotest.test_case "session reset" `Quick test_session_reset;
    Alcotest.test_case "session ranked" `Quick test_session_ranked;
    Alcotest.test_case "session trace notes" `Quick test_session_trace_notes;
    Alcotest.test_case "ranked equivalence (both domains)" `Quick
      test_ranked_equivalence_both_domains;
    QCheck_alcotest.to_alcotest prop_edit_script_equivalence;
  ]
