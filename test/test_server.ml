(* Tests for dggt_server: JSON round-trips, the LRU cache, the bounded
   worker pool, and an end-to-end loopback-socket exercise of the HTTP
   service against Engine.synthesize ground truth. *)

open Dggt_server
module J = Jsonio
module Engine = Dggt_core.Engine

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* jsonio                                                             *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_json_roundtrip () =
  List.iter
    (fun v -> check_b (J.to_string v) true (roundtrip v))
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Num 0.;
      J.Num 42.;
      J.Num (-17.5);
      J.Num 1e300;
      J.Str "";
      J.Str "hello";
      J.Str "quotes \" and \\ backslash";
      J.Str "control \t\n\r chars";
      J.Str "caf\xc3\xa9"; (* UTF-8 passes through *)
      J.Arr [];
      J.Arr [ J.Num 1.; J.Str "two"; J.Null ];
      J.Obj [];
      J.Obj [ ("a", J.Num 1.); ("nested", J.Obj [ ("b", J.Arr [ J.Bool false ]) ]) ];
    ];
  (* integral floats print without a decimal point *)
  check_s "int rendering" "42" (J.to_string (J.Num 42.));
  check_s "neg int rendering" "-3" (J.to_string (J.Num (-3.)));
  (* NaN / infinity have no JSON form; they degrade to null *)
  check_s "nan is null" "null" (J.to_string (J.Num Float.nan))

let test_json_parse () =
  let ok s = Result.get_ok (J.of_string s) in
  check_b "ws tolerated" true (ok "  [ 1 , 2 ]  " = J.Arr [ J.Num 1.; J.Num 2. ]);
  check_b "escapes" true (ok {|"a\tbA"|} = J.Str "a\tbA");
  (* surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8 *)
  check_b "surrogate pair" true
    (ok {|"😀"|} = J.Str "\xf0\x9f\x98\x80");
  check_b "trailing garbage rejected" true
    (Result.is_error (J.of_string "true false"));
  check_b "unterminated rejected" true (Result.is_error (J.of_string "[1, 2"));
  check_b "bare word rejected" true (Result.is_error (J.of_string "nope"));
  (* depth cap: 200 nested arrays must not blow the stack *)
  let deep = String.make 200 '[' ^ String.make 200 ']' in
  check_b "depth capped" true (Result.is_error (J.of_string deep))

let test_json_accessors () =
  let v = Result.get_ok (J.of_string {|{"s":"x","n":3,"b":true,"z":null}|}) in
  check_b "str_field" true (J.str_field "s" v = Some "x");
  check_b "int_field" true (J.int_field "n" v = Some 3);
  check_b "bool_field" true (J.bool_field "b" v = Some true);
  check_b "missing" true (J.str_field "missing" v = None);
  check_b "wrong shape" true (J.str_field "n" v = None);
  check_b "member null" true (J.member "z" v = Some J.Null)

(* ------------------------------------------------------------------ *)
(* cache                                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_lru_order () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  check_b "mru order" true (Cache.keys_mru c = [ "c"; "b"; "a" ]);
  (* touching "a" makes it MRU *)
  check_b "hit a" true (Cache.find c "a" = Some 1);
  check_b "order after touch" true (Cache.keys_mru c = [ "a"; "c"; "b" ]);
  (* inserting a 4th evicts the LRU, which is now "b" *)
  Cache.add c "d" 4;
  check_b "b evicted" true (Cache.find c "b" = None);
  check_b "order after evict" true (Cache.keys_mru c = [ "d"; "a"; "c" ]);
  check_i "length" 3 (Cache.length c)

let test_cache_counters () =
  let c = Cache.create ~capacity:2 in
  ignore (Cache.find c "x"); (* miss *)
  Cache.add c "x" 0;
  ignore (Cache.find c "x"); (* hit *)
  Cache.add c "y" 1;
  Cache.add c "z" 2; (* evicts x *)
  let k = Cache.counters c in
  check_i "hits" 1 k.Cache.hits;
  check_i "misses" 1 k.Cache.misses;
  check_i "evictions" 1 k.Cache.evictions;
  check_i "size" 2 k.Cache.size;
  check_b "hit rate" true (abs_float (Cache.hit_rate k -. 0.5) < 1e-9)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  check_b "disabled never stores" true (Cache.find c "a" = None);
  check_i "disabled length" 0 (Cache.length c)

let test_cache_find_or_compute () =
  let c = Cache.create ~capacity:4 in
  let calls = ref 0 in
  let compute () = incr calls; 7 in
  let v1, hit1 = Cache.find_or_compute c "k" compute in
  let v2, hit2 = Cache.find_or_compute c "k" compute in
  check_i "value" 7 v1;
  check_i "value cached" 7 v2;
  check_b "first is miss" false hit1;
  check_b "second is hit" true hit2;
  check_i "computed once" 1 !calls

(* ------------------------------------------------------------------ *)
(* sessions store                                                     *)
(* ------------------------------------------------------------------ *)

let test_sessions_ttl () =
  let now = ref 1000.0 in
  let s = Sessions.create ~clock:(fun () -> !now) ~ttl_s:30.0 ~cap:4 () in
  let id = Sessions.add s "payload" in
  check_b "fresh find" true (Sessions.find s id = `Found "payload");
  (* an access slides the window: 20 s + 20 s idle never crosses 30 s *)
  now := !now +. 20.0;
  check_b "refreshed" true (Sessions.find s id = `Found "payload");
  now := !now +. 20.0;
  check_b "still live after slide" true (Sessions.find s id = `Found "payload");
  (* idle past the TTL: the first access reports Expired and removes *)
  now := !now +. 31.0;
  check_b "expired" true (Sessions.find s id = `Expired);
  check_b "expired ids are gone" true (Sessions.find s id = `Missing);
  let k = Sessions.counters s in
  check_i "expired count" 1 k.Sessions.expired;
  check_i "evicted count" 0 k.Sessions.evicted;
  check_i "size" 0 k.Sessions.size

let test_sessions_lru () =
  let s = Sessions.create ~clock:(fun () -> 0.0) ~ttl_s:60.0 ~cap:2 () in
  let a = Sessions.add s "a" in
  let b = Sessions.add s "b" in
  (* touching [a] makes [b] the LRU entry *)
  check_b "touch a" true (Sessions.find s a = `Found "a");
  let c = Sessions.add s "c" in
  check_b "b evicted" true (Sessions.find s b = `Missing);
  check_b "a survives" true (Sessions.find s a = `Found "a");
  check_b "c live" true (Sessions.find s c = `Found "c");
  let k = Sessions.counters s in
  check_i "created" 3 k.Sessions.created;
  check_i "evicted" 1 k.Sessions.evicted;
  check_i "size at cap" 2 k.Sessions.size;
  check_i "capacity" 2 k.Sessions.capacity;
  (* expired entries leave before live ones are evicted *)
  let now = ref 0.0 in
  let s = Sessions.create ~clock:(fun () -> !now) ~ttl_s:10.0 ~cap:2 () in
  let old = Sessions.add s "old" in
  now := 20.0;
  let fresh = Sessions.add s "fresh" in
  ignore (Sessions.add s "newer");
  check_b "expired dropped first" true (Sessions.find s old = `Missing);
  check_b "live entry kept" true (Sessions.find s fresh = `Found "fresh");
  let k = Sessions.counters s in
  check_i "expired not evicted" 1 k.Sessions.expired;
  check_i "no live eviction needed" 0 k.Sessions.evicted;
  (* remove *)
  check_b "remove live" true (Sessions.remove s fresh);
  check_b "remove again" false (Sessions.remove s fresh);
  (* cap <= 0 disables storage *)
  let s = Sessions.create ~ttl_s:60.0 ~cap:0 () in
  let id = Sessions.add s "x" in
  check_b "disabled store" true (Sessions.find s id = `Missing)

let test_sessions_concurrent () =
  let s = Sessions.create ~ttl_s:60.0 ~cap:8 () in
  let errors = Atomic.make 0 in
  let worker seed =
    let ids = ref [] in
    for i = 0 to 199 do
      (try
         match i mod 3 with
         | 0 -> ids := Sessions.add s (seed * 1000 + i) :: !ids
         | 1 -> (
             match !ids with
             | id :: _ -> ignore (Sessions.find s id)
             | [] -> ())
         | _ -> (
             match !ids with
             | id :: rest ->
                 ignore (Sessions.remove s id);
                 ids := rest
             | [] -> ())
       with _ -> Atomic.incr errors)
    done
  in
  let ts = List.init 4 (fun k -> Thread.create worker k) in
  List.iter Thread.join ts;
  check_i "no exceptions under concurrency" 0 (Atomic.get errors);
  let k = Sessions.counters s in
  check_b "size bounded by cap" true (k.Sessions.size <= k.Sessions.capacity)

(* ------------------------------------------------------------------ *)
(* pool                                                               *)
(* ------------------------------------------------------------------ *)

(* a gate the test can hold closed to keep the single worker busy *)
type gate = { mu : Mutex.t; cv : Condition.t; mutable opened : bool;
              mutable entered : bool }

let gate () =
  { mu = Mutex.create (); cv = Condition.create (); opened = false;
    entered = false }

let gate_block g =
  Mutex.lock g.mu;
  g.entered <- true;
  Condition.broadcast g.cv;
  while not g.opened do Condition.wait g.cv g.mu done;
  Mutex.unlock g.mu

let gate_await_entered g =
  Mutex.lock g.mu;
  while not g.entered do Condition.wait g.cv g.mu done;
  Mutex.unlock g.mu

let gate_open g =
  Mutex.lock g.mu;
  g.opened <- true;
  Condition.broadcast g.cv;
  Mutex.unlock g.mu

let test_pool_bounded_queue () =
  let p = Deadline_pool.create ~workers:1 ~capacity:2 () in
  let g = gate () in
  let ran = Atomic.make 0 in
  let nop = (fun () -> Atomic.incr ran) in
  let never = (fun () -> Alcotest.fail "unexpected expiry") in
  (* occupy the single worker, then wait until it has left the queue *)
  check_b "blocker accepted" true
    (Deadline_pool.submit p ~run:(fun () -> gate_block g) ~expired:never () = `Accepted);
  gate_await_entered g;
  (* the queue holds exactly [capacity] waiting jobs *)
  check_b "1st queued" true (Deadline_pool.submit p ~run:nop ~expired:never () = `Accepted);
  check_b "2nd queued" true (Deadline_pool.submit p ~run:nop ~expired:never () = `Accepted);
  check_i "depth" 2 (Deadline_pool.depth p);
  check_b "3rd rejected" true (Deadline_pool.submit p ~run:nop ~expired:never () = `Rejected);
  gate_open g;
  Deadline_pool.shutdown p;
  check_i "queued jobs ran" 2 (Atomic.get ran);
  (* after shutdown everything is rejected *)
  check_b "post-shutdown rejected" true
    (Deadline_pool.submit p ~run:nop ~expired:never () = `Rejected)

let test_pool_deadline () =
  let p = Deadline_pool.create ~workers:1 ~capacity:8 () in
  let g = gate () in
  let ran = Atomic.make false and expired = Atomic.make false in
  ignore (Deadline_pool.submit p ~run:(fun () -> gate_block g)
            ~expired:(fun () -> ()) ());
  gate_await_entered g;
  (* this job's deadline passes while it waits behind the blocker *)
  check_b "accepted" true
    (Deadline_pool.submit p ~deadline:(Unix.gettimeofday () -. 1.0)
       ~run:(fun () -> Atomic.set ran true)
       ~expired:(fun () -> Atomic.set expired true) ()
     = `Accepted);
  gate_open g;
  Deadline_pool.shutdown p;
  check_b "expired callback ran" true (Atomic.get expired);
  check_b "job never ran" false (Atomic.get ran)

(* ------------------------------------------------------------------ *)
(* end-to-end over a loopback socket                                  *)
(* ------------------------------------------------------------------ *)

(* one-shot HTTP client: Connection: close, read to EOF *)
let http ~port ~meth ~path ?(body = "") () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\
           content-length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let rec write_all s off =
        if off < String.length s then
          let n = Unix.write_substring fd s off (String.length s - off) in
          write_all s (off + n)
      in
      write_all req 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        Scanf.sscanf raw "HTTP/1.1 %d" (fun s -> s)
      in
      let body =
        let n = String.length raw in
        let rec hdr_end i =
          if i + 4 > n then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else hdr_end (i + 1)
        in
        match hdr_end 0 with
        | Some i -> String.sub raw i (n - i)
        | None -> ""
      in
      (status, body))

let with_server f =
  let params =
    { Serve.default_params with
      Serve.port = 0; workers = 1; queue_capacity = 8; cache_size = 32 }
  in
  let srv = Serve.create params in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv)

let test_e2e_synthesize () =
  with_server (fun srv ->
      let port = Serve.port srv in
      (* liveness *)
      let st, body = http ~port ~meth:"GET" ~path:"/healthz" () in
      check_i "healthz status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "healthz ok" true (J.str_field "status" j = Some "ok");
      (* ground truth straight from the engine, same config as the server *)
      let te = Option.get (Serve.find_domain "te") in
      let qtext = "insert \"> \" at the start of each line" in
      let ses =
        Dggt_domains.Domain.configure te (Engine.default Engine.Dggt_alg)
        |> Engine.with_cfg (fun c ->
               { c with Engine.timeout_s = Some Serve.default_params.Serve.default_timeout_s })
      in
      let expected = Engine.run ses qtext in
      let expected_code = Option.get expected.Engine.code in
      (* first request computes *)
      let reqbody =
        J.to_string (J.Obj [ ("query", J.Str qtext); ("domain", J.Str "te") ])
      in
      let st, body = http ~port ~meth:"POST" ~path:"/synthesize" ~body:reqbody () in
      check_i "synthesize status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "synthesize ok" true (J.bool_field "ok" j = Some true);
      check_s "code matches engine" expected_code
        (Option.get (J.str_field "code" j));
      check_b "first not cached" true (J.bool_field "cached" j = Some false);
      (* repeat is a whole-query cache hit with the same answer *)
      let st, body = http ~port ~meth:"POST" ~path:"/synthesize" ~body:reqbody () in
      check_i "repeat status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "repeat cached" true (J.bool_field "cached" j = Some true);
      check_s "cached code matches" expected_code
        (Option.get (J.str_field "code" j));
      (* rank returns candidates headed by the synthesize answer *)
      let st, body = http ~port ~meth:"POST" ~path:"/rank" ~body:reqbody () in
      check_i "rank status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      (match J.member "candidates" j with
      | Some (J.Arr (J.Str head :: _)) -> check_s "rank head" expected_code head
      | _ -> Alcotest.fail "rank candidates missing");
      (* domains listing *)
      let st, body = http ~port ~meth:"GET" ~path:"/domains" () in
      check_i "domains status" 200 st;
      check_b "lists TextEditing" true
        (Dggt_util.Strutil.contains_sub ~sub:"TextEditing" body);
      (* metrics exposition reflects the traffic above *)
      let st, body = http ~port ~meth:"GET" ~path:"/metrics" () in
      check_i "metrics status" 200 st;
      let has sub = Dggt_util.Strutil.contains_sub ~sub body in
      check_b "requests counter" true
        (has "dggt_requests_total{domain=\"TextEditing\",outcome=\"ok\"}");
      check_b "cached counter" true
        (has "dggt_requests_total{domain=\"TextEditing\",outcome=\"cached\"}");
      check_b "latency histogram" true (has "dggt_request_latency_seconds");
      check_b "cache metrics" true (has "dggt_cache_hits_total");
      (* per-stage latency histograms cover all six pipeline stages *)
      check_b "stage histogram" true (has "dggt_stage_latency_seconds_bucket");
      List.iter
        (fun stage ->
          check_b ("stage metric " ^ stage) true
            (has (Printf.sprintf "dggt_stage_latency_seconds_count{stage=%S}" stage)))
        Engine.stage_names;
      check_b "stage p99 gauge" true (has "dggt_stage_latency_p99");
      (* recent traces are exposed for inspection *)
      let st, body = http ~port ~meth:"GET" ~path:"/debug/trace" () in
      check_i "debug trace status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "trace capacity" true
        (J.int_field "capacity" j = Some Serve.default_params.Serve.trace_buffer);
      (* two engine runs happened (synthesize compute + rank); the cache hit
         did not reach the engine, so it is not recorded *)
      check_b "trace recorded" true (J.int_field "recorded" j = Some 2);
      (match J.member "traces" j with
      | Some (J.Arr (first :: _ as traces)) ->
          check_i "trace count" 2 (List.length traces);
          (* newest first: the rank request *)
          check_b "trace engine" true (J.str_field "engine" first = Some "dggt");
          check_b "trace query" true (J.str_field "query" first = Some qtext);
          (* the full six-stage pipeline shows in the synthesize trace
             (ranked mode stops after PathMerge, so look at the oldest) *)
          let full = List.nth traces (List.length traces - 1) in
          (match J.member "events" full with
          | Some (J.Arr events) ->
              let stages =
                List.filter_map (fun e -> J.str_field "stage" e) events
              in
              List.iter
                (fun s ->
                  check_b ("trace has stage " ^ s) true (List.mem s stages))
                Engine.stage_names;
              (* notes are {key,value} objects *)
              check_b "notes shape" true
                (List.exists
                   (fun e ->
                     match J.member "notes" e with
                     | Some (J.Arr (J.Obj fields :: _)) ->
                         List.mem_assoc "key" fields
                         && List.mem_assoc "value" fields
                     | _ -> false)
                   events)
          | _ -> Alcotest.fail "trace events missing")
      | _ -> Alcotest.fail "traces array missing");
      (* error paths *)
      let st, _ = http ~port ~meth:"GET" ~path:"/nope" () in
      check_i "404" 404 st;
      let st, _ = http ~port ~meth:"PUT" ~path:"/synthesize" () in
      check_i "405" 405 st;
      (* GET carries parameters in the URL query; without one it is a
         missing-query 400, not a method error *)
      let st, _ = http ~port ~meth:"GET" ~path:"/synthesize" () in
      check_i "400 missing query" 400 st;
      (* streaming is rank-only: /synthesize?stream=1 is rejected up front *)
      let st, _ =
        http ~port ~meth:"POST" ~path:"/synthesize?stream=1" ~body:reqbody ()
      in
      check_i "400 stream on synthesize" 400 st;
      let st, _ = http ~port ~meth:"POST" ~path:"/synthesize" ~body:"{oops" () in
      check_i "400 bad json" 400 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:"/synthesize"
          ~body:{|{"query":"x","domain":"unknown"}|} ()
      in
      check_i "400 bad domain" 400 st)

(* ------------------------------------------------------------------ *)
(* incremental session endpoints                                      *)
(* ------------------------------------------------------------------ *)

let get_json ~port ~meth ~path ?body () =
  let st, raw = http ~port ~meth ~path ?body () in
  (st, Result.get_ok (J.of_string raw))

let test_e2e_sessions () =
  with_server (fun srv ->
      let port = Serve.port srv in
      (* open a session *)
      let st, j =
        get_json ~port ~meth:"POST" ~path:"/session"
          ~body:{|{"domain":"te"}|} ()
      in
      check_i "session created" 201 st;
      let sid = Option.get (J.str_field "session" j) in
      check_b "session domain" true
        (J.str_field "domain" j = Some "TextEditing");
      check_b "session engine" true (J.str_field "engine" j = Some "dggt");
      (* revision 1 computes *)
      let q = "delete all numbers in every line" in
      let qbody = J.to_string (J.Obj [ ("query", J.Str q) ]) in
      let st, j =
        get_json ~port ~meth:"POST"
          ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody ()
      in
      check_i "rev 1 status" 200 st;
      check_b "rev 1 ok" true (J.bool_field "ok" j = Some true);
      let code1 = Option.get (J.str_field "code" j) in
      let reuse = Option.get (J.member "reuse" j) in
      check_b "rev 1 number" true (J.int_field "revision" reuse = Some 1);
      check_b "rev 1 no splice" true
        (J.bool_field "splice" reuse = Some false);
      (* revision 2: punctuation-only edit splices, same codelet *)
      let qbody2 = J.to_string (J.Obj [ ("query", J.Str (q ^ " .")) ]) in
      let st, j =
        get_json ~port ~meth:"POST"
          ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody2 ()
      in
      check_i "rev 2 status" 200 st;
      let reuse = Option.get (J.member "reuse" j) in
      check_b "rev 2 number" true (J.int_field "revision" reuse = Some 2);
      check_b "rev 2 spliced" true (J.bool_field "splice" reuse = Some true);
      check_s "rev 2 same code" code1 (Option.get (J.str_field "code" j));
      check_b "reuse_ratio present" true
        (J.num_field "reuse_ratio" reuse <> None);
      (* bad request shapes *)
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid ^ "/query")
          ~body:"{}" ()
      in
      check_i "missing query field" 400 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:"/session"
          ~body:{|{"domain":"nope"}|} ()
      in
      check_i "unknown domain" 400 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:"/session"
          ~body:{|{"engine":"nope"}|} ()
      in
      check_i "unknown engine" 400 st;
      (* metrics reflect the session traffic *)
      let st, body = http ~port ~meth:"GET" ~path:"/metrics" () in
      check_i "metrics status" 200 st;
      let has sub = Dggt_util.Strutil.contains_sub ~sub body in
      check_b "sessions gauge" true (has "dggt_sessions ");
      check_b "sessions created" true (has "dggt_sessions_created_total 1");
      check_b "inc queries" true (has "dggt_inc_queries_total 2");
      check_b "inc splices" true (has "dggt_inc_splices_total 1");
      check_b "inc reuse ratio" true (has "dggt_inc_reuse_ratio");
      (* delete: gone, and a later query is 404 (not 410) *)
      let st, _ = http ~port ~meth:"DELETE" ~path:("/session/" ^ sid) () in
      check_i "delete" 200 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody ()
      in
      check_i "deleted session 404" 404 st;
      let st, _ = http ~port ~meth:"DELETE" ~path:("/session/" ^ sid) () in
      check_i "double delete 404" 404 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:"/session/never-existed/query"
          ~body:qbody ()
      in
      check_i "unknown session 404" 404 st;
      (* method errors on session paths *)
      let st, _ = http ~port ~meth:"GET" ~path:("/session/" ^ sid) () in
      check_i "session method not allowed" 405 st)

(* a reload strands every open session: its registry generation no longer
   exists, so the next access answers 410 Gone (distinct from 404) *)
let test_e2e_session_reload_410 () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dggt_inc_packs_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let params =
    { Serve.default_params with
      Serve.port = 0; workers = 1; queue_capacity = 8; cache_size = 32;
      packs_dir = Some dir }
  in
  let srv = Serve.create params in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      let st, j =
        get_json ~port ~meth:"POST" ~path:"/session"
          ~body:{|{"domain":"te"}|} ()
      in
      check_i "session created" 201 st;
      let sid = Option.get (J.str_field "session" j) in
      let qbody = J.to_string (J.Obj [ ("query", J.Str "delete all numbers") ]) in
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody ()
      in
      check_i "query before reload" 200 st;
      let st, _ = http ~port ~meth:"POST" ~path:"/reload" () in
      check_i "reload ok" 200 st;
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody ()
      in
      check_i "stranded session 410" 410 st;
      (* the stranded entry was dropped: a retry is an ordinary 404 *)
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid ^ "/query")
          ~body:qbody ()
      in
      check_i "after 410 comes 404" 404 st;
      (* a fresh session against the reloaded registry works *)
      let st, j =
        get_json ~port ~meth:"POST" ~path:"/session"
          ~body:{|{"domain":"te"}|} ()
      in
      check_i "re-created session" 201 st;
      let sid2 = Option.get (J.str_field "session" j) in
      let st, _ =
        http ~port ~meth:"POST" ~path:("/session/" ^ sid2 ^ "/query")
          ~body:qbody ()
      in
      check_i "fresh session queries" 200 st)

(* ------------------------------------------------------------------ *)
(* streaming: SSE frames over chunked transfer on /rank?stream=1      *)
(* ------------------------------------------------------------------ *)

(* de-chunk a chunked-transfer body into its frames. The input is the
   final byte string, which the socket delivered in whatever segments it
   pleased — so this exercises reassembly across arbitrary chunk/read
   boundaries by construction. *)
let dechunk body =
  let n = String.length body in
  let find_crlf from =
    let rec go i =
      if i + 1 >= n then None
      else if body.[i] = '\r' && body.[i + 1] = '\n' then Some i
      else go (i + 1)
    in
    go from
  in
  let rec go acc cur =
    match find_crlf cur with
    | None -> List.rev acc
    | Some le -> (
        match
          int_of_string_opt ("0x" ^ String.trim (String.sub body cur (le - cur)))
        with
        | None | Some 0 -> List.rev acc
        | Some size when le + 2 + size + 2 <= n ->
            go (String.sub body (le + 2) size :: acc) (le + 2 + size + 2)
        | Some _ -> List.rev acc)
  in
  go [] 0

(* "event: X\ndata: {json}\n\n" -> (X, json-text) *)
let sse_event frame =
  match String.split_on_char '\n' frame with
  | ev :: data :: _
    when String.length ev > 7
         && String.sub ev 0 7 = "event: "
         && String.length data > 6
         && String.sub data 0 6 = "data: " ->
      Some
        ( String.sub ev 7 (String.length ev - 7),
          String.sub data 6 (String.length data - 6) )
  | _ -> None

let test_stream_rank () =
  with_server (fun srv ->
      let port = Serve.port srv in
      let reqbody =
        J.to_string
          (J.Obj
             [
               ("query", J.Str "insert \"> \" at the start of each line");
               ("domain", J.Str "te");
               ("k", J.Num 5.);
             ])
      in
      let st, raw = http ~port ~meth:"POST" ~path:"/rank?stream=1" ~body:reqbody () in
      check_i "stream status" 200 st;
      let frames = dechunk raw in
      check_b "has frames" true (frames <> []);
      let evs = List.filter_map sse_event frames in
      check_i "all frames well-formed" (List.length frames) (List.length evs);
      let rec split_last = function
        | [] -> ([], None)
        | [ x ] -> ([], Some x)
        | x :: tl ->
            let xs, l = split_last tl in
            (x :: xs, l)
      in
      let cands, last = split_last evs in
      check_b "at least one interim revision" true (cands <> []);
      List.iter (fun (e, _) -> check_s "interim event" "candidate" e) cands;
      ignore
        (List.fold_left
           (fun prev (_, d) ->
             let j = Result.get_ok (J.of_string d) in
             let r = Option.get (J.int_field "revision" j) in
             check_b "revision monotone" true (r > prev);
             let rk = Option.get (J.int_field "rank" j) in
             check_b "rank within top-k" true (rk >= 1 && rk <= 5);
             r)
           0 cands);
      let done_ev, done_body = Option.get last in
      check_s "terminal event" "done" done_ev;
      (* the done frame is byte-for-byte the non-streaming /rank body
         (the stream bypassed the cache, so this one is a fresh compute) *)
      let st, plain = http ~port ~meth:"POST" ~path:"/rank" ~body:reqbody () in
      check_i "plain rank status" 200 st;
      check_s "done frame = non-streaming body" plain done_body;
      (* the plain /rank above populated the whole-query cache, so a
         GET stream of the same query is a replay: exactly one candidate
         frame (the winner) and a done frame carrying the cached body *)
      let st, cached_plain = http ~port ~meth:"POST" ~path:"/rank" ~body:reqbody () in
      check_i "cached rank status" 200 st;
      check_b "plain rank now cached" true
        (J.bool_field "cached" (Result.get_ok (J.of_string cached_plain))
        = Some true);
      let st, raw2 =
        http ~port ~meth:"GET"
          ~path:
            "/rank?stream=1&k=5&domain=te&query=insert%20%22%3E%20%22%20at%20the%20start%20of%20each%20line"
          ()
      in
      check_i "GET stream status" 200 st;
      (match List.filter_map sse_event (dechunk raw2) with
      | [ (ev1, cand); (ev2, body2) ] ->
          check_s "replay first event" "candidate" ev1;
          let cj = Result.get_ok (J.of_string cand) in
          check_b "replay candidate is rank 1" true
            (J.int_field "rank" cj = Some 1);
          check_s "replay terminal event" "done" ev2;
          check_s "replay done frame = cached body" cached_plain body2
      | evs ->
          Alcotest.failf "replay stream produced %d frames (want 2)"
            (List.length evs));
      (* the replay is counted in /metrics *)
      let _, metrics = http ~port ~meth:"GET" ~path:"/metrics" () in
      check_b "replay counter exported" true
        (Dggt_util.Strutil.contains_sub
           ~sub:"dggt_stream_cache_replays_total 1" metrics))

let test_stream_deadline () =
  with_server (fun srv ->
      let port = Serve.port srv in
      (* a deadline far too tight to finish: the stream must end with an
         [event: error] frame carrying the 504 it could no longer send as
         a status line *)
      let reqbody =
        J.to_string
          (J.Obj
             [
               ( "query",
                 J.Str
                   "find cxx constructor expressions which declare a cxx \
                    method named \"PI\"" );
               ("domain", J.Str "am");
               ("timeout", J.Num 0.001);
             ])
      in
      let st, raw = http ~port ~meth:"POST" ~path:"/rank?stream=1" ~body:reqbody () in
      check_i "headers already sent: 200" 200 st;
      match List.rev (List.filter_map sse_event (dechunk raw)) with
      | (ev, data) :: _ ->
          check_s "terminal error frame" "error" ev;
          let j = Result.get_ok (J.of_string data) in
          check_b "frame carries 504" true (J.int_field "status" j = Some 504);
          check_b "frame not ok" true (J.bool_field "ok" j = Some false)
      | [] -> Alcotest.fail "deadline stream produced no frames")

let test_stream_disconnect () =
  with_server (fun srv ->
      let port = Serve.port srv in
      let body =
        J.to_string
          (J.Obj
             [
               ("query", J.Str "delete all numbers in every line");
               ("domain", J.Str "te");
               ("k", J.Num 5.);
             ])
      in
      (* hang up mid-stream: read only the response head, then close *)
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "POST /rank?stream=1 HTTP/1.1\r\nhost: x\r\ncontent-length: \
           %d\r\n\r\n%s"
          (String.length body) body
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let b = Bytes.create 64 in
      ignore (Unix.read fd b 0 64);
      Unix.close fd;
      (* the producer hits EPIPE and aborts; the server must shrug it
         off and serve the next connection normally *)
      let st, _ = http ~port ~meth:"GET" ~path:"/healthz" () in
      check_i "alive after disconnect" 200 st;
      let st, plain = http ~port ~meth:"POST" ~path:"/rank" ~body () in
      check_i "rank after disconnect" 200 st;
      check_b "rank ok" true
        (J.bool_field "ok" (Result.get_ok (J.of_string plain)) = Some true))

let test_stream_session () =
  with_server (fun srv ->
      let port = Serve.port srv in
      let st, j =
        get_json ~port ~meth:"POST" ~path:"/session" ~body:{|{"domain":"te"}|} ()
      in
      check_i "session created" 201 st;
      let sid = Option.get (J.str_field "session" j) in
      let qbody =
        J.to_string
          (J.Obj
             [
               ("query", J.Str "delete all numbers in every line");
               ("k", J.Num 5.);
             ])
      in
      let st, raw =
        http ~port ~meth:"POST"
          ~path:("/session/" ^ sid ^ "/query?stream=1")
          ~body:qbody ()
      in
      check_i "session stream status" 200 st;
      (match List.rev (List.filter_map sse_event (dechunk raw)) with
      | (ev, data) :: _ ->
          check_s "session terminal event" "done" ev;
          let dj = Result.get_ok (J.of_string data) in
          check_b "done ok" true (J.bool_field "ok" dj = Some true);
          check_b "done carries session id" true
            (J.str_field "session" dj = Some sid)
      | [] -> Alcotest.fail "session stream produced no frames");
      (* the stream released the session lock and did not advance the
         revision history: the first ordinary query is still revision 1 *)
      let st, j =
        get_json ~port ~meth:"POST"
          ~path:("/session/" ^ sid ^ "/query")
          ~body:(J.to_string (J.Obj [ ("query", J.Str "delete all numbers in every line") ]))
          ()
      in
      check_i "post-stream query" 200 st;
      let reuse = Option.get (J.member "reuse" j) in
      check_b "stream did not advance revisions" true
        (J.int_field "revision" reuse = Some 1))

let test_version_streaming () =
  with_server (fun srv ->
      let port = Serve.port srv in
      let st, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_i "version status" 200 st;
      match J.member "capabilities" j with
      | Some (J.Arr caps) ->
          check_b "streaming advertised" true (List.mem (J.Str "streaming") caps)
      | _ -> Alcotest.fail "capabilities missing")

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "cache lru order" `Quick test_cache_lru_order;
    Alcotest.test_case "cache counters" `Quick test_cache_counters;
    Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
    Alcotest.test_case "cache find_or_compute" `Quick test_cache_find_or_compute;
    Alcotest.test_case "pool bounded queue" `Quick test_pool_bounded_queue;
    Alcotest.test_case "pool deadline drop" `Quick test_pool_deadline;
    Alcotest.test_case "e2e loopback service" `Quick test_e2e_synthesize;
    Alcotest.test_case "e2e sessions" `Quick test_e2e_sessions;
    Alcotest.test_case "e2e session reload 410" `Quick test_e2e_session_reload_410;
    Alcotest.test_case "stream rank sse" `Quick test_stream_rank;
    Alcotest.test_case "stream deadline error frame" `Quick test_stream_deadline;
    Alcotest.test_case "stream client disconnect" `Quick test_stream_disconnect;
    Alcotest.test_case "stream session query" `Quick test_stream_session;
    Alcotest.test_case "version advertises streaming" `Quick test_version_streaming;
  ]
