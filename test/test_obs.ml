(* Tests for dggt_obs: span nesting and ordering under a deterministic
   clock, note capping, the optional-sink zero-cost conveniences, the
   trace ring buffer, and the end-to-end [dggt explain] narrative naming
   all six pipeline stages on both benchmark domains. *)

module Trace = Dggt_obs.Trace
module Ring = Dggt_obs.Ring
module Engine = Dggt_core.Engine

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* each call advances time by exactly 1 s; [create] consumes the first
   tick as the origin, so all events land on integral offsets *)
let ticking_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

(* ------------------------------------------------------------------ *)
(* spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let s = Trace.create ~clock:(ticking_clock ()) () in
  let a = Trace.enter s "A" in
  let b = Trace.enter s "B" in
  Trace.finish s b;
  let c = Trace.enter s "C" in
  Trace.finish s c;
  Trace.finish s a;
  let t = Trace.result s in
  check_i "three events" 3 (List.length t.Trace.events);
  let ev name = Option.get (Trace.find t name) in
  (* ids follow start order, parents follow nesting *)
  check_i "A id" 0 (ev "A").Trace.id;
  check_b "A top-level" true ((ev "A").Trace.parent = None);
  check_b "B under A" true ((ev "B").Trace.parent = Some 0);
  check_b "C under A" true ((ev "C").Trace.parent = Some 0);
  (* origin=0, A starts t=1, B [2,3], C [4,5], A ends t=6 *)
  check_b "A start" true ((ev "A").Trace.start_s = 1.0);
  check_b "A dur" true ((ev "A").Trace.dur_s = 5.0);
  check_b "B dur" true ((ev "B").Trace.dur_s = 1.0);
  check_b "C start after B" true ((ev "C").Trace.start_s = 4.0);
  (* only parentless events feed the stage histograms *)
  check_b "durations top-level only" true
    (Trace.durations t = [ ("A", 5.0) ])

let test_finish_closes_children () =
  let s = Trace.create ~clock:(ticking_clock ()) () in
  let a = Trace.enter s "A" in
  let _b = Trace.enter s "B" in
  Trace.finish s a;
  (* B was left open: it closes with A's end time *)
  let t = Trace.result s in
  let ev name = Option.get (Trace.find t name) in
  check_b "B closed with A" true
    ((ev "B").Trace.start_s +. (ev "B").Trace.dur_s
    = (ev "A").Trace.start_s +. (ev "A").Trace.dur_s);
  (* finishing again is a no-op, and new spans are top-level now *)
  Trace.finish s a;
  let d = Trace.enter s "D" in
  Trace.finish s d;
  let t = Trace.result s in
  check_b "D top-level" true ((Option.get (Trace.find t "D")).Trace.parent = None)

let test_result_includes_open_spans () =
  let s = Trace.create ~clock:(ticking_clock ()) () in
  let _a = Trace.enter s "A" in
  let t = Trace.result s in
  check_b "open span snapshotted" true (Trace.find t "A" <> None);
  check_b "duration measured to now" true
    ((Option.get (Trace.find t "A")).Trace.dur_s >= 0.0)

let test_note_cap () =
  let s = Trace.create ~clock:(ticking_clock ()) ~max_notes:2 () in
  Trace.span (Some s) "X" (fun sp ->
      Trace.int sp "n1" 1;
      Trace.int sp "n2" 2;
      Trace.int sp "n3" 3;
      Trace.str sp "n4" "four");
  let t = Trace.result s in
  let ev = Option.get (Trace.find t "X") in
  check_b "kept in emission order plus drop count" true
    (ev.Trace.notes
    = [
        ("n1", Trace.Int 1); ("n2", Trace.Int 2); ("notes_dropped", Trace.Int 2);
      ])

let test_optional_sink_off () =
  (* with no sink every convenience is inert and [on] gates eager work *)
  check_b "span off" true (Trace.span None "X" (fun sp -> sp = None));
  Trace.int None "k" 1;
  Trace.str None "k" "v";
  check_b "on None" false (Trace.on None);
  let s = Trace.create () in
  Trace.span (Some s) "X" (fun sp -> check_b "on Some" true (Trace.on sp))

let test_span_closes_on_raise () =
  let s = Trace.create ~clock:(ticking_clock ()) () in
  (try Trace.span (Some s) "X" (fun _ -> raise Exit) with Exit -> ());
  (* X was closed by the protect; the next span is not nested under it *)
  let y = Trace.enter s "Y" in
  Trace.finish s y;
  let t = Trace.result s in
  check_b "Y top-level after raise" true
    ((Option.get (Trace.find t "Y")).Trace.parent = None)

(* ------------------------------------------------------------------ *)
(* ring                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  check_i "capacity" 3 (Ring.capacity r);
  List.iter (Ring.add r) [ 1; 2; 3; 4; 5 ];
  check_i "length bounded" 3 (Ring.length r);
  check_i "total counts evicted" 5 (Ring.total r);
  check_b "snapshot newest first" true (Ring.snapshot r = [ 5; 4; 3 ]);
  Ring.clear r;
  check_i "cleared" 0 (Ring.length r);
  check_b "empty snapshot" true (Ring.snapshot r = [])

let test_ring_disabled () =
  let r = Ring.create ~capacity:0 in
  Ring.add r 1;
  Ring.add r 2;
  check_i "disabled never stores" 0 (Ring.length r);
  check_i "disabled total" 0 (Ring.total r);
  check_b "disabled snapshot" true (Ring.snapshot r = [])

(* ------------------------------------------------------------------ *)
(* the engine under tracing                                           *)
(* ------------------------------------------------------------------ *)

let test_traced_equals_untraced () =
  (* tracing observes; it must not change what the engine produces *)
  let dom = Dggt_domains.Text_editing.domain in
  let ses =
    Dggt_domains.Domain.configure dom
      { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 10.0 }
  in
  let q = "insert \"-\" at the start of each line" in
  let plain = Engine.run ses q in
  let sink = Trace.create () in
  let traced =
    Engine.run
      (Engine.with_cfg (fun c -> { c with Engine.trace = Some sink }) ses)
      q
  in
  check_b "same code" true (plain.Engine.code = traced.Engine.code);
  check_b "same cgt size" true (plain.Engine.cgt_size = traced.Engine.cgt_size);
  (* and the trace covers the whole pipeline, stages in order *)
  let t = Trace.result sink in
  check_b "all six stages, in order" true
    (List.map fst (Trace.durations t) = Engine.stage_names)

(* ------------------------------------------------------------------ *)
(* dggt explain, end to end                                           *)
(* ------------------------------------------------------------------ *)

let explain dom q =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let o = Dggt_eval.Explain.run fmt ~timeout_s:20.0 dom q in
  Format.pp_print_flush fmt ();
  (o, Buffer.contents buf)

let check_narrative name out code =
  check_b (name ^ " synthesized") true (code <> None);
  List.iter
    (fun stage ->
      check_b
        (Printf.sprintf "%s narrative names %s" name stage)
        true
        (Dggt_util.Strutil.contains_sub ~sub:stage out))
    Engine.stage_names;
  check_b (name ^ " prints the codelet") true
    (Dggt_util.Strutil.contains_sub ~sub:(Option.get code) out)

let test_explain_text_editing () =
  let o, out =
    explain Dggt_domains.Text_editing.domain
      "insert \"> \" at the start of each line"
  in
  check_narrative "TextEditing" out o.Engine.code

let test_explain_astmatcher () =
  let o, out =
    explain Dggt_domains.Astmatcher.domain
      "find all binary operators named \"*\""
  in
  check_narrative "ASTMatcher" out o.Engine.code

let suite =
  [
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
    Alcotest.test_case "finish closes children" `Quick test_finish_closes_children;
    Alcotest.test_case "result snapshots open spans" `Quick
      test_result_includes_open_spans;
    Alcotest.test_case "note cap" `Quick test_note_cap;
    Alcotest.test_case "optional sink off" `Quick test_optional_sink_off;
    Alcotest.test_case "span closes on raise" `Quick test_span_closes_on_raise;
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "ring disabled" `Quick test_ring_disabled;
    Alcotest.test_case "traced = untraced" `Quick test_traced_equals_untraced;
    Alcotest.test_case "explain TextEditing e2e" `Quick test_explain_text_editing;
    Alcotest.test_case "explain ASTMatcher e2e" `Quick test_explain_astmatcher;
  ]
