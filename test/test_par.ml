(* Tests for dggt_par and the parallel EdgeToPath path: the pool's
   ordering/exception/nesting contracts, shutdown and capacity semantics,
   byte-for-byte sequential-vs-parallel equivalence of Edge2path and the
   whole engine over both benchmark domains' query sets, and races on the
   shared state the fan-out exposes (the grammar distance memo, the
   server's LRU cache, the deadline pool). *)

module Pool = Dggt_par.Pool
module Engine = Dggt_core.Engine
module Edge2path = Dggt_core.Edge2path
module Queryprune = Dggt_core.Queryprune
module Word2api = Dggt_core.Word2api
module Domain = Dggt_domains.Domain
module Ggraph = Dggt_grammar.Ggraph

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let with_pool ?(workers = 4) f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* map_ordered                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  with_pool (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "squares in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map_ordered pool (fun x -> x * x) xs))

let test_map_empty () =
  with_pool (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_ordered pool Fun.id []))

let test_map_exception () =
  with_pool (fun pool ->
      (* two inputs fail; the batch settles and the earliest input's
         exception is the one re-raised *)
      match
        Pool.map_ordered pool
          (fun x -> if x mod 10 = 3 then failwith (string_of_int x) else x)
          (List.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "earliest failing input" "3" msg)

let test_map_nested () =
  (* a mapped task may itself map on the same pool: the claim-based
     batches mean every caller helps drain its own work, so two workers
     can't deadlock waiting on each other *)
  with_pool ~workers:2 (fun pool ->
      let inner x = Pool.map_ordered pool (fun y -> x + y) [ 1; 2; 3 ] in
      Alcotest.(check (list (list int)))
        "nested maps"
        [ [ 1; 2; 3 ]; [ 11; 12; 13 ] ]
        (Pool.map_ordered pool inner [ 0; 10 ]))

let test_map_after_shutdown () =
  (* the caller participates, so a map on a stopped pool still completes
     (sequentially) instead of hanging *)
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "map on stopped pool" [ 2; 4; 6 ]
    (Pool.map_ordered pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_map_large () =
  with_pool (fun pool ->
      let n = 1000 in
      let r = Pool.map_ordered pool (fun x -> x + 1) (List.init n Fun.id) in
      check_i "count" n (List.length r);
      check_i "sum" (n * (n + 1) / 2) (List.fold_left ( + ) 0 r))

(* ------------------------------------------------------------------ *)
(* submit / shutdown                                                  *)
(* ------------------------------------------------------------------ *)

let test_submit_capacity () =
  let pool = Pool.create ~workers:1 ~capacity:1 () in
  let entered = Atomic.make false and release = Atomic.make false in
  let block () =
    Atomic.set entered true;
    while not (Atomic.get release) do
      Thread.yield ()
    done
  in
  check_b "blocker accepted" true (Pool.submit pool block = `Accepted);
  while not (Atomic.get entered) do
    Thread.yield ()
  done;
  (* worker busy, queue holds exactly [capacity] bounded jobs *)
  check_b "1st queued" true (Pool.submit pool ignore = `Accepted);
  check_b "2nd rejected" true (Pool.submit pool ignore = `Rejected);
  check_i "depth" 1 (Pool.depth pool);
  Atomic.set release true;
  Pool.shutdown pool;
  check_b "post-shutdown rejected" true (Pool.submit pool ignore = `Rejected)

let test_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_b "still rejects" true (Pool.submit pool ignore = `Rejected)

let test_shutdown_under_load () =
  (* shut the pool down while a thread is still feeding it: accepted jobs
     all run (the queue drains before the workers exit), later submits
     bounce, nothing crashes or hangs *)
  let pool = Pool.create ~workers:4 ~capacity:1024 () in
  let accepted = Atomic.make 0 and ran = Atomic.make 0 in
  let feeder =
    Thread.create
      (fun () ->
        for _ = 1 to 500 do
          match Pool.submit pool (fun () -> Atomic.incr ran) with
          | `Accepted -> Atomic.incr accepted
          | `Rejected -> ()
        done)
      ()
  in
  Thread.yield ();
  Pool.shutdown pool;
  Thread.join feeder;
  check_i "every accepted job ran" (Atomic.get accepted) (Atomic.get ran)

(* ------------------------------------------------------------------ *)
(* sequential-vs-parallel equivalence                                 *)
(* ------------------------------------------------------------------ *)

(* Dependency parsing is sequential and by far the most expensive stage on
   the ASTMatcher queries; parse each domain's query set once and share
   the graphs across the equivalence tests below. *)
let parses (dom : Domain.t) =
  List.map
    (fun (q : Domain.query) -> (q, Dggt_nlu.Depparser.parse q.Domain.text))
    dom.Domain.queries

let te_parses = lazy (parses Dggt_domains.Text_editing.domain)
let am_parses = lazy (parses Dggt_domains.Astmatcher.domain)

let parsed (dom : Domain.t) =
  if dom.Domain.name = Dggt_domains.Astmatcher.domain.Domain.name then
    Lazy.force am_parses
  else Lazy.force te_parses

(* EdgeToPath in isolation: identical epaths (ids, labels, API pair, the
   full node/edge/api arrays of every path), identical orphan sets,
   identical counts — over every query of the domain. *)
let e2p_equiv (dom : Domain.t) () =
  let g = Lazy.force dom.Domain.graph in
  let doc = Lazy.force dom.Domain.doc in
  with_pool (fun pool ->
      List.iter
        (fun ((q : Domain.query), parse) ->
          let dg = Queryprune.prune parse in
          let w2a = Word2api.build doc dg in
          let seq = Edge2path.build g dg w2a in
          let par = Edge2path.build ~pool g dg w2a in
          check_b (q.Domain.text ^ ": build identical") true
            (Edge2path.all seq = Edge2path.all par);
          check_b (q.Domain.text ^ ": orphans identical") true
            (Edge2path.orphans seq = Edge2path.orphans par);
          check_i (q.Domain.text ^ ": counts identical")
            (Edge2path.total_path_count seq)
            (Edge2path.total_path_count par);
          let dg_s, anch_s = Edge2path.anchor_orphans g dg w2a seq in
          let dg_p, anch_p = Edge2path.anchor_orphans ~pool g dg w2a par in
          check_b (q.Domain.text ^ ": anchored graph identical") true
            (dg_s = dg_p);
          check_b (q.Domain.text ^ ": anchored paths identical") true
            (Edge2path.all anch_s = Edge2path.all anch_p))
        (parsed dom))

(* Whole-engine determinism: a step budget instead of a wall clock (the
   EdgeToPath stage never consumes the budget, and steps don't depend on
   scheduling), then every observable outcome field must match. Parsing
   is shared via [parsed] and skipped with {!Engine.synthesize_graph};
   [stride] subsamples the query set where the engine itself is slow. *)
let engine_equiv algorithm ?(max_steps = 100_000) ?(stride = 1)
    (dom : Domain.t) () =
  let base =
    {
      (Engine.default algorithm) with
      Engine.timeout_s = None;
      max_steps = Some max_steps;
    }
  in
  let ses_seq = Domain.configure dom base in
  with_pool (fun pool ->
      let ses_par =
        Engine.with_cfg (fun c -> { c with Engine.par = Some pool }) ses_seq
      in
      List.iteri
        (fun i ((q : Domain.query), dg) ->
          if i mod stride = 0 then begin
            let s = Engine.run_graph ses_seq dg in
            let p = Engine.run_graph ses_par dg in
            Alcotest.(check (option string))
              (q.Domain.text ^ ": code") s.Engine.code p.Engine.code;
            Alcotest.(check (option int))
              (q.Domain.text ^ ": cgt_size") s.Engine.cgt_size p.Engine.cgt_size;
            check_b (q.Domain.text ^ ": timed_out") s.Engine.timed_out
              p.Engine.timed_out;
            Alcotest.(check (option string))
              (q.Domain.text ^ ": failure") s.Engine.failure p.Engine.failure;
            check_b (q.Domain.text ^ ": stats") true
              (s.Engine.stats = p.Engine.stats)
          end)
        (parsed dom))

(* ------------------------------------------------------------------ *)
(* shared state under real parallelism                                *)
(* ------------------------------------------------------------------ *)

let test_distance_memo_race () =
  (* the per-source BFS rows are memoized under a mutex; hammer the memo
     from every worker at once and compare against a sequentially-filled
     twin graph *)
  let build () =
    match
      Dggt_grammar.Cfg.of_text ~start:Dggt_domains.Te_grammar.start
        Dggt_domains.Te_grammar.bnf
    with
    | Ok cfg -> Ggraph.build cfg
    | Error _ -> Alcotest.fail "grammar build failed"
  in
  let g_par = build () and g_seq = build () in
  let srcs = List.init (Ggraph.node_count g_par) Fun.id in
  (* ask for each row several times so hits race the misses *)
  let queries = srcs @ srcs @ srcs in
  with_pool (fun pool ->
      let rows =
        Pool.map_ordered pool
          (fun src -> Array.copy (Ggraph.dist_from g_par src))
          queries
      in
      List.iter2
        (fun src row ->
          check_b
            (Printf.sprintf "row %d identical" src)
            true
            (row = Ggraph.dist_from g_seq src))
        queries rows)

let test_cache_race () =
  (* Cache.find_or_compute computes outside the lock: racing misses on the
     same key may both compute, but every caller must still get the
     deterministic value and the entry must land exactly once *)
  let cache = Dggt_server.Cache.create ~capacity:64 in
  with_pool (fun pool ->
      let results =
        Pool.map_ordered pool
          (fun i ->
            let k = i mod 20 in
            fst
              (Dggt_server.Cache.find_or_compute cache k (fun () ->
                   Printf.sprintf "v%d" k)))
          (List.init 200 Fun.id)
      in
      List.iteri
        (fun i v ->
          Alcotest.(check string)
            (Printf.sprintf "key %d" (i mod 20))
            (Printf.sprintf "v%d" (i mod 20))
            v)
        results);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "cached value" (Some (Printf.sprintf "v%d" k))
        (Dggt_server.Cache.find cache k))
    (List.init 20 Fun.id)

let test_deadline_expiry_many_workers () =
  (* all four workers blocked, a batch of already-expired jobs behind
     them: every one must take the expired path, none may run *)
  let pool = Dggt_server.Deadline_pool.create ~workers:4 ~capacity:32 () in
  let entered = Atomic.make 0 and release = Atomic.make false in
  let ran = Atomic.make 0 and expired = Atomic.make 0 in
  let block () =
    Atomic.incr entered;
    while not (Atomic.get release) do
      Thread.yield ()
    done
  in
  for _ = 1 to 4 do
    check_b "blocker accepted" true
      (Dggt_server.Deadline_pool.submit pool ~run:block ~expired:ignore () = `Accepted)
  done;
  while Atomic.get entered < 4 do
    Thread.yield ()
  done;
  let past = Unix.gettimeofday () -. 1.0 in
  for _ = 1 to 8 do
    check_b "expired job accepted" true
      (Dggt_server.Deadline_pool.submit pool ~deadline:past
         ~run:(fun () -> Atomic.incr ran)
         ~expired:(fun () -> Atomic.incr expired)
         ()
      = `Accepted)
  done;
  Atomic.set release true;
  Dggt_server.Deadline_pool.shutdown pool;
  check_i "all expired" 8 (Atomic.get expired);
  check_i "none ran" 0 (Atomic.get ran)

let suite =
  [
    ("map_ordered: input order", `Quick, test_map_order);
    ("map_ordered: empty input", `Quick, test_map_empty);
    ("map_ordered: earliest exception wins", `Quick, test_map_exception);
    ("map_ordered: nesting does not deadlock", `Quick, test_map_nested);
    ("map_ordered: total on a stopped pool", `Quick, test_map_after_shutdown);
    ("map_ordered: 1000 tasks", `Quick, test_map_large);
    ("submit: capacity bound and rejection", `Quick, test_submit_capacity);
    ("shutdown: idempotent", `Quick, test_shutdown_idempotent);
    ("shutdown: under concurrent submits", `Quick, test_shutdown_under_load);
    ( "edge2path: par = seq, textediting query set",
      `Quick,
      e2p_equiv Dggt_domains.Text_editing.domain );
    ( "edge2path: par = seq, astmatcher query set",
      `Quick,
      e2p_equiv Dggt_domains.Astmatcher.domain );
    ( "engine: par = seq, DGGT textediting",
      `Quick,
      engine_equiv Engine.Dggt_alg Dggt_domains.Text_editing.domain );
    ( "engine: par = seq, DGGT astmatcher",
      `Slow,
      engine_equiv Engine.Dggt_alg Dggt_domains.Astmatcher.domain );
    ( "engine: par = seq, HISyn textediting",
      `Quick,
      engine_equiv Engine.Hisyn_alg ~max_steps:10_000 ~stride:4
        Dggt_domains.Text_editing.domain );
    ("distance memo: races agree with sequential", `Quick, test_distance_memo_race);
    ("cache: racing find_or_compute", `Quick, test_cache_race);
    ( "server pool: deadline expiry with 4 workers",
      `Quick,
      test_deadline_expiry_many_workers );
  ]
