(* Tests for dggt_par: the pool's ordering/exception/nesting contracts,
   shutdown and capacity semantics, byte-for-byte equivalence of a
   pooled whole-query batch run against a sequential one, and races on
   the shared state the fan-out exposes (the grammar distance memo, the
   server's LRU cache, the deadline pool). Since the intra-query
   EdgeToPath fan-out was retired, the pool's only engine-facing role is
   batch throughput: whole queries over worker domains. *)

module Pool = Dggt_par.Pool
module Engine = Dggt_core.Engine
module Runner = Dggt_eval.Runner
module Domain = Dggt_domains.Domain
module Ggraph = Dggt_grammar.Ggraph

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let with_pool ?(workers = 4) f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* map_ordered                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  with_pool (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "squares in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map_ordered pool (fun x -> x * x) xs))

let test_map_empty () =
  with_pool (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_ordered pool Fun.id []))

let test_map_exception () =
  with_pool (fun pool ->
      (* two inputs fail; the batch settles and the earliest input's
         exception is the one re-raised *)
      match
        Pool.map_ordered pool
          (fun x -> if x mod 10 = 3 then failwith (string_of_int x) else x)
          (List.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "earliest failing input" "3" msg)

let test_map_nested () =
  (* a mapped task may itself map on the same pool: the claim-based
     batches mean every caller helps drain its own work, so two workers
     can't deadlock waiting on each other *)
  with_pool ~workers:2 (fun pool ->
      let inner x = Pool.map_ordered pool (fun y -> x + y) [ 1; 2; 3 ] in
      Alcotest.(check (list (list int)))
        "nested maps"
        [ [ 1; 2; 3 ]; [ 11; 12; 13 ] ]
        (Pool.map_ordered pool inner [ 0; 10 ]))

let test_map_after_shutdown () =
  (* the caller participates, so a map on a stopped pool still completes
     (sequentially) instead of hanging *)
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "map on stopped pool" [ 2; 4; 6 ]
    (Pool.map_ordered pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_map_large () =
  with_pool (fun pool ->
      let n = 1000 in
      let r = Pool.map_ordered pool (fun x -> x + 1) (List.init n Fun.id) in
      check_i "count" n (List.length r);
      check_i "sum" (n * (n + 1) / 2) (List.fold_left ( + ) 0 r))

(* ------------------------------------------------------------------ *)
(* submit / shutdown                                                  *)
(* ------------------------------------------------------------------ *)

let test_submit_capacity () =
  let pool = Pool.create ~workers:1 ~capacity:1 () in
  let entered = Atomic.make false and release = Atomic.make false in
  let block () =
    Atomic.set entered true;
    while not (Atomic.get release) do
      Thread.yield ()
    done
  in
  check_b "blocker accepted" true (Pool.submit pool block = `Accepted);
  while not (Atomic.get entered) do
    Thread.yield ()
  done;
  (* worker busy, queue holds exactly [capacity] bounded jobs *)
  check_b "1st queued" true (Pool.submit pool ignore = `Accepted);
  check_b "2nd rejected" true (Pool.submit pool ignore = `Rejected);
  check_i "depth" 1 (Pool.depth pool);
  Atomic.set release true;
  Pool.shutdown pool;
  check_b "post-shutdown rejected" true (Pool.submit pool ignore = `Rejected)

let test_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_b "still rejects" true (Pool.submit pool ignore = `Rejected)

let test_shutdown_under_load () =
  (* shut the pool down while a thread is still feeding it: accepted jobs
     all run (the queue drains before the workers exit), later submits
     bounce, nothing crashes or hangs *)
  let pool = Pool.create ~workers:4 ~capacity:1024 () in
  let accepted = Atomic.make 0 and ran = Atomic.make 0 in
  let feeder =
    Thread.create
      (fun () ->
        for _ = 1 to 500 do
          match Pool.submit pool (fun () -> Atomic.incr ran) with
          | `Accepted -> Atomic.incr accepted
          | `Rejected -> ()
        done)
      ()
  in
  Thread.yield ();
  Pool.shutdown pool;
  Thread.join feeder;
  check_i "every accepted job ran" (Atomic.get accepted) (Atomic.get ran)

(* ------------------------------------------------------------------ *)
(* batch run: pooled = sequential                                     *)
(* ------------------------------------------------------------------ *)

(* Runner.run_domain ?pool fans whole queries out over worker domains;
   results must come back in query order with every observable outcome
   field identical to a sequential run. A step budget instead of a wall
   clock keeps both runs deterministic (steps don't depend on
   scheduling); a truncated query set keeps the test quick. *)
let truncate n (dom : Domain.t) =
  { dom with Domain.queries = List.filteri (fun i _ -> i < n) dom.Domain.queries }

let runner_equiv algorithm (dom : Domain.t) () =
  let dom = truncate 8 dom in
  let tweak c =
    { c with Engine.timeout_s = None; max_steps = Some 100_000 }
  in
  let seq = Runner.run_domain ~tweak dom algorithm in
  let par =
    with_pool (fun pool -> Runner.run_domain ~tweak ~pool dom algorithm)
  in
  check_i "result count"
    (List.length seq.Runner.results)
    (List.length par.Runner.results);
  List.iter2
    (fun (s : Runner.qresult) (p : Runner.qresult) ->
      let q = s.Runner.query.Domain.text in
      Alcotest.(check string)
        (q ^ ": query order") q p.Runner.query.Domain.text;
      Alcotest.(check (option string))
        (q ^ ": code") s.Runner.outcome.Engine.code p.Runner.outcome.Engine.code;
      Alcotest.(check (option int))
        (q ^ ": cgt_size") s.Runner.outcome.Engine.cgt_size
        p.Runner.outcome.Engine.cgt_size;
      check_b (q ^ ": timed_out") s.Runner.outcome.Engine.timed_out
        p.Runner.outcome.Engine.timed_out;
      Alcotest.(check (option string))
        (q ^ ": failure") s.Runner.outcome.Engine.failure
        p.Runner.outcome.Engine.failure;
      check_b (q ^ ": stats") true
        (s.Runner.outcome.Engine.stats = p.Runner.outcome.Engine.stats);
      check_b (q ^ ": correct") s.Runner.correct p.Runner.correct)
    seq.Runner.results par.Runner.results

let test_runner_progress_counts () =
  (* under a pool, progress reports completion counts: each callback sees
     the number of finished queries, ending exactly at n *)
  let dom = truncate 6 Dggt_domains.Text_editing.domain in
  let seen = Mutex.create () and counts = ref [] in
  let progress i n =
    Mutex.lock seen;
    counts := (i, n) :: !counts;
    Mutex.unlock seen
  in
  let _run =
    with_pool (fun pool ->
        Runner.run_domain
          ~tweak:(fun c ->
            { c with Engine.timeout_s = None; max_steps = Some 10_000 })
          ~progress ~pool dom Engine.Dggt_alg)
  in
  let counts = List.sort compare !counts in
  check_i "one callback per query" 6 (List.length counts);
  List.iteri
    (fun i (got, n) ->
      check_i "monotone completion count" (i + 1) got;
      check_i "total" 6 n)
    counts

(* ------------------------------------------------------------------ *)
(* shared state under real parallelism                                *)
(* ------------------------------------------------------------------ *)

let test_distance_memo_race () =
  (* the per-source BFS rows are memoized under a mutex; hammer the memo
     from every worker at once and compare against a sequentially-filled
     twin graph *)
  let build () =
    match
      Dggt_grammar.Cfg.of_text ~start:Dggt_domains.Te_grammar.start
        Dggt_domains.Te_grammar.bnf
    with
    | Ok cfg -> Ggraph.build cfg
    | Error _ -> Alcotest.fail "grammar build failed"
  in
  let g_par = build () and g_seq = build () in
  let srcs = List.init (Ggraph.node_count g_par) Fun.id in
  (* ask for each row several times so hits race the misses *)
  let queries = srcs @ srcs @ srcs in
  with_pool (fun pool ->
      let rows =
        Pool.map_ordered pool
          (fun src -> Array.copy (Ggraph.dist_from g_par src))
          queries
      in
      List.iter2
        (fun src row ->
          check_b
            (Printf.sprintf "row %d identical" src)
            true
            (row = Ggraph.dist_from g_seq src))
        queries rows)

let test_cache_race () =
  (* Cache.find_or_compute computes outside the lock: racing misses on the
     same key may both compute, but every caller must still get the
     deterministic value and the entry must land exactly once *)
  let cache = Dggt_server.Cache.create ~capacity:64 in
  with_pool (fun pool ->
      let results =
        Pool.map_ordered pool
          (fun i ->
            let k = i mod 20 in
            fst
              (Dggt_server.Cache.find_or_compute cache k (fun () ->
                   Printf.sprintf "v%d" k)))
          (List.init 200 Fun.id)
      in
      List.iteri
        (fun i v ->
          Alcotest.(check string)
            (Printf.sprintf "key %d" (i mod 20))
            (Printf.sprintf "v%d" (i mod 20))
            v)
        results);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "cached value" (Some (Printf.sprintf "v%d" k))
        (Dggt_server.Cache.find cache k))
    (List.init 20 Fun.id)

let test_deadline_expiry_many_workers () =
  (* all four workers blocked, a batch of already-expired jobs behind
     them: every one must take the expired path, none may run *)
  let pool = Dggt_server.Deadline_pool.create ~workers:4 ~capacity:32 () in
  let entered = Atomic.make 0 and release = Atomic.make false in
  let ran = Atomic.make 0 and expired = Atomic.make 0 in
  let block () =
    Atomic.incr entered;
    while not (Atomic.get release) do
      Thread.yield ()
    done
  in
  for _ = 1 to 4 do
    check_b "blocker accepted" true
      (Dggt_server.Deadline_pool.submit pool ~run:block ~expired:ignore () = `Accepted)
  done;
  while Atomic.get entered < 4 do
    Thread.yield ()
  done;
  let past = Unix.gettimeofday () -. 1.0 in
  for _ = 1 to 8 do
    check_b "expired job accepted" true
      (Dggt_server.Deadline_pool.submit pool ~deadline:past
         ~run:(fun () -> Atomic.incr ran)
         ~expired:(fun () -> Atomic.incr expired)
         ()
      = `Accepted)
  done;
  Atomic.set release true;
  Dggt_server.Deadline_pool.shutdown pool;
  check_i "all expired" 8 (Atomic.get expired);
  check_i "none ran" 0 (Atomic.get ran)

let suite =
  [
    ("map_ordered: input order", `Quick, test_map_order);
    ("map_ordered: empty input", `Quick, test_map_empty);
    ("map_ordered: earliest exception wins", `Quick, test_map_exception);
    ("map_ordered: nesting does not deadlock", `Quick, test_map_nested);
    ("map_ordered: total on a stopped pool", `Quick, test_map_after_shutdown);
    ("map_ordered: 1000 tasks", `Quick, test_map_large);
    ("submit: capacity bound and rejection", `Quick, test_submit_capacity);
    ("shutdown: idempotent", `Quick, test_shutdown_idempotent);
    ("shutdown: under concurrent submits", `Quick, test_shutdown_under_load);
    ( "runner: pooled batch = seq, DGGT textediting",
      `Quick,
      runner_equiv Engine.Dggt_alg Dggt_domains.Text_editing.domain );
    ( "runner: pooled batch = seq, DGGT astmatcher",
      `Quick,
      runner_equiv Engine.Dggt_alg Dggt_domains.Astmatcher.domain );
    ( "runner: pooled batch = seq, HISyn textediting",
      `Quick,
      runner_equiv Engine.Hisyn_alg Dggt_domains.Text_editing.domain );
    ("runner: pooled progress counts", `Quick, test_runner_progress_counts);
    ("distance memo: races agree with sequential", `Quick, test_distance_memo_race);
    ("cache: racing find_or_compute", `Quick, test_cache_race);
    ( "server pool: deadline expiry with 4 workers",
      `Quick,
      test_deadline_expiry_many_workers );
  ]
