(* Tests for dggt_pack: manifest/docfile/queryfile parse errors with
   file:line diagnostics, loader error paths, the semantic checker, the
   mutex-guarded domain registry, dump/load golden equivalence against the
   compiled-in domains, and the pack-aware endpoints of dggt serve
   (/version, /reload, generation-keyed cache invalidation). *)

open Dggt_pack
module Domain = Dggt_domains.Domain
module Engine = Dggt_core.Engine
module J = Dggt_server.Jsonio
module Serve = Dggt_server.Serve

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* scratch pack directories                                           *)
(* ------------------------------------------------------------------ *)

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dggt_pack_test_%d_%d" (Unix.getpid ()) !counter)
  in
  let rec mkdir_p p =
    if not (Sys.file_exists p) then begin
      mkdir_p (Filename.dirname p);
      (try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  mkdir_p d;
  d

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let replace_all s ~old ~fresh =
  let ol = String.length old in
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i > n - ol then Buffer.add_substring buf s i (n - i)
    else if String.sub s i ol = old then begin
      Buffer.add_string buf fresh;
      go (i + ol)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let file_replace path ~old ~fresh = write path (replace_all (read path) ~old ~fresh)

(* a disposable copy of the TextEditing domain as a pack, for mutation *)
let te_pack_dir () =
  let d = Filename.concat (fresh_dir ()) "textediting" in
  Dump.dump ~dir:d ~aliases:[ "te" ] Dggt_domains.Text_editing.domain;
  d

let line_count path = List.length (String.split_on_char '\n' (read path))

let err_of = function
  | Error (e : Err.t) -> e
  | Ok _ -> Alcotest.fail "expected a load error"

let base = Filename.basename

(* ------------------------------------------------------------------ *)
(* loader error paths                                                 *)
(* ------------------------------------------------------------------ *)

let test_load_roundtrip_clean () =
  let d = te_pack_dir () in
  match Loader.load d with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l ->
      check_s "name" "TextEditing" l.Loader.domain.Domain.name;
      check_b "alias te" true (List.mem "te" l.Loader.aliases);
      check_b "digest nonempty" true (String.length l.Loader.digest = 32);
      check_i "no findings" 0 (List.length (Check.run l))

let test_missing_file () =
  let d = te_pack_dir () in
  Sys.remove (Filename.concat d "api.doc");
  let e = err_of (Loader.load d) in
  check_s "names api.doc" "api.doc" (base e.Err.file);
  check_b "mentions missing" true
    (Dggt_util.Strutil.contains_sub ~sub:"no such file" e.Err.message);
  (* the rendered form carries the path *)
  check_b "to_string has path" true
    (Dggt_util.Strutil.contains_sub ~sub:"api.doc" (Err.to_string e))

let test_missing_manifest () =
  let d = te_pack_dir () in
  Sys.remove (Filename.concat d "domain.pack");
  let e = err_of (Loader.load d) in
  check_s "names domain.pack" "domain.pack" (base e.Err.file)

let test_malformed_bnf () =
  let d = te_pack_dir () in
  let g = Filename.concat d "grammar.bnf" in
  let lines = line_count g in
  write g (read g ^ "oops ::= ;;;\n");
  let e = err_of (Loader.load d) in
  check_s "names grammar.bnf" "grammar.bnf" (base e.Err.file);
  check_b "line points at the bad rule" true (e.Err.line >= lines);
  check_b "line rendered" true
    (Dggt_util.Strutil.contains_sub
       ~sub:(Printf.sprintf "grammar.bnf:%d" e.Err.line)
       (Err.to_string e))

let test_unknown_manifest_key () =
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  write m (read m ^ "bogus-key = 1\n");
  let e = err_of (Loader.load d) in
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_i "points at the key" (line_count m - 1) e.Err.line;
  check_b "names the key" true
    (Dggt_util.Strutil.contains_sub ~sub:"bogus-key" e.Err.message)

let test_manifest_syntax_error () =
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  write m (read m ^ "this line has no equals sign\n");
  let e = err_of (Loader.load d) in
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_i "points at the line" (line_count m - 1) e.Err.line

let test_unparseable_ground_truth () =
  let d = te_pack_dir () in
  let q = Filename.concat d "queries.tsv" in
  let lines = String.split_on_char '\n' (read q) in
  (* corrupt the 5th query's EXPECTED column (header comments occupy the
     first two lines) *)
  let target = 7 in
  let mangled =
    List.mapi
      (fun i l ->
        if i = target - 1 then
          match String.rindex_opt l '\t' with
          | Some t -> String.sub l 0 (t + 1) ^ "NOT(A(CODELET"
          | None -> l
        else l)
      lines
  in
  write q (String.concat "\n" mangled);
  let e = err_of (Loader.load d) in
  check_s "names queries.tsv" "queries.tsv" (base e.Err.file);
  check_i "points at the query line" target e.Err.line;
  check_b "says unparseable" true
    (Dggt_util.Strutil.contains_sub ~sub:"ground-truth" e.Err.message)

let test_bad_limits () =
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  write m (read m ^ "max-nodes = 0\n");
  let e = err_of (Loader.load d) in
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_i "points at the limit" (line_count m - 1) e.Err.line;
  check_b "says positive" true
    (Dggt_util.Strutil.contains_sub ~sub:"positive" e.Err.message)

let test_manifest_num_value () =
  let d = fresh_dir () in
  let p = Filename.concat d "m.pack" in
  write p "a = 2.5\nb = nope\n";
  match Manifest.load p with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok m ->
      check_b "num" true (Manifest.num_value m "a" = Ok (Some 2.5));
      check_b "absent is None" true (Manifest.num_value m "missing" = Ok None);
      check_b "non-numeric errors" true
        (Result.is_error (Manifest.num_value m "b"))

let test_envelope_keys () =
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  write m (read m ^ "expect-accuracy = 0.85\nexpect-p95-ms = 1500\n");
  (match Loader.load d with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l ->
      check_b "accuracy floor parsed" true
        (l.Loader.expect_accuracy = Some 0.85);
      check_b "p95 ceiling parsed" true (l.Loader.expect_p95_ms = Some 1500.0));
  (* a pack without the keys simply has no envelope *)
  let d2 = te_pack_dir () in
  match Loader.load d2 with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l ->
      check_b "no envelope by default" true
        (l.Loader.expect_accuracy = None && l.Loader.expect_p95_ms = None)

let test_envelope_validation () =
  (* accuracy outside [0, 1] *)
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  write m (read m ^ "expect-accuracy = 1.5\n");
  let e = err_of (Loader.load d) in
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_i "points at the key" (line_count m - 1) e.Err.line;
  check_b "says fraction" true
    (Dggt_util.Strutil.contains_sub ~sub:"fraction" e.Err.message);
  (* p95 ceiling must be positive *)
  let d = te_pack_dir () in
  write
    (Filename.concat d "domain.pack")
    (read (Filename.concat d "domain.pack") ^ "expect-p95-ms = 0\n");
  let e = err_of (Loader.load d) in
  check_b "says positive" true
    (Dggt_util.Strutil.contains_sub ~sub:"positive" e.Err.message);
  (* non-numeric value *)
  let d = te_pack_dir () in
  write
    (Filename.concat d "domain.pack")
    (read (Filename.concat d "domain.pack") ^ "expect-accuracy = fast\n");
  let e = err_of (Loader.load d) in
  check_b "says number" true
    (Dggt_util.Strutil.contains_sub ~sub:"number" e.Err.message)

let test_undefined_start () =
  let d = te_pack_dir () in
  let m = Filename.concat d "domain.pack" in
  file_replace m ~old:"start = cmd" ~fresh:"start = nonexistent";
  let e = err_of (Loader.load d) in
  (* the grammar file is fine; the manifest's start line is wrong *)
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_b "has a line" true (e.Err.line > 0);
  check_b "names the symbol" true
    (Dggt_util.Strutil.contains_sub ~sub:"nonexistent" e.Err.message)

let test_queries_optional () =
  let d = te_pack_dir () in
  Sys.remove (Filename.concat d "queries.tsv");
  match Loader.load d with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l -> check_i "no queries" 0 (List.length l.Loader.domain.Domain.queries)

(* ------------------------------------------------------------------ *)
(* semantic checks                                                    *)
(* ------------------------------------------------------------------ *)

let findings_of dir =
  match Loader.load dir with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l -> Check.run l

let test_check_unknown_doc_api () =
  let d = te_pack_dir () in
  let doc = Filename.concat d "api.doc" in
  write doc (read doc ^ "BOGUSAPI\t-\tan api the grammar cannot produce\n");
  let fs = findings_of d in
  check_b "reported against its api.doc line" true
    (List.exists
       (fun (f : Err.t) ->
         base f.Err.file = "api.doc"
         && f.Err.line = line_count doc - 1
         && Dggt_util.Strutil.contains_sub ~sub:"BOGUSAPI" f.Err.message)
       fs)

let test_check_undocumented_terminal () =
  let d = te_pack_dir () in
  let doc = Filename.concat d "api.doc" in
  (* drop MOVE from the document: the grammar still derives it *)
  let lines =
    List.filter
      (fun l -> not (Dggt_util.Strutil.contains_sub ~sub:"MOVE\t" l))
      (String.split_on_char '\n' (read doc))
  in
  write doc (String.concat "\n" lines);
  let fs = findings_of d in
  (* attributed to the grammar: the terminal exists there with no entry *)
  check_b "undocumented MOVE reported" true
    (List.exists
       (fun (f : Err.t) ->
         base f.Err.file = "grammar.bnf"
         && Dggt_util.Strutil.contains_sub ~sub:"MOVE" f.Err.message)
       fs)

let test_check_query_uses_undocumented_api () =
  let d = te_pack_dir () in
  let q = Filename.concat d "queries.tsv" in
  write q
    (read q
   ^ "9999\t-\tmade-up query\tDELETE(WORD(), UNDOCUMENTEDAPI())\n");
  let fs = findings_of d in
  check_b "reported" true
    (List.exists
       (fun (f : Err.t) ->
         base f.Err.file = "queries.tsv"
         && f.Err.line = line_count q - 1
         && Dggt_util.Strutil.contains_sub ~sub:"UNDOCUMENTEDAPI"
              f.Err.message)
       fs)

(* ------------------------------------------------------------------ *)
(* registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_builtins () =
  let reg = Domain_registry.create () in
  check_i "two builtins" 2 (List.length (Domain_registry.entries reg));
  check_b "by name" true (Domain_registry.find reg "TextEditing" <> None);
  check_b "case-insensitive" true (Domain_registry.find reg "textediting" <> None);
  check_b "alias te" true (Domain_registry.find reg "te" <> None);
  check_b "alias AM" true (Domain_registry.find reg "AM" <> None);
  check_b "unknown" true (Domain_registry.find reg "nope" = None);
  check_i "generation starts at 0" 0 (Domain_registry.generation reg);
  check_s "no packs digest" "none" (Domain_registry.pack_digest reg)

let test_registry_duplicate_register () =
  let reg = Domain_registry.create () in
  (match Domain_registry.register reg Dggt_domains.Text_editing.domain with
  | Ok () -> Alcotest.fail "duplicate register accepted"
  | Error msg ->
      check_b "names the clash" true
        (Dggt_util.Strutil.contains_sub ~sub:"textediting" msg));
  check_i "registry unchanged" 2 (List.length (Domain_registry.entries reg));
  check_i "generation unchanged" 0 (Domain_registry.generation reg)

(* a packs root holding one TE clone under a different name/alias *)
let clone_packs_root ?(name = "TEClone") ?(alias = "tec") () =
  let root = fresh_dir () in
  let d = Filename.concat root "teclone" in
  Dump.dump ~dir:d ~aliases:[ alias ] Dggt_domains.Text_editing.domain;
  let m = Filename.concat d "domain.pack" in
  file_replace m ~old:"name = TextEditing" ~fresh:("name = " ^ name);
  (root, d)

let test_registry_load_dir () =
  let root, _ = clone_packs_root () in
  let reg = Domain_registry.create () in
  (match Domain_registry.load_dir reg root with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok packs -> check_i "one pack" 1 (List.length packs));
  check_i "generation bumped" 1 (Domain_registry.generation reg);
  check_i "three domains" 3 (List.length (Domain_registry.entries reg));
  check_b "clone by name" true (Domain_registry.find reg "teclone" <> None);
  check_b "clone by alias" true (Domain_registry.find reg "TEC" <> None);
  check_b "digest set" true (Domain_registry.pack_digest reg <> "none");
  (* a reload replaces, never accumulates *)
  (match Domain_registry.load_dir reg root with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok _ -> ());
  check_i "still three domains" 3 (List.length (Domain_registry.entries reg));
  check_i "generation bumped again" 2 (Domain_registry.generation reg)

let test_registry_duplicate_pack_name () =
  (* two packs in one root claiming the same name *)
  let root = fresh_dir () in
  let d1 = Filename.concat root "a_first" in
  let d2 = Filename.concat root "b_second" in
  Dump.dump ~dir:d1 ~aliases:[ "c1" ] Dggt_domains.Text_editing.domain;
  Dump.dump ~dir:d2 ~aliases:[ "c2" ] Dggt_domains.Text_editing.domain;
  List.iter
    (fun d ->
      file_replace
        (Filename.concat d "domain.pack")
        ~old:"name = TextEditing" ~fresh:"name = Twin")
    [ d1; d2 ];
  let reg = Domain_registry.create () in
  let e = err_of (Domain_registry.load_dir reg root) in
  (* reported against the second (clashing) pack's manifest, at name = *)
  check_b "in b_second" true
    (Dggt_util.Strutil.contains_sub ~sub:"b_second" e.Err.file);
  check_s "names domain.pack" "domain.pack" (base e.Err.file);
  check_i "at the name line" 2 e.Err.line;
  check_b "says duplicate" true
    (Dggt_util.Strutil.contains_sub ~sub:"duplicate" e.Err.message);
  (* all-or-nothing: nothing was registered *)
  check_i "registry unchanged" 2 (List.length (Domain_registry.entries reg));
  check_i "generation unchanged" 0 (Domain_registry.generation reg)

let test_registry_pack_overrides_builtin () =
  (* a pack reusing a built-in name (or alias) shadows the built-in: the
     exported built-ins under examples/packs/ are directly servable *)
  let root, _ = clone_packs_root ~name:"TextEditing" ~alias:"te" () in
  let reg = Domain_registry.create () in
  (match Domain_registry.load_dir reg root with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok packs -> check_i "one pack" 1 (List.length packs));
  check_i "still two domains" 2 (List.length (Domain_registry.entries reg));
  let e = Option.get (Domain_registry.find_entry reg "te") in
  check_b "pack won the name" true
    (match e.Domain_registry.origin with
    | Domain_registry.Pack _ -> true
    | Domain_registry.Builtin -> false);
  (* built-ins come back once the packs are gone *)
  let empty = fresh_dir () in
  (match Domain_registry.load_dir reg empty with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok packs -> check_i "no packs" 0 (List.length packs));
  let e = Option.get (Domain_registry.find_entry reg "te") in
  check_b "builtin restored" true
    (e.Domain_registry.origin = Domain_registry.Builtin)

let test_registry_failed_reload_keeps_packs () =
  let root, d = clone_packs_root () in
  let reg = Domain_registry.create () in
  (match Domain_registry.load_dir reg root with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok _ -> ());
  let digest_before = Domain_registry.pack_digest reg in
  (* break the pack, reload: the old clone must survive untouched *)
  let g = Filename.concat d "grammar.bnf" in
  let saved = read g in
  write g "not ::= a ; grammar ::=\n";
  (match Domain_registry.load_dir reg root with
  | Ok _ -> Alcotest.fail "broken pack loaded"
  | Error _ -> ());
  check_i "generation unchanged" 1 (Domain_registry.generation reg);
  check_b "clone still resolvable" true
    (Domain_registry.find reg "TEClone" <> None);
  check_s "digest unchanged" digest_before (Domain_registry.pack_digest reg);
  write g saved

(* ------------------------------------------------------------------ *)
(* golden equivalence: dump → load reproduces the compiled-in domain  *)
(* ------------------------------------------------------------------ *)

let structural_identity (orig : Domain.t) (fromdisk : Domain.t) =
  let g0 = Lazy.force orig.Domain.graph
  and g1 = Lazy.force fromdisk.Domain.graph in
  check_b "grammar (CFG) identical" true
    (g1.Dggt_grammar.Ggraph.cfg = g0.Dggt_grammar.Ggraph.cfg);
  check_b "API document identical" true
    (Dggt_core.Apidoc.entries (Lazy.force fromdisk.Domain.doc)
    = Dggt_core.Apidoc.entries (Lazy.force orig.Domain.doc));
  check_b "queries identical" true (fromdisk.Domain.queries = orig.Domain.queries);
  check_b "defaults identical" true (fromdisk.Domain.defaults = orig.Domain.defaults);
  check_b "stop verbs identical" true
    (fromdisk.Domain.stop_verbs = orig.Domain.stop_verbs);
  check_b "top-k identical" true (fromdisk.Domain.top_k = orig.Domain.top_k);
  check_b "path limits identical" true
    (fromdisk.Domain.path_limits = orig.Domain.path_limits);
  (* unit_filter round-trips as its extension over the doc's APIs — the
     only values the engine ever applies it to *)
  let apis =
    List.map
      (fun (e : Dggt_core.Apidoc.entry) -> e.Dggt_core.Apidoc.api)
      (Dggt_core.Apidoc.entries (Lazy.force orig.Domain.doc))
  in
  let extension d =
    List.map
      (fun a ->
        match d.Domain.unit_filter with None -> true | Some f -> f a)
      apis
  in
  check_b "unit filter extension identical" true
    (extension fromdisk = extension orig)

(* byte-identical synthesis, every [stride]th query *)
let synthesis_identity ?(stride = 1) (orig : Domain.t) (fromdisk : Domain.t) =
  let cfg = { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 20.0 } in
  let s0 = Domain.configure orig cfg and s1 = Domain.configure fromdisk cfg in
  List.iteri
    (fun i (q : Domain.query) ->
      if i mod stride = 0 then
        let a = Engine.run s0 q.Domain.text and b = Engine.run s1 q.Domain.text in
        Alcotest.(check (option string))
          (Printf.sprintf "%s q%d" orig.Domain.name q.Domain.id)
          a.Engine.code b.Engine.code)
    orig.Domain.queries

let dump_and_load (d : Domain.t) =
  let dir = Filename.concat (fresh_dir ()) "pack" in
  Dump.dump ~dir d;
  match Loader.load dir with
  | Error e -> Alcotest.fail (Err.to_string e)
  | Ok l ->
      check_i "check clean" 0 (List.length (Check.run l));
      l.Loader.domain

let test_golden_textediting () =
  let orig = Dggt_domains.Text_editing.domain in
  let fromdisk = dump_and_load orig in
  structural_identity orig fromdisk;
  (* the full 200-query sweep: cheap for TextEditing *)
  synthesis_identity orig fromdisk

let test_golden_astmatcher () =
  let orig = Dggt_domains.Astmatcher.domain in
  let fromdisk = dump_and_load orig in
  structural_identity orig fromdisk;
  (* structural identity already implies byte-identical synthesis (the
     engine is deterministic over these inputs); spot-check a slice here
     and sweep all 100 queries when DGGT_GOLDEN_FULL=1 (CI) *)
  let full = Sys.getenv_opt "DGGT_GOLDEN_FULL" = Some "1" in
  synthesis_identity ~stride:(if full then 1 else 10) orig fromdisk

(* the committed example packs must stay in sync with the compiled-in
   domains (regenerate with `dggt pack dump` after changing a domain) *)
let repo_root () =
  let rec up d =
    if Sys.file_exists (Filename.concat d "dune-project") && Sys.file_exists (Filename.concat d "ISSUE.md")
    then Some d
    else
      let p = Filename.dirname d in
      if p = d then None else up p
  in
  up (Sys.getcwd ())

let test_committed_packs () =
  match repo_root () with
  | None -> ()  (* not running from a checkout; nothing to compare *)
  | Some root ->
      List.iter
        (fun (sub, orig) ->
          let dir = Filename.concat (Filename.concat root "examples/packs") sub in
          match Loader.load dir with
          | Error e -> Alcotest.fail (Err.to_string e)
          | Ok l ->
              check_i (sub ^ " check clean") 0 (List.length (Check.run l));
              structural_identity orig l.Loader.domain)
        [
          ("textediting", Dggt_domains.Text_editing.domain);
          ("astmatcher", Dggt_domains.Astmatcher.domain);
        ]

(* ------------------------------------------------------------------ *)
(* serve: /version, v:1, /reload                                      *)
(* ------------------------------------------------------------------ *)

let http = Test_server.http

let with_pack_server ?packs f =
  let params =
    {
      Serve.default_params with
      Serve.port = 0;
      workers = 2;
      queue_capacity = 64;
      cache_size = 64;
      packs_dir = packs;
    }
  in
  let srv = Serve.create params in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv)

let get_json ~port ~meth ~path ?body () =
  let st, raw = http ~port ~meth ~path ?body () in
  (st, Result.get_ok (J.of_string raw))

let test_serve_version_and_v () =
  with_pack_server (fun srv ->
      let port = Serve.port srv in
      let st, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_i "version status" 200 st;
      check_b "v=1" true (J.int_field "v" j = Some 1);
      check_b "build present" true (J.str_field "build" j <> None);
      check_b "generation 0" true (J.int_field "generation" j = Some 0);
      check_b "no packs" true (J.str_field "pack_digest" j = Some "none");
      (* synth and rank responses carry v too *)
      let body =
        J.to_string
          (J.Obj [ ("query", J.Str "delete all numbers"); ("domain", J.Str "te") ])
      in
      let st, j = get_json ~port ~meth:"POST" ~path:"/synthesize" ~body () in
      check_i "synth status" 200 st;
      check_b "synth v=1" true (J.int_field "v" j = Some 1);
      let st, j = get_json ~port ~meth:"POST" ~path:"/rank" ~body () in
      check_i "rank status" 200 st;
      check_b "rank v=1" true (J.int_field "v" j = Some 1);
      let st, j = get_json ~port ~meth:"GET" ~path:"/domains" () in
      check_i "domains status" 200 st;
      check_b "domains v=1" true (J.int_field "v" j = Some 1);
      (* reload without --packs is a client error *)
      let st, _ = get_json ~port ~meth:"POST" ~path:"/reload" () in
      check_i "reload without packs" 400 st)

let member_exn name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ name)

let test_serve_packs_and_reload () =
  let root, pdir = clone_packs_root () in
  with_pack_server ~packs:root (fun srv ->
      let port = Serve.port srv in
      (* startup load: generation 1, digest set, clone listed as a pack *)
      let st, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_i "version status" 200 st;
      check_b "generation 1" true (J.int_field "generation" j = Some 1);
      check_b "digest set" true (J.str_field "pack_digest" j <> Some "none");
      let digest1 = Option.get (J.str_field "pack_digest" j) in
      let _, j = get_json ~port ~meth:"GET" ~path:"/domains" () in
      let origins =
        match member_exn "domains" j with
        | J.Arr ds ->
            List.filter_map
              (fun d ->
                match (J.str_field "name" d, J.str_field "origin" d) with
                | Some n, Some o -> Some (n, o)
                | _ -> None)
              ds
        | _ -> Alcotest.fail "domains not an array"
      in
      check_b "builtin origin" true
        (List.assoc_opt "TextEditing" origins = Some "builtin");
      check_b "pack origin" true
        (List.assoc_opt "TEClone" origins = Some "pack");
      (* the clone synthesizes exactly like the built-in, via its alias *)
      let q = "delete all numbers" in
      let synth dom =
        let body =
          J.to_string (J.Obj [ ("query", J.Str q); ("domain", J.Str dom) ])
        in
        let st, j = get_json ~port ~meth:"POST" ~path:"/synthesize" ~body () in
        check_i (dom ^ " status") 200 st;
        (Option.get (J.str_field "code" j), J.bool_field "cached" j = Some true)
      in
      let te_code, _ = synth "te" in
      let clone_code, cached = synth "tec" in
      check_s "clone code identical" te_code clone_code;
      check_b "first clone query computed" false cached;
      let _, cached = synth "tec" in
      check_b "repeat served from cache" true cached;
      (* reload: generation bumps, the digest changes with the pack body,
         and the caches are invalidated *)
      file_replace
        (Filename.concat pdir "domain.pack")
        ~old:"source = " ~fresh:"source = v2 ";
      let st, j = get_json ~port ~meth:"POST" ~path:"/reload" () in
      check_i "reload status" 200 st;
      check_b "reload ok" true (J.bool_field "ok" j = Some true);
      check_b "reload generation 2" true (J.int_field "generation" j = Some 2);
      check_b "one pack loaded" true (J.int_field "packs_loaded" j = Some 1);
      let st, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_i "version after reload" 200 st;
      check_b "generation 2" true (J.int_field "generation" j = Some 2);
      check_b "digest changed" true
        (J.str_field "pack_digest" j <> Some digest1);
      let code, cached = synth "tec" in
      check_b "cache invalidated by reload" false cached;
      check_s "still the same codelet" te_code code;
      (* a broken pack must not take the service down: 500, old domains
         keep serving, generation unchanged *)
      let g = Filename.concat pdir "grammar.bnf" in
      let saved = read g in
      write g "broken ::=\n";
      let st, j = get_json ~port ~meth:"POST" ~path:"/reload" () in
      check_i "broken reload status" 500 st;
      check_b "diagnostic names grammar.bnf" true
        (Dggt_util.Strutil.contains_sub ~sub:"grammar.bnf"
           (Option.value (J.str_field "detail" j) ~default:""));
      let st, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_i "version still up" 200 st;
      check_b "generation still 2" true (J.int_field "generation" j = Some 2);
      let code, _ = synth "tec" in
      check_s "old snapshot keeps serving" te_code code;
      write g saved)

(* hot reload under live traffic: every in-flight and subsequent request
   must succeed — reloads may only change what later requests see *)
let test_serve_reload_under_load () =
  let root, pdir = clone_packs_root () in
  with_pack_server ~packs:root (fun srv ->
      let port = Serve.port srv in
      let queries =
        [ "delete all numbers"; "select the first word"; "print each line" ]
      in
      let failures = Atomic.make 0 in
      let statuses = Atomic.make [] in
      let worker dom =
        Thread.create (fun () ->
            List.iter
              (fun q ->
                let body =
                  J.to_string
                    (J.Obj [ ("query", J.Str q); ("domain", J.Str dom) ])
                in
                let st, _ =
                  http ~port ~meth:"POST" ~path:"/synthesize" ~body ()
                in
                let rec push () =
                  let old = Atomic.get statuses in
                  if not (Atomic.compare_and_set statuses old (st :: old))
                  then push ()
                in
                push ();
                if st <> 200 then Atomic.incr failures)
              (queries @ queries @ queries))
      in
      let threads = [ worker "te" (); worker "tec" (); worker "TEClone" () ] in
      (* interleave reloads with the traffic *)
      for i = 1 to 3 do
        file_replace
          (Filename.concat pdir "domain.pack")
          ~old:"source = " ~fresh:"source = r ";
        let st, _ = get_json ~port ~meth:"POST" ~path:"/reload" () in
        check_i (Printf.sprintf "reload %d ok" i) 200 st;
        Thread.delay 0.05
      done;
      List.iter Thread.join threads;
      check_i "no failed requests" 0 (Atomic.get failures);
      check_i "all requests answered" 27
        (List.length (Atomic.get statuses));
      (* traffic continued across generations *)
      let _, j = get_json ~port ~meth:"GET" ~path:"/version" () in
      check_b "generation advanced" true
        (match J.int_field "generation" j with Some g -> g >= 4 | None -> false))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "load round-trip clean" `Quick test_load_roundtrip_clean;
    Alcotest.test_case "missing api.doc" `Quick test_missing_file;
    Alcotest.test_case "missing manifest" `Quick test_missing_manifest;
    Alcotest.test_case "malformed grammar.bnf" `Quick test_malformed_bnf;
    Alcotest.test_case "unknown manifest key" `Quick test_unknown_manifest_key;
    Alcotest.test_case "manifest syntax error" `Quick test_manifest_syntax_error;
    Alcotest.test_case "unparseable ground truth" `Quick
      test_unparseable_ground_truth;
    Alcotest.test_case "bad limits" `Quick test_bad_limits;
    Alcotest.test_case "manifest num_value" `Quick test_manifest_num_value;
    Alcotest.test_case "envelope keys parsed" `Quick test_envelope_keys;
    Alcotest.test_case "envelope validation" `Quick test_envelope_validation;
    Alcotest.test_case "undefined start symbol" `Quick test_undefined_start;
    Alcotest.test_case "queries.tsv optional" `Quick test_queries_optional;
    Alcotest.test_case "check: unknown doc api" `Quick test_check_unknown_doc_api;
    Alcotest.test_case "check: undocumented terminal" `Quick
      test_check_undocumented_terminal;
    Alcotest.test_case "check: query uses undocumented api" `Quick
      test_check_query_uses_undocumented_api;
    Alcotest.test_case "registry builtins" `Quick test_registry_builtins;
    Alcotest.test_case "registry duplicate register" `Quick
      test_registry_duplicate_register;
    Alcotest.test_case "registry load_dir" `Quick test_registry_load_dir;
    Alcotest.test_case "registry duplicate pack name" `Quick
      test_registry_duplicate_pack_name;
    Alcotest.test_case "registry pack overrides builtin" `Quick
      test_registry_pack_overrides_builtin;
    Alcotest.test_case "registry failed reload keeps packs" `Quick
      test_registry_failed_reload_keeps_packs;
    Alcotest.test_case "golden: textediting" `Slow test_golden_textediting;
    Alcotest.test_case "golden: astmatcher" `Slow test_golden_astmatcher;
    Alcotest.test_case "committed example packs" `Quick test_committed_packs;
    Alcotest.test_case "serve: version and v=1" `Quick test_serve_version_and_v;
    Alcotest.test_case "serve: packs and reload" `Quick
      test_serve_packs_and_reload;
    Alcotest.test_case "serve: reload under load" `Quick
      test_serve_reload_under_load;
  ]
