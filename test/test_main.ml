(* Test entry point: every module's suite is registered here. *)

let () =
  Alcotest.run "dggt"
    [
      ("util", Test_util.suite);
      ("nlu", Test_nlu.suite);
      ("grammar", Test_grammar.suite);
      ("obs", Test_obs.suite);
      ("core", Test_core.suite);
      ("autom", Test_autom.suite);
      ("domains", Test_domains.suite);
      ("eval", Test_eval.suite);
      ("server", Test_server.suite);
      ("inc", Test_inc.suite);
      ("pack", Test_pack.suite);
      ("store", Test_store.suite);
      ("par", Test_par.suite);
      ("shard", Test_shard.suite);
      ("properties", Test_props.suite);
      ("semiring", Test_semiring.suite);
      ("stress", Test_stress.suite);
    ]
