(* Tests for the warm-start store: the generic record container
   (dggt_store), the typed spill/load glue (Dggt_server.Warmstore), and
   an end-to-end cold-boot / warm-boot exercise of `dggt serve --store`.

   The corruption cases pin the refuse-and-rebuild contract: a damaged
   store may cost recomputation, it must never crash a boot or serve a
   record that failed a check. *)

module Store = Dggt_store.Store
module Warmstore = Dggt_server.Warmstore
module Cache = Dggt_server.Cache
module Registry = Dggt_pack.Domain_registry
module Engine = Dggt_core.Engine
module Domain = Dggt_domains.Domain
module J = Dggt_server.Jsonio

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* scratch directories and byte surgery                               *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dggt-test-store-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists dir then
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun n -> Sys.remove (Filename.concat dir n))
           (Sys.readdir dir);
         Unix.rmdir dir
       with Sys_error _ | Unix.Unix_error _ -> ()))
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let log_path dir = Filename.concat dir "store.log"

(* flip one byte of store.log in place (the index is left alone, so the
   damage sits inside the committed region) *)
let flip_byte dir off =
  let s = Bytes.of_string (read_file (log_path dir)) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
  write_file (log_path dir) (Bytes.to_string s)

(* offset of [sub]'s first occurrence in store.log *)
let find_in_log dir sub =
  let s = read_file (log_path dir) in
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then Alcotest.fail ("substring not found: " ^ sub)
    else if String.sub s i m = sub then i
    else go (i + 1)
  in
  go 0

let rec_ ?(kind = "cache") ?(name = "r") ?(generation = 1)
    ?(pack_digest = "none") ?(engine = "*") ?(schema = 1) payload =
  { Store.hdr = { kind; name; generation; pack_digest; engine; schema };
    payload }

let open_ok ?(schema = 1) dir =
  match Store.open_dir ~schema dir with
  | Ok s -> s
  | Error e -> Alcotest.fail ("open_dir: " ^ e)

let append_ok s rs =
  match Store.append s rs with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("append: " ^ e)

(* ------------------------------------------------------------------ *)
(* container: roundtrip, index, compaction                            *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_dir (fun dir ->
      let s = open_ok dir in
      append_ok s
        [
          rec_ ~name:"a" "payload-alpha";
          rec_ ~kind:"autom" ~name:"b" ~pack_digest:"ck1" "payload-beta";
        ];
      (* a reopen sees the same records, oldest first *)
      let s = open_ok dir in
      let l = Store.load s in
      check_i "loaded" 2 l.Store.loaded;
      check_i "skipped" 0 l.Store.skipped;
      check_i "rejected" 0 l.Store.rejected;
      check_i "trailing" 0 l.Store.trailing_bytes;
      (match l.Store.records with
      | [ r1; r2 ] ->
          check_s "r1 payload" "payload-alpha" r1.Store.payload;
          check_s "r1 name" "a" r1.Store.hdr.Store.name;
          check_s "r2 kind" "autom" r2.Store.hdr.Store.kind;
          check_s "r2 digest" "ck1" r2.Store.hdr.Store.pack_digest
      | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs));
      let st = Store.stats s in
      check_b "kinds" true
        (st.Store.kinds = [ ("autom", 1); ("cache", 1) ]
        || st.Store.kinds = [ ("cache", 1); ("autom", 1) ]))

let test_store_uncommitted_tail () =
  with_dir (fun dir ->
      let s = open_ok dir in
      append_ok s [ rec_ "committed-one" ];
      (* a crash mid-append: bytes past the index's commit point *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (log_path dir)
      in
      output_string oc "REC1garbage-that-never-got-committed";
      close_out oc;
      let l = Store.load (open_ok dir) in
      check_i "loaded" 1 l.Store.loaded;
      check_i "rejected" 0 l.Store.rejected;
      check_b "tail counted" true (l.Store.trailing_bytes > 0))

let test_store_truncated_log () =
  with_dir (fun dir ->
      let s = open_ok dir in
      append_ok s [ rec_ ~name:"a" "first-payload"; rec_ ~name:"b" "second-payload" ];
      (* chop the last bytes off the committed region *)
      let bytes = read_file (log_path dir) in
      write_file (log_path dir)
        (String.sub bytes 0 (String.length bytes - 5));
      let l = Store.load (open_ok dir) in
      check_i "first survives" 1 l.Store.loaded;
      check_b "damage counted" true (l.Store.rejected >= 1);
      match l.Store.records with
      | [ r ] -> check_s "surviving payload" "first-payload" r.Store.payload
      | _ -> Alcotest.fail "expected exactly the first record")

let test_store_flipped_payload_byte () =
  with_dir (fun dir ->
      let s = open_ok dir in
      append_ok s
        [ rec_ ~name:"a" "victim-payload-xyz"; rec_ ~name:"b" "innocent-bystander" ];
      flip_byte dir (find_in_log dir "victim-payload-xyz");
      (* payload damage rejects that record only: the frame lengths were
         covered by the (intact) header digest, so the scan continues *)
      let l = Store.load (open_ok dir) in
      check_i "one rejected" 1 l.Store.rejected;
      check_i "one loaded" 1 l.Store.loaded;
      match l.Store.records with
      | [ r ] -> check_s "bystander survives" "innocent-bystander" r.Store.payload
      | _ -> Alcotest.fail "expected exactly the second record")

let test_store_flipped_header_byte () =
  with_dir (fun dir ->
      let s = open_ok dir in
      append_ok s [ rec_ ~name:"a" "p-one"; rec_ ~name:"b" "p-two" ];
      (* first frame: magic (11) + marker (4) + two u32 lengths (8) + two
         MD5s (32) = the header bytes start at offset 55; damaging them
         poisons the scan, so both records are rejected *)
      flip_byte dir 55;
      (* header damage stops the scan: nothing after it is recoverable
         (or even countable), so the verdict is one rejection, zero loads *)
      let l = Store.load (open_ok dir) in
      check_i "nothing loads" 0 l.Store.loaded;
      check_i "poison counted once" 1 l.Store.rejected)

let test_store_schema_bump () =
  with_dir (fun dir ->
      let s = open_ok ~schema:1 dir in
      append_ok s [ rec_ ~schema:1 "old-layout" ];
      (* the same directory opened by a binary with a newer payload
         layout: valid records of the old schema are skips, not errors *)
      let l = Store.load (open_ok ~schema:2 dir) in
      check_i "loaded" 0 l.Store.loaded;
      check_i "skipped" 1 l.Store.skipped;
      check_i "rejected" 0 l.Store.rejected)

let test_store_compact () =
  with_dir (fun dir ->
      let s = open_ok dir in
      (* periodic spills append whole snapshots: same identity repeats *)
      append_ok s [ rec_ ~name:"a" "v1"; rec_ ~name:"b" "b1" ];
      append_ok s [ rec_ ~name:"a" "v2" ];
      append_ok s [ rec_ ~name:"a" "v3"; rec_ ~kind:"autom" ~name:"a" "auto" ];
      (match Store.compact s with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_i "kept newest per identity" 3 r.Store.kept;
          check_i "dropped superseded" 2 r.Store.dropped;
          check_b "shrunk" true (r.Store.bytes_after < r.Store.bytes_before));
      let l = Store.load (open_ok dir) in
      check_i "post-compact load" 3 l.Store.loaded;
      check_b "newest payload survives" true
        (List.exists
           (fun r ->
             r.Store.hdr.Store.kind = "cache"
             && r.Store.hdr.Store.name = "a"
             && r.Store.payload = "v3")
           l.Store.records);
      (* a drop predicate removes matching records entirely *)
      (match Store.compact ~drop:(fun h -> h.Store.kind = "autom") s with
      | Error e -> Alcotest.fail e
      | Ok r -> check_i "dropped by predicate" 1 r.Store.dropped);
      let l = Store.load (open_ok dir) in
      check_i "autom gone" 2 l.Store.loaded)

(* ------------------------------------------------------------------ *)
(* warmstore: typed spill/load with the server's key discipline       *)
(* ------------------------------------------------------------------ *)

let outcome code =
  {
    Engine.expr = None;
    code = Some code;
    cgt_size = Some 2;
    ranked = [];
    time_s = 0.01;
    timed_out = false;
    failure = None;
    stats = Dggt_core.Stats.create ();
  }

let fresh_caches ?(capacity = 16) () =
  {
    Warmstore.q = Cache.create ~capacity;
    rank = Cache.create ~capacity;
    word = Cache.create ~capacity;
  }

let q_key ~gen i = (gen, "TextEditing", "dggt", Printf.sprintf "query %d" i, 1)

let registry () = Registry.create ()

let test_warmstore_roundtrip () =
  with_dir (fun dir ->
      let s = open_ok ~schema:Warmstore.schema_version dir in
      let caches = fresh_caches () in
      (* three entries, oldest first: load must reproduce this recency *)
      List.iter
        (fun i -> Cache.add caches.Warmstore.q (q_key ~gen:3 i) (outcome (Printf.sprintf "code%d" i), []))
        [ 1; 2; 3 ];
      Cache.add caches.Warmstore.word
        (3, "TextEditing", "delete", "VB")
        [ { Dggt_core.Word2api.api = "Delete"; score = 1.0 } ];
      (match
         Warmstore.spill s ~generation:3 ~pack_digest:"none" caches
           ~automata:[]
       with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_i "records" 2 r.Warmstore.sp_records;
          check_i "entries" 4 r.Warmstore.sp_entries);
      (* a restart: a different process-local generation, same content *)
      let fresh = fresh_caches () in
      let r =
        Warmstore.load s ~generation:9 ~pack_digest:"none"
          ~registry:(registry ()) fresh
      in
      check_i "applied" 2 r.Warmstore.ld_applied;
      check_i "entries replayed" 4 r.Warmstore.ld_cache_entries;
      check_i "rejected" 0 r.Warmstore.ld_rejected;
      (* re-keyed under the booting generation, recency order intact *)
      check_b "recency preserved" true
        (Cache.keys_mru fresh.Warmstore.q
        = [ q_key ~gen:9 3; q_key ~gen:9 2; q_key ~gen:9 1 ]);
      (match Cache.find fresh.Warmstore.q (q_key ~gen:9 2) with
      | Some (o, []) -> check_b "value" true (o.Engine.code = Some "code2")
      | _ -> Alcotest.fail "warm q_cache entry missing");
      (match Cache.find fresh.Warmstore.word (9, "TextEditing", "delete", "VB") with
      | Some [ c ] -> check_s "candidate" "Delete" c.Dggt_core.Word2api.api
      | _ -> Alcotest.fail "warm word_cache entry missing");
      (* the old generation's keys do not exist *)
      check_b "old gen gone" true
        (Cache.find fresh.Warmstore.q (q_key ~gen:3 1) = None))

let test_warmstore_pack_digest_mismatch () =
  with_dir (fun dir ->
      let s = open_ok ~schema:Warmstore.schema_version dir in
      let caches = fresh_caches () in
      Cache.add caches.Warmstore.q (q_key ~gen:1 1) (outcome "stale", []);
      (match
         Warmstore.spill s ~generation:1 ~pack_digest:"digest-A" caches
           ~automata:[]
       with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      (* the packs changed since the spill: nothing may be served *)
      let fresh = fresh_caches () in
      let r =
        Warmstore.load s ~generation:2 ~pack_digest:"digest-B"
          ~registry:(registry ()) fresh
      in
      check_i "nothing applied" 0 r.Warmstore.ld_applied;
      check_i "nothing rejected" 0 r.Warmstore.ld_rejected;
      check_b "mismatch is a skip" true (r.Warmstore.ld_skipped >= 1);
      check_i "cache stays empty" 0 (Cache.length fresh.Warmstore.q))

let test_warmstore_newest_wins () =
  with_dir (fun dir ->
      let s = open_ok ~schema:Warmstore.schema_version dir in
      (* two periodic spills of the same server: snapshot 2 supersedes 1 *)
      let c1 = fresh_caches () in
      Cache.add c1.Warmstore.q (q_key ~gen:1 1) (outcome "old-answer", []);
      (match Warmstore.spill s ~generation:1 ~pack_digest:"none" c1 ~automata:[] with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      let c2 = fresh_caches () in
      Cache.add c2.Warmstore.q (q_key ~gen:1 1) (outcome "new-answer", []);
      Cache.add c2.Warmstore.q (q_key ~gen:1 2) (outcome "second", []);
      (match Warmstore.spill s ~generation:1 ~pack_digest:"none" c2 ~automata:[] with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      let fresh = fresh_caches () in
      let r =
        Warmstore.load s ~generation:5 ~pack_digest:"none"
          ~registry:(registry ()) fresh
      in
      check_i "newest snapshot applied" 1 r.Warmstore.ld_applied;
      check_b "superseded counted" true (r.Warmstore.ld_skipped >= 1);
      check_i "two entries" 2 (Cache.length fresh.Warmstore.q);
      match Cache.find fresh.Warmstore.q (q_key ~gen:5 1) with
      | Some (o, _) -> check_b "newest value" true (o.Engine.code = Some "new-answer")
      | None -> Alcotest.fail "entry missing")

let test_warmstore_flipped_payload () =
  with_dir (fun dir ->
      let s = open_ok ~schema:Warmstore.schema_version dir in
      let caches = fresh_caches () in
      Cache.add caches.Warmstore.q (q_key ~gen:1 1)
        (outcome "corrupt-me-please", []);
      (match Warmstore.spill s ~generation:1 ~pack_digest:"none" caches ~automata:[] with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      (* the marshalled outcome embeds the code string verbatim *)
      flip_byte dir (find_in_log dir "corrupt-me-please");
      let fresh = fresh_caches () in
      let r =
        Warmstore.load s ~generation:2 ~pack_digest:"none"
          ~registry:(registry ()) fresh
      in
      check_i "rejected" 1 r.Warmstore.ld_rejected;
      check_i "nothing applied" 0 r.Warmstore.ld_applied;
      check_i "cache stays empty" 0 (Cache.length fresh.Warmstore.q))

(* ------------------------------------------------------------------ *)
(* automaton images: digest-guarded restore, registry seeding         *)
(* ------------------------------------------------------------------ *)

let test_autom_image_roundtrip () =
  let module Autom = Dggt_autom.Autom in
  let te = Dggt_domains.Text_editing.domain in
  let am = Dggt_domains.Astmatcher.domain in
  let g = Lazy.force te.Domain.graph in
  let a = Autom.compile g in
  let img = Autom.to_image a in
  check_s "image digest" (Autom.digest a) (Autom.image_digest img);
  (match Autom.of_image g img with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check_b "same graph" true (Autom.graph b == g);
      check_s "same digest" (Autom.digest a) (Autom.digest b);
      check_b "compile time carried" true
        (Autom.compile_time_s b = Autom.compile_time_s a));
  (* restoring against a different grammar refuses *)
  match Autom.of_image (Lazy.force am.Domain.graph) img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "image restored against the wrong graph"

let test_warmstore_automata () =
  with_dir (fun dir ->
      let s = open_ok ~schema:Warmstore.schema_version dir in
      let reg1 = registry () in
      let e1 = Option.get (Registry.find_entry reg1 "te") in
      let a1, compiled = Registry.automaton reg1 e1 in
      check_b "cold compile" true compiled;
      (match
         Warmstore.spill s ~generation:1 ~pack_digest:"none"
           (fresh_caches ())
           ~automata:[ (e1.Registry.domain.Domain.name, Registry.content_key e1, a1) ]
       with
      | Error e -> Alcotest.fail e
      | Ok r -> check_i "one autom record" 1 r.Warmstore.sp_records);
      (* a new process: fresh registry, load seeds its automaton cache *)
      let reg2 = registry () in
      let r =
        Warmstore.load s ~generation:1 ~pack_digest:"none" ~registry:reg2
          (fresh_caches ())
      in
      check_i "restored" 1 r.Warmstore.ld_automata;
      check_i "rejected" 0 r.Warmstore.ld_rejected;
      let e2 = Option.get (Registry.find_entry reg2 "te") in
      let a2, compiled2 = Registry.automaton reg2 e2 in
      check_b "warm boot pays no compile" false compiled2;
      check_s "same tables" (Dggt_autom.Autom.digest a1)
        (Dggt_autom.Autom.digest a2);
      (* a record keyed by a content key no registry entry carries (the
         pack changed): skipped, never force-fed *)
      let reg3 = registry () in
      let bad = open_ok ~schema:Warmstore.schema_version dir in
      ignore bad;
      let c = fresh_caches () in
      (match
         Warmstore.spill s ~generation:1 ~pack_digest:"none" c
           ~automata:
             [ (e1.Registry.domain.Domain.name, "stale-content-key", a1) ]
       with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      let r3 =
        Warmstore.load s ~generation:1 ~pack_digest:"none" ~registry:reg3
          (fresh_caches ())
      in
      (* the newest record for TextEditing's automaton identity carries
         the stale key, so nothing seeds *)
      check_i "stale key seeds nothing" 0 r3.Warmstore.ld_automata;
      check_b "counted as skip" true (r3.Warmstore.ld_skipped >= 1))

(* ------------------------------------------------------------------ *)
(* end to end: dggt serve --store across a restart                    *)
(* ------------------------------------------------------------------ *)

module Serve = Dggt_server.Serve

let store_params dir =
  {
    Serve.default_params with
    Serve.port = 0;
    workers = 1;
    queue_capacity = 8;
    cache_size = 32;
    store_dir = Some dir;
    store_interval_s = 0.0;
  }

let synth_body = {|{"query":"delete all numbers in every line","domain":"te"}|}

let has_line ~prefix body =
  String.split_on_char '\n' body
  |> List.exists (fun l ->
         String.length l >= String.length prefix
         && String.sub l 0 (String.length prefix) = prefix)

let test_e2e_warm_boot () =
  with_dir (fun dir ->
      (* cold boot: compute, then shut down (spills the snapshot) *)
      let srv = Serve.create (store_params dir) in
      let port = Serve.port srv in
      let st, body =
        Test_server.http ~port ~meth:"POST" ~path:"/synthesize"
          ~body:synth_body ()
      in
      check_i "cold status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "cold computes" true (J.bool_field "cached" j = Some false);
      let code = Option.get (J.str_field "code" j) in
      Serve.stop srv;
      (* warm boot: same store, new process-equivalent server *)
      let srv = Serve.create (store_params dir) in
      let port = Serve.port srv in
      let _, metrics =
        Test_server.http ~port ~meth:"GET" ~path:"/metrics" ()
      in
      check_b "store section exported" true
        (has_line ~prefix:"dggt_store_records_loaded_total" metrics);
      check_b "zero warm compiles" false
        (has_line ~prefix:"dggt_autom_compiles_total{" metrics);
      let st, body =
        Test_server.http ~port ~meth:"POST" ~path:"/synthesize"
          ~body:synth_body ()
      in
      check_i "warm status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "warm first request hits" true
        (J.bool_field "cached" j = Some true);
      check_s "byte-identical code" code (Option.get (J.str_field "code" j));
      Serve.stop srv)

let test_e2e_corrupt_store_boots () =
  with_dir (fun dir ->
      let srv = Serve.create (store_params dir) in
      let port = Serve.port srv in
      let st, body =
        Test_server.http ~port ~meth:"POST" ~path:"/synthesize"
          ~body:synth_body ()
      in
      check_i "cold status" 200 st;
      let code =
        Option.get (J.str_field "code" (Result.get_ok (J.of_string body)))
      in
      Serve.stop srv;
      (* wreck the first frame's header: the whole committed log is
         poisoned from there — the worst case short of deleting it *)
      flip_byte dir 55;
      let srv = Serve.create (store_params dir) in
      let port = Serve.port srv in
      let st, body =
        Test_server.http ~port ~meth:"POST" ~path:"/synthesize"
          ~body:synth_body ()
      in
      check_i "boot survives corruption" 200 st;
      let j = Result.get_ok (J.of_string body) in
      (* nothing warm was trusted: the request recomputes... *)
      check_b "recomputed" true (J.bool_field "cached" j = Some false);
      (* ...and recomputation reproduces the answer *)
      check_s "same code" code (Option.get (J.str_field "code" j));
      Serve.stop srv)

let suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "uncommitted tail ignored" `Quick
      test_store_uncommitted_tail;
    Alcotest.test_case "truncated log" `Quick test_store_truncated_log;
    Alcotest.test_case "flipped payload byte" `Quick
      test_store_flipped_payload_byte;
    Alcotest.test_case "flipped header byte" `Quick
      test_store_flipped_header_byte;
    Alcotest.test_case "schema bump skips" `Quick test_store_schema_bump;
    Alcotest.test_case "compact keeps newest" `Quick test_store_compact;
    Alcotest.test_case "warmstore roundtrip + re-key" `Quick
      test_warmstore_roundtrip;
    Alcotest.test_case "pack digest mismatch" `Quick
      test_warmstore_pack_digest_mismatch;
    Alcotest.test_case "newest snapshot wins" `Quick
      test_warmstore_newest_wins;
    Alcotest.test_case "corrupt payload rejected" `Quick
      test_warmstore_flipped_payload;
    Alcotest.test_case "automaton image roundtrip" `Quick
      test_autom_image_roundtrip;
    Alcotest.test_case "automata spill + seed" `Quick
      test_warmstore_automata;
    Alcotest.test_case "e2e warm boot" `Quick test_e2e_warm_boot;
    Alcotest.test_case "e2e corrupt store boots" `Quick
      test_e2e_corrupt_store_boots;
  ]
