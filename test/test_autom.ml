(* Tests for dggt_autom: the compiled automaton's path enumeration must
   be byte-identical to the interpreted Gpath DFS — on the Figure 4
   fixture, on randomized grammars, under randomized tight limits, and
   across every API pair of the built-in domains — plus memo
   determinism, engine-level outcome equivalence, and the registry's
   digest-keyed automaton cache (pointer-equal reuse across unchanged
   reloads, recompile on content change). *)

open Dggt_grammar
module Autom = Dggt_autom.Autom
module Engine = Dggt_core.Engine
module Runner = Dggt_eval.Runner
module Domain = Dggt_domains.Domain
module Registry = Dggt_pack.Domain_registry

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* same Figure 4 grammar as test_core / test_props *)
let fig4_bnf =
  {|
cmd        ::= insert ;
insert     ::= INSERT insert_arg ;
insert_arg ::= string pos iter ;
string     ::= STRING ;
pos        ::= position | START ;
position   ::= POSITION pos_arg ;
pos_arg    ::= after | startfrom ;
after      ::= AFTER string ;
startfrom  ::= STARTFROM string ;
iter       ::= iterscope | ALL ;
iterscope  ::= ITERATIONSCOPE scope ;
scope      ::= linescope | DOCSCOPE ;
|}

let fig4 =
  lazy (Ggraph.build (Result.get_ok (Cfg.of_text ~start:"cmd" fig4_bnf)))

let fig4_autom = lazy (Autom.compile (Lazy.force fig4))

let api_names g = List.map fst (Ggraph.api_nodes g)

let paths_equal name expected got =
  check_i (name ^ ": path count") (List.length expected) (List.length got);
  List.iter2
    (fun (a : Gpath.t) (b : Gpath.t) ->
      check_b (name ^ ": path identical") true
        (a.Gpath.nodes = b.Gpath.nodes
        && a.Gpath.edges = b.Gpath.edges
        && a.Gpath.apis = b.Gpath.apis))
    expected got

(* every (API, API) pair of [g] agrees between DFS and table walk *)
let all_pairs_agree ?limits name g a =
  let apis = api_names g in
  List.iter
    (fun src_api ->
      List.iter
        (fun dst_api ->
          paths_equal
            (Printf.sprintf "%s %s->%s" name src_api dst_api)
            (Gpath.search_between_apis ?limits g ~src_api ~dst_api)
            (Autom.paths_between_apis ?limits a ~src_api ~dst_api))
        apis)
    apis

(* ------------------------------------------------------------------ *)
(* equivalence on the fixture and the built-ins                       *)
(* ------------------------------------------------------------------ *)

let test_fig4_all_pairs () =
  all_pairs_agree "fig4" (Lazy.force fig4) (Lazy.force fig4_autom)

let test_fig4_from_root () =
  let g = Lazy.force fig4 and a = Lazy.force fig4_autom in
  for dst = 0 to Ggraph.node_count g - 1 do
    paths_equal
      (Printf.sprintf "fig4 root->%d" dst)
      (Gpath.search_from_root g ~dst)
      (Autom.paths_from_root a ~dst)
  done

let test_textediting_all_pairs () =
  let g = Lazy.force Dggt_domains.Text_editing.domain.Domain.graph in
  all_pairs_agree "te" g (Autom.compile g)

let test_astmatcher_pairs () =
  (* 505 APIs make the exhaustive square ~255k searches; run it all only
     under DGGT_GOLDEN_FULL=1, a seeded 400-pair sample otherwise *)
  let g = Lazy.force Dggt_domains.Astmatcher.domain.Domain.graph in
  let a = Autom.compile g in
  if Sys.getenv_opt "DGGT_GOLDEN_FULL" = Some "1" then
    all_pairs_agree "am" g a
  else begin
    let apis = Array.of_list (api_names g) in
    let rng = Random.State.make [| 0x5eed |] in
    let n = Array.length apis in
    for _ = 1 to 400 do
      let src_api = apis.(Random.State.int rng n) in
      let dst_api = apis.(Random.State.int rng n) in
      paths_equal
        (Printf.sprintf "am %s->%s" src_api dst_api)
        (Gpath.search_between_apis g ~src_api ~dst_api)
        (Autom.paths_between_apis a ~src_api ~dst_api)
    done
  end

(* ------------------------------------------------------------------ *)
(* randomized grammars and limits (QCheck)                            *)
(* ------------------------------------------------------------------ *)

(* a random grammar over nonterminals n0..n5 and APIs A0..A7: every
   nonterminal defined, 1-3 alternatives of 1-3 symbols each; cycles and
   unreachable rules are all legal and exactly what should stress the
   closure/iterative-deepening port *)
let gen_grammar =
  let open QCheck.Gen in
  let nts = Array.init 6 (fun i -> Printf.sprintf "n%d" i) in
  let apis = Array.init 8 (fun i -> Printf.sprintf "A%d" i) in
  let symbol =
    frequency
      [ (1, map (Array.get nts) (int_bound 5));
        (1, map (Array.get apis) (int_bound 7)) ]
  in
  let alternative = map (String.concat " ") (list_size (int_range 1 3) symbol) in
  let rule nt =
    map
      (fun alts -> Printf.sprintf "%s ::= %s ;" nt (String.concat " | " alts))
      (list_size (int_range 1 3) alternative)
  in
  map (String.concat "\n")
    (flatten_l (Array.to_list (Array.map rule nts)))

let gen_limits =
  let open QCheck.Gen in
  map
    (fun (max_nodes, (max_paths, max_steps)) ->
      { Gpath.max_nodes; max_paths; max_steps })
    (pair (int_range 1 12) (pair (int_range 1 40) (int_range 1 2000)))

let prop_random_grammar =
  QCheck.Test.make ~name:"random grammars: automaton = DFS (default limits)"
    ~count:60
    (QCheck.make ~print:Fun.id gen_grammar)
    (fun bnf ->
      match Cfg.of_text ~start:"n0" bnf with
      | Error _ -> true (* e.g. "n0" never produces an API; not our concern *)
      | exception _ -> true
      | Ok cfg ->
          let g = Ggraph.build cfg in
          let a = Autom.compile g in
          let apis = api_names g in
          List.for_all
            (fun src_api ->
              List.for_all
                (fun dst_api ->
                  Gpath.search_between_apis g ~src_api ~dst_api
                  = Autom.paths_between_apis a ~src_api ~dst_api)
                apis)
            apis
          && List.for_all
               (fun dst ->
                 Gpath.search_from_root g ~dst = Autom.paths_from_root a ~dst)
               (List.init (Ggraph.node_count g) Fun.id))

let prop_random_limits =
  (* truncation order under every cap must match: limits key the memo, so
     each distinct triple exercises a fresh table walk *)
  QCheck.Test.make ~name:"fig4: automaton = DFS under random tight limits"
    ~count:200
    (QCheck.make
       (QCheck.Gen.pair gen_limits
          (QCheck.Gen.pair (QCheck.Gen.int_bound 9) (QCheck.Gen.int_bound 9))))
    (fun (limits, (i, j)) ->
      let g = Lazy.force fig4 in
      let a = Lazy.force fig4_autom in
      let apis = Array.of_list (api_names g) in
      let src_api = apis.(i mod Array.length apis) in
      let dst_api = apis.(j mod Array.length apis) in
      Gpath.search_between_apis ~limits g ~src_api ~dst_api
      = Autom.paths_between_apis ~limits a ~src_api ~dst_api)

(* ------------------------------------------------------------------ *)
(* memo and introspection                                             *)
(* ------------------------------------------------------------------ *)

let test_memo_determinism () =
  let a = Autom.compile (Lazy.force fig4) in
  let before = Autom.memo_counters a in
  let p1 = Autom.paths_between_apis a ~src_api:"INSERT" ~dst_api:"STRING" in
  let p2 = Autom.paths_between_apis a ~src_api:"INSERT" ~dst_api:"STRING" in
  check_b "second call is the memoized list" true (p1 == p2);
  let after = Autom.memo_counters a in
  check_b "hits advanced" true (after.Autom.hits > before.Autom.hits);
  check_b "misses advanced" true (after.Autom.misses > before.Autom.misses);
  check_b "entries bounded by misses" true
    (after.Autom.entries <= after.Autom.misses);
  (* distinct limits are distinct memo keys, not a stale-entry hit *)
  let tight = { Gpath.max_nodes = 3; max_paths = 1; max_steps = 50 } in
  let p3 =
    Autom.paths_between_apis ~limits:tight a ~src_api:"INSERT"
      ~dst_api:"STRING"
  in
  check_b "tight limits see their own entry" false (p1 == p3)

let test_digest_and_stats () =
  let g = Lazy.force fig4 in
  let a1 = Autom.compile g and a2 = Autom.compile g in
  check_s "digest is structural" (Autom.digest a1) (Autom.digest a2);
  check_b "graph is the compiled graph" true (Autom.graph a1 == g);
  check_b "compile time recorded" true (Autom.compile_time_s a1 >= 0.0);
  let te = Lazy.force Dggt_domains.Text_editing.domain.Domain.graph in
  check_b "different grammars, different digests" true
    (Autom.digest a1 <> Autom.digest (Autom.compile te));
  check_b "pp_stats prints" true
    (String.length (Format.asprintf "%a" Autom.pp_stats a1) > 0)

(* ------------------------------------------------------------------ *)
(* engine-level equivalence                                           *)
(* ------------------------------------------------------------------ *)

let engine_equiv (dom : Domain.t) () =
  let dom =
    { dom with Domain.queries = List.filteri (fun i _ -> i < 8) dom.Domain.queries }
  in
  let tweak c = { c with Engine.timeout_s = None; max_steps = Some 100_000 } in
  let plain = Runner.run_domain ~tweak dom Engine.Dggt_alg in
  let autom = Autom.compile (Lazy.force dom.Domain.graph) in
  let fast = Runner.run_domain ~tweak ~autom dom Engine.Dggt_alg in
  List.iter2
    (fun (s : Runner.qresult) (p : Runner.qresult) ->
      let q = s.Runner.query.Domain.text in
      Alcotest.(check (option string))
        (q ^ ": code") s.Runner.outcome.Engine.code p.Runner.outcome.Engine.code;
      Alcotest.(check (option int))
        (q ^ ": cgt_size") s.Runner.outcome.Engine.cgt_size
        p.Runner.outcome.Engine.cgt_size;
      check_b (q ^ ": timed_out") s.Runner.outcome.Engine.timed_out
        p.Runner.outcome.Engine.timed_out;
      Alcotest.(check (option string))
        (q ^ ": failure") s.Runner.outcome.Engine.failure
        p.Runner.outcome.Engine.failure;
      check_b (q ^ ": stats") true
        (s.Runner.outcome.Engine.stats = p.Runner.outcome.Engine.stats))
    plain.Runner.results fast.Runner.results

(* ------------------------------------------------------------------ *)
(* registry cache: compile once per content digest                    *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dggt_autom_test_%d" (Unix.getpid ()))
  in
  if Sys.file_exists d then
    Sys.readdir d |> Array.iter (fun sub ->
        let p = Filename.concat d sub in
        if Sys.is_directory p then
          Sys.readdir p |> Array.iter (fun f -> Sys.remove (Filename.concat p f)))
  else Unix.mkdir d 0o755;
  d

let test_registry_cache () =
  let dir = temp_dir () in
  Dggt_pack.Dump.dump
    ~dir:(Filename.concat dir "te")
    Dggt_domains.Text_editing.domain;
  let reg = Registry.create ~builtins:[] () in
  (match Registry.load_dir reg dir with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Dggt_pack.Err.to_string e));
  let entry () =
    match Registry.find_entry reg "textediting" with
    | Some e -> e
    | None -> Alcotest.fail "pack entry missing"
  in
  let a1, fresh1 = Registry.automaton reg (entry ()) in
  check_b "first call compiles" true fresh1;
  let a2, fresh2 = Registry.automaton reg (entry ()) in
  check_b "second call reuses" false fresh2;
  check_b "second call pointer-equal" true (a1 == a2);
  (* reload with an unchanged pack: same digest, same automaton *)
  (match Registry.load_dir reg dir with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Dggt_pack.Err.to_string e));
  let a3, fresh3 = Registry.automaton reg (entry ()) in
  check_b "unchanged reload reuses" false fresh3;
  check_b "unchanged reload pointer-equal" true (a1 == a3);
  (* touch the grammar: new digest, fresh compile *)
  let bnf = Filename.concat (Filename.concat dir "te") "grammar.bnf" in
  let ic = open_in bnf in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out bnf in
  output_string oc (text ^ "\nextra_rule ::= MOVECURSOR ;\n");
  close_out oc;
  (match Registry.load_dir reg dir with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Dggt_pack.Err.to_string e));
  let a4, fresh4 = Registry.automaton reg (entry ()) in
  check_b "changed grammar recompiles" true fresh4;
  check_b "changed grammar, new automaton" false (a1 == a4);
  check_b "changed grammar, new digest" false
    (Autom.digest a1 = Autom.digest a4)

let suite =
  [
    ("fig4: automaton = DFS on every API pair", `Quick, test_fig4_all_pairs);
    ("fig4: automaton = DFS from root", `Quick, test_fig4_from_root);
    ( "textediting: automaton = DFS on every API pair",
      `Quick,
      test_textediting_all_pairs );
    ( "astmatcher: automaton = DFS (sampled; DGGT_GOLDEN_FULL=1 for all)",
      `Slow,
      test_astmatcher_pairs );
    ("memo: determinism and counters", `Quick, test_memo_determinism);
    ("digest: structural, stats printable", `Quick, test_digest_and_stats);
    ( "engine: autom = plain, DGGT textediting",
      `Quick,
      engine_equiv Dggt_domains.Text_editing.domain );
    ( "engine: autom = plain, DGGT astmatcher",
      `Quick,
      engine_equiv Dggt_domains.Astmatcher.domain );
    ("registry: one compile per content digest", `Quick, test_registry_cache);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_random_grammar; prop_random_limits ]
