(* lib/shard: the consistent-hash ring, the metrics merger, and an
   end-to-end pass over a live router with real worker processes. *)

module Ring = Dggt_shard.Ring
module Promerge = Dggt_shard.Promerge
module Router = Dggt_shard.Router
module Supervisor = Dggt_shard.Supervisor
module J = Dggt_server.Jsonio

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let keys n = List.init n (Printf.sprintf "key-%d")

(* ------------------------------------------------------------------ *)
(* ring                                                               *)
(* ------------------------------------------------------------------ *)

let test_ring_deterministic () =
  let r1 = Ring.make 4 and r2 = Ring.make 4 in
  check_i "slots" 4 (Ring.slots r1);
  List.iter
    (fun k ->
      let a = Ring.lookup r1 k in
      check_b "total" true (a <> None);
      check_b "same ring, same key, same slot" true (a = Ring.lookup r1 k);
      check_b "identically built rings route identically" true
        (a = Ring.lookup r2 k))
    (keys 200);
  (* spread is just a census of lookup *)
  let ks = keys 200 in
  let census = Ring.spread r1 ks in
  check_i "census total" 200 (Array.fold_left ( + ) 0 census);
  check_i "census width" 4 (Array.length census);
  (* the empty ring maps nothing *)
  check_b "empty ring" true (Ring.lookup (Ring.make 0) "x" = None)

let test_ring_distribution () =
  let n = 4 and total = 1000 in
  let census = Ring.spread (Ring.make n) (keys total) in
  Array.iteri
    (fun slot c ->
      if c < total / n / 3 then
        Alcotest.failf "slot %d owns only %d of %d keys" slot c total)
    census

(* a slot joining moves only the keys it takes over — every moved key
   lands on the new slot, and the count stays near K/N (the consistent
   hashing contract; reading the comparison right-to-left is the same
   bound for a slot leaving) *)
let test_ring_movement () =
  let total = 1000 in
  let before = Ring.make 4 and after = Ring.make 5 in
  let moved =
    List.filter
      (fun k -> Ring.lookup before k <> Ring.lookup after k)
      (keys total)
  in
  check_b "join reassigns something" true (moved <> []);
  List.iter
    (fun k ->
      match Ring.lookup after k with
      | Some 4 -> ()
      | s ->
          Alcotest.failf "moved key %s landed on %s, not the joining slot" k
            (match s with Some s -> string_of_int s | None -> "none"))
    moved;
  let bound = 2 * total / 5 in
  if List.length moved > bound then
    Alcotest.failf "join moved %d of %d keys (bound %d)" (List.length moved)
      total bound

(* ------------------------------------------------------------------ *)
(* prometheus merge                                                   *)
(* ------------------------------------------------------------------ *)

let test_promerge_relabel () =
  check_s "labeled sample" "m{shard=\"3\",a=\"b\"} 1"
    (Promerge.relabel ~shard:3 "m{a=\"b\"} 1");
  check_s "bare sample" "m{shard=\"3\"} 2" (Promerge.relabel ~shard:3 "m 2");
  check_s "comments pass through" "# HELP m words"
    (Promerge.relabel ~shard:3 "# HELP m words")

let test_promerge_merge () =
  let w0 = "# HELP m words\n# TYPE m counter\nm{a=\"b\"} 1\n" in
  let w1 = "# HELP m words\n# TYPE m counter\nm{a=\"b\"} 5\n" in
  let merged = Promerge.merge [ (0, w0); (1, w1) ] ~extra:"router_up 1\n" in
  let lines =
    String.split_on_char '\n' merged |> List.filter (fun l -> l <> "")
  in
  let count p = List.length (List.filter p lines) in
  check_i "HELP deduped" 1 (count (fun l -> l = "# HELP m words"));
  check_i "TYPE deduped" 1 (count (fun l -> l = "# TYPE m counter"));
  check_i "both samples survive, relabeled" 1
    (count (fun l -> l = "m{shard=\"0\",a=\"b\"} 1"));
  check_i "second worker sample" 1
    (count (fun l -> l = "m{shard=\"1\",a=\"b\"} 5"));
  check_i "router extra appended verbatim" 1
    (count (fun l -> l = "router_up 1"))

(* ------------------------------------------------------------------ *)
(* end to end: a live router over real worker processes               *)
(* ------------------------------------------------------------------ *)

(* the dggt binary, resolved inside the same _build tree as this test
   runner (test/dune declares the dependency). The runner's cwd depends
   on how it was launched — `dune runtest` runs it in test/, `dune exec`
   where it was invoked — so try every plausible root. *)
let cli_exe () =
  let rel = Filename.concat "bin" "dggt_cli.exe" in
  let abs p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p in
  let candidates =
    [
      abs
        (Filename.concat
           (Filename.dirname (Filename.dirname Sys.executable_name))
           rel);
      abs (Filename.concat Filename.parent_dir_name rel);
      abs (Filename.concat (Filename.concat "_build" "default") rel);
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> Some exe
  | None ->
      Printf.eprintf
        "test_shard: dggt_cli.exe not found near the runner; router \
         end-to-end coverage skipped (looked at %s)\n%!"
        (String.concat ", " candidates);
      None

let with_router f =
  match cli_exe () with
  | None -> () (* binary not built alongside the tests; nothing to drive *)
  | Some exe ->
      let router =
        Router.create
          {
            Router.default_params with
            Router.port = 0;
            shards = 2;
            exe;
            worker_args =
              [
                "--workers"; "1"; "--queue"; "16"; "--cache-size"; "64";
                "--timeout"; "10";
              ];
          }
      in
      Fun.protect ~finally:(fun () -> Router.stop router) (fun () -> f router)

(* "<uid>.w<slot>e<epoch>" -> slot *)
let slot_of_sid sid =
  match String.rindex_opt sid '.' with
  | None -> Alcotest.failf "session id %S carries no placement" sid
  | Some i -> (
      let suffix = String.sub sid (i + 1) (String.length sid - i - 1) in
      try Scanf.sscanf suffix "w%de%d" (fun slot _epoch -> slot)
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        Alcotest.failf "unparseable placement suffix %S" suffix)

let await_respawn router slot ~min_respawns =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    match Supervisor.find (Router.supervisor router) slot with
    | Some w
      when w.Supervisor.state = Supervisor.Healthy
           && w.Supervisor.respawns >= min_respawns ->
        ()
    | _ ->
        if Unix.gettimeofday () >= deadline then
          Alcotest.failf "slot %d did not respawn to healthy" slot
        else begin
          Thread.delay 0.05;
          go ()
        end
  in
  go ()

let test_router_end_to_end () =
  with_router (fun router ->
      let port = Router.port router in
      let http = Test_server.http in
      (* topology: /version names both workers with live pids *)
      let st, body = http ~port ~meth:"GET" ~path:"/version" () in
      check_i "version status" 200 st;
      let j = Result.get_ok (J.of_string body) in
      check_b "router role" true (J.str_field "role" j = Some "router");
      let workers =
        match J.member "workers" j with
        | Some (J.Arr ws) -> ws
        | _ -> Alcotest.fail "no workers array in /version"
      in
      check_i "two workers" 2 (List.length workers);
      List.iter
        (fun w ->
          check_b "live pid" true
            (match J.int_field "pid" w with Some p -> p > 0 | None -> false))
        workers;
      check_b "digests agree" true
        (J.bool_field "pack_digest_mismatch" j = Some false);
      (* stateless traffic reaches both domain homes *)
      let rank domain query =
        http ~port ~meth:"POST" ~path:"/rank"
          ~body:
            (J.to_string
               (J.Obj [ ("query", J.Str query); ("domain", J.Str domain) ]))
          ()
      in
      let st, body = rank "te" "insert \"> \" at the start of each line" in
      check_i "te rank via router" 200 st;
      check_b "te rank ok" true
        (J.bool_field "ok" (Result.get_ok (J.of_string body)) = Some true);
      let st, _ = rank "am" "find nodes of type functionDecl" in
      check_i "am rank via router" 200 st;
      (* sticky: the minted id encodes a slot this router really has *)
      let st, body =
        http ~port ~meth:"POST" ~path:"/session"
          ~body:(J.to_string (J.Obj [ ("domain", J.Str "te") ]))
          ()
      in
      check_i "session create" 201 st;
      let sid =
        Option.get (J.str_field "session" (Result.get_ok (J.of_string body)))
      in
      let slot = slot_of_sid sid in
      check_b "slot in range" true (slot = 0 || slot = 1);
      let qbody =
        J.to_string (J.Obj [ ("query", J.Str "delete all numbers") ])
      in
      let qpath = "/session/" ^ sid ^ "/query" in
      let st, _ = http ~port ~meth:"POST" ~path:qpath ~body:qbody () in
      check_i "session query routed to its worker" 200 st;
      (* a second query to the same id keeps working: same live worker *)
      let st, _ = http ~port ~meth:"POST" ~path:qpath ~body:qbody () in
      check_i "session query again" 200 st;
      (* kill the session's worker: after the respawn the old epoch is
         gone and the sticky request must answer 410, not silently land
         on a fresh worker that never heard of the session *)
      let pid =
        match Supervisor.find (Router.supervisor router) slot with
        | Some w -> w.Supervisor.pid
        | None -> Alcotest.failf "no worker behind slot %d" slot
      in
      Unix.kill pid Sys.sigkill;
      await_respawn router slot ~min_respawns:1;
      let st, _ = http ~port ~meth:"POST" ~path:qpath ~body:qbody () in
      check_i "replaced worker answers 410 Gone" 410 st;
      (* the respawn is visible in the merged exposition *)
      let _, metrics = http ~port ~meth:"GET" ~path:"/metrics" () in
      check_b "respawn counted" true
        (Dggt_util.Strutil.contains_sub
           ~sub:
             (Printf.sprintf "dggt_shard_respawns_total{shard=\"%d\"} 1" slot)
           metrics);
      check_b "sticky 410 counted" true
        (Dggt_util.Strutil.contains_sub ~sub:"dggt_shard_sticky_gone_total 1"
           metrics);
      (* a fresh session created after the respawn works again *)
      let st, body =
        http ~port ~meth:"POST" ~path:"/session"
          ~body:(J.to_string (J.Obj [ ("domain", J.Str "te") ]))
          ()
      in
      check_i "post-respawn session create" 201 st;
      let sid2 =
        Option.get (J.str_field "session" (Result.get_ok (J.of_string body)))
      in
      let st, _ =
        http ~port ~meth:"POST"
          ~path:("/session/" ^ sid2 ^ "/query")
          ~body:qbody ()
      in
      check_i "post-respawn session query" 200 st)

let suite =
  [
    Alcotest.test_case "ring: deterministic total placement" `Quick
      test_ring_deterministic;
    Alcotest.test_case "ring: keys spread over all slots" `Quick
      test_ring_distribution;
    Alcotest.test_case "ring: slot join moves only its keys" `Quick
      test_ring_movement;
    Alcotest.test_case "promerge: relabel" `Quick test_promerge_relabel;
    Alcotest.test_case "promerge: merge dedups comments" `Quick
      test_promerge_merge;
    Alcotest.test_case "router: topology, routing, sticky 410" `Slow
      test_router_end_to_end;
  ]
