(* Tests for the PathMerge semiring: cell semantics per objective, the
   byte-identity of the Min_size chart against the preserved pre-semiring
   walk (Dggt_eval.Refmerge) — on sampled queries, on random queries, and
   through lib/inc sessions over random edit scripts — and the soundness
   of the Top_k n-best (sorted, bounded, duplicate-free, head = the plain
   run's codelet). DGGT_GOLDEN_FULL=1 widens the sampled sweeps to every
   benchmark query. *)

module Semiring = Dggt_core.Semiring
module Cgt = Dggt_core.Cgt
module Engine = Dggt_core.Engine
module Stats = Dggt_core.Stats
module Gpath = Dggt_grammar.Gpath
module Session = Dggt_inc.Session
module Domain = Dggt_domains.Domain

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let te = Dggt_domains.Text_editing.domain
let am = Dggt_domains.Astmatcher.domain

let full_sweep () = Sys.getenv_opt "DGGT_GOLDEN_FULL" = Some "1"

let base_session ?(timeout = 10.0) dom =
  Domain.configure dom
    { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some timeout }

(* structural singleton CGTs; node ids and API names only need to be
   distinct, no grammar is involved at the cell level *)
let leaf_cgt nid api =
  Cgt.merge_path Cgt.empty
    { Gpath.nodes = [| nid |]; edges = [||]; apis = [| api |] }

let cand ?(nid = 1) ?(api = "A") ~size ~cov ~score () =
  {
    Semiring.size;
    cgt = leaf_cgt nid api;
    assignment = List.init cov (fun i -> (i, api));
    score;
  }

(* ------------------------------------------------------------------ *)
(* cells                                                              *)
(* ------------------------------------------------------------------ *)

let test_cell_min_size () =
  let c = Semiring.zero Semiring.Min_size in
  check_b "fresh cell unsolved" false (Semiring.Cell.solved c);
  check_b "fresh cell has no best" true (Semiring.Cell.best c = None);
  let a = cand ~size:3 ~cov:2 ~score:1.0 () in
  check_b "first insert improves" true (Semiring.plus c a);
  check_b "solved after insert" true (Semiring.Cell.solved c);
  (* higher coverage beats smaller size *)
  let b = cand ~size:5 ~cov:3 ~score:0.5 () in
  check_b "coverage wins" true (Semiring.plus c b);
  check_i "best is the 3-cover" 3
    (match Semiring.Cell.best c with
    | Some x -> Semiring.coverage x
    | None -> -1);
  (* same coverage, bigger size: rejected, incumbent kept *)
  check_b "bigger size loses" false
    (Semiring.plus c (cand ~size:9 ~cov:3 ~score:9.0 ()));
  check_i "incumbent size kept" 5
    (match Semiring.Cell.best c with Some x -> x.Semiring.size | None -> -1);
  (* same coverage, smaller size: replaces *)
  check_b "smaller size wins" true
    (Semiring.plus c (cand ~size:4 ~cov:3 ~score:0.1 ()));
  (* a tie on every key keeps the incumbent (update_min's strictness) *)
  check_b "exact tie keeps incumbent" false
    (Semiring.plus c (cand ~size:4 ~cov:3 ~score:0.1 ()));
  check_i "min-size retains one" 1 (List.length (Semiring.Cell.choices c));
  check_i "non-counting count is 0" 0 (Semiring.Cell.count c)

let test_cell_top_k () =
  let c = Semiring.zero (Semiring.Top_k 3) in
  let xs =
    [
      cand ~api:"A" ~size:5 ~cov:2 ~score:1.0 ();
      cand ~api:"B" ~size:3 ~cov:2 ~score:1.0 ();
      cand ~api:"C" ~size:4 ~cov:2 ~score:1.0 ();
      cand ~api:"D" ~size:2 ~cov:1 ~score:9.0 ();
      cand ~api:"E" ~size:6 ~cov:2 ~score:1.0 ();
    ]
  in
  List.iter (fun x -> ignore (Semiring.plus c x)) xs;
  let kept = Semiring.Cell.choices c in
  check_i "bounded at k" 3 (List.length kept);
  (* sorted best-first under compare_cand *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Semiring.compare_cand a b <= 0 && sorted rest
    | _ -> true
  in
  check_b "choices sorted" true (sorted kept);
  check_i "head is the size-3 candidate" 3
    (match Semiring.Cell.best c with Some x -> x.Semiring.size | None -> -1);
  (* the low-coverage candidate never outranks a 2-cover, whatever its
     score; with k=3 it fell off the end *)
  check_b "low coverage evicted" true
    (List.for_all (fun x -> Semiring.coverage x = 2) kept);
  (* exact duplicates are dropped, not accumulated *)
  let n = List.length (Semiring.Cell.choices c) in
  ignore (Semiring.plus c (cand ~api:"B" ~size:3 ~cov:2 ~score:1.0 ()));
  check_i "duplicate dropped" n (List.length (Semiring.Cell.choices c))

let test_cell_count () =
  let c = Semiring.zero Semiring.Count in
  check_i "fresh count 0" 0 (Semiring.Cell.count c);
  ignore (Semiring.plus c (cand ~nid:1 ~api:"A" ~size:1 ~cov:1 ~score:1.0 ()));
  check_b "counting cell solved" true (Semiring.Cell.solved c);
  check_i "count >= 1 once solved" 1 (Semiring.Cell.count c);
  (* the same CGT offered again (different score) is not a new program *)
  ignore (Semiring.plus c (cand ~nid:1 ~api:"A" ~size:1 ~cov:1 ~score:2.0 ()));
  check_i "same CGT not recounted" 1 (Semiring.Cell.count c);
  ignore (Semiring.plus c (cand ~nid:2 ~api:"B" ~size:1 ~cov:1 ~score:0.1 ()));
  check_i "distinct CGT counted" 2 (Semiring.Cell.count c);
  (* Count retains one candidate, like Min_size *)
  check_i "count retains one" 1 (List.length (Semiring.Cell.choices c))

(* ------------------------------------------------------------------ *)
(* Min_size vs the preserved reference walk                           *)
(* ------------------------------------------------------------------ *)

(* byte-equivalence modulo timing, as the bench gate checks it *)
let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.code = b.Engine.code
  && a.Engine.cgt_size = b.Engine.cgt_size
  && a.Engine.failure = b.Engine.failure
  && a.Engine.timed_out = b.Engine.timed_out
  && Stats.equal a.Engine.stats b.Engine.stats

let sample_queries dom =
  let qs =
    List.filter (fun q -> not q.Domain.hard) dom.Domain.queries
    |> List.map (fun q -> q.Domain.text)
  in
  if full_sweep () then qs
  else List.filteri (fun i _ -> i < 4) qs

let test_minsize_matches_reference () =
  List.iter
    (fun dom ->
      let ses = base_session dom in
      List.iter
        (fun q ->
          let sem = Engine.run ses q in
          let r =
            Engine.synthesize_with_merge ~merge:Dggt_eval.Refmerge.synthesize
              ses.Engine.cfg ses.Engine.target q
          in
          if not (sem.Engine.timed_out || r.Engine.timed_out) then
            check_b
              (Printf.sprintf "%s: %S matches reference" dom.Domain.name q)
              true (outcome_equal sem r))
        (sample_queries dom))
    [ te; am ]

let prop_random_query_matches_reference =
  QCheck.Test.make ~name:"semiring Min_size = reference walk on random queries"
    ~count:10
    (QCheck.make
       QCheck.Gen.(pair (oneofl [ `Te; `Am ]) nat)
       ~print:(fun (d, q) ->
         Printf.sprintf "(%s, q%d)" (match d with `Te -> "te" | `Am -> "am") q))
    (fun (which, qidx) ->
      let dom = match which with `Te -> te | `Am -> am in
      let qs =
        List.filter (fun q -> not q.Domain.hard) dom.Domain.queries
      in
      let q = (List.nth qs (qidx mod List.length qs)).Domain.text in
      let ses = base_session ~timeout:5.0 dom in
      let sem = Engine.run ses q in
      let r =
        Engine.synthesize_with_merge ~merge:Dggt_eval.Refmerge.synthesize
          ses.Engine.cfg ses.Engine.target q
      in
      sem.Engine.timed_out || r.Engine.timed_out || outcome_equal sem r)

(* ------------------------------------------------------------------ *)
(* edit scripts through lib/inc sessions vs the reference walk        *)
(* ------------------------------------------------------------------ *)

(* split a query into edit units, never breaking a quoted literal (the
   same chunking the inc suite uses) *)
let edit_chunks q =
  let out = ref [] and buf = Buffer.create 16 and quoted = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if c = '"' then begin
        quoted := not !quoted;
        Buffer.add_char buf c
      end
      else if c = ' ' && not !quoted then flush ()
      else Buffer.add_char buf c)
    q;
  flush ();
  List.rev !out

type op = Append | Drop | Punct

let script_gen =
  QCheck.Gen.(
    triple (oneofl [ `Te; `Am ]) nat
      (list_size (1 -- 4) (oneofl [ Append; Drop; Punct ])))

let revisions_of_script dom qidx ops =
  let qs = List.filter (fun q -> not q.Domain.hard) dom.Domain.queries in
  let q = (List.nth qs (qidx mod List.length qs)).Domain.text in
  let chunks = Array.of_list (edit_chunks q) in
  let n = Array.length chunks in
  let prefix k = String.concat " " (Array.to_list (Array.sub chunks 0 k)) in
  let k = ref (max 1 (n - List.length ops)) in
  let revs = ref [ prefix !k ] in
  List.iter
    (fun op ->
      match op with
      | Append ->
          k := min n (!k + 1);
          revs := prefix !k :: !revs
      | Drop ->
          k := max 1 (!k - 1);
          revs := prefix !k :: !revs
      | Punct -> revs := (prefix !k ^ " .") :: !revs)
    ops;
  List.rev !revs

let prop_edit_script_matches_reference =
  QCheck.Test.make
    ~name:"inc session (semiring) = reference walk over random edit scripts"
    ~count:10
    (QCheck.make script_gen
       ~print:(fun (d, q, ops) ->
         Printf.sprintf "(%s, q%d, [%s])"
           (match d with `Te -> "te" | `Am -> "am")
           q
           (String.concat ";"
              (List.map
                 (function
                   | Append -> "append" | Drop -> "drop" | Punct -> "punct")
                 ops))))
    (fun (which, qidx, ops) ->
      let dom = match which with `Te -> te | `Am -> am in
      let base = base_session ~timeout:5.0 dom in
      let s = Session.create base in
      List.for_all
        (fun rev ->
          let inc, _ = Session.query s rev in
          let r =
            Engine.synthesize_with_merge ~merge:Dggt_eval.Refmerge.synthesize
              base.Engine.cfg base.Engine.target rev
          in
          inc.Engine.timed_out || r.Engine.timed_out || outcome_equal inc r)
        (revisions_of_script dom qidx ops))

(* ------------------------------------------------------------------ *)
(* Top_k soundness and cross-objective invariance                     *)
(* ------------------------------------------------------------------ *)

(* the documented ranking order on what run_ranked exposes *)
let ranked_le (a : Engine.ranked) (b : Engine.ranked) =
  a.Engine.coverage > b.Engine.coverage
  || (a.Engine.coverage = b.Engine.coverage
     && (a.Engine.size < b.Engine.size
        || (a.Engine.size = b.Engine.size && a.Engine.score >= b.Engine.score -. 1e-9)))

let test_topk_soundness () =
  List.iter
    (fun dom ->
      let ses = base_session dom in
      List.iter
        (fun q ->
          let o = Engine.run ses q in
          let rk = Engine.run_ranked ~k:5 ses q in
          check_b (q ^ ": k<=0 is empty") true (Engine.run_ranked ~k:0 ses q = []);
          check_b (q ^ ": at most k") true (List.length rk <= 5);
          let codes = List.map (fun (r : Engine.ranked) -> r.Engine.code) rk in
          check_b (q ^ ": no duplicate codes") true
            (List.length (List.sort_uniq compare codes) = List.length codes);
          let rec sorted = function
            | a :: (b :: _ as rest) -> ranked_le a b && sorted rest
            | _ -> true
          in
          check_b (q ^ ": sorted best-first") true (sorted rk);
          (match (o.Engine.code, rk) with
          | Some c, h :: _ ->
              check_b (q ^ ": head = plain run") true (h.Engine.code = c)
          | Some _, [] ->
              Alcotest.fail (q ^ ": plain run succeeded but ranked is empty")
          | None, _ -> check_b (q ^ ": no code, no ranked") true (rk = []));
          (* k = 1 degenerates to the Min_size chart byte-for-byte *)
          match (o.Engine.code, Engine.run_ranked ~k:1 ses q) with
          | Some c, [ only ] ->
              check_b (q ^ ": k=1 equals run") true
                (only.Engine.code = c
                && Some only.Engine.size = o.Engine.cgt_size)
          | None, [] -> ()
          | _ -> Alcotest.fail (q ^ ": k=1 shape mismatch"))
        (sample_queries dom))
    [ te; am ]

let test_objective_outcome_invariance () =
  (* the candidate stream into every cell is identical across objectives,
     so Count and Top_k runs must produce the Min_size outcome bytes —
     codelet, failure and statistics alike *)
  List.iter
    (fun dom ->
      let ses = base_session dom in
      List.iter
        (fun q ->
          let base = Engine.run ses q in
          List.iter
            (fun obj ->
              let o =
                Engine.run
                  (Engine.with_cfg
                     (fun c -> { c with Engine.objective = obj })
                     ses)
                  q
              in
              if not (base.Engine.timed_out || o.Engine.timed_out) then
                check_b
                  (Printf.sprintf "%s under %s" q (Semiring.to_string obj))
                  true (outcome_equal base o))
            [ Semiring.Count; Semiring.Top_k 5 ])
        (sample_queries dom))
    [ te; am ]

let test_count_chart () =
  (* run the chart itself under Count: whenever synthesis succeeds, every
     solved API node — the winning root included — has seen >= 1 distinct
     CGT, and the winner agrees with the plain engine run *)
  let module Dggt = Dggt_core.Dggt in
  let module Dgg = Dggt_core.Dgg in
  let module Word2api = Dggt_core.Word2api in
  let module Edge2path = Dggt_core.Edge2path in
  List.iter
    (fun dom ->
      let ses = base_session dom in
      let g = Lazy.force dom.Domain.graph in
      List.iter
        (fun q ->
          let cfg = ses.Engine.cfg in
          let dg = Engine.prune cfg (Engine.parse cfg q) in
          let w2a = Word2api.build (Lazy.force dom.Domain.doc) dg in
          let e2p = Edge2path.build g dg w2a in
          let stats = Dggt_core.Stats.create () in
          match
            Dggt.synthesize_with_graph ~objective:Semiring.Count
              ~budget:(Dggt_util.Budget.of_seconds 10.0)
              ~stats g dg w2a e2p
          with
          | exception Dggt_util.Budget.Exhausted -> () (* indeterminate *)
          | None, _ -> ()
          | Some _, dyng ->
              List.iter
                (fun n ->
                  if Dgg.solved n then
                    check_b (q ^ ": solved node counts >= 1") true
                      (Dgg.distinct_count n >= 1))
                (Dgg.nodes dyng))
        (sample_queries dom))
    [ te; am ]

let suite =
  [
    Alcotest.test_case "cell: Min_size semantics" `Quick test_cell_min_size;
    Alcotest.test_case "cell: Top_k semantics" `Quick test_cell_top_k;
    Alcotest.test_case "cell: Count semantics" `Quick test_cell_count;
    Alcotest.test_case "Count chart: solved nodes count >= 1" `Quick
      test_count_chart;
    Alcotest.test_case "Min_size = reference (sampled queries)" `Quick
      test_minsize_matches_reference;
    Alcotest.test_case "Top_k soundness" `Quick test_topk_soundness;
    Alcotest.test_case "objective outcome invariance" `Quick
      test_objective_outcome_invariance;
    QCheck_alcotest.to_alcotest prop_random_query_matches_reference;
    QCheck_alcotest.to_alcotest prop_edit_script_matches_reference;
  ]
