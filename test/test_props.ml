(* Cross-module property tests on the invariants the algorithms rely on:
   path well-formedness, pruning soundness, CGT size bounds, and engine
   determinism. The fixture is the Figure 4 grammar from test_core. *)

open Dggt_grammar
open Dggt_core
module Nlu = Dggt_nlu

let fig4_bnf =
  {|
cmd        ::= insert ;
insert     ::= INSERT insert_arg ;
insert_arg ::= string pos iter ;
string     ::= STRING ;
pos        ::= position | START ;
position   ::= POSITION pos_arg ;
pos_arg    ::= after | startfrom ;
after      ::= AFTER string ;
startfrom  ::= STARTFROM string ;
iter       ::= iterscope | ALL ;
iterscope  ::= ITERATIONSCOPE scope ;
scope      ::= linescope | DOCSCOPE ;
linescope  ::= LINESCOPE ;
|}

let graph =
  lazy (Ggraph.build (Result.get_ok (Cfg.of_text ~start:"cmd" fig4_bnf)))

let api_names =
  [ "INSERT"; "STRING"; "START"; "POSITION"; "AFTER"; "STARTFROM"; "ALL";
    "ITERATIONSCOPE"; "LINESCOPE"; "DOCSCOPE" ]

let api_pair_gen = QCheck.(pair (oneofl api_names) (oneofl api_names))

(* Every path returned by the search is a well-formed top-down chain:
   endpoints match, consecutive edges link, apis match the API nodes. *)
let prop_path_well_formed =
  QCheck.Test.make ~name:"grammar paths are well-formed chains" ~count:200
    api_pair_gen (fun (a, b) ->
      let g = Lazy.force graph in
      let ps = Gpath.search_between_apis g ~src_api:a ~dst_api:b in
      List.for_all
        (fun (p : Gpath.t) ->
          let n = Array.length p.Gpath.nodes in
          n >= 1
          && Array.length p.Gpath.edges = n - 1
          && Ggraph.node_name g p.Gpath.nodes.(0) = a
          && Ggraph.node_name g p.Gpath.nodes.(n - 1) = b
          && Array.for_all
               (fun i ->
                 let e = Ggraph.edge g p.Gpath.edges.(i) in
                 e.Ggraph.src = p.Gpath.nodes.(i)
                 && e.Ggraph.dst = p.Gpath.nodes.(i + 1))
               (Array.init (n - 1) Fun.id)
          && Gpath.size p
             = Array.length
                 (Array.of_list
                    (List.filter (Ggraph.is_api g) (Array.to_list p.Gpath.nodes))))
        ps)

(* Paths are simple: no node repeats. *)
let prop_path_simple =
  QCheck.Test.make ~name:"grammar paths are simple (no repeated node)" ~count:200
    api_pair_gen (fun (a, b) ->
      let g = Lazy.force graph in
      Gpath.search_between_apis g ~src_api:a ~dst_api:b
      |> List.for_all (fun (p : Gpath.t) ->
             let l = Array.to_list p.Gpath.nodes in
             List.length l = List.length (List.sort_uniq compare l)))

(* The search never returns two identical paths. *)
let prop_path_distinct =
  QCheck.Test.make ~name:"path sets are duplicate-free" ~count:200 api_pair_gen
    (fun (a, b) ->
      let g = Lazy.force graph in
      let ps = Gpath.search_between_apis g ~src_api:a ~dst_api:b in
      let keys = List.map (fun (p : Gpath.t) -> Array.to_list p.Gpath.nodes) ps in
      List.length keys = List.length (List.sort_uniq compare keys))

(* Size-based pruning is sound: the true merged API size of any combination
   lies within the precomputed bounds. *)
(* The paper's size bound presumes sibling paths: they share the governor
   API (DGGT groups combinations by governor, so the precondition always
   holds in the engine). The generator respects it — dropping the shared
   root makes the upper bound unsound, which this suite verified the hard
   way. *)
let random_paths_gen =
  QCheck.Gen.(
    list_size (1 -- 3)
      (oneofl
         [ ("INSERT", "STRING"); ("INSERT", "START"); ("INSERT", "LINESCOPE");
           ("INSERT", "ALL"); ("INSERT", "POSITION"); ("INSERT", "AFTER") ]))

let mk_epath i (p : Gpath.t) =
  {
    Edge2path.id = i;
    label = string_of_int i;
    edge = { Nlu.Depgraph.gov = 0; dep = i + 1; label = Nlu.Dep.Dep };
    gov_api = Some p.Gpath.apis.(0);
    dep_api = p.Gpath.apis.(Array.length p.Gpath.apis - 1);
    path = p;
  }

let prop_sprune_bounds_sound =
  QCheck.Test.make ~name:"size bounds contain the true merged size" ~count:200
    (QCheck.make random_paths_gen) (fun pairs ->
      let g = Lazy.force graph in
      let paths =
        List.concat_map
          (fun (a, b) ->
            match Gpath.search_between_apis g ~src_api:a ~dst_api:b with
            | p :: _ -> [ p ]
            | [] -> [])
          pairs
      in
      paths = []
      ||
      let combo = List.mapi mk_epath paths in
      let b = Sprune.bounds_of ~extra:(fun _ -> 0) combo in
      let merged = Cgt.of_paths g paths in
      let size = Cgt.api_size g merged in
      b.Sprune.lo <= size && size <= b.Sprune.hi)

(* Grammar-based pruning only removes combinations that are guaranteed
   grammar-invalid: every pruned combination, if merged, violates
   one-production-per-node. *)
let prop_gprune_lossless =
  QCheck.Test.make ~name:"grammar pruning removes only invalid combinations"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair
           (oneofl [ ("INSERT", "STRING"); ("INSERT", "START") ])
           (oneofl [ ("INSERT", "LINESCOPE"); ("INSERT", "ALL"); ("INSERT", "POSITION") ])))
    (fun ((a1, b1), (a2, b2)) ->
      let g = Lazy.force graph in
      let ps1 = Gpath.search_between_apis g ~src_api:a1 ~dst_api:b1 in
      let ps2 = Gpath.search_between_apis g ~src_api:a2 ~dst_api:b2 in
      let g1 = List.mapi mk_epath ps1 in
      let g2 = List.mapi (fun i p -> mk_epath (100 + i) p) ps2 in
      g1 = [] || g2 = []
      ||
      let tbl = Gprune.prepare g (g1 @ g2) in
      let survivors, total = Gprune.combos tbl ~enabled:true [ g1; g2 ] in
      let all, _ = Gprune.combos tbl ~enabled:false [ g1; g2 ] in
      let pruned =
        List.filter (fun c -> not (List.mem c survivors)) all
      in
      total = List.length all
      && List.for_all
           (fun combo ->
             let cgt =
               Cgt.of_paths g (List.map (fun (p : Edge2path.epath) -> p.Edge2path.path) combo)
             in
             not (Cgt.is_grammar_valid g cgt))
           pruned)

(* CGT merging is commutative and associative in its effect. *)
let prop_cgt_merge_acI =
  QCheck.Test.make ~name:"CGT merge is commutative/associative/idempotent"
    ~count:200
    (QCheck.make random_paths_gen) (fun pairs ->
      let g = Lazy.force graph in
      let paths =
        List.concat_map
          (fun (a, b) ->
            match Gpath.search_between_apis g ~src_api:a ~dst_api:b with
            | p :: _ -> [ Cgt.of_paths g [ p ] ]
            | [] -> [])
          pairs
      in
      match paths with
      | [ x ] -> Cgt.equal (Cgt.merge x x) x
      | x :: y :: rest ->
          let z = List.fold_left Cgt.merge Cgt.empty rest in
          Cgt.equal (Cgt.merge x y) (Cgt.merge y x)
          && Cgt.equal
               (Cgt.merge (Cgt.merge x y) z)
               (Cgt.merge x (Cgt.merge y z))
          && Cgt.equal (Cgt.merge x x) x
      | [] -> true)

(* Engine determinism: synthesizing twice gives the identical codelet. *)
let te_query_gen =
  QCheck.Gen.(
    map
      (fun (v, o, w) -> Printf.sprintf "%s %s %s" v o w)
      (triple
         (oneofl [ "delete"; "select"; "print"; "count" ])
         (oneofl [ "all numbers"; "every line"; "the first word"; "\"x\"" ])
         (oneofl [ ""; "in every sentence"; "of each line"; "containing \"y\"" ])))

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine is deterministic" ~count:40
    (QCheck.make te_query_gen ~print:Fun.id) (fun q ->
      let dom = Dggt_domains.Text_editing.domain in
      let ses =
        Dggt_domains.Domain.configure dom
          { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 5.0 }
      in
      let a = Engine.run ses q in
      let b = Engine.run ses q in
      a.Engine.code = b.Engine.code)

(* Streaming delivery changes when candidates arrive, never what they
   are: a ranked run with an [on_candidate] hook must end on exactly the
   list the plain [run_ranked ~k] returns, with interim revisions
   strictly monotone and every emitted rank inside the top-k window. *)
let te_session =
  lazy
    (Dggt_domains.Domain.configure Dggt_domains.Text_editing.domain
       { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 10.0 })

let am_session =
  lazy
    (Dggt_domains.Domain.configure Dggt_domains.Astmatcher.domain
       { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 10.0 })

let am_queries =
  lazy
    (Dggt_domains.Astmatcher.domain.Dggt_domains.Domain.queries
    |> List.filter (fun (q : Dggt_domains.Domain.query) ->
           not q.Dggt_domains.Domain.hard)
    |> List.filteri (fun i _ -> i < 4)
    |> List.map (fun (q : Dggt_domains.Domain.query) ->
           q.Dggt_domains.Domain.text))

let stream_case_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun q -> (`Te, q)) te_query_gen);
        (1, map (fun q -> (`Am, q)) (oneofl (Lazy.force am_queries)));
      ])

let prop_stream_equivalent =
  QCheck.Test.make
    ~name:"streamed final candidates are byte-identical to run_ranked"
    ~count:24
    (QCheck.make stream_case_gen ~print:snd)
    (fun (which, q) ->
      let ses =
        Lazy.force (match which with `Te -> te_session | `Am -> am_session)
      in
      let k = 5 in
      let emitted = ref [] in
      let o =
        Engine.respond
          ~on_candidate:(fun c -> emitted := c :: !emitted)
          ses
          { Engine.input = Engine.Text q; mode = Engine.Ranked k }
      in
      let baseline = Engine.run_ranked ~k ses q in
      let emitted = List.rev !emitted in
      let revisions_monotone =
        fst
          (List.fold_left
             (fun (ok, prev) (c : Engine.candidate) ->
               (ok && c.Engine.revision > prev, c.Engine.revision))
             (true, 0) emitted)
      in
      o.Engine.ranked = baseline
      && revisions_monotone
      && List.for_all
           (fun (c : Engine.candidate) ->
             c.Engine.rank >= 1 && c.Engine.rank <= k)
           emitted
      && (baseline = [] || emitted <> []))

(* Tree2expr parses whatever it prints (beyond the unit cases). *)
let expr_gen =
  let open QCheck.Gen in
  let api = oneofl [ "A"; "Bb"; "Ccc"; "hasName"; "STRING" ] in
  let lit = opt (oneofl [ "x"; "14"; ":"; "a b" ]) in
  fix (fun self depth ->
      if depth = 0 then
        map2 (fun api lit -> { Tree2expr.api; lit; args = [] }) api lit
      else
        map3
          (fun api lit args -> { Tree2expr.api; lit; args })
          api lit
          (list_size (0 -- 3) (self (depth - 1))))
    2

let prop_expr_print_parse =
  QCheck.Test.make ~name:"expr print/parse round-trip" ~count:300
    (QCheck.make expr_gen) (fun e ->
      match Tree2expr.parse (Tree2expr.to_string e) with
      | Ok e' -> Tree2expr.equal e e'
      | Error _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_path_well_formed;
      prop_path_simple;
      prop_path_distinct;
      prop_sprune_bounds_sound;
      prop_gprune_lossless;
      prop_cgt_merge_acI;
      prop_engine_deterministic;
      prop_stream_equivalent;
      prop_expr_print_parse;
    ]
