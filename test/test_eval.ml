(* Tests for the evaluation harness: runner, metrics, report rendering.
   They run on a trimmed copy of the TextEditing domain so the suite stays
   fast; the full sweeps live in bench/main.exe. *)

open Dggt_core
open Dggt_domains
open Dggt_eval

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let small_te =
  let te = Text_editing.domain in
  { te with Domain.queries = Dggt_util.Listutil.take 12 te.Domain.queries }

let runs =
  lazy
    (let h = Runner.run_domain ~timeout_s:5.0 small_te Engine.Hisyn_alg in
     let d = Runner.run_domain ~timeout_s:5.0 small_te Engine.Dggt_alg in
     (h, d))

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let test_runner_shape () =
  let h, d = Lazy.force runs in
  check_i "hisyn covers all queries" 12 (List.length h.Runner.results);
  check_i "dggt covers all queries" 12 (List.length d.Runner.results);
  check_b "names recorded" true
    (h.Runner.domain_name = "TextEditing" && d.Runner.domain_name = "TextEditing");
  (* results come back in query order *)
  List.iter2
    (fun (r : Runner.qresult) (q : Domain.query) ->
      check_i "order preserved" q.Domain.id r.Runner.query.Domain.id)
    d.Runner.results small_te.Domain.queries

let test_runner_metrics_consistency () =
  let _, d = Lazy.force runs in
  check_b "accuracy in [0,1]" true
    (Runner.accuracy d >= 0.0 && Runner.accuracy d <= 1.0);
  check_b "dggt solves most of the easy prefix" true (Runner.accuracy d >= 0.7);
  check_i "dggt has no timeouts on the prefix" 0 (Runner.timeouts d);
  check_b "total time = sum of times" true
    (Float.abs
       (Runner.total_time d -. List.fold_left ( +. ) 0.0 (Runner.times d))
    < 1e-9)

let test_runner_progress () =
  let seen = ref [] in
  let _ =
    Runner.run_domain ~timeout_s:5.0
      ~progress:(fun i n -> seen := (i, n) :: !seen)
      { small_te with Domain.queries = Dggt_util.Listutil.take 3 small_te.Domain.queries }
      Engine.Dggt_alg
  in
  check_i "progress called per query" 3 (List.length !seen);
  check_b "progress counts up to n" true (List.hd !seen = (3, 3))

let test_runner_tweak () =
  (* the tweak hook must actually reach the engine: an impossible step
     budget forces timeouts *)
  let r =
    Runner.run_domain ~timeout_s:5.0
      ~tweak:(fun c -> { c with Engine.max_steps = Some 1 })
      { small_te with Domain.queries = [ List.nth small_te.Domain.queries 0 ] }
      Engine.Hisyn_alg
  in
  check_i "tweaked run times out" 1 (Runner.timeouts r)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_basic_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Metrics.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Metrics.median [ 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Metrics.maximum [ 1.0; 3.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Metrics.mean []);
  Alcotest.(check (float 1e-9)) "empty median" 0.0 (Metrics.median [])

let test_speedups () =
  let h, d = Lazy.force runs in
  let s = Metrics.speedups ~baseline:h ~optimized:d in
  check_b "max >= median" true (s.Metrics.max >= s.Metrics.median);
  check_b "max >= mean" true (s.Metrics.max >= s.Metrics.mean);
  check_b "speedups positive" true (s.Metrics.median > 0.0)

let test_buckets () =
  let _, d = Lazy.force runs in
  let b = Metrics.buckets d in
  check_i "buckets partition the run"
    (List.length d.Runner.results)
    (b.Metrics.under_100ms + b.Metrics.ms100_to_1s + b.Metrics.over_1s
   + b.Metrics.timed_out)

let test_accumulated () =
  let _, d = Lazy.force runs in
  let acc = Metrics.accumulated d in
  check_i "one point per case" (List.length d.Runner.results) (List.length acc);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | _ -> true
  in
  check_b "monotone nondecreasing" true (monotone acc);
  Alcotest.(check (float 1e-6))
    "last point = total time" (Runner.total_time d)
    (List.nth acc (List.length acc - 1))

let test_speedups_mismatch () =
  let h, d = Lazy.force runs in
  let shorter = { d with Runner.results = Dggt_util.Listutil.take 3 d.Runner.results } in
  Alcotest.check_raises "mismatched runs rejected"
    (Invalid_argument "Metrics.speedups: runs cover different query sets")
    (fun () -> ignore (Metrics.speedups ~baseline:h ~optimized:shorter))

(* ------------------------------------------------------------------ *)
(* Envelope                                                           *)
(* ------------------------------------------------------------------ *)

let test_envelope_check () =
  let _, d = Lazy.force runs in
  let p95 = Envelope.p95_ms d in
  check_b "p95 positive" true (p95 > 0.0);
  (* generous bounds: inside the envelope, verdict carries measurements *)
  let v =
    Envelope.check
      { Envelope.min_accuracy = Some 0.1; max_p95_ms = Some (p95 +. 1000.0) }
      d
  in
  check_b "inside the envelope" true (Envelope.ok v);
  check_b "verdict carries measurements" true
    (Float.abs (v.Envelope.accuracy -. Runner.accuracy d) < 1e-9
    && Float.abs (v.Envelope.p95_ms -. p95) < 1e-9);
  (* impossible floor and ceiling: one violation each, named *)
  let v =
    Envelope.check
      { Envelope.min_accuracy = Some 1.1; max_p95_ms = Some (p95 /. 1e6) }
      d
  in
  check_i "both axes violated" 2 (List.length v.Envelope.violations);
  check_b "not ok" false (Envelope.ok v);
  let has sub s = Dggt_util.Strutil.contains_sub ~sub s in
  check_b "violations name the keys" true
    (List.exists (has "expect-accuracy") v.Envelope.violations
    && List.exists (has "expect-p95-ms") v.Envelope.violations);
  (* absent bounds opt the axis out *)
  let v =
    Envelope.check { Envelope.min_accuracy = None; max_p95_ms = None } d
  in
  check_b "no bounds, no violations" true (Envelope.ok v)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                   *)
(* ------------------------------------------------------------------ *)

let render f =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains s sub = Dggt_util.Strutil.contains_sub ~sub s

let test_table1_renders () =
  let out = render Report.table1 in
  check_b "mentions both domains" true
    (contains out "TextEditing" && contains out "ASTMatcher");
  check_b "mentions paper reference" true (contains out "paper");
  check_b "shows an example codelet" true (contains out "INSERT(")

let test_table2_renders () =
  let h, d = Lazy.force runs in
  let c = { Report.dom = small_te; hisyn = h; dggt = d } in
  let out = render (fun fmt -> Report.table2 fmt [ c ]) in
  check_b "has speedup columns" true (contains out "Speedup");
  check_b "has accuracy columns" true (contains out "Acc");
  check_b "quotes the paper row" true (contains out "1887")

let test_fig7_fig8_render () =
  let h, d = Lazy.force runs in
  let c = { Report.dom = small_te; hisyn = h; dggt = d } in
  let out7 = render (fun fmt -> Report.fig7 fmt c) in
  check_b "fig7 histogram" true (contains out7 "< 0.1 s");
  let out8 = render (fun fmt -> Report.fig8 fmt c) in
  check_b "fig8 columns" true (contains out8 "HISyn (s)")

let test_table3_renders () =
  let out =
    render (fun fmt -> Report.table3 fmt ~ids:[ 1; 2 ] Text_editing.domain)
  in
  check_b "table3 header" true (contains out "gprune");
  check_b "table3 rows" true (contains out "x")

let suite =
  [
    Alcotest.test_case "runner shape" `Slow test_runner_shape;
    Alcotest.test_case "runner metrics" `Slow test_runner_metrics_consistency;
    Alcotest.test_case "runner progress hook" `Quick test_runner_progress;
    Alcotest.test_case "runner tweak hook" `Quick test_runner_tweak;
    Alcotest.test_case "basic statistics" `Quick test_basic_stats;
    Alcotest.test_case "speedups" `Slow test_speedups;
    Alcotest.test_case "buckets partition" `Slow test_buckets;
    Alcotest.test_case "accumulated curve" `Slow test_accumulated;
    Alcotest.test_case "speedups mismatch rejected" `Slow test_speedups_mismatch;
    Alcotest.test_case "envelope check" `Slow test_envelope_check;
    Alcotest.test_case "table1 renders" `Quick test_table1_renders;
    Alcotest.test_case "table2 renders" `Slow test_table2_renders;
    Alcotest.test_case "fig7/fig8 render" `Slow test_fig7_fig8_render;
    Alcotest.test_case "table3 renders" `Slow test_table3_renders;
  ]
