(* Failure injection and structural introspection: malformed inputs,
   budget exhaustion at every stage, degenerate grammars, and Figure 5-style
   assertions on the dynamic grammar graph DGGT builds. *)

open Dggt_grammar
open Dggt_core
module Nlu = Dggt_nlu

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let fig4_bnf =
  {|
cmd        ::= insert ;
insert     ::= INSERT insert_arg ;
insert_arg ::= string pos iter ;
string     ::= STRING ;
pos        ::= position | START ;
position   ::= POSITION pos_arg ;
pos_arg    ::= after | startfrom ;
after      ::= AFTER string ;
startfrom  ::= STARTFROM string ;
iter       ::= iterscope | ALL ;
iterscope  ::= ITERATIONSCOPE scope ;
scope      ::= linescope | DOCSCOPE ;
linescope  ::= LINESCOPE ;
|}

let graph = lazy (Ggraph.build (Result.get_ok (Cfg.of_text ~start:"cmd" fig4_bnf)))

let doc =
  lazy
    (Apidoc.make ~literal_apis:[ "STRING" ]
       [
         ("INSERT", "insert add append a string at a position");
         ("STRING", "a literal string of characters text");
         ("START", "the start beginning of the scope");
         ("POSITION", "a position in the text");
         ("AFTER", "position after a string");
         ("STARTFROM", "position starting from a string");
         ("ALL", "all occurrences");
         ("ITERATIONSCOPE", "iterate over every each scope");
         ("LINESCOPE", "line scope each line");
         ("DOCSCOPE", "whole document file scope");
       ])

(* ------------------------------------------------------------------ *)
(* Dynamic grammar graph structure (paper Figure 5)                   *)
(* ------------------------------------------------------------------ *)

let build_dgg query =
  let g = Lazy.force graph in
  let dg = Queryprune.prune (Nlu.Depparser.parse query) in
  let w2a = Word2api.build (Lazy.force doc) dg in
  let e2p = Edge2path.build g dg w2a in
  let stats = Stats.create () in
  let budget = Dggt_util.Budget.unlimited () in
  let res, dyng = Dggt.synthesize_with_graph ~budget ~stats g dg w2a e2p in
  (res, dyng, dg, stats)

let test_dgg_structure () =
  (* "insert '-' at the start": sibling edges under insert (literal and
     position) — the graph must contain the start node, API nodes for every
     candidate interpretation, and partial-CGT nodes for the surviving
     sibling combinations, linked by path and auxiliary edges. *)
  let res, dyng, dg, _ = build_dgg "insert \"-\" at the start" in
  check_b "synthesis succeeded" true (res <> None);
  let nodes = Dgg.nodes dyng in
  let apis, pcgts, starts =
    List.fold_left
      (fun (a, p, s) (n : Dgg.node) ->
        match Dgg.kind n with
        | Dgg.ApiN _ -> (a + 1, p, s)
        | Dgg.PcgtN _ -> (a, p + 1, s)
        | Dgg.Start -> (a, p, s + 1))
      (0, 0, 0) nodes
  in
  check_i "one start node" 1 starts;
  check_b "API nodes for candidate interpretations" true (apis >= 4);
  check_b "partial-CGT nodes for sibling combinations" true (pcgts >= 1);
  (* every non-start node is reachable via an edge *)
  let edges = Dgg.edges dyng in
  List.iter
    (fun (n : Dgg.node) ->
      if Dgg.kind n <> Dgg.Start then
        check_b "node has an incoming edge" true
          (List.exists (fun (e : Dgg.edge) -> e.Dgg.dst = Dgg.id n) edges))
    nodes;
  (* the winning assignment covers only nodes of the dependency graph and
     the root's chosen API node has the reported size *)
  (match res with
  | Some r ->
      List.iter
        (fun (node, _) ->
          check_b "assignment references dep nodes" true (Nlu.Depgraph.mem dg node))
        r.Synres.assignment;
      check_i "size equals CGT's API count" r.Synres.size
        (Cgt.api_size (Lazy.force graph) r.Synres.cgt)
  | None -> ())

let test_dgg_memoizes_best () =
  (* the sealed cell API: for any solved API node, its best candidate
     really has the recorded size/coverage, and the choices list is
     ordered best-first. *)
  let _, dyng, _, _ = build_dgg "insert \"-\" at the start of each line" in
  List.iter
    (fun (n : Dgg.node) ->
      if Dgg.solved n && Dgg.kind n <> Dgg.Start then begin
        let c = Option.get (Dgg.best n) in
        check_i "size consistent with stored CGT" (Dgg.size n)
          (Cgt.api_size (Lazy.force graph) c.Semiring.cgt);
        check_b "assignment nonempty when solved" true
          (c.Semiring.assignment <> []);
        check_b "best heads the choices" true
          (match Dgg.choices n with
          | h :: _ -> h == c
          | [] -> false)
      end)
    (Dgg.nodes dyng)

let test_dgg_stats_structure () =
  let _, dyng, _, stats = build_dgg "insert \"-\" at the start of each line" in
  check_i "stats node count matches graph" stats.Stats.dgg_nodes
    (Dgg.node_count dyng);
  check_i "stats edge count matches graph" stats.Stats.dgg_edges
    (Dgg.edge_count dyng);
  check_b "pruning monotone" true
    (stats.Stats.combos_total >= stats.Stats.combos_after_gprune
    && stats.Stats.combos_after_gprune >= stats.Stats.combos_after_sprune)

(* ------------------------------------------------------------------ *)
(* Budget exhaustion at every stage                                   *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion_ladder () =
  (* with step budgets from tiny to generous, the engine must either time
     out cleanly or produce the same answer as the unlimited run — never
     crash, never return garbage *)
  let tgt = Engine.target (Lazy.force graph) (Lazy.force doc) in
  let q = "insert \"-\" at the start of each line" in
  let reference =
    Engine.synthesize { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = None } tgt q
  in
  List.iter
    (fun steps ->
      let cfg =
        {
          (Engine.default Engine.Dggt_alg) with
          Engine.timeout_s = None;
          max_steps = Some steps;
        }
      in
      let o = Engine.synthesize cfg tgt q in
      if not o.Engine.timed_out then
        Alcotest.(check (option string))
          (Printf.sprintf "steps=%d agrees with unlimited" steps)
          reference.Engine.code o.Engine.code)
    [ 1; 2; 5; 10; 50; 100; 1000; 100_000 ]

let test_hisyn_budget_ladder () =
  let tgt = Engine.target (Lazy.force graph) (Lazy.force doc) in
  let q = "insert \"-\" at the start" in
  List.iter
    (fun steps ->
      let cfg =
        {
          (Engine.default Engine.Hisyn_alg) with
          Engine.timeout_s = None;
          max_steps = Some steps;
        }
      in
      let o = Engine.synthesize cfg tgt q in
      check_b "timeout or code" true (o.Engine.timed_out || o.Engine.code <> None))
    [ 1; 3; 7; 19; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* Degenerate grammars and inputs                                     *)
(* ------------------------------------------------------------------ *)

let test_single_rule_grammar () =
  let cfg = Result.get_ok (Cfg.of_text ~start:"s" "s ::= ONLY ;") in
  let g = Ggraph.build cfg in
  let d = Apidoc.make [ ("ONLY", "the only thing there is") ] in
  let o =
    Engine.synthesize (Engine.default Engine.Dggt_alg) (Engine.target g d)
      "the only thing"
  in
  Alcotest.(check (option string)) "trivial grammar synthesizes" (Some "ONLY()")
    o.Engine.code

let test_self_recursive_grammar () =
  (* e ::= WRAP e | LIT: unbounded derivations; path caps keep everything
     terminating, and synthesis still works *)
  let cfg = Result.get_ok (Cfg.of_text ~start:"e" "e ::= wrap | LIT ;\nwrap ::= WRAP e ;") in
  let g = Ggraph.build cfg in
  let d =
    Apidoc.make [ ("WRAP", "wrap the inner expression"); ("LIT", "a literal leaf value") ]
  in
  let o =
    Engine.synthesize (Engine.default Engine.Dggt_alg) (Engine.target g d)
      "wrap a literal"
  in
  Alcotest.(check (option string)) "recursive grammar" (Some "WRAP(LIT())") o.Engine.code

let test_absurd_inputs_total () =
  let tgt = Engine.target (Lazy.force graph) (Lazy.force doc) in
  let cfg = { (Engine.default Engine.Dggt_alg) with Engine.timeout_s = Some 3.0 } in
  List.iter
    (fun q ->
      let o = Engine.synthesize cfg tgt q in
      (* outcome is well-formed either way *)
      check_b "code xor failure" true
        ((o.Engine.code <> None) <> (o.Engine.failure <> None)))
    [
      "";
      "????";
      String.concat " " (List.init 120 (fun i -> if i mod 2 = 0 then "insert" else "line"));
      "\"\" \"\" \"\"";
      "insert insert insert insert";
      "\xe2\x82\xac \xc3\xbc \xf0\x9f\x98\x80";
      String.make 4096 'a';
    ]

let test_empty_document () =
  let g = Lazy.force graph in
  let d = Apidoc.make [] in
  let o =
    Engine.synthesize (Engine.default Engine.Dggt_alg) (Engine.target g d)
      "insert a string"
  in
  check_b "no candidates -> clean failure" true (o.Engine.code = None)

let test_doc_grammar_mismatch () =
  (* a document mentioning APIs the grammar lacks must not crash *)
  let g = Lazy.force graph in
  let d = Apidoc.make [ ("GHOST", "a phantom api that the grammar does not know") ] in
  let o =
    Engine.synthesize (Engine.default Engine.Dggt_alg) (Engine.target g d)
      "a phantom api"
  in
  check_b "unknown APIs ignored" true (o.Engine.code = None)

let suite =
  [
    Alcotest.test_case "dgg structure (Fig 5)" `Quick test_dgg_structure;
    Alcotest.test_case "dgg memoization consistent" `Quick test_dgg_memoizes_best;
    Alcotest.test_case "dgg stats mirror graph" `Quick test_dgg_stats_structure;
    Alcotest.test_case "DGGT budget ladder" `Quick test_budget_exhaustion_ladder;
    Alcotest.test_case "HISyn budget ladder" `Quick test_hisyn_budget_ladder;
    Alcotest.test_case "single-rule grammar" `Quick test_single_rule_grammar;
    Alcotest.test_case "self-recursive grammar" `Quick test_self_recursive_grammar;
    Alcotest.test_case "absurd inputs are total" `Quick test_absurd_inputs_total;
    Alcotest.test_case "empty document" `Quick test_empty_document;
    Alcotest.test_case "doc/grammar mismatch" `Quick test_doc_grammar_mismatch;
  ]
