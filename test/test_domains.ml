(* Tests for the two benchmark domains: grammar well-formedness, document
   consistency, ground-truth validity, and end-to-end synthesis on the
   paper's published examples. *)

open Dggt_grammar
open Dggt_core
open Dggt_domains

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let te = Text_editing.domain
let am = Astmatcher.domain

let synth dom alg q =
  Engine.run
    (Domain.configure dom
       { (Engine.default alg) with Engine.timeout_s = Some 10.0 })
    q

(* ------------------------------------------------------------------ *)
(* Structural well-formedness                                         *)
(* ------------------------------------------------------------------ *)

let test_te_counts () =
  check_i "TextEditing has 52 APIs (paper: 52)" 52 (Domain.api_count te);
  check_i "TextEditing has 200 queries (paper: 200)" 200 (Domain.query_count te)

let test_am_counts () =
  (* the paper reports 505 matcher APIs; our reconstruction of the public
     vocabulary lands close *)
  let n = Domain.api_count am in
  check_b (Printf.sprintf "ASTMatcher has ~505 APIs (got %d)" n) true
    (n >= 450 && n <= 520);
  check_i "ASTMatcher has 100 queries (paper: 100)" 100 (Domain.query_count am)

let test_grammars_build () =
  List.iter
    (fun (dom : Domain.t) ->
      let g = Lazy.force dom.Domain.graph in
      check_b (dom.Domain.name ^ " grammar graph nonempty") true
        (Ggraph.node_count g > 0 && Ggraph.edge_count g > 0))
    [ te; am ]

let test_doc_covers_grammar () =
  (* every grammar terminal has a document entry and vice versa *)
  List.iter
    (fun (dom : Domain.t) ->
      let g = Lazy.force dom.Domain.graph in
      let doc = Lazy.force dom.Domain.doc in
      List.iter
        (fun (api, _) ->
          check_b
            (Printf.sprintf "%s: %s documented" dom.Domain.name api)
            true
            (Apidoc.find doc api <> None))
        (Ggraph.api_nodes g);
      List.iter
        (fun (e : Apidoc.entry) ->
          check_b
            (Printf.sprintf "%s: %s in grammar" dom.Domain.name e.Apidoc.api)
            true
            (Ggraph.api_node g e.Apidoc.api <> None))
        (Apidoc.entries doc))
    [ te; am ]

let test_query_ids () =
  List.iter
    (fun (dom : Domain.t) ->
      let ids = List.map (fun (q : Domain.query) -> q.Domain.id) dom.Domain.queries in
      check_b (dom.Domain.name ^ " ids unique") true
        (List.length ids = List.length (List.sort_uniq compare ids)))
    [ te; am ]

let test_ground_truths_parse () =
  (* every expected codelet must be syntactically valid and use only
     documented APIs *)
  List.iter
    (fun (dom : Domain.t) ->
      let doc = Lazy.force dom.Domain.doc in
      List.iter
        (fun (q : Domain.query) ->
          let e = Domain.expected_expr q (* raises on bad truth *) in
          List.iter
            (fun api ->
              check_b
                (Printf.sprintf "%s #%d uses documented API %s" dom.Domain.name
                   q.Domain.id api)
                true
                (Apidoc.find doc api <> None))
            (Dggt_util.Listutil.uniq (Tree2expr.api_multiset e)))
        dom.Domain.queries)
    [ te; am ]

let test_am_grammar_generator () =
  (* the generated BNF is itself valid input to the generic toolchain *)
  let bnf = Lazy.force Am_grammar.bnf in
  (match Dggt_grammar.Bnf.parse bnf with
  | Ok rules -> check_b "generated BNF parses" true (List.length rules > 400)
  | Error e -> Alcotest.failf "generated BNF rejected: %a" Dggt_grammar.Bnf.pp_error e);
  let g = Lazy.force am.Domain.graph in
  (* every node matcher owns a private argument nonterminal *)
  List.iter
    (function
      | Am_spec.Node { name; _ } ->
          check_b (name ^ " has n_ and a_ nonterminals") true
            (Ggraph.nt_node g ("n_" ^ name) <> None
            && Ggraph.nt_node g ("a_" ^ name) <> None)
      | Am_spec.Traversal { name; _ } ->
          check_b (name ^ " traversal wrapper exists") true
            (Ggraph.nt_node g ("n_" ^ name) <> None)
      | Am_spec.Narrow { name; _ } ->
          check_b (name ^ " is a terminal") true (Ggraph.api_node g name <> None))
    Am_spec.all;
  (* literal carriers reachable only under literal-bearing narrowing *)
  check_b "__strlit present" true (Ggraph.api_node g "__strlit" <> None);
  check_b "__intlit present" true (Ggraph.api_node g "__intlit" <> None)

let test_am_kind_discipline () =
  (* a traversal matcher's target nonterminal matches its declared kind:
     hasBody leads to statements, hasDeclaration to declarations *)
  let g = Lazy.force am.Domain.graph in
  let path_exists a b =
    Dggt_grammar.Gpath.search_between_apis g ~src_api:a ~dst_api:b <> []
  in
  check_b "hasBody -> compoundStmt" true (path_exists "hasBody" "compoundStmt");
  check_b "hasDeclaration -> functionDecl" true (path_exists "hasDeclaration" "functionDecl");
  check_b "returns -> pointerType" true (path_exists "returns" "pointerType");
  (* kind discipline: a type-only traversal reaches a statement only by
     detouring through a polymorphic traversal (has/hasDescendant), never
     directly *)
  check_b "pointee -> breakStmt only via detour" true
    (Dggt_grammar.Gpath.search_between_apis g ~src_api:"pointee" ~dst_api:"breakStmt"
    |> List.for_all (fun p -> Dggt_grammar.Gpath.size p > 2));
  (* narrowing applicability: hasName under decl matchers, not type ones *)
  check_b "functionDecl -> hasName" true (path_exists "functionDecl" "hasName");
  check_b "pointerType -> direct hasName impossible" true
    (match Dggt_grammar.Gpath.search_between_apis g ~src_api:"pointerType" ~dst_api:"hasName" with
    | [] -> true
    | ps -> List.for_all (fun p -> Dggt_grammar.Gpath.size p > 2) ps)

let test_defaults_parse () =
  List.iter
    (fun (nt, text) ->
      match Tree2expr.parse text with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "default for %s unparsable: %s" nt m)
    Text_editing.defaults

(* ------------------------------------------------------------------ *)
(* End-to-end: the paper's published examples                         *)
(* ------------------------------------------------------------------ *)

let expect_code dom alg query code =
  let o = synth dom alg query in
  check_s query code (Option.value o.Engine.code ~default:"<fail>")

let test_paper_example_1 () =
  (* Table I example 1 -- the running example of Figs. 3-5 *)
  expect_code te Engine.Dggt_alg "Append \":\" in every line containing numerals."
    "INSERT(STRING(\":\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))"

let test_paper_example_2 () =
  expect_code te Engine.Dggt_alg
    "if a sentence starts with \"-\", add \":\" after 14 characters"
    "INSERT(STRING(\":\"), AFTER(CHARNUM(NUMBER(14))), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(STARTSWITH(PATTERN(\"-\")), ALL())))"

let test_paper_example_5 () =
  expect_code am Engine.Dggt_alg
    "find cxx constructor expressions which declare a cxx method named \"PI\""
    "cxxConstructExpr(hasDeclaration(cxxMethodDecl(hasName(\"PI\"))))"

let test_paper_example_6 () =
  expect_code am Engine.Dggt_alg
    "search for call expressions whose argument is a float literal"
    "callExpr(hasArgument(floatLiteral()))"

let test_paper_example_7 () =
  expect_code am Engine.Dggt_alg "list all binary operators named \"*\""
    "binaryOperator(hasOperatorName(\"*\"))"

(* ------------------------------------------------------------------ *)
(* Accuracy floor on samples (the full sweep lives in the bench)      *)
(* ------------------------------------------------------------------ *)

let sample_accuracy dom n =
  let qs = Dggt_util.Listutil.take n dom.Domain.queries in
  let ok =
    List.length
      (List.filter
         (fun (q : Domain.query) ->
           let o = synth dom Engine.Dggt_alg q.Domain.text in
           Domain.check dom o.Engine.expr q)
         qs)
  in
  (ok, List.length qs)

let test_te_sample_accuracy () =
  let ok, n = sample_accuracy te 25 in
  check_b (Printf.sprintf "TextEditing sample: %d/%d" ok n) true (ok >= n * 3 / 4)

let test_am_sample_accuracy () =
  let ok, n = sample_accuracy am 25 in
  check_b (Printf.sprintf "ASTMatcher sample: %d/%d" ok n) true (ok >= n * 3 / 4)

(* DGGT must finish every sampled query well inside the interactive
   threshold the paper targets (10 s; typical times are milliseconds). *)
let test_dggt_interactive_speed () =
  List.iter
    (fun (dom : Domain.t) ->
      List.iter
        (fun (q : Domain.query) ->
          let o = synth dom Engine.Dggt_alg q.Domain.text in
          check_b
            (Printf.sprintf "%s #%d under 10 s (%.3fs)" dom.Domain.name
               q.Domain.id o.Engine.time_s)
            true (o.Engine.time_s < 10.0))
        (Dggt_util.Listutil.take 15 dom.Domain.queries))
    [ te; am ]

let suite =
  [
    Alcotest.test_case "TextEditing counts" `Quick test_te_counts;
    Alcotest.test_case "ASTMatcher counts" `Quick test_am_counts;
    Alcotest.test_case "grammars build" `Quick test_grammars_build;
    Alcotest.test_case "doc <-> grammar closure" `Quick test_doc_covers_grammar;
    Alcotest.test_case "query ids unique" `Quick test_query_ids;
    Alcotest.test_case "ground truths parse + documented" `Quick test_ground_truths_parse;
    Alcotest.test_case "defaults parse" `Quick test_defaults_parse;
    Alcotest.test_case "ASTMatcher grammar generator" `Quick test_am_grammar_generator;
    Alcotest.test_case "ASTMatcher kind discipline" `Quick test_am_kind_discipline;
    Alcotest.test_case "paper example 1 (TextEditing)" `Quick test_paper_example_1;
    Alcotest.test_case "paper example 2 (TextEditing)" `Quick test_paper_example_2;
    Alcotest.test_case "paper example 5 (ASTMatcher)" `Quick test_paper_example_5;
    Alcotest.test_case "paper example 6 (ASTMatcher)" `Quick test_paper_example_6;
    Alcotest.test_case "paper example 7 (ASTMatcher)" `Quick test_paper_example_7;
    Alcotest.test_case "TextEditing sample accuracy" `Slow test_te_sample_accuracy;
    Alcotest.test_case "ASTMatcher sample accuracy" `Slow test_am_sample_accuracy;
    Alcotest.test_case "DGGT interactive speed" `Slow test_dggt_interactive_speed;
  ]
