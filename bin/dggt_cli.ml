(* dggt — the command-line front end.

     dggt synth  -d textediting "delete all numbers"
     dggt synth  -d astmatcher --engine hisyn "find all virtual methods"
     dggt explain -d textediting "insert \"-\" at the start of each line"
     dggt eval   -d astmatcher --timeout 5 --jobs 4
     dggt autom  -d astmatcher
     dggt serve  --port 8080 --workers 4 --queue 64 --cache-size 512
     dggt pack check examples/packs/textediting
     dggt pack dump -d textediting /tmp/te-pack

   `synth` prints the codelet; `explain` dumps every pipeline stage
   (dependency parse, pruned graph, WordToAPI map, orphans, statistics);
   `eval` sweeps a benchmark domain and reports accuracy/timeouts; `autom`
   compiles and describes a domain's grammar automaton; `serve` runs the
   long-lived HTTP synthesis service (see lib/server/); `pack` validates
   and exports on-disk domain packs (see lib/pack/).

   Every synthesis command accepts --packs DIR: its subdirectories are
   loaded as domain packs next to the built-ins, and -d resolves against
   the combined registry (names and aliases, case-insensitive). *)

open Cmdliner
open Dggt_core
open Dggt_domains
module Nlu = Dggt_nlu
module Registry = Dggt_pack.Domain_registry

let algorithm_conv =
  Arg.conv
    ( (function
      | "dggt" -> Ok Engine.Dggt_alg
      | "hisyn" -> Ok Engine.Hisyn_alg
      | s -> Error (`Msg (Printf.sprintf "unknown engine %S (dggt|hisyn)" s))),
      fun fmt -> function
        | Engine.Dggt_alg -> Format.pp_print_string fmt "dggt"
        | Engine.Hisyn_alg -> Format.pp_print_string fmt "hisyn" )

let domain_arg =
  Arg.(
    value & opt string "textediting"
    & info [ "d"; "domain" ] ~docv:"DOMAIN"
        ~doc:
          "Target domain, by name or alias (built-ins: textediting/te, \
           astmatcher/am; more via --packs).")

let packs_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "packs" ] ~docv:"DIR"
        ~doc:
          "Load every subdirectory of $(docv) that contains a domain.pack \
           as a domain pack, alongside the built-ins.")

let engine_arg =
  Arg.(
    value
    & opt algorithm_conv Engine.Dggt_alg
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"Synthesis engine (dggt|hisyn).")

let timeout_arg =
  Arg.(
    value & opt float 20.0
    & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc:"Per-query wall-clock budget.")

let query_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY" ~doc:"The query words.")

let no_autom_arg =
  Arg.(
    value & flag
    & info [ "no-autom" ]
        ~doc:
          "Skip compiling the grammar automaton and run EdgeToPath's \
           per-query DFS instead. The synthesized codelet is \
           byte-identical either way; this exists for A/B timing.")

let top_arg =
  Arg.(
    value & opt int 1
    & info [ "top" ] ~docv:"N"
        ~doc:
          "Print the $(docv) best candidate codelets instead of just the \
           winner (the chart runs under the Top-k semiring; the first line \
           is always the codelet a plain run would print).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains evaluating whole queries concurrently (1 = \
           sequential). Results are reported in query order and are \
           byte-identical at every setting.")

(* built-ins plus --packs, or the load error's file:line diagnostic *)
let registry_of packs =
  let reg = Registry.create () in
  match packs with
  | None -> Ok reg
  | Some dir -> (
      match Registry.load_dir reg dir with
      | Ok _ -> Ok reg
      | Error e -> Error (Dggt_pack.Err.to_string e))

let resolve_domain reg name =
  match Registry.find reg name with
  | Some d -> Ok d
  | None ->
      Error
        (Printf.sprintf "unknown domain %S (known: %s)" name
           (String.concat ", "
              (List.map
                 (fun (d : Domain.t) -> d.Domain.name)
                 (Registry.domains reg))))

(* resolve -d through the registry and hand the Domain.t to [f] *)
let with_domain packs name f =
  match registry_of packs with
  | Error msg -> `Error (false, msg)
  | Ok reg -> (
      match resolve_domain reg name with
      | Error msg -> `Error (false, msg)
      | Ok dom -> f dom)

(* spin up the whole-query fan-out pool for the command's lifetime; 1 =
   sequential, no pool *)
let with_pool jobs f =
  if jobs > 1 then
    let pool = Dggt_par.Pool.create ~workers:jobs () in
    Fun.protect
      ~finally:(fun () -> Dggt_par.Pool.shutdown pool)
      (fun () -> f (Some pool))
  else f None

(* the grammar automaton, compiled up front unless --no-autom *)
let autom_of ~no_autom (dom : Domain.t) =
  if no_autom then None
  else Some (Dggt_autom.Autom.compile (Lazy.force dom.Domain.graph))

let config ?autom dom alg timeout =
  Domain.configure ?autom dom
    { (Engine.default alg) with Engine.timeout_s = Some timeout }

(* --- synth --------------------------------------------------------- *)

let synth_cmd =
  let run dname packs alg timeout no_autom top words =
    with_domain packs dname (fun dom ->
        let query = String.concat " " words in
        let ses = config ?autom:(autom_of ~no_autom dom) dom alg timeout in
        let o =
          Engine.respond ses
            { Engine.input = Engine.Text query; mode = Engine.Plain }
        in
        match o.Engine.code with
        | Some code ->
            if top > 1 then begin
              (* ranked mode: the head is [code] by construction, so the
                 plain run above is not wasted — it provides the timing
                 and size lines either way *)
              let hints =
                (Engine.respond ses
                   { Engine.input = Engine.Text query; mode = Engine.Ranked top })
                  .Engine.ranked
              in
              List.iteri
                (fun i (r : Engine.ranked) ->
                  Format.printf "%d. %s  (size %d, covers %d, score %.2f)@."
                    (i + 1) r.Engine.code r.Engine.size r.Engine.coverage
                    r.Engine.score)
                hints
            end
            else Format.printf "%s@." code;
            Format.eprintf "(%.1f ms, %d APIs)@." (o.Engine.time_s *. 1000.)
              (Option.value o.Engine.cgt_size ~default:0);
            `Ok ()
        | None ->
            Format.eprintf "no codelet: %s@."
              (Option.value o.Engine.failure ~default:"unknown failure");
            `Error (false, "synthesis failed"))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a codelet from a natural-language query.")
    Term.(
      ret
        (const run $ domain_arg $ packs_arg $ engine_arg $ timeout_arg
       $ no_autom_arg $ top_arg $ query_arg))

(* --- explain ------------------------------------------------------- *)

let explain_cmd =
  let run dname packs alg timeout top words =
    with_domain packs dname (fun dom ->
        let query = String.concat " " words in
        let o =
          Dggt_eval.Explain.run Format.std_formatter ~timeout_s:timeout
            ~algorithm:alg ~top dom query
        in
        if o.Engine.code <> None then `Ok ()
        else `Error (false, "synthesis failed"))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Trace one query through the six-step pipeline and narrate every \
          stage's decisions (candidate APIs, path counts, pruning, \
          relocation, DGG updates). With --top N, also narrate the n-best \
          candidates the Top-k chart kept.")
    Term.(
      ret
        (const run $ domain_arg $ packs_arg $ engine_arg $ timeout_arg
       $ top_arg $ query_arg))

(* --- repl ---------------------------------------------------------- *)

let repl_cmd =
  let run dname packs alg timeout no_autom =
    with_domain packs dname (fun dom ->
        Dggt_inc.Repl.run
          ~prompt:(dom.Domain.name ^ "> ")
          (config ?autom:(autom_of ~no_autom dom) dom alg timeout);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "repl"
       ~doc:
         "Interactive incremental synthesis: each line is a revision of the \
          query, answered with the codelet and a reuse summary (words/paths \
          kept from the previous revision, or a whole-pipeline splice). \
          Commands: :help, :reset, :trace, :stats, :quit.")
    Term.(
      ret
        (const run $ domain_arg $ packs_arg $ engine_arg $ timeout_arg
       $ no_autom_arg))

(* --- eval ---------------------------------------------------------- *)

let check_envelope_arg =
  Arg.(
    value & flag
    & info [ "check-envelope" ]
        ~doc:
          "After the run, compare accuracy and p95 latency against the \
           domain pack's expect-accuracy / expect-p95-ms envelope and exit \
           non-zero on any violation (the CI regression gate). Requires a \
           pack-loaded domain (--packs) whose manifest pins an envelope.")

(* the envelope lives in the pack manifest; the registry knows the pack's
   directory, the loader re-reads the expectations from it *)
let envelope_of reg dname =
  match Registry.find_entry reg dname with
  | Some { Registry.origin = Registry.Pack { dir; _ }; _ } -> (
      match Dggt_pack.Loader.load dir with
      | Error e -> Error (Dggt_pack.Err.to_string e)
      | Ok l ->
          Ok
            {
              Dggt_eval.Envelope.min_accuracy = l.Dggt_pack.Loader.expect_accuracy;
              max_p95_ms = l.Dggt_pack.Loader.expect_p95_ms;
            })
  | Some _ ->
      Error
        (Printf.sprintf
           "--check-envelope: %S is a built-in, not a pack; envelopes live \
            in domain.pack manifests (use --packs)"
           dname)
  | None -> Error (Printf.sprintf "unknown domain %S" dname)

let eval_cmd =
  let run dname packs alg timeout jobs no_autom check_envelope =
    match registry_of packs with
    | Error msg -> `Error (false, msg)
    | Ok reg -> (
        match resolve_domain reg dname with
        | Error msg -> `Error (false, msg)
        | Ok dom ->
            with_pool jobs (fun pool ->
                let r =
                  Dggt_eval.Runner.run_domain ~timeout_s:timeout ?pool
                    ?autom:(autom_of ~no_autom dom)
                    ~progress:(fun i n ->
                      if i mod 25 = 0 || i = n then
                        Format.eprintf "  %d/%d@." i n)
                    dom alg
                in
                Format.printf
                  "%s / %s: accuracy %.3f, %d timeouts, %.2f s total@."
                  r.Dggt_eval.Runner.domain_name
                  (match alg with
                  | Engine.Dggt_alg -> "DGGT"
                  | Engine.Hisyn_alg -> "HISyn")
                  (Dggt_eval.Runner.accuracy r)
                  (Dggt_eval.Runner.timeouts r)
                  (Dggt_eval.Runner.total_time r);
                if not check_envelope then `Ok ()
                else
                  match envelope_of reg dname with
                  | Error msg -> `Error (false, msg)
                  | Ok exp ->
                      let v = Dggt_eval.Envelope.check exp r in
                      Format.printf
                        "envelope: accuracy %.3f (floor %s), p95 %.1f ms \
                         (ceiling %s)@."
                        v.Dggt_eval.Envelope.accuracy
                        (match exp.Dggt_eval.Envelope.min_accuracy with
                        | Some f -> Printf.sprintf "%.3f" f
                        | None -> "none")
                        v.Dggt_eval.Envelope.p95_ms
                        (match exp.Dggt_eval.Envelope.max_p95_ms with
                        | Some c -> Printf.sprintf "%.1f ms" c
                        | None -> "none");
                      if Dggt_eval.Envelope.ok v then `Ok ()
                      else begin
                        List.iter
                          (fun s ->
                            Format.eprintf "envelope violation: %s@." s)
                          v.Dggt_eval.Envelope.violations;
                        `Error (false, "eval envelope violated")
                      end))
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Run a benchmark domain's full query set.")
    Term.(
      ret
        (const run $ domain_arg $ packs_arg $ engine_arg $ timeout_arg
       $ jobs_arg $ no_autom_arg $ check_envelope_arg))

(* --- autom --------------------------------------------------------- *)

let autom_cmd =
  let run dname packs =
    with_domain packs dname (fun dom ->
        let a = Dggt_autom.Autom.compile (Lazy.force dom.Domain.graph) in
        Format.printf "%s: %a@." dom.Domain.name Dggt_autom.Autom.pp_stats a;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "autom"
       ~doc:
         "Compile the domain's grammar into the EdgeToPath automaton and \
          print its vitals: node/edge/API counts, epsilon-closure sizes, \
          content digest and compile time.")
    Term.(ret (const run $ domain_arg $ packs_arg))

(* --- serve --------------------------------------------------------- *)

let serve_cmd =
  let open Dggt_server in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")
  in
  let addr_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Listen address.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Worker pool size (0 = one per core).")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bound on queued requests; a full queue answers 503 with \
             Retry-After.")
  in
  let cache_arg =
    Arg.(
      value & opt int 512
      & info [ "cache-size" ] ~docv:"N"
          ~doc:
            "Whole-query LRU entries (per-stage caches get 4x this; 0 \
             disables caching).")
  in
  let serve_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "t"; "timeout" ] ~docv:"SECONDS"
          ~doc:"Default per-request engine budget.")
  in
  let trace_buffer_arg =
    Arg.(
      value & opt int 32
      & info [ "trace-buffer" ] ~docv:"N"
          ~doc:
            "Recent request traces retained for GET /debug/trace (0 \
             disables retention).")
  in
  let session_ttl_arg =
    Arg.(
      value & opt float 300.0
      & info [ "session-ttl" ] ~docv:"SECONDS"
          ~doc:
            "Idle lifetime of an incremental session (POST /session); \
             accesses slide the window.")
  in
  let session_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "session-cap" ] ~docv:"N"
          ~doc:
            "Max live incremental sessions (least-recently-used beyond; 0 \
             disables session storage).")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Warm-start store directory: caches and compiled automatons \
             are reloaded from $(docv) at boot (so restarts start hot, \
             skipping automaton compiles for unchanged packs) and spilled \
             back periodically and on graceful shutdown. Corrupt or stale \
             records are refused and rebuilt, never served.")
  in
  let store_interval_arg =
    Arg.(
      value & opt float 60.0
      & info [ "store-interval" ] ~docv:"SECONDS"
          ~doc:
            "Seconds between periodic spills to --store (0 spills only on \
             shutdown).")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run $(docv) worker processes behind a consistent-hash router \
             instead of one in-process server: the router proxies over Unix \
             sockets, health-checks and respawns workers, fans POST /reload \
             out, merges GET /metrics and reports the topology in GET \
             /version. With --store each worker gets its own shard-N \
             subdirectory. 0 = single-process serving.")
  in
  let unix_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix-socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of TCP \
             (--addr/--port are ignored). This is how the --shards router \
             runs its workers; it is also usable directly behind any local \
             reverse proxy.")
  in
  let run port addr workers queue cache_size timeout trace_buffer packs
      session_ttl session_cap store store_interval shards unix_socket =
    if shards > 0 then begin
      (* router mode: the workers re-run this same binary with
         --unix-socket; every per-worker knob the user set travels to
         them on their command line *)
      let worker_args =
        (if workers > 0 then [ "--workers"; string_of_int workers ] else [])
        @ [
            "--queue";
            string_of_int queue;
            "--cache-size";
            string_of_int cache_size;
            "--timeout";
            Printf.sprintf "%g" timeout;
            "--trace-buffer";
            string_of_int trace_buffer;
            "--session-ttl";
            Printf.sprintf "%g" session_ttl;
            "--session-cap";
            string_of_int session_cap;
          ]
        @ (match packs with Some d -> [ "--packs"; d ] | None -> [])
      in
      Dggt_shard.Router.run
        {
          Dggt_shard.Router.default_params with
          Dggt_shard.Router.addr;
          port;
          shards;
          exe = Sys.executable_name;
          worker_args;
          store_dir = store;
          proxy_timeout_s = Float.max 30.0 (timeout *. 2.0);
        };
      `Ok ()
    end
    else begin
      Serve.run
        {
          Serve.addr;
          port;
          unix_socket;
          workers;
          queue_capacity = queue;
          cache_size;
          default_timeout_s = timeout;
          trace_buffer;
          packs_dir = packs;
          session_ttl_s = session_ttl;
          session_cap;
          store_dir = store;
          store_interval_s = store_interval;
        };
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent HTTP synthesis service (POST /synthesize, POST \
          /rank, POST /reload, POST /session, POST /session/ID/query, \
          DELETE /session/ID, GET /domains, GET /version, GET /metrics, \
          GET /healthz, GET /debug/trace). With --shards N, run N worker \
          processes behind a consistent-hash router on the same endpoints.")
    Term.(
      ret
        (const run $ port_arg $ addr_arg $ workers_arg $ queue_arg
       $ cache_arg $ serve_timeout_arg $ trace_buffer_arg $ packs_arg
       $ session_ttl_arg $ session_cap_arg $ store_arg $ store_interval_arg
       $ shards_arg $ unix_socket_arg))

(* --- pack ---------------------------------------------------------- *)

let pack_check_cmd =
  let dirs_arg =
    Arg.(
      non_empty & pos_all dir []
      & info [] ~docv:"PACKDIR" ~doc:"Domain pack directories to validate.")
  in
  let run dirs =
    let failed = ref false in
    let problem fmt =
      Printf.ksprintf
        (fun msg ->
          failed := true;
          Printf.eprintf "%s\n" msg)
        fmt
    in
    List.iter
      (fun dir ->
        match Dggt_pack.Loader.load dir with
        | Error e -> problem "%s" (Dggt_pack.Err.to_string e)
        | Ok loaded -> (
            match Dggt_pack.Check.run loaded with
            | [] ->
                let d = loaded.Dggt_pack.Loader.domain in
                let a =
                  Dggt_autom.Autom.compile (Lazy.force d.Domain.graph)
                in
                Printf.printf
                  "%s: ok — %s (%d APIs, %d queries; automaton %s, %.1f ms)\n"
                  dir d.Domain.name (Domain.api_count d)
                  (Domain.query_count d)
                  (String.sub (Dggt_autom.Autom.digest a) 0 12)
                  (Dggt_autom.Autom.compile_time_s a *. 1000.)
            | errs ->
                List.iter
                  (fun e -> problem "%s" (Dggt_pack.Err.to_string e))
                  errs))
      dirs;
    if !failed then `Error (false, "pack check failed") else `Ok ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate domain packs: load each directory, then check that every \
          documented API is reachable in the grammar graph, every \
          ground-truth codelet parses and uses documented APIs, and the \
          search limits are sane. Prints file:line for every problem.")
    Term.(ret (const run $ dirs_arg))

let pack_dump_cmd =
  let outdir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OUTDIR" ~doc:"Directory to write the pack into.")
  in
  let run dname packs outdir =
    match registry_of packs with
    | Error msg -> `Error (false, msg)
    | Ok reg -> (
        match Registry.find_entry reg dname with
        | None -> (
            match resolve_domain reg dname with
            | Error msg -> `Error (false, msg)
            | Ok _ -> assert false)
        | Some e ->
            Dggt_pack.Dump.dump ~dir:outdir ~aliases:e.Registry.aliases
              e.Registry.domain;
            Printf.printf "wrote %s (%s)\n" outdir
              e.Registry.domain.Domain.name;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Export a domain as an on-disk pack (domain.pack, grammar.bnf, \
          api.doc, queries.tsv). Loading the result back synthesizes \
          byte-identically to the original.")
    Term.(ret (const run $ domain_arg $ packs_arg $ outdir_arg))

let pack_cmd =
  Cmd.group
    (Cmd.info "pack"
       ~doc:"Validate (check) and export (dump) on-disk domain packs.")
    [ pack_check_cmd; pack_dump_cmd ]

(* --- store --------------------------------------------------------- *)

let store_dir_arg =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"STOREDIR"
        ~doc:"Warm-start store directory (as given to dggt serve --store).")

(* the CLI opens the store under the server's payload schema, so its
   loaded/skipped verdicts match what a boot would apply *)
let with_store dir f =
  match
    Dggt_store.Store.open_dir ~schema:Dggt_server.Warmstore.schema_version dir
  with
  | Error msg -> `Error (false, msg)
  | Ok s -> f s

let store_stats_cmd =
  let run dir =
    with_store dir (fun s ->
        let st = Dggt_store.Store.stats s in
        Printf.printf
          "%s: %d bytes (%d committed), %d records loaded, %d skipped, %d \
           rejected, %d trailing bytes\n"
          dir st.Dggt_store.Store.log_bytes st.Dggt_store.Store.committed_bytes
          st.Dggt_store.Store.s_loaded st.Dggt_store.Store.s_skipped
          st.Dggt_store.Store.s_rejected st.Dggt_store.Store.s_trailing_bytes;
        List.iter
          (fun (kind, n) -> Printf.printf "  %-8s %d\n" kind n)
          st.Dggt_store.Store.kinds;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a warm-start store: file sizes, record verdicts under \
          the current payload schema, and loaded records by kind.")
    Term.(ret (const run $ store_dir_arg))

let store_verify_cmd =
  let run dir =
    with_store dir (fun s ->
        let l = Dggt_store.Store.verify s in
        Printf.printf
          "%s: %d records ok, %d skipped (schema), %d rejected, %d trailing \
           bytes\n"
          dir l.Dggt_store.Store.loaded l.Dggt_store.Store.skipped
          l.Dggt_store.Store.rejected l.Dggt_store.Store.trailing_bytes;
        if l.Dggt_store.Store.rejected > 0 then
          `Error (false, "store has corrupt records (a boot rebuilds them)")
        else `Ok ())
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-check every record's framing and digests. Exits non-zero when \
          any record is corrupt — a server boot would refuse those records \
          and rebuild their contents, never serve them.")
    Term.(ret (const run $ store_dir_arg))

let store_compact_cmd =
  let run dir =
    with_store dir (fun s ->
        match Dggt_store.Store.compact s with
        | Error msg -> `Error (false, msg)
        | Ok r ->
            Printf.printf "%s: kept %d records, dropped %d, %d -> %d bytes\n"
              dir r.Dggt_store.Store.kept r.Dggt_store.Store.dropped
              r.Dggt_store.Store.bytes_before r.Dggt_store.Store.bytes_after;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite the log keeping only the newest record per (kind, name, \
          engine): periodic spills append whole snapshots, so a \
          long-running server's log folds down to one snapshot's worth.")
    Term.(ret (const run $ store_dir_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect (stats), check (verify) and rewrite (compact) a warm-start \
          store directory (dggt serve --store).")
    [ store_stats_cmd; store_verify_cmd; store_compact_cmd ]

let () =
  let info =
    Cmd.info "dggt" ~version:"1.0.0"
      ~doc:"Near real-time NLU-driven natural-language programming (DGGT)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synth_cmd;
            explain_cmd;
            repl_cmd;
            eval_cmd;
            autom_cmd;
            serve_cmd;
            pack_cmd;
            store_cmd;
          ]))
