type kind = Word | Number | Quoted | Punct | Symbol

type t = { index : int; text : string; kind : kind }

let make index text kind = { index; text; kind }
let is_word t = t.kind = Word
let lower t = if t.kind = Word then Dggt_util.Strutil.lowercase t.text else t.text

let kind_to_string = function
  | Word -> "word"
  | Number -> "number"
  | Quoted -> "quoted"
  | Punct -> "punct"
  | Symbol -> "symbol"

let pp fmt t =
  Format.fprintf fmt "%d:%s[%s]" t.index t.text (kind_to_string t.kind)

let equal (a : t) b = a = b
