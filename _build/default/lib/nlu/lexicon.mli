(** Closed-class word lists and an open-class POS lexicon covering the
    vocabulary of the two benchmark domains (text editing, Clang AST
    matching) plus general imperative English.

    The tagger consults this lexicon first and falls back to suffix
    heuristics ({!Tagger}) for out-of-vocabulary words. *)

val lookup : string -> Pos.t list
(** Candidate tags for a lowercase word, most likely first. Empty for
    out-of-vocabulary words. *)

val is_stopword : string -> bool
(** Words carrying no domain semantics, dropped by query-graph pruning even
    though some are content-POS ("please", "want", "like", "thing"). *)

val can_be_verb : string -> bool
val can_be_noun : string -> bool
