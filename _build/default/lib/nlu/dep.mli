(** Dependency relation labels (collapsed Stanford style).

    Prepositions are collapsed into the edge label ([Nmod "in"] for
    "append ... in every line"), as HISyn's pipeline does, so the pruned
    dependency graph contains only content words. *)

type t =
  | Root
  | Obj           (** direct object: insert -> string *)
  | Nsubj         (** subject (relative clauses): contain -> line *)
  | Nmod of string (** nominal modifier collapsed over a preposition *)
  | Advcl of string (** adverbial clause collapsed over its marker ("if") *)
  | Acl            (** clausal modifier of a noun: line -> containing *)
  | Amod           (** adjectival modifier: line -> empty *)
  | Det            (** determiner: line -> every *)
  | Nummod         (** numeric modifier: characters -> 14 *)
  | Compound       (** noun compound: "constructor expressions" *)
  | Conj of string (** coordination, label carries the conjunction *)
  | Lit            (** attachment of a quoted literal *)
  | Dep            (** unclassified *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
