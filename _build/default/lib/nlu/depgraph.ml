type node = {
  id : int;
  text : string;
  lemma : string;
  pos : Pos.t;
  lit : string option;
}

type edge = { gov : int; dep : int; label : Dep.t }
type t = { nodes : node list; edges : edge list; root : int }

let node_opt t id = List.find_opt (fun n -> n.id = id) t.nodes

let node t id =
  match node_opt t id with Some n -> n | None -> raise Not_found

let mem t id = node_opt t id <> None

let children t id =
  List.filter (fun e -> e.gov = id) t.edges
  |> List.sort (fun a b -> compare a.dep b.dep)

let parent t id = List.find_opt (fun e -> e.dep = id) t.edges

let depth t id =
  (* Walk parent links; cycles (parser bugs) are cut by a visited set. *)
  let rec go id visited acc =
    if List.mem id visited then acc
    else
      match parent t id with
      | None -> acc
      | Some e -> go e.gov (id :: visited) (acc + 1)
  in
  go id [] 0

let max_depth t = List.fold_left (fun m n -> max m (depth t n.id)) 0 t.nodes

let levels t =
  let with_depth = List.map (fun e -> (depth t e.gov, e)) t.edges in
  let maxd = List.fold_left (fun m (d, _) -> max m d) 0 with_depth in
  List.init (maxd + 1) (fun l ->
      List.filter_map (fun (d, e) -> if d = l then Some e else None) with_depth)
  |> List.filter (fun l -> l <> [])

let is_tree t =
  let non_root = List.filter (fun n -> n.id <> t.root) t.nodes in
  List.for_all
    (fun n -> List.length (List.filter (fun e -> e.dep = n.id) t.edges) = 1)
    non_root
  && List.for_all (fun e -> e.dep <> t.root) t.edges
  && List.for_all
       (fun n ->
         let rec reaches id visited =
           if id = t.root then true
           else if List.mem id visited then false
           else
             match parent t id with
             | None -> false
             | Some e -> reaches e.gov (id :: visited)
         in
         reaches n.id [])
       non_root

let replace_edges t edges = { t with edges }

let remove_node t id =
  {
    t with
    nodes = List.filter (fun n -> n.id <> id) t.nodes;
    edges = List.filter (fun e -> e.gov <> id && e.dep <> id) t.edges;
  }

let pp fmt t =
  let name id =
    match node_opt t id with Some n -> n.text | None -> Printf.sprintf "#%d" id
  in
  Format.fprintf fmt "root=%s@ " (name t.root);
  List.iter
    (fun e ->
      Format.fprintf fmt "%s(%s-%d, %s-%d)@ " (Dep.to_string e.label) (name e.gov)
        e.gov (name e.dep) e.dep)
    t.edges

let to_string t = Format.asprintf "%a" pp t
