(** Dictionary-and-rule lemmatizer.

    Where the Porter stemmer produces index terms ("replaces" -> "replac"),
    the lemmatizer produces dictionary forms ("replaces" -> "replace"),
    which the POS tagger and the WordToAPI matcher both need. Irregular
    forms relevant to the query corpora are table-driven; the rest is
    handled by inflection rules. *)

val lemma_verb : string -> string
(** Lemma of a (lowercase) verb form: ["starts"] -> ["start"],
    ["containing"] -> ["contain"], ["found"] -> ["find"]. *)

val lemma_noun : string -> string
(** Singular of a (lowercase) noun: ["lines"] -> ["line"],
    ["occurrences"] -> ["occurrence"], ["parentheses"] -> ["parenthesis"]. *)

val lemma : pos:Pos.t -> string -> string
(** Dispatch on POS; non-verb/non-noun words are returned unchanged. *)
