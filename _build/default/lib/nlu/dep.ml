type t =
  | Root
  | Obj
  | Nsubj
  | Nmod of string
  | Advcl of string
  | Acl
  | Amod
  | Det
  | Nummod
  | Compound
  | Conj of string
  | Lit
  | Dep

let to_string = function
  | Root -> "root"
  | Obj -> "obj"
  | Nsubj -> "nsubj"
  | Nmod p -> "nmod:" ^ p
  | Advcl m -> "advcl:" ^ m
  | Acl -> "acl"
  | Amod -> "amod"
  | Det -> "det"
  | Nummod -> "nummod"
  | Compound -> "compound"
  | Conj c -> "conj:" ^ c
  | Lit -> "lit"
  | Dep -> "dep"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) b = a = b
