(** Tokenizer for natural-language queries.

    Handles the quirks of the two benchmark domains:
    - quoted literals in single, double, or curly quotes: ["append \":\" ..."],
      [‘if a sentence starts with “-” ...’];
    - decimal and integer numerals ("14", "3.5");
    - hyphenated words kept whole ("non-empty");
    - identifiers with internal capitals kept whole ("cxxMethodDecl"). *)

val tokenize : string -> Token.t list
(** Token indices are consecutive from 0. Never raises: unrecognized bytes
    become {!Token.Symbol} tokens. An unterminated quote extends to the end
    of the input. *)
