open Dggt_util

let typo_threshold = 0.65
let min_score = 0.5

let word_score a b =
  if a = b then 1.0
  else begin
    let sa = Porter.stem a and sb = Porter.stem b in
    if sa = sb then 0.95
    else if Synonyms.share_ring a b then 0.85
    else if
      Synonyms.share_ring sa b || Synonyms.share_ring a sb
      || List.exists (fun syn -> Porter.stem syn = sb) (Synonyms.related a)
    then 0.8
    else if String.length a >= 5 && String.length b >= 5 && a.[0] = b.[0] then begin
      (* Typo backoff: transposition-style typos score Levenshtein 2, so a
         6-letter word has similarity 0.67 — the threshold must sit below
         that. Requiring length >= 5 and an equal first letter keeps short
         near-words ("line"/"like") from matching. Scores land in
         [0.55, 0.7], below every semantic tier. *)
      let s = Levenshtein.similarity a b in
      if s >= typo_threshold then
        0.55 +. (0.15 *. (s -. typo_threshold) /. (1.0 -. typo_threshold))
      else 0.0
    end
    else 0.0
  end

let word_score a b =
  let s = word_score a b in
  if s < min_score then 0.0 else s

let best_against w keywords =
  List.fold_left (fun acc k -> Float.max acc (word_score w k)) 0.0 keywords
