open Dggt_util

(* Curly quotes arrive as UTF-8 multibyte sequences; we recognize the exact
   byte sequences for “ ” ‘ ’ so that queries pasted from papers or editors
   tokenize correctly. *)
let quote_pairs =
  [ ("\"", "\""); ("'", "'"); ("\xe2\x80\x9c", "\xe2\x80\x9d"); ("\xe2\x80\x98", "\xe2\x80\x99") ]

let match_at s i pat =
  let lp = String.length pat in
  i + lp <= String.length s && String.sub s i lp = pat

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let idx = ref 0 in
  let emit text kind =
    tokens := Token.make !idx text kind :: !tokens;
    incr idx
  in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      match
        List.find_opt (fun (o, _) -> match_at input !i o) quote_pairs
      with
      | Some (opener, closer) ->
          (* Quoted literal: scan to the matching closer (or end of input). *)
          let start = !i + String.length opener in
          let j = ref start in
          while !j < n && not (match_at input !j closer) do
            incr j
          done;
          emit (String.sub input start (!j - start)) Token.Quoted;
          i := if !j < n then !j + String.length closer else n
      | None ->
          if Strutil.is_digit c then begin
            (* Numeral: digits with at most one interior dot ("3.5"); a
               trailing dot is sentence punctuation ("14." at end). *)
            let j = ref !i in
            while !j < n && Strutil.is_digit input.[!j] do
              incr j
            done;
            if
              !j + 1 < n
              && input.[!j] = '.'
              && Strutil.is_digit input.[!j + 1]
            then begin
              incr j;
              while !j < n && Strutil.is_digit input.[!j] do
                incr j
              done
            end;
            emit (String.sub input !i (!j - !i)) Token.Number;
            i := !j
          end
          else if Strutil.is_alpha c then begin
            (* Word: letters, interior hyphens/apostrophes, digits allowed
               after the first letter (identifiers like "utf8"). *)
            let j = ref !i in
            let continues k =
              k < n
              && (Strutil.is_alnum input.[k]
                 || (input.[k] = '-' && k + 1 < n && Strutil.is_alpha input.[k + 1])
                 || (input.[k] = '\'' && k + 1 < n && Strutil.is_alpha input.[k + 1]))
            in
            while continues !j do
              incr j
            done;
            emit (String.sub input !i (!j - !i)) Token.Word;
            i := !j
          end
          else if c = '.' || c = ',' || c = ';' || c = ':' || c = '!' || c = '?'
          then begin
            emit (String.make 1 c) Token.Punct;
            incr i
          end
          else begin
            (* Any other byte (math symbol, stray unicode lead byte): consume
               the full UTF-8 sequence if it looks like one. *)
            let len =
              let b = Char.code c in
              if b < 0x80 then 1
              else if b < 0xe0 then 2
              else if b < 0xf0 then 3
              else 4
            in
            let len = min len (n - !i) in
            emit (String.sub input !i len) Token.Symbol;
            i := !i + len
          end
    end
  done;
  List.rev !tokens
