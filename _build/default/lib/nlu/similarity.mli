(** Word-to-keyword semantic similarity.

    The WordToAPI step scores a query word against the keywords of an API
    document entry. Scoring tiers (highest wins):

    - 1.0  exact lemma match
    - 0.95 equal Porter stems ("matching" vs "matches")
    - 0.85 synonym-ring match ("remove" vs "delete")
    - 0.8  synonym of stem / stem of synonym
    - 0.55–0.7 edit-distance backoff for near-misses (typos), only when the
      normalized similarity is at least {!typo_threshold}, both words are at
      least 5 characters, and the first letters agree.

    Scores are in [0, 1]; anything below {!min_score} is reported as 0. *)

val typo_threshold : float
val min_score : float

val word_score : string -> string -> float
(** [word_score a b] for two lowercase lemmas. *)

val best_against : string -> string list -> float
(** Max {!word_score} of a word against a keyword list; 0 for []. *)
