open Dggt_util

(* Irregular verb forms that occur in editing / code-analysis queries. *)
let irregular_verbs =
  [
    ("found", "find"); ("made", "make"); ("put", "put"); ("cut", "cut");
    ("kept", "keep"); ("left", "leave"); ("got", "get"); ("gotten", "get");
    ("begun", "begin"); ("began", "begin"); ("written", "write"); ("wrote", "write");
    ("given", "give"); ("gave", "give"); ("taken", "take"); ("took", "take");
    ("shown", "show"); ("showed", "show"); ("has", "have"); ("had", "have");
    ("is", "be"); ("are", "be"); ("was", "be"); ("were", "be"); ("been", "be");
    ("being", "be"); ("does", "do"); ("did", "do"); ("done", "do");
  ]

let irregular_nouns =
  [
    ("parentheses", "parenthesis"); ("indices", "index"); ("matrices", "matrix");
    ("vertices", "vertex"); ("children", "child"); ("men", "man"); ("women", "woman");
    ("feet", "foot"); ("data", "datum"); ("criteria", "criterion");
    ("analyses", "analysis"); ("theses", "thesis"); ("bases", "basis");
  ]

let vowel c = c = 'a' || c = 'e' || c = 'i' || c = 'o' || c = 'u'

(* Undo consonant doubling introduced by -ing/-ed ("stopping" -> "stop"),
   but keep legitimate doubles ("fill" stays "fill" — we only undo when the
   stem would end in the same doubled consonant, e.g. "stopp"). Words whose
   base form genuinely ends in a double consonant followed by a vowel-initial
   suffix ("filling" -> "fill") are covered because undoubling "filll" never
   arises: we check the doubled pair is preceded by a single vowel. *)
let undouble stem =
  let n = String.length stem in
  if
    n >= 3
    && stem.[n - 1] = stem.[n - 2]
    && (not (vowel stem.[n - 1]))
    && stem.[n - 1] <> 'l'
    && stem.[n - 1] <> 's'
    && vowel stem.[n - 3]
  then String.sub stem 0 (n - 1)
  else stem

(* Restore a dropped final 'e' for CVC-shaped stems ("replac" -> "replace",
   "remov" -> "remove"). The heuristic: stem ends consonant and the
   pre-final letter is a vowel preceded by a consonant, or it ends in a
   cluster that requires 'e' (-ac, -iz, -at, -in with long vowel...). We use
   a targeted list of cluster endings that occur in the domains; anything
   else is left alone — the Similarity layer falls back to Porter stems so
   an imperfect lemma is not fatal. *)
let e_restoring_endings =
  [ "ac"; "iz"; "at"; "iev"; "ov"; "eas"; "as"; "us"; "ang"; "erg"; "arg";
    "eat"; "it"; "ot"; "ut"; "ompil"; "abl"; "ttl"; "angl"; "ubl"; "captur";
    "cas"; "clos"; "declar"; "combin"; "compar"; "describ"; "eras"; "escap";
    "exclud"; "includ"; "ignor"; "invok"; "nam"; "pars"; "past"; "quot";
    "sav"; "stor"; "typ"; "writ"; "chang"; "deriv"; "referenc"; "provid";
    "requir"; "separ"; "lin" ]

let maybe_restore_e stem =
  if List.exists (fun e -> Strutil.ends_with ~suffix:e stem) e_restoring_endings
  then stem ^ "e"
  else stem

let lemma_verb w =
  match List.assoc_opt w irregular_verbs with
  | Some l -> l
  | None ->
      let n = String.length w in
      if Strutil.ends_with ~suffix:"ies" w && n > 4 then String.sub w 0 (n - 3) ^ "y"
      else if Strutil.ends_with ~suffix:"sses" w then String.sub w 0 (n - 2)
      else if Strutil.ends_with ~suffix:"ches" w || Strutil.ends_with ~suffix:"shes" w
              || Strutil.ends_with ~suffix:"xes" w || Strutil.ends_with ~suffix:"zes" w
      then String.sub w 0 (n - 2)
      else if Strutil.ends_with ~suffix:"s" w && n > 3 && w.[n - 2] <> 's'
              && w.[n - 2] <> 'u' (* "plus" *)
      then String.sub w 0 (n - 1)
      else if Strutil.ends_with ~suffix:"ying" w && n > 5 then String.sub w 0 (n - 4) ^ "y"
      else if Strutil.ends_with ~suffix:"ing" w && n > 4 then
        maybe_restore_e (undouble (String.sub w 0 (n - 3)))
      else if Strutil.ends_with ~suffix:"ied" w && n > 4 then String.sub w 0 (n - 3) ^ "y"
      else if Strutil.ends_with ~suffix:"eed" w then String.sub w 0 (n - 1) (* agreed *)
      else if Strutil.ends_with ~suffix:"ed" w && n > 3 then
        (* Drop "ed", then repair: "stopped" -> "stopp" -> "stop";
           "named" -> "nam" -> "name"; "inserted" -> "insert". *)
        maybe_restore_e (undouble (String.sub w 0 (n - 2)))
      else w

let lemma_noun w =
  match List.assoc_opt w irregular_nouns with
  | Some l -> l
  | None ->
      let n = String.length w in
      if Strutil.ends_with ~suffix:"ies" w && n > 4 then String.sub w 0 (n - 3) ^ "y"
      else if Strutil.ends_with ~suffix:"sses" w || Strutil.ends_with ~suffix:"ches" w
              || Strutil.ends_with ~suffix:"shes" w || Strutil.ends_with ~suffix:"xes" w
      then String.sub w 0 (n - 2)
      else if Strutil.ends_with ~suffix:"ss" w then w
      else if Strutil.ends_with ~suffix:"s" w && n > 3 && w.[n - 2] <> 'u' then
        String.sub w 0 (n - 1)
      else w

let lemma ~pos w =
  match pos with
  | Pos.VB | Pos.VBZ | Pos.VBG | Pos.VBN -> lemma_verb w
  | Pos.NN | Pos.NNS -> lemma_noun w
  | _ -> w
