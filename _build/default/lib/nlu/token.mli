(** Tokens produced by the query tokenizer. *)

type kind =
  | Word      (** alphabetic word, possibly hyphenated *)
  | Number    (** integer or decimal numeral *)
  | Quoted    (** quoted literal; [text] is the content without the quotes *)
  | Punct     (** sentence punctuation: . , ; : ! ? *)
  | Symbol    (** anything else, e.g. a bare "*" *)

type t = {
  index : int;     (** position in the token sequence, 0-based *)
  text : string;   (** surface form (quotes stripped for [Quoted]) *)
  kind : kind;
}

val make : int -> string -> kind -> t
val is_word : t -> bool
val lower : t -> string
(** Lowercased surface form (identity for non-words). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val kind_to_string : kind -> string
