open Pos

(* The parser walks the tagged tokens left to right, keeping track of:
   - the clause structure (main clause root, current clause head verb);
   - the most recent verb-like and noun-like attachment sites;
   - a pending preposition / subordinator / conjunction waiting for its
     complement.

   Attachment decisions follow the collapsed-dependency conventions that
   HISyn's pipeline expects (prepositions folded into edge labels,
   relative pronouns dropped, subordinate-clause verbs attached to the
   main verb with an [Advcl] label). *)

type state = {
  mutable edges : Depgraph.edge list;
  mutable root : int option;
  mutable clause_verb : int option; (* verb of the current clause *)
  mutable clause_verb_lemma : string option;
  mutable last_verb : int option; (* most recent verb-like site (incl. VBG) *)
  mutable last_noun : int option; (* most recent noun head *)
  mutable last_adj : int option;
  mutable pending_prep : (int * string) option; (* token id, lowercase text *)
  mutable pending_sub : string option; (* "if"/"when" marker for next verb *)
  mutable pending_wdt : bool; (* saw a relative pronoun *)
  mutable pending_poss : bool; (* saw "whose": next noun is possessed *)
  mutable pending_cc : string option; (* coordination waiting for right conjunct *)
  mutable verb_has_obj : (int * bool) list;
  mutable attached : int list;
}

let add st e =
  st.edges <- e :: st.edges;
  st.attached <- e.Depgraph.dep :: st.attached

let mark_obj st v =
  st.verb_has_obj <- (v, true) :: List.remove_assoc v st.verb_has_obj

let has_obj st v = match List.assoc_opt v st.verb_has_obj with Some b -> b | None -> false

(* Subordinators introduce adverbial clauses rather than PP complements. *)
let subordinators = [ "if"; "when"; "whenever"; "where"; "wherever"; "unless"; "until"; "till" ]

let parse_tagged tagged =
  let st =
    {
      edges = [];
      root = None;
      clause_verb = None;
      clause_verb_lemma = None;
      last_verb = None;
      last_noun = None;
      last_adj = None;
      pending_prep = None;
      pending_sub = None;
      pending_wdt = false;
      pending_poss = false;
      pending_cc = None;
      verb_has_obj = [];
      attached = [];
    }
  in
  let arr = Array.of_list tagged in
  let n = Array.length arr in
  if n = 0 then { Depgraph.nodes = []; edges = []; root = 0 }
  else begin
  let tok i = fst arr.(i) in
  let pos i = snd arr.(i) in
  let id i = (tok i).Token.index in
  (* Pre-pass: pick the root — the first tag-resolved verb outside any
     subordinate clause; failing that the first noun; failing that token 0. *)
  let root_idx =
    let in_sub = ref false in
    let found = ref None in
    for i = 0 to n - 1 do
      (match pos i with
      | IN when List.mem (Token.lower (tok i)) subordinators -> in_sub := true
      | PUNCT -> in_sub := false
      | VB when !found = None && not !in_sub -> found := Some i
      | _ -> ());
      ()
    done;
    match !found with
    | Some i -> i
    | None -> (
        let rec first_verb i =
          if i >= n then None
          else if Pos.is_verb (pos i) then Some i
          else first_verb (i + 1)
        in
        let rec first_noun i =
          if i >= n then None
          else if Pos.is_noun (pos i) then Some i
          else first_noun (i + 1)
        in
        match first_verb 0 with
        | Some i -> i
        | None -> ( match first_noun 0 with Some i -> i | None -> 0))
  in
  st.root <- Some (id root_idx);

  (* Governor for a prepositional complement. "of" is noun-attaching ("the
     start of each line"); locative/temporal prepositions prefer the clause
     verb ("insert X at the start", "add Y after 14 characters"); the rest
     ("with", "containing") attach by recency, which handles both "lines
     with numbers" (noun) and "starts with '-'" (verb). *)
  let verb_attaching =
    [ "at"; "in"; "on"; "into"; "onto"; "from"; "to"; "after"; "before";
      "within"; "under"; "over"; "through"; "across"; "upon"; "for" ]
  in
  let prep_governor prep =
    match (st.last_noun, st.last_verb) with
    | Some nn, Some v ->
        if prep = "of" then nn
        else if List.mem prep verb_attaching then
          (* locatives modify the command, not an intervening participle:
             "move every sentence starting with X *at the end*" *)
          Option.value st.clause_verb ~default:v
        else if nn > v then nn
        else v
    | Some nn, None -> nn
    | None, Some v -> Option.value st.clause_verb ~default:v
    | None, None -> Option.value st.root ~default:0
  in

  (* Attach an NP head (noun or nominal CD/DT) at token [i]. *)
  let attach_nominal i =
    let me = id i in
    (if st.pending_poss && st.last_noun <> None then begin
       (* "expressions whose argument ..." — the new noun belongs to the
          preceding one; collapsed possessive. *)
       add st { Depgraph.gov = Option.get st.last_noun; dep = me; label = Dep.Nmod "poss" };
       st.pending_poss <- false;
       st.pending_wdt <- false
     end
     else
    match st.pending_cc with
    | Some cc when st.last_noun <> None ->
        add st { Depgraph.gov = Option.get st.last_noun; dep = me; label = Dep.Conj cc };
        st.pending_cc <- None
    | _ -> (
        match st.pending_prep with
        | Some (_, p) ->
            add st { Depgraph.gov = prep_governor p; dep = me; label = Dep.Nmod p };
            st.pending_prep <- None
        | None -> (
            match st.pending_sub with
            | Some _ ->
                (* "if a sentence starts ..." — the noun is the subject of a
                   verb we have not seen yet; postpone by treating it as the
                   clause's subject candidate: remember as last_noun only. *)
                ()
            | None -> (
                match st.last_verb with
                | Some v when not (has_obj st v) ->
                    add st { Depgraph.gov = v; dep = me; label = Dep.Obj };
                    mark_obj st v
                | Some v -> add st { Depgraph.gov = v; dep = me; label = Dep.Dep }
                | None ->
                    if Some me <> st.root then
                      add st
                        {
                          Depgraph.gov = Option.value st.root ~default:me;
                          dep = me;
                          label = Dep.Dep;
                        }))));
    st.last_noun <- Some me
  in

  let i = ref 0 in
  while !i < n do
    let cur = !i in
    let me = id cur in
    let t = pos cur in
    let w = Token.lower (tok cur) in
    (match t with
    | PUNCT ->
        (* Clause boundary: subordinate markers and pending material reset.
           The sentence root persists. *)
        st.pending_prep <- None;
        st.pending_wdt <- false;
        st.pending_cc <- None
    | VB | VBZ when cur = root_idx ->
        st.clause_verb <- Some me;
        st.clause_verb_lemma <- Some (Lemmatizer.lemma_verb w);
        st.last_verb <- Some me
    | VB | VBZ ->
        (* A finite verb after the root: relative clause ("lines that
           contain numbers"), subordinate clause ("if a sentence starts"),
           coordination ("find and replace"), or a serial imperative. *)
        if st.pending_wdt && st.last_noun <> None then begin
          add st { Depgraph.gov = Option.get st.last_noun; dep = me; label = Dep.Acl };
          st.pending_wdt <- false
        end
        else if st.pending_sub <> None then begin
          let marker = Option.get st.pending_sub in
          add st
            { Depgraph.gov = Option.value st.root ~default:me; dep = me; label = Dep.Advcl marker };
          st.pending_sub <- None;
          (* its subject is the most recent noun *)
          match st.last_noun with
          | Some s ->
              add st { Depgraph.gov = me; dep = s; label = Dep.Nsubj };
              st.attached <- s :: st.attached
          | None -> ()
        end
        else if st.pending_cc <> None && st.last_verb <> None then begin
          add st
            {
              Depgraph.gov = Option.get st.last_verb;
              dep = me;
              label = Dep.Conj (Option.get st.pending_cc);
            };
          st.pending_cc <- None
        end
        else if st.last_noun <> None && t = VBZ then
          (* "...whose argument is..." without WDT bookkeeping: treat a bare
             finite verb after a noun as a reduced relative clause. *)
          add st { Depgraph.gov = Option.get st.last_noun; dep = me; label = Dep.Acl }
        else
          add st
            { Depgraph.gov = Option.value st.root ~default:me; dep = me; label = Dep.Dep };
        st.clause_verb <- Some me;
        st.clause_verb_lemma <- Some (Lemmatizer.lemma_verb w);
        st.last_verb <- Some me;
        st.last_noun <- None
    | VBG | VBN ->
        (* Participles modify the preceding noun ("line containing
           numerals", "method named PI"); with no noun they act as the
           clause verb complement. *)
        (match st.pending_prep with
        | Some (_, p) ->
            (* "without using", "after removing" *)
            add st { Depgraph.gov = prep_governor p; dep = me; label = Dep.Advcl p };
            st.pending_prep <- None
        | None -> (
            match st.last_noun with
            | Some nn -> add st { Depgraph.gov = nn; dep = me; label = Dep.Acl }
            | None -> (
                match st.last_verb with
                | Some v -> add st { Depgraph.gov = v; dep = me; label = Dep.Dep }
                | None ->
                    add st
                      {
                        Depgraph.gov = Option.value st.root ~default:me;
                        dep = me;
                        label = Dep.Dep;
                      })));
        st.last_verb <- Some me
    | NN | NNS ->
        (* Noun-compound buffering: a run of nouns forms one NP whose head
           is the *last* noun; earlier members attach to the head as
           Compound. Scan the run now. *)
        let j = ref cur in
        while
          !j + 1 < n
          && Pos.is_noun (pos (!j + 1))
          && st.pending_cc = None
        do
          incr j
        done;
        let head = !j in
        (* attach non-head members to head *)
        for k = cur to head - 1 do
          add st { Depgraph.gov = id head; dep = id k; label = Dep.Compound }
        done;
        if id head = Option.value st.root ~default:min_int then begin
          (* nominal root: nothing to attach *)
          st.last_noun <- Some (id head)
        end
        else attach_nominal head;
        (* adjective stack: adjectives seen since the last head attach to
           this NP head — handled when the adjective was read (postponed);
           here we flush the recorded pending adjectives. *)
        i := head
    | JJ ->
        (* Attach forward to the next noun if one follows before a verb;
           otherwise treat as a nominal ("select the first" -> first acts
           as the object). *)
        let rec next_noun k =
          if k >= n then None
          else
            match pos k with
            | NN | NNS -> Some k
            | JJ | CC | CD | DT | VBG | VBN -> next_noun (k + 1)
            | _ -> None
        in
        (match next_noun (cur + 1) with
        | Some k -> add st { Depgraph.gov = id k; dep = me; label = Dep.Amod }
        | None -> attach_nominal cur)
    | CD ->
        (* "14 characters" -> nummod under the noun; bare numbers act as
           nominals ("after 14"). *)
        let nexti = cur + 1 in
        if nexti < n && Pos.is_noun (pos nexti) then
          add st { Depgraph.gov = id nexti; dep = me; label = Dep.Nummod }
        else attach_nominal cur
    | LIT ->
        (* Quoted literals: complement of a pending preposition, else
           object of the nearest verb-like site, else attach to the last
           noun. *)
        (match st.pending_prep with
        | Some (_, p) ->
            add st { Depgraph.gov = prep_governor p; dep = me; label = Dep.Nmod p };
            st.pending_prep <- None
        | None -> (
            match st.last_verb with
            | Some v when not (has_obj st v) ->
                add st { Depgraph.gov = v; dep = me; label = Dep.Obj };
                mark_obj st v
            | Some v -> add st { Depgraph.gov = v; dep = me; label = Dep.Lit }
            | None -> (
                match st.last_noun with
                | Some nn -> add st { Depgraph.gov = nn; dep = me; label = Dep.Lit }
                | None ->
                    if Some me <> st.root then
                      add st
                        {
                          Depgraph.gov = Option.value st.root ~default:me;
                          dep = me;
                          label = Dep.Lit;
                        })));
        (* A literal can serve as an NP for later "of"-attachment:
           [replace "," of the first line]. *)
        st.last_noun <- Some me
    | IN ->
        if List.mem w subordinators then st.pending_sub <- Some w
        else if List.mem w [ "after"; "before" ] then begin
          (* Semantically loaded prepositions (they name position APIs in
             editing DSLs) stay as nodes: gov -> prep -> complement. *)
          add st { Depgraph.gov = prep_governor w; dep = me; label = Dep.Nmod w };
          st.last_verb <- Some me (* complements attach under the prep *)
        end
        else if
          w = "with"
          && st.clause_verb_lemma <> Some "replace"
          && st.clause_verb_lemma <> Some "substitute"
          && st.clause_verb_lemma <> Some "swap"
          &&
          (* containment reading only after a genuine noun head: "lines
             with numbers"; after a verb or a literal, "with" is an
             argument marker ("starts with", "replace , with ;") *)
          (match (st.last_noun, st.last_verb) with
          | Some nn, v when (match v with Some v -> nn > v | None -> true) ->
              nn < n && Pos.is_noun (pos nn)
          | _ -> false)
        then begin
          add st
            { Depgraph.gov = Option.get st.last_noun; dep = me; label = Dep.Nmod w };
          st.last_verb <- Some me
        end
        else st.pending_prep <- Some (me, w)
    | DT ->
        (* Quantifying determiners carry semantics (every/each/all ->
           iteration APIs); they attach to the following noun. Bare
           quantifiers with no noun act as nominals ("select all"). *)
        let nexti = cur + 1 in
        let rec next_noun k =
          if k >= n then None
          else
            match pos k with
            | NN | NNS -> Some k
            | JJ | CD | VBG | VBN -> next_noun (k + 1)
            | _ -> None
        in
        (match next_noun nexti with
        | Some k -> add st { Depgraph.gov = id k; dep = me; label = Dep.Det }
        | None -> attach_nominal cur)
    | WDT ->
        st.pending_wdt <- true;
        if w = "whose" then st.pending_poss <- true
    | CC ->
        st.pending_cc <- Some w
    | TO | MD | PRP | RB | SYM ->
        (* Function words without domain semantics: leave unattached; the
           cleanup pass parents them under the root so the graph is total,
           and query pruning will drop them. *)
        ());
    incr i
  done;

  let root = Option.value st.root ~default:0 in
  (* Cleanup: every token except the root must have a governor. *)
  let nodes =
    List.map
      (fun ((t : Token.t), p) ->
        let lemma = Lemmatizer.lemma ~pos:p (Token.lower t) in
        let lit =
          match t.Token.kind with
          | Token.Quoted | Token.Number -> Some t.Token.text
          | _ -> None
        in
        { Depgraph.id = t.Token.index; text = t.Token.text; lemma; pos = p; lit })
      tagged
  in
  let edges = List.rev st.edges in
  let edges =
    (* Drop self-loops and edges into the root; keep first governor only. *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (e : Depgraph.edge) ->
        if e.dep = e.gov || e.dep = root then false
        else if Hashtbl.mem seen e.dep then false
        else begin
          Hashtbl.add seen e.dep ();
          true
        end)
      edges
  in
  let attached = List.map (fun (e : Depgraph.edge) -> e.dep) edges in
  let extra =
    List.filter_map
      (fun (nd : Depgraph.node) ->
        if nd.id <> root && not (List.mem nd.id attached) then
          Some { Depgraph.gov = root; dep = nd.id; label = Dep.Dep }
        else None)
      nodes
  in
  { Depgraph.nodes; edges = edges @ extra; root }
  end

let parse query = parse_tagged (Tagger.tag (Tokenizer.tokenize query))
