(** The classic Porter stemming algorithm (Porter, 1980).

    Used by {!Similarity} to match query words against API-document keywords
    ("matching" / "matches" / "matched" all stem to "match"). This is a
    faithful implementation of the original five-step algorithm. *)

val stem : string -> string
(** [stem w] expects a lowercase ASCII word; words shorter than 3 characters
    are returned unchanged, as in the reference implementation. *)
