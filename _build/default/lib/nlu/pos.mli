(** Part-of-speech tags.

    A compact subset of the Penn Treebank tag set — exactly the distinctions
    the downstream pipeline needs: query-graph pruning keeps content words
    (verbs, nouns, adjectives, literals, numbers) and drops function words;
    the dependency parser branches on verb/noun/adjective/preposition
    categories. *)

type t =
  | VB   (** verb, base/imperative: "insert", "find" *)
  | VBZ  (** verb, 3sg present: "starts", "contains" *)
  | VBG  (** verb, gerund/participle: "containing", "starting" *)
  | VBN  (** verb, past participle: "named", "nested" *)
  | NN   (** noun, singular: "line", "string" *)
  | NNS  (** noun, plural: "lines", "expressions" *)
  | JJ   (** adjective: "first", "empty" *)
  | RB   (** adverb: "only", "also" *)
  | IN   (** preposition / subordinating conj: "in", "at", "if", "with" *)
  | DT   (** determiner: "the", "a", "every", "each", "all" *)
  | CC   (** coordinating conjunction: "and", "or" *)
  | CD   (** cardinal number: "14", "third" is JJ *)
  | TO   (** "to" *)
  | PRP  (** pronoun: "it", "them" *)
  | MD   (** modal: "should" *)
  | WDT  (** wh-determiner/pronoun: "which", "that", "whose" *)
  | LIT  (** quoted literal: ":" , "-" *)
  | SYM  (** stray symbol *)
  | PUNCT (** sentence punctuation *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val is_verb : t -> bool
(** VB, VBZ, VBG or VBN. *)

val is_noun : t -> bool
(** NN or NNS. *)

val is_content : t -> bool
(** Content words survive query-graph pruning: verbs, nouns, adjectives,
    literals and numbers. *)
