type t =
  | VB
  | VBZ
  | VBG
  | VBN
  | NN
  | NNS
  | JJ
  | RB
  | IN
  | DT
  | CC
  | CD
  | TO
  | PRP
  | MD
  | WDT
  | LIT
  | SYM
  | PUNCT

let to_string = function
  | VB -> "VB"
  | VBZ -> "VBZ"
  | VBG -> "VBG"
  | VBN -> "VBN"
  | NN -> "NN"
  | NNS -> "NNS"
  | JJ -> "JJ"
  | RB -> "RB"
  | IN -> "IN"
  | DT -> "DT"
  | CC -> "CC"
  | CD -> "CD"
  | TO -> "TO"
  | PRP -> "PRP"
  | MD -> "MD"
  | WDT -> "WDT"
  | LIT -> "LIT"
  | SYM -> "SYM"
  | PUNCT -> "PUNCT"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) b = a = b
let is_verb = function VB | VBZ | VBG | VBN -> true | _ -> false
let is_noun = function NN | NNS -> true | _ -> false

let is_content = function
  | VB | VBZ | VBG | VBN | NN | NNS | JJ | LIT | CD -> true
  | _ -> false
