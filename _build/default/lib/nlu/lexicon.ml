open Pos

(* Closed classes -------------------------------------------------------- *)

let determiners =
  [ "the"; "a"; "an"; "every"; "each"; "all"; "any"; "some"; "this"; "that";
    "these"; "those"; "no"; "both" ]

let prepositions =
  [ "in"; "on"; "at"; "of"; "by"; "for"; "with"; "without"; "from"; "into"; "onto";
    "after"; "before"; "under"; "over"; "between"; "within"; "through";
    "during"; "against"; "if"; "when"; "whenever"; "where"; "wherever";
    "unless"; "until"; "till"; "as"; "per"; "inside"; "outside"; "across";
    "toward"; "towards"; "upon"; "via"; "except"; "beside"; "behind" ]

let conjunctions = [ "and"; "or"; "but"; "nor"; "plus" ]
let pronouns = [ "it"; "its"; "them"; "they"; "i"; "you"; "me"; "we"; "us"; "she"; "he" ]
let modals = [ "should"; "would"; "could"; "can"; "may"; "might"; "must"; "shall"; "will" ]
let wh_words = [ "which"; "whose"; "what"; "who"; "whom" ]

let adverbs =
  [ "only"; "also"; "just"; "then"; "once"; "twice"; "again"; "respectively";
    "immediately"; "directly"; "exactly"; "already"; "instead"; "too";
    "together"; "separately"; "everywhere"; "anywhere"; "not"; "n't"; "never";
    "always"; "there"; "here"; "up"; "down"; "out"; "off"; "away"; "back";
    "please" ]

(* Open classes ----------------------------------------------------------- *)
(* Verbs of the editing and code-analysis domains, base form. *)
let verbs =
  [ "insert"; "add"; "append"; "prepend"; "put"; "place"; "write"; "attach";
    "delete"; "remove"; "erase"; "drop"; "eliminate"; "strip"; "clear"; "trim";
    "cut"; "replace"; "substitute"; "change"; "swap"; "convert"; "turn";
    "rename"; "move"; "copy"; "duplicate"; "paste"; "select"; "highlight";
    "print"; "show"; "display"; "list"; "output"; "find"; "search"; "look";
    "locate"; "match"; "detect"; "identify"; "extract"; "get"; "retrieve";
    "fetch"; "count"; "number"; "split"; "merge"; "join"; "concatenate";
    "capitalize"; "uppercase"; "lowercase"; "indent"; "unindent"; "align";
    "sort"; "reverse"; "wrap"; "surround"; "enclose"; "quote"; "unquote";
    "contain"; "include"; "start"; "begin"; "end"; "finish"; "terminate";
    "follow"; "precede"; "occur"; "appear"; "consist"; "comprise"; "have";
    "be"; "do"; "make"; "take"; "give"; "use"; "declare"; "define"; "call";
    "invoke"; "return"; "reference"; "refer"; "point"; "name"; "type";
    "cast"; "inherit"; "derive"; "override"; "overload"; "implement";
    "initialize"; "assign"; "bind"; "access"; "accept"; "check"; "test";
    "want"; "need"; "like"; "keep"; "leave"; "go"; "come"; "equal";
    "repeat"; "apply"; "skip"; "ignore"; "except"; "mark"; "denote" ]

(* Nouns of the two domains. *)
let nouns =
  [ "line"; "row"; "word"; "token"; "character"; "char"; "letter"; "symbol";
    "string"; "text"; "number"; "numeral"; "digit"; "integer"; "float";
    "sentence"; "paragraph"; "document"; "file"; "page"; "column"; "cell";
    "space"; "whitespace"; "tab"; "newline"; "comma"; "period"; "dot";
    "colon"; "semicolon"; "hyphen"; "dash"; "underscore"; "bracket";
    "parenthesis"; "brace"; "quote"; "position"; "start"; "beginning";
    "front"; "end"; "tail"; "back"; "middle"; "occurrence"; "instance";
    "time"; "place"; "content"; "part"; "piece"; "segment"; "section";
    "selection"; "region"; "range"; "scope"; "pattern"; "condition";
    "expression"; "statement"; "declaration"; "definition"; "function";
    "method"; "constructor"; "destructor"; "operator"; "operand"; "argument";
    "parameter"; "variable"; "field"; "member"; "class"; "struct"; "record";
    "union"; "enum"; "template"; "namespace"; "type"; "typedef"; "pointer";
    "reference"; "array"; "vector"; "loop"; "branch"; "call"; "invocation";
    "cast"; "literal"; "constant"; "value"; "name"; "identifier"; "label";
    "initializer"; "assignment"; "return"; "body"; "block"; "compound";
    "base"; "derived"; "parent"; "child"; "ancestor"; "descendant";
    "node"; "tree"; "ast"; "matcher"; "code"; "source"; "program";
    "lambda"; "exception"; "throw"; "catch"; "try"; "case"; "switch";
    "default"; "goto"; "break"; "continue"; "sizeof"; "alignof"; "this";
    "bool"; "int"; "double"; "void"; "auto"; "size"; "length"; "count";
    "thing"; "stuff"; "one"; "ones"; "item"; "element"; "entry"; "unit" ]

(* Adjectives. *)
let adjectives =
  [ "first"; "second"; "third"; "fourth"; "fifth"; "last"; "next"; "previous";
    "final"; "initial"; "new"; "old"; "empty"; "blank"; "nonempty";
    "non-empty"; "whole"; "entire"; "full"; "same"; "different"; "other";
    "single"; "double"; "multiple"; "numeric"; "numerical"; "alphabetic";
    "alphanumeric"; "uppercase"; "lowercase"; "capital"; "odd"; "even";
    "leading"; "trailing"; "nested"; "global"; "local"; "static"; "const";
    "constant"; "virtual"; "pure"; "public"; "private"; "protected";
    "abstract"; "explicit"; "implicit"; "inline"; "signed"; "unsigned";
    "binary"; "unary"; "ternary"; "conditional"; "boolean"; "floating";
    "integral"; "literal"; "current"; "given"; "specific"; "specified";
    "particular"; "certain"; "corresponding"; "following"; "preceding";
    "equal"; "identical"; "longer"; "shorter"; "greater"; "less"; "more";
    "fewer"; "least"; "most"; "default"; "main"; "overloaded"; "defaulted";
    "deleted"; "anonymous"; "unnamed"; "variadic" ]

(* Words that can be both verb and noun; listed to force the ambiguity into
   the tagger's context rules rather than a single lexicon answer. *)
let verb_noun_ambiguous =
  [ "start"; "end"; "name"; "type"; "call"; "match"; "return"; "count";
    "quote"; "reference"; "cast"; "copy"; "move"; "place"; "number"; "search";
    "select"; "cut"; "mark"; "label"; "string"; "comment"; "declare" ]

module SS = Set.Make (String)

let det_set = SS.of_list determiners
let prep_set = SS.of_list prepositions
let conj_set = SS.of_list conjunctions
let pron_set = SS.of_list pronouns
let modal_set = SS.of_list modals
let wh_set = SS.of_list wh_words
let adv_set = SS.of_list adverbs
let verb_set = SS.of_list verbs
let noun_set = SS.of_list nouns
let adj_set = SS.of_list adjectives
let ambig_set = SS.of_list verb_noun_ambiguous

let stopwords =
  SS.of_list
    [ "please"; "want"; "need"; "like"; "thing"; "stuff"; "way"; "let";
      "just"; "kindly"; "me"; "am"; "is"; "are"; "be"; "do"; "does"; "can";
      "could"; "would"; "should"; "go"; "come"; "there"; "here"; "etc" ]

let lookup w =
  (* Closed classes win outright. Note "that"/"all" are overloaded; the
     tagger resolves them contextually, the lexicon reports the options. *)
  if w = "that" then [ DT; WDT ]
  else if w = "to" then [ TO ]
  else if SS.mem w wh_set then [ WDT ]
  else if SS.mem w modal_set then [ MD ]
  else if SS.mem w pron_set && w <> "this" then [ PRP ]
  else if SS.mem w conj_set then [ CC ]
  else
    let opts = ref [] in
    let push t = if not (List.mem t !opts) then opts := !opts @ [ t ] in
    if SS.mem w det_set then push DT;
    if SS.mem w prep_set then push IN;
    if SS.mem w ambig_set then begin
      push VB;
      push NN
    end;
    if SS.mem w verb_set then push VB;
    if SS.mem w noun_set then push NN;
    if SS.mem w adj_set then push JJ;
    if SS.mem w adv_set then push RB;
    !opts

let is_stopword w = SS.mem w stopwords
let can_be_verb w = SS.mem w verb_set || SS.mem w ambig_set
let can_be_noun w = SS.mem w noun_set || SS.mem w ambig_set
