lib/nlu/token.ml: Dggt_util Format
