lib/nlu/depgraph.mli: Dep Format Pos
