lib/nlu/synonyms.mli:
