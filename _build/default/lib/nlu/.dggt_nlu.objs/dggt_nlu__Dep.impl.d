lib/nlu/dep.ml: Format
