lib/nlu/depparser.mli: Depgraph Pos Token
