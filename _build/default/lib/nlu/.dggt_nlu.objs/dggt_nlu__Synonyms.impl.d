lib/nlu/synonyms.ml: Hashtbl List Option Set String
