lib/nlu/porter.mli:
