lib/nlu/pos.ml: Format
