lib/nlu/porter.ml: Bytes String
