lib/nlu/tagger.ml: Array Dggt_util Lemmatizer Lexicon List Listutil Pos Strutil Token Tokenizer
