lib/nlu/pos.mli: Format
