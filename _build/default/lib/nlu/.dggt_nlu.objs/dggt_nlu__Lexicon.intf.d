lib/nlu/lexicon.mli: Pos
