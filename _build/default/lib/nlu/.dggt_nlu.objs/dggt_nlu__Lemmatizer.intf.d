lib/nlu/lemmatizer.mli: Pos
