lib/nlu/similarity.ml: Dggt_util Float Levenshtein List Porter String Synonyms
