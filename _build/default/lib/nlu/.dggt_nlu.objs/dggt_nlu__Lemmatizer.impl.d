lib/nlu/lemmatizer.ml: Dggt_util List Pos String Strutil
