lib/nlu/dep.mli: Format
