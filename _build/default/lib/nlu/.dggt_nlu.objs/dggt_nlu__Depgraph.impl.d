lib/nlu/depgraph.ml: Dep Format List Pos Printf
