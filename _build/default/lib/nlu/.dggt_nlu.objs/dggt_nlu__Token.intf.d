lib/nlu/token.mli: Format
