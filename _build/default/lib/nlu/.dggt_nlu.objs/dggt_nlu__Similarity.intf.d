lib/nlu/similarity.mli:
