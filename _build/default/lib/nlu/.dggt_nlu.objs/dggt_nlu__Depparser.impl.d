lib/nlu/depparser.ml: Array Dep Depgraph Hashtbl Lemmatizer List Option Pos Tagger Token Tokenizer
