lib/nlu/tagger.mli: Pos Token
