lib/nlu/tokenizer.mli: Token
