lib/nlu/lexicon.ml: List Pos Set String
