lib/nlu/tokenizer.ml: Char Dggt_util List String Strutil Token
