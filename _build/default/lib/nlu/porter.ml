(* Faithful implementation of Porter (1980), "An algorithm for suffix
   stripping". We operate on a mutable buffer [b] with logical end [k]
   (inclusive), mirroring the reference C implementation's structure so the
   tricky measure/condition logic can be checked against the paper. *)

type state = { mutable b : Bytes.t; mutable k : int; mutable j : int }

let rec is_consonant s i =
  match Bytes.get s.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_consonant s (i - 1))
  | _ -> true

(* m() — the measure of the stem between 0 and j: the number of VC
   sequences. *)
let measure s =
  let n = ref 0 in
  let i = ref 0 in
  let j = s.j in
  let rec skip_c () =
    if !i > j then true
    else if is_consonant s !i then begin
      incr i;
      skip_c ()
    end
    else false
  in
  let rec skip_v () =
    if !i > j then true
    else if not (is_consonant s !i) then begin
      incr i;
      skip_v ()
    end
    else false
  in
  if skip_c () then 0
  else begin
    let quit = ref false in
    while not !quit do
      if skip_v () then quit := true
      else begin
        incr n;
        if skip_c () then quit := true
      end
    done;
    !n
  end

(* vowel_in_stem: true iff 0..j contains a vowel *)
let vowel_in_stem s =
  let rec go i = i <= s.j && ((not (is_consonant s i)) || go (i + 1)) in
  go 0

(* double_consonant at j *)
let doublec s j =
  j >= 1 && Bytes.get s.b j = Bytes.get s.b (j - 1) && is_consonant s j

(* cvc(i) — consonant-vowel-consonant ending at i, where the final consonant
   is not w, x or y. Used to restore an 'e' (hop -> hope). *)
let cvc s i =
  if i < 2 || not (is_consonant s i) || is_consonant s (i - 1) || not (is_consonant s (i - 2))
  then false
  else match Bytes.get s.b i with 'w' | 'x' | 'y' -> false | _ -> true

let ends s suffix =
  let l = String.length suffix in
  if l > s.k + 1 then false
  else if Bytes.sub_string s.b (s.k - l + 1) l <> suffix then false
  else begin
    s.j <- s.k - l;
    true
  end

let setto s suffix =
  let l = String.length suffix in
  Bytes.blit_string suffix 0 s.b (s.j + 1) l;
  s.k <- s.j + l

let r s suffix = if measure s > 0 then setto s suffix

(* Step 1a: plurals. caresses->caress, ponies->poni, ties->ti, cats->cat *)
let step1a s =
  if Bytes.get s.b s.k = 's' then begin
    if ends s "sses" then s.k <- s.k - 2
    else if ends s "ies" then setto s "i"
    else if s.k >= 1 && Bytes.get s.b (s.k - 1) <> 's' then s.k <- s.k - 1
  end

(* Step 1b: -eed, -ed, -ing. agreed->agree, plastered->plaster,
   motoring->motor, sing->sing *)
let step1b s =
  let second_third () =
    if ends s "at" then setto s "ate"
    else if ends s "bl" then setto s "ble"
    else if ends s "iz" then setto s "ize"
    else if doublec s s.k then begin
      s.k <- s.k - 1;
      match Bytes.get s.b s.k with
      | 'l' | 's' | 'z' -> s.k <- s.k + 1
      | _ -> ()
    end
    else if measure s = 1 && cvc s s.k then setto s "e"
  in
  if ends s "eed" then begin
    if measure s > 0 then s.k <- s.k - 1
  end
  else if ends s "ed" then begin
    if vowel_in_stem s then begin
      s.k <- s.j;
      second_third ()
    end
  end
  else if ends s "ing" then
    if vowel_in_stem s then begin
      s.k <- s.j;
      second_third ()
    end

(* Step 1c: y -> i when there is a vowel in the stem. happy->happi *)
let step1c s =
  if ends s "y" && vowel_in_stem s then Bytes.set s.b s.k 'i'

(* Step 2: double suffices mapped to single ones, m > 0. *)
let step2 s =
  if s.k < 1 then ()
  else
    match Bytes.get s.b (s.k - 1) with
    | 'a' ->
        if ends s "ational" then r s "ate" else if ends s "tional" then r s "tion"
    | 'c' -> if ends s "enci" then r s "ence" else if ends s "anci" then r s "ance"
    | 'e' -> if ends s "izer" then r s "ize"
    | 'l' ->
        if ends s "bli" then r s "ble"
        else if ends s "alli" then r s "al"
        else if ends s "entli" then r s "ent"
        else if ends s "eli" then r s "e"
        else if ends s "ousli" then r s "ous"
    | 'o' ->
        if ends s "ization" then r s "ize"
        else if ends s "ation" then r s "ate"
        else if ends s "ator" then r s "ate"
    | 's' ->
        if ends s "alism" then r s "al"
        else if ends s "iveness" then r s "ive"
        else if ends s "fulness" then r s "ful"
        else if ends s "ousness" then r s "ous"
    | 't' ->
        if ends s "aliti" then r s "al"
        else if ends s "iviti" then r s "ive"
        else if ends s "biliti" then r s "ble"
    | 'g' -> if ends s "logi" then r s "log"
    | _ -> ()

(* Step 3: -icate, -ative, etc., m > 0. *)
let step3 s =
  match Bytes.get s.b s.k with
  | 'e' ->
      if ends s "icate" then r s "ic"
      else if ends s "ative" then r s ""
      else if ends s "alize" then r s "al"
  | 'i' -> if ends s "iciti" then r s "ic"
  | 'l' -> if ends s "ical" then r s "ic" else if ends s "ful" then r s ""
  | 's' -> if ends s "ness" then r s ""
  | _ -> ()

(* Step 4: suffices removed when m > 1. *)
let step4 s =
  if s.k < 1 then ()
  else begin
    let matched =
      match Bytes.get s.b (s.k - 1) with
      | 'a' -> ends s "al"
      | 'c' -> ends s "ance" || ends s "ence"
      | 'e' -> ends s "er"
      | 'i' -> ends s "ic"
      | 'l' -> ends s "able" || ends s "ible"
      | 'n' -> ends s "ant" || ends s "ement" || ends s "ment" || ends s "ent"
      | 'o' ->
          (ends s "ion"
          && s.j >= 0
          && (Bytes.get s.b s.j = 's' || Bytes.get s.b s.j = 't'))
          || ends s "ou"
      | 's' -> ends s "ism"
      | 't' -> ends s "ate" || ends s "iti"
      | 'u' -> ends s "ous"
      | 'v' -> ends s "ive"
      | 'z' -> ends s "ize"
      | _ -> false
    in
    if matched && measure s > 1 then s.k <- s.j
  end

(* Step 5a: remove a final -e if m > 1, or m = 1 and not cvc.
   Step 5b: -ll -> -l if m > 1. *)
let step5 s =
  s.j <- s.k;
  if Bytes.get s.b s.k = 'e' then begin
    s.j <- s.k - 1;
    let m = measure s in
    if m > 1 || (m = 1 && not (cvc s (s.k - 1))) then s.k <- s.k - 1
  end;
  if Bytes.get s.b s.k = 'l' && doublec s s.k then begin
    s.j <- s.k - 1;
    if measure s > 1 then s.k <- s.k - 1
  end

let stem w =
  let n = String.length w in
  if n <= 2 then w
  else begin
    let s = { b = Bytes.of_string w; k = n - 1; j = 0 } in
    step1a s;
    if s.k > 0 then step1b s;
    if s.k > 0 then step1c s;
    if s.k > 0 then step2 s;
    if s.k > 0 then step3 s;
    if s.k > 0 then step4 s;
    if s.k > 0 then step5 s;
    Bytes.sub_string s.b 0 (s.k + 1)
  end
