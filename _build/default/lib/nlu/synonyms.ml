(* Synonym rings. Keep each ring tight: over-broad rings inflate the
   WordToAPI candidate sets, which inflates p_l and slows both engines
   (and hurts accuracy more than it helps recall). *)
let rings =
  [
    (* actions: editing *)
    [ "insert"; "add"; "append"; "prepend"; "put"; "place"; "attach"; "write" ];
    [ "delete"; "remove"; "erase"; "drop"; "eliminate"; "strip"; "clear"; "cut" ];
    [ "replace"; "substitute"; "swap"; "change"; "convert" ];
    [ "copy"; "duplicate" ];
    [ "move"; "shift"; "relocate" ];
    [ "select"; "highlight"; "mark"; "choose" ];
    [ "print"; "show"; "display"; "list"; "output"; "report" ];
    [ "find"; "search"; "detect"; "identify"; "retrieve" ];
    [ "match"; "fit"; "correspond" ];
    [ "extract"; "pull" ];
    [ "count"; "tally" ];
    [ "split"; "divide"; "break" ];
    [ "merge"; "join"; "concatenate"; "combine" ];
    [ "capitalize"; "uppercase" ];
    [ "wrap"; "surround"; "enclose" ];
    (* states / relations *)
    [ "contain"; "include"; "have"; "hold"; "comprise"; "with" ];
    [ "start"; "begin"; "beginning"; "front"; "head" ];
    [ "end"; "finish"; "tail"; "back"; "terminate" ];
    [ "follow"; "succeed"; "after" ];
    [ "precede"; "before" ];
    [ "occur"; "appear"; "occurrence"; "instance"; "appearance" ];
    [ "equal"; "identical"; "same"; "be" ];
    (* entities: editing *)
    [ "line"; "row" ];
    [ "word"; "token" ];
    [ "character"; "char"; "letter" ];
    [ "number"; "numeral"; "digit"; "numeric"; "numerical"; "integer" ];
    [ "string"; "text" ];
    [ "sentence" ];
    [ "paragraph" ];
    [ "document"; "file"; "everything"; "everywhere" ];
    [ "space"; "whitespace"; "blank" ];
    [ "position"; "location"; "place"; "spot" ];
    [ "every"; "each" ];
    [ "first"; "initial"; "leading" ];
    [ "last"; "final"; "trailing" ];
    [ "empty"; "blank" ];
    [ "comma" ]; [ "colon" ]; [ "semicolon" ];
    [ "selection"; "region"; "selected" ];
    (* entities: code analysis *)
    [ "function"; "method"; "routine"; "procedure" ];
    [ "constructor" ];
    [ "destructor" ];
    [ "variable"; "var" ];
    [ "field"; "member" ];
    [ "class"; "record"; "struct" ];
    [ "declaration"; "decl"; "declare"; "declaring" ];
    [ "definition"; "define" ];
    [ "expression"; "expr" ];
    [ "statement"; "stmt" ];
    [ "call"; "invocation"; "invoke"; "invoked" ];
    [ "argument"; "parameter"; "operand" ];
    [ "operator" ];
    [ "literal"; "constant" ];
    [ "float"; "floating"; "double" ];
    [ "integer"; "int" ];
    [ "boolean"; "bool" ];
    [ "name"; "named"; "identifier"; "called" ];
    [ "type"; "kind" ];
    [ "pointer"; "ptr" ];
    [ "reference"; "ref"; "refer" ];
    [ "loop"; "iteration"; "iterate"; "repeat"; "repeatedly" ];
    [ "condition"; "conditional"; "test"; "predicate" ];
    [ "body"; "block"; "compound" ];
    [ "base"; "parent"; "super" ];
    [ "derived"; "child"; "sub" ];
    [ "ancestor" ];
    [ "descendant"; "nested"; "inside"; "within" ];
    [ "template" ];
    [ "namespace" ];
    [ "enum"; "enumeration" ];
    [ "lambda"; "closure" ];
    [ "cast"; "conversion"; "convert" ];
    [ "return"; "returning" ];
    [ "virtual" ];
    [ "static" ];
    [ "const"; "constant" ];
    [ "public" ]; [ "private" ]; [ "protected" ];
    [ "binary" ]; [ "unary" ];
    [ "assignment"; "assign" ];
    [ "initializer"; "initialize"; "init" ];
    [ "array" ];
    [ "string-literal" ];
    [ "case"; "switch" ];
    [ "throw"; "exception" ];
    [ "catch"; "handler" ];
    [ "label" ];
    [ "goto" ];
    [ "if" ];
    [ "while" ]; [ "for" ];
    [ "new"; "allocation" ];
    [ "sizeof"; "size" ];
    [ "this" ];
    [ "override"; "overriding"; "overridden" ];
    [ "overload"; "overloaded" ];
    [ "default"; "defaulted" ];
    [ "implicit" ]; [ "explicit" ];
    [ "pure"; "abstract" ];
    [ "anonymous"; "unnamed" ];
    [ "variadic" ];
  ]

module SS = Set.Make (String)

let index : (string, SS.t) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun ring ->
      let set = SS.of_list ring in
      List.iter
        (fun w ->
          let prev = Option.value (Hashtbl.find_opt tbl w) ~default:SS.empty in
          Hashtbl.replace tbl w (SS.union prev set))
        ring)
    rings;
  tbl

let related w =
  match Hashtbl.find_opt index w with
  | Some set -> SS.elements (SS.remove w set)
  | None -> []

let share_ring a b =
  a <> b
  &&
  match Hashtbl.find_opt index a with
  | Some set -> SS.mem b set
  | None -> false
