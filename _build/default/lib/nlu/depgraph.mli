(** Query dependency graphs.

    Node identifiers are the token indices of the underlying query, so they
    remain stable across pruning. The structure is a rooted tree in the
    common case, but parser output may leave extra or missing edges — the
    synthesis pipeline (orphan relocation) is designed to cope. *)

type node = {
  id : int;            (** token index *)
  text : string;       (** surface form *)
  lemma : string;      (** dictionary form, lowercase *)
  pos : Pos.t;
  lit : string option; (** literal payload for quoted strings and numbers *)
}

type edge = { gov : int; dep : int; label : Dep.t }

type t = {
  nodes : node list;   (** in token order *)
  edges : edge list;
  root : int;          (** node id of the root word *)
}

val node : t -> int -> node
(** Raises [Not_found] for an id not in the graph. *)

val node_opt : t -> int -> node option
val mem : t -> int -> bool
val children : t -> int -> edge list
(** Outgoing edges of a governor, in token order of the dependents. *)

val parent : t -> int -> edge option
(** First incoming edge, if any. *)

val depth : t -> int -> int
(** Edge distance from the root; nodes unreachable from the root get the
    depth they would have if attached to the root (i.e. 1 + their own
    subtree is still traversed from them). *)

val levels : t -> edge list list
(** Edges grouped by the depth of their governor: element [l] holds the
    edges from depth-[l] governors to depth-[l+1] dependents (level l+1 in
    the paper's numbering). Deepest group last. Edges unreachable from the
    root are placed according to {!depth} of their governor. *)

val max_depth : t -> int
val is_tree : t -> bool
(** True when every node except the root has exactly one parent and all
    nodes are reachable from the root. *)

val replace_edges : t -> edge list -> t
val remove_node : t -> int -> t
(** Removes the node and all edges touching it. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
