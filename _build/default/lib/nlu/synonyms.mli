(** Curated synonym lexicon.

    HISyn consults WordNet-style lexical resources when matching query
    words against API descriptions; this module is the offline substitute:
    synonym rings covering the vocabulary of the text-editing and
    code-analysis domains. Membership is by lemma. *)

val related : string -> string list
(** All words sharing a ring with [w] (excluding [w] itself); empty when the
    word is in no ring. A word may belong to several rings ("type" the verb,
    "type" the noun); [related] unions them. *)

val share_ring : string -> string -> bool
(** True when the two lemmas appear in a common ring. *)

val rings : string list list
(** The raw rings, exposed for tests and for document indexing. *)
