open Dggt_util
open Pos

(* Morphological guess for out-of-vocabulary words. *)
let guess w =
  if Strutil.ends_with ~suffix:"ing" w then [ VBG; NN ]
  else if Strutil.ends_with ~suffix:"ed" w then [ VBN; JJ ]
  else if Strutil.ends_with ~suffix:"ly" w then [ RB ]
  else if
    Strutil.ends_with ~suffix:"tion" w
    || Strutil.ends_with ~suffix:"sion" w
    || Strutil.ends_with ~suffix:"ment" w
    || Strutil.ends_with ~suffix:"ness" w
    || Strutil.ends_with ~suffix:"ance" w
    || Strutil.ends_with ~suffix:"ence" w
    || Strutil.ends_with ~suffix:"ity" w
  then [ NN ]
  else if
    Strutil.ends_with ~suffix:"able" w
    || Strutil.ends_with ~suffix:"ible" w
    || Strutil.ends_with ~suffix:"ful" w
    || Strutil.ends_with ~suffix:"less" w
    || Strutil.ends_with ~suffix:"ous" w
    || Strutil.ends_with ~suffix:"ic" w
    || Strutil.ends_with ~suffix:"al" w
  then [ JJ ]
  else if Strutil.ends_with ~suffix:"es" w || Strutil.ends_with ~suffix:"s" w then
    [ NNS; VBZ ]
  else [ NN ]

(* Candidate tags for one word, before context. *)
let candidates w =
  (* An -s form of a known verb can be VBZ even if the lexicon only lists
     the base form: "starts", "contains". Likewise NNS for nouns. *)
  let from_lex = Lexicon.lookup w in
  let inflected =
    let lv = Lemmatizer.lemma_verb w in
    let ln = Lemmatizer.lemma_noun w in
    let acc = ref [] in
    if Strutil.ends_with ~suffix:"s" w && lv <> w && Lexicon.can_be_verb lv then
      acc := VBZ :: !acc;
    if Strutil.ends_with ~suffix:"s" w && ln <> w && Lexicon.can_be_noun ln then
      acc := NNS :: !acc;
    if Strutil.ends_with ~suffix:"ing" w && Lexicon.can_be_verb lv then
      acc := VBG :: !acc;
    if Strutil.ends_with ~suffix:"ed" w && Lexicon.can_be_verb lv then begin
      (* participles double as adjectives: "capitalized words" *)
      acc := JJ :: !acc;
      acc := VBN :: !acc
    end;
    List.rev !acc
  in
  let all = inflected @ from_lex in
  if all = [] then guess w else Listutil.uniq all

let has t cands = List.mem t cands

(* One token's final tag given its candidates and neighbours. [prev] is the
   resolved tag of the previous word token (None at sentence start or after
   punctuation). [next_cands] are the candidate tags of the next word. *)
let resolve ~first ~prev ~prev_word ~next_cands cands w =
  let mem = has in
  let default = match cands with t :: _ -> t | [] -> NN in
  (* "that" heading a relative clause ("lines that contain ...") is a
     relativizer, not a determiner. *)
  if w = "that" && List.exists (fun t -> t = VB || t = VBZ) next_cands then WDT
  else
  (* Imperative: a sentence-initial word that can be a verb is a verb. *)
  if first && mem VB cands then VB
  else
    match prev with
    | Some TO when mem VB cands -> VB
    | Some DT ->
        (* After a determiner: adjective if a noun follows, else noun. *)
        if mem JJ cands && List.exists (fun t -> is_noun t) next_cands then JJ
        else if mem NN cands then NN
        else if mem NNS cands then NNS
        else if mem JJ cands then JJ
        else if mem VBG cands then VBG (* "every containing line" is odd but safe *)
        else default
    | Some JJ | Some CD ->
        if mem NN cands then NN
        else if mem NNS cands then NNS
        else if mem JJ cands then JJ
        else default
    | Some IN ->
        (* After a preposition: nominal reading preferred ("at the start",
           "with a name"). *)
        if mem DT cands then DT
        else if mem JJ cands && List.exists is_noun next_cands then JJ
        else if mem NN cands then NN
        else if mem NNS cands then NNS
        else if mem VBG cands then VBG (* "without using" *)
        else default
    | Some t when is_noun t ->
        (* After a noun: a noun that is itself followed by a noun continues
           a compound ("member call expressions"); gerunds/participles
           modify it ("lines containing numerals", "method named PI"); a
           bare verb form here is usually a relative-clause verb ("lines
           that contain" handled via WDT). *)
        let nounish_next =
          next_cands = []
          || List.exists is_noun next_cands
          || List.mem WDT next_cands
        in
        if nounish_next && mem NNS cands then NNS
        else if nounish_next && mem NN cands then NN
        else if mem VBG cands then VBG
        else if mem VBN cands then VBN
        else if mem IN cands then IN
        else if mem VBZ cands then VBZ
        else if mem CC cands then CC
        else if mem NN cands then NN
        else if mem NNS cands then NNS
        else default
    | Some WDT when prev_word = Some "whose" ->
        (* "whose type is ...": the possessed thing is nominal *)
        if mem NN cands then NN
        else if mem NNS cands then NNS
        else default
    | Some WDT ->
        (* "which/that declare ..." — relative clause verb. *)
        if mem VB cands then VB
        else if mem VBZ cands then VBZ
        else default
    | Some CC ->
        (* Coordination tends to repeat the category; without tracking the
           conjunct head we prefer verb at clause level only at start. *)
        if mem NN cands then NN else default
    | _ ->
        (* Fallback priorities: noun > adjective > verb forms. *)
        if mem DT cands then DT
        else if mem IN cands then IN
        else if mem JJ cands && List.exists is_noun next_cands then JJ
        else if mem NN cands then NN
        else if mem NNS cands then NNS
        else if mem VBG cands then VBG
        else default

let tag tokens =
  let toks = Array.of_list tokens in
  let n = Array.length toks in
  let cands =
    Array.map
      (fun (t : Token.t) ->
        match t.Token.kind with
        | Token.Quoted -> [ LIT ]
        | Token.Number -> [ CD ]
        | Token.Punct -> [ PUNCT ]
        | Token.Symbol -> [ SYM ]
        | Token.Word -> candidates (Token.lower t))
      toks
  in
  let out = Array.make n NN in
  let prev = ref None in
  let prev_word = ref None in
  let first = ref true in
  for i = 0 to n - 1 do
    (match cands.(i) with
    | [ t ] ->
        out.(i) <- t;
        if t = PUNCT then begin
          prev := None;
          prev_word := None;
          first := true
        end
        else begin
          (* LIT/CD/SYM don't end the clause but also shouldn't serve as the
             contextual previous tag for word disambiguation. *)
          (match t with
          | LIT | CD | SYM -> ()
          | _ ->
              prev := Some t;
              prev_word := Some (Token.lower toks.(i)));
          if t <> LIT && t <> CD && t <> SYM then first := false
        end
    | cs ->
        let next_cands = if i + 1 < n then cands.(i + 1) else [] in
        let w = Token.lower toks.(i) in
        let t =
          resolve ~first:!first ~prev:!prev ~prev_word:!prev_word ~next_cands cs w
        in
        out.(i) <- t;
        prev := Some t;
        prev_word := Some w;
        first := false)
  done;
  List.mapi (fun i tok -> (tok, out.(i))) (Array.to_list toks)

let tag_words s =
  tag (Tokenizer.tokenize s) |> List.map (fun (t, p) -> (t.Token.text, p))
