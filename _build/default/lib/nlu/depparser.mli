(** Rule-based dependency parser for imperative English queries.

    This substitutes for the external NLU service (Stanford CoreNLP) used by
    HISyn: it produces collapsed dependency graphs for the imperative,
    single-intent queries of NL-programming benchmarks ("append X in every
    line containing numerals", "find call expressions whose argument is a
    float literal").

    The attachment rules cover: imperative root verbs, direct objects, noun
    compounds, adjectival/numeric/determiner modifiers, collapsed
    prepositional attachment with an "of"-special recency heuristic,
    participial and relative clauses, subordinate ("if"/"when") clauses,
    coordination, and quoted-literal attachment.

    The parser is deterministic and total: every token either receives a
    governor or attaches to the root with the unclassified {!Dep.Dep} label.
    Parse errors on unusual phrasings are expected and are exactly the
    input complexity that orphan-node relocation (section V-B of the paper)
    exists to absorb. *)

val parse : string -> Depgraph.t
(** Tokenize, tag, and parse a query. *)

val parse_tagged : (Token.t * Pos.t) list -> Depgraph.t
(** Parse pre-tagged tokens (used by tests to pin tags). *)
