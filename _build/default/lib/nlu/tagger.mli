(** POS tagging for imperative natural-language queries.

    A two-stage tagger in the spirit of Brill (1992): lexicon lookup
    proposes candidate tags, morphological heuristics cover
    out-of-vocabulary words, and a pass of contextual repair rules
    disambiguates (imperative-initial verbs, determiner--noun, "to"+verb,
    gerund attachment, and the verb/noun ambiguity of words like "name",
    "match", "start"). *)

val tag : Token.t list -> (Token.t * Pos.t) list
(** Tags every token; tokens of kind [Quoted] become {!Pos.LIT}, [Number]
    becomes {!Pos.CD}, [Punct] becomes {!Pos.PUNCT}. *)

val tag_words : string -> (string * Pos.t) list
(** Convenience: tokenize then tag, returning surface forms. *)
