(* The ASTMatcher evaluation query set: 100 natural-language code-search
   requests with ground-truth matcher expressions, authored after the
   published examples (paper Table I, rows 5-7). The original HISyn query
   set is not public; these follow the same style: an imperative
   find/search/list head, a node-matcher noun phrase, and zero or more
   chained restrictions.

   [hard] queries need constructs outside the synthesizable fragment
   (two inner arguments on one matcher, repeated literals, argument
   indices) — the realistic error tail. *)

let q ?(hard = false) id text expected = { Domain.id; text; expected; hard }

let queries =
  [
    (* --- the paper's published examples (1-3) ----------------------- *)
    q 1 "find cxx constructor expressions which declare a cxx method named \"PI\""
      "cxxConstructExpr(hasDeclaration(cxxMethodDecl(hasName(\"PI\"))))";
    q 2 "search for call expressions whose argument is a float literal"
      "callExpr(hasArgument(floatLiteral()))";
    q 3 "list all binary operators named \"*\""
      "binaryOperator(hasOperatorName(\"*\"))";
    (* --- bare node matchers (4-15) ---------------------------------- *)
    q 4 "find all call expressions" "callExpr()";
    q 5 "list all lambda expressions" "lambdaExpr()";
    q 6 "find all while loops" "whileStmt()";
    q 7 "show all return statements" "returnStmt()";
    q 8 "find all string literals" "stringLiteral()";
    q 9 "list all integer literals" "integerLiteral()";
    q 10 "find all goto statements" "gotoStmt()";
    q 11 "find all field declarations" "fieldDecl()";
    q 12 "list all namespace declarations" "namespaceDecl()";
    q 13 "find all switch statements" "switchStmt()";
    q 14 "find all new expressions" "cxxNewExpr()";
    q 15 "list all member access expressions" "memberExpr()";
    (* --- hasName and friends (16-30) -------------------------------- *)
    q 16 "find functions named \"main\"" "functionDecl(hasName(\"main\"))";
    q 17 "find all variables named \"tmp\"" "varDecl(hasName(\"tmp\"))";
    q 18 "find classes named \"Vector\"" "recordDecl(hasName(\"Vector\"))";
    q 19 "list all namespaces named \"detail\"" "namespaceDecl(hasName(\"detail\"))";
    q 20 "find all fields named \"size\"" "fieldDecl(hasName(\"size\"))";
    q 21 "find enum declarations named \"Color\"" "enumDecl(hasName(\"Color\"))";
    q 22 "find all methods named \"begin\"" "cxxMethodDecl(hasName(\"begin\"))";
    q 23 "find typedef declarations named \"size_type\"" "typedefDecl(hasName(\"size_type\"))";
    q 24 "find all parameters named \"ctx\"" "parmVarDecl(hasName(\"ctx\"))";
    q 25 "search for class templates named \"Map\"" "classTemplateDecl(hasName(\"Map\"))";
    q 26 "find all unary operators named \"!\"" "unaryOperator(hasOperatorName(\"!\"))";
    q 27 "find all conversion operator declarations" "cxxConversionDecl()";
    q 28 "find all labels named \"retry\"" "labelDecl(hasName(\"retry\"))";
    q 29 "find concept declarations named \"Sortable\"" "conceptDecl(hasName(\"Sortable\"))";
    q 30 "find all friend declarations" "friendDecl()";
    (* --- hasDeclaration / to / callee chains (31-45) ----------------- *)
    q 31 "find call expressions invoking a function named \"free\""
      "callExpr(callee(functionDecl(hasName(\"free\"))))";
    q 32 "find all calls that invoke a method named \"clone\""
      "callExpr(callee(cxxMethodDecl(hasName(\"clone\"))))";
    q 33 "find declaration references which refer to a variable named \"errno\""
      "declRefExpr(to(varDecl(hasName(\"errno\"))))";
    q 34 "find constructor expressions which declare a constructor declaration"
      "cxxConstructExpr(hasDeclaration(cxxConstructorDecl()))";
    q 35 "find member expressions whose member is a field named \"data\""
      "memberExpr(member(fieldDecl(hasName(\"data\"))))";
    q 36 "find all calls invoking a variadic function"
      "callExpr(callee(functionDecl(isVariadic())))";
    q 37 "find declaration references referring to an enumerator constant"
      "declRefExpr(to(enumConstantDecl()))";
    q 38 "find member call expressions invoking a const method"
      "cxxMemberCallExpr(callee(cxxMethodDecl(isConst())))";
    q 39 "find all calls which invoke a deleted function"
      "callExpr(callee(functionDecl(isDeleted())))";
    q 40 "find member expressions whose member is a bit field"
      "memberExpr(member(fieldDecl(isBitField())))";
    q 41 "find all message expressions declaring an Objective C method"
      "objcMessageExpr(hasDeclaration(objcMethodDecl()))";
    q 42 "find declaration references which refer to a parameter named \"argv\""
      "declRefExpr(to(parmVarDecl(hasName(\"argv\"))))";
    q 43 "find member call expressions invoking a method named \"size\""
      "cxxMemberCallExpr(callee(cxxMethodDecl(hasName(\"size\"))))";
    q 44 "find all calls invoking an inline function"
      "callExpr(callee(functionDecl(isInline())))";
    q 45 "find construct expressions declaring a copy constructor"
      "cxxConstructExpr(hasDeclaration(cxxConstructorDecl(isCopyConstructor())))";
    (* --- hasArgument / operands (46-55) ------------------------------ *)
    q 46 "find calls whose argument is a string literal"
      "callExpr(hasArgument(stringLiteral()))";
    q 47 "find construct expressions whose argument is an integer literal"
      "cxxConstructExpr(hasArgument(integerLiteral()))";
    q 48 "find binary operators whose left hand side is an integer literal"
      "binaryOperator(hasLHS(integerLiteral()))";
    q 49 "find binary operators whose right hand side is a call expression"
      "binaryOperator(hasRHS(callExpr()))";
    q 50 "find unary operators whose operand is a declaration reference"
      "unaryOperator(hasUnaryOperand(declRefExpr()))";
    q 51 "find calls whose argument is a lambda expression"
      "callExpr(hasArgument(lambdaExpr()))";
    q 52 "find all calls taking 3 arguments" "callExpr(argumentCountIs(3))";
    q 53 "find functions taking 2 parameters" "functionDecl(parameterCountIs(2))";
    q 54 "find member calls whose argument is a null pointer literal"
      "cxxMemberCallExpr(hasArgument(cxxNullPtrLiteralExpr()))";
    q 55 "find operator calls whose argument is a this expression"
      "cxxOperatorCallExpr(hasArgument(cxxThisExpr()))";
    (* --- body / condition / branches (56-70) ------------------------- *)
    q 56 "find while loops whose body is a compound statement"
      "whileStmt(hasBody(compoundStmt()))";
    q 57 "find functions whose body is a compound statement"
      "functionDecl(hasBody(compoundStmt()))";
    q 58 "find all while loops whose condition is a call expression"
      "whileStmt(hasCondition(callExpr()))";
    q 59 "find conditional branches whose condition is a binary operator"
      "ifStmt(hasCondition(binaryOperator()))";
    q 60 "find conditional branches whose else part is a compound statement"
      "ifStmt(hasElse(compoundStmt()))";
    q 61 "find conditional branches whose then part is a return statement"
      "ifStmt(hasThen(returnStmt()))";
    q 62 "find range based for loops containing a break statement"
      "cxxForRangeStmt(hasDescendant(breakStmt()))";
    q 63 "find return statements whose value is a member expression"
      "returnStmt(hasReturnValue(memberExpr()))";
    q 64 "find case clauses whose constant is an integer literal"
      "caseStmt(hasCaseConstant(integerLiteral()))";
    q 65 "find variables whose initializer is a call expression"
      "varDecl(hasInitializer(callExpr()))";
    q 66 "find all variables whose initializer is an integer literal"
      "varDecl(hasInitializer(integerLiteral()))";
    q 67 "find conditional operators whose condition is a declaration reference"
      "conditionalOperator(hasCondition(declRefExpr()))";
    q 68 "find all switch statements whose condition is a member expression"
      "switchStmt(hasCondition(memberExpr()))";
    q 69 "find declaration statements containing a variable declaration"
      "declStmt(containsDeclaration(varDecl()))";
    q 70 "find functions containing a goto statement"
      "functionDecl(hasDescendant(gotoStmt()))";
    (* --- narrowing adjectives (71-85) -------------------------------- *)
    q 71 "find all virtual methods" "cxxMethodDecl(isVirtual())";
    q 72 "find all const methods" "cxxMethodDecl(isConst())";
    q 73 "find pure methods" "cxxMethodDecl(isPure())";
    q 74 "find all deleted functions" "functionDecl(isDeleted())";
    q 75 "find all defaulted methods" "cxxMethodDecl(isDefaulted())";
    q 76 "find all inline functions" "functionDecl(isInline())";
    q 77 "find all variadic functions" "functionDecl(isVariadic())";
    q 78 "find all explicit constructors" "cxxConstructorDecl(isExplicit())";
    q 79 "find all copy constructors" "cxxConstructorDecl(isCopyConstructor())";
    q 80 "find all move constructors" "cxxConstructorDecl(isMoveConstructor())";
    q 81 "find all anonymous namespaces" "namespaceDecl(isAnonymous())";
    q 82 "find all scoped enums" "enumDecl(isScoped())";
    q 83 "find all main functions" "functionDecl(isMain())";
    q 84 "find all constexpr functions" "functionDecl(isConstexpr())";
    q 85 "find all lambda classes" "recordDecl(isLambda())";
    (* --- types (86-95) ------------------------------------------------ *)
    q 86 "find variables whose type is a pointer type"
      "varDecl(hasType(pointerType()))";
    q 87 "find all fields whose type is a reference type"
      "fieldDecl(hasType(referenceType()))";
    q 88 "find functions returning a pointer type"
      "functionDecl(returns(pointerType()))";
    q 89 "find all parameters whose type is an enum type"
      "parmVarDecl(hasType(enumType()))";
    q 90 "find pointer types whose pointee is a builtin type"
      "pointerType(pointee(builtinType()))";
    q 91 "find variables whose type is an auto deduced type"
      "varDecl(hasType(autoType()))";
    q 92 "find array types whose element is a record type"
      "arrayType(hasElementType(recordType()))";
    q 93 "find all typedef declarations whose underlying type is a pointer type"
      "typedefDecl(hasUnderlyingType(pointerType()))";
    q 94 "find functions returning a const qualified type"
      "functionDecl(returns(qualType(isConstQualified())))";
    q 95 "find casts whose destination type is a pointer type"
      "explicitCastExpr(hasDestinationType(pointerType()))";
    (* --- hard / out-of-fragment (96-100) ------------------------------ *)
    q ~hard:true 96 "find all static inline functions"
      "functionDecl(isStaticLocal(), isInline())";
    q ~hard:true 97 "find calls whose second argument is a string literal"
      "callExpr(hasArgument(1, stringLiteral()))";
    q ~hard:true 98 "find methods named \"get\" returning a pointer type"
      "cxxMethodDecl(hasName(\"get\"), returns(pointerType()))";
    q ~hard:true 99 "find classes named \"Base\" with a method named \"run\""
      "cxxRecordDecl(hasName(\"Base\"), hasMethod(cxxMethodDecl(hasName(\"run\"))))";
    q ~hard:true 100 "find binary operators named \"+\" whose left hand side is a call"
      "binaryOperator(hasOperatorName(\"+\"), hasLHS(callExpr()))";
  ]
