(* The ASTMatcher reference document, generated from the same spec table
   that generates the grammar (the real LibASTMatchers reference is
   likewise one table rendered two ways). *)

open Am_spec

let entries =
  List.map (fun s -> (name s, match s with
    | Node n -> n.desc
    | Narrow n -> n.desc
    | Traversal t -> t.desc))
    Am_spec.all
  @ [
      ("__strlit", "a string literal value given in the query");
      ("__intlit", "a numeric literal value given in the query");
    ]

let literal_apis = [ "__strlit" ]
let number_apis = [ "__intlit" ]

(* Node matchers are noun mentions ("constructor expressions"); traversal
   and literal-bearing narrowing matchers are verb-ish mentions ("declares",
   "named", "calls", "returns"). Nullary narrowing matchers ("virtual",
   "const") arrive as adjectives, so they stay unrestricted. *)
let noun_apis =
  List.filter_map (function Node n -> Some n.name | _ -> None) Am_spec.all

let doc =
  lazy (Dggt_core.Apidoc.make ~literal_apis ~number_apis ~noun_apis entries)
