let graph =
  lazy
    (match Dggt_grammar.Cfg.of_text ~start:Te_grammar.start Te_grammar.bnf with
    | Ok cfg -> Dggt_grammar.Ggraph.build cfg
    | Error e ->
        failwith (Format.asprintf "TextEditing grammar: %a" Dggt_grammar.Cfg.pp_error e))

let defaults = Te_doc.defaults

(* conditional-clause subjects are the iterated unit: scope APIs only *)
let unit_filter api =
  Dggt_util.Strutil.ends_with ~suffix:"SCOPE" api && api <> "SINGLESCOPE"


let domain =
  {
    Domain.name = "TextEditing";
    description =
      "A command language that frees Office-suite end-users from regular \
       expressions, conditionals and loops (after Desai et al., ICSE 2016).";
    source = "reconstructed from the paper's published fragments";
    graph;
    doc = Te_doc.doc;
    queries = Te_queries.queries;
    defaults;
    unit_filter = Some unit_filter;
    path_limits = None;
    stop_verbs = [];
    top_k = None;
  }
