(** The ASTMatcher benchmark domain (paper Table I, row 2): the Clang
    LibASTMatchers vocabulary (~505 APIs) with 100 evaluation queries. *)

val domain : Domain.t

val defaults : (string * string) list
(** Empty: matcher arguments are optional, nothing is completed. *)
