(** The Clang AST-matcher vocabulary, as a specification table.

    The real LibASTMatchers reference is itself a large table of
    (name, category, argument type, prose); this module rebuilds that table
    for the matcher names of the public vocabulary. {!Am_grammar} compiles
    it into a BNF grammar, {!Am_doc} into the API reference document. *)

type kind = Decl | Stmt | Expr | Type
(** The node categories the grammar distinguishes. (Clang's hierarchy is
    finer; four kinds suffice to type-check the composition chains the
    query set exercises.) *)

type lit = Lnone | Lstr | Lnum

type spec =
  | Node of { name : string; kind : kind; desc : string }
      (** node matcher: appears in its kind's alternatives; accepts inner
          matchers applicable to that kind *)
  | Narrow of { name : string; kinds : kind list; lit : lit; desc : string }
      (** narrowing matcher: nullary, or carrying one literal *)
  | Traversal of { name : string; kinds : kind list; arg : kind option; desc : string }
      (** traversal matcher applicable to [kinds]; [arg] is the target kind
          ([None] = any kind, via the top [matcher] nonterminal) *)

val all : spec list
val name : spec -> string
val count : int
