(* The matcher vocabulary. Descriptions follow the LibASTMatchers reference
   style but deliberately omit the leading "Matches ..." (every entry has
   it, so it carries no discriminating signal for WordToAPI). *)

type kind = Decl | Stmt | Expr | Type
type lit = Lnone | Lstr | Lnum

type spec =
  | Node of { name : string; kind : kind; desc : string }
  | Narrow of { name : string; kinds : kind list; lit : lit; desc : string }
  | Traversal of { name : string; kinds : kind list; arg : kind option; desc : string }

let name = function
  | Node n -> n.name
  | Narrow n -> n.name
  | Traversal t -> t.name

let nd name kind desc = Node { name; kind; desc }
let nw ?(lit = Lnone) name kinds desc = Narrow { name; kinds; lit; desc }
let tr name kinds arg desc = Traversal { name; kinds; arg; desc }

let any = [ Decl; Stmt; Expr; Type ]

(* ------------------------------------------------------------------ *)
(* Declaration node matchers                                          *)
(* ------------------------------------------------------------------ *)
let decl_nodes =
  [
    nd "decl" Decl "any declaration node";
    nd "namedDecl" Decl "a declaration with a name";
    nd "valueDecl" Decl "a declaration of a value such as a variable or function";
    nd "declaratorDecl" Decl "a declarator declaration for fields, variables and functions";
    nd "functionDecl" Decl "a function declaration";
    nd "functionTemplateDecl" Decl "a C++ function template declaration";
    nd "cxxMethodDecl" Decl "a C++ method declaration; a member function of a class";
    nd "cxxConstructorDecl" Decl "a C++ constructor declaration";
    nd "cxxDestructorDecl" Decl "a C++ destructor declaration";
    nd "cxxConversionDecl" Decl "a C++ conversion operator declaration";
    nd "cxxDeductionGuideDecl" Decl "a C++ deduction guide declaration";
    nd "cxxRecordDecl" Decl "a C++ class struct or union declaration";
    nd "recordDecl" Decl "a class struct or union record declaration";
    nd "classTemplateDecl" Decl "a C++ class template declaration";
    nd "classTemplateSpecializationDecl" Decl "a C++ class template specialization declaration";
    nd "classTemplatePartialSpecializationDecl" Decl "a C++ class template partial specialization";
    nd "varDecl" Decl "a variable declaration";
    nd "parmVarDecl" Decl "a parameter declaration of a function";
    nd "fieldDecl" Decl "a field declaration; a member variable of a class";
    nd "indirectFieldDecl" Decl "an indirect field declaration inside an anonymous union";
    nd "enumDecl" Decl "an enum enumeration declaration";
    nd "enumConstantDecl" Decl "an enumerator constant declaration inside an enum";
    nd "typedefDecl" Decl "a typedef declaration";
    nd "typedefNameDecl" Decl "a typedef name declaration including alias declarations";
    nd "typeAliasDecl" Decl "a type alias using declaration";
    nd "typeAliasTemplateDecl" Decl "a type alias template declaration";
    nd "namespaceDecl" Decl "a namespace declaration";
    nd "namespaceAliasDecl" Decl "a namespace alias declaration";
    nd "usingDecl" Decl "a using declaration";
    nd "usingDirectiveDecl" Decl "a using namespace directive declaration";
    nd "unresolvedUsingValueDecl" Decl "an unresolved using value declaration";
    nd "unresolvedUsingTypenameDecl" Decl "an unresolved using typename declaration";
    nd "accessSpecDecl" Decl "an access specifier declaration such as public private or protected";
    nd "friendDecl" Decl "a friend declaration";
    nd "labelDecl" Decl "a label declaration used by goto";
    nd "linkageSpecDecl" Decl "an extern C linkage specification declaration";
    nd "staticAssertDecl" Decl "a static assert declaration";
    nd "tagDecl" Decl "a tag declaration: class struct union or enum";
    nd "templateTypeParmDecl" Decl "a template type parameter declaration";
    nd "templateTemplateParmDecl" Decl "a template template parameter declaration";
    nd "nonTypeTemplateParmDecl" Decl "a non type template parameter declaration";
    nd "decompositionDecl" Decl "a structured binding decomposition declaration";
    nd "bindingDecl" Decl "a binding declaration inside a structured binding";
    nd "blockDecl" Decl "a block declaration; a closure block";
    nd "conceptDecl" Decl "a C++20 concept declaration";
    nd "translationUnitDecl" Decl "the top level translation unit declaration";
    nd "objcInterfaceDecl" Decl "an Objective C interface declaration";
    nd "objcImplementationDecl" Decl "an Objective C implementation declaration";
    nd "objcProtocolDecl" Decl "an Objective C protocol declaration";
    nd "objcCategoryDecl" Decl "an Objective C category declaration";
    nd "objcCategoryImplDecl" Decl "an Objective C category implementation declaration";
    nd "objcMethodDecl" Decl "an Objective C method declaration";
    nd "objcIvarDecl" Decl "an Objective C instance variable declaration";
    nd "objcPropertyDecl" Decl "an Objective C property declaration";
  ]

(* ------------------------------------------------------------------ *)
(* Statement node matchers                                            *)
(* ------------------------------------------------------------------ *)
let stmt_nodes =
  [
    nd "stmt" Stmt "any statement node";
    nd "compoundStmt" Stmt "a compound statement; a block of statements in braces";
    nd "declStmt" Stmt "a declaration statement";
    nd "ifStmt" Stmt "an if statement; a conditional branch";
    nd "forStmt" Stmt "a for loop statement";
    nd "cxxForRangeStmt" Stmt "a C++ range based for loop statement";
    nd "whileStmt" Stmt "a while loop statement";
    nd "doStmt" Stmt "a do while loop statement";
    nd "switchStmt" Stmt "a switch statement";
    nd "switchCase" Stmt "a case or default clause inside a switch statement";
    nd "caseStmt" Stmt "a case clause of a switch statement";
    nd "defaultStmt" Stmt "a default clause of a switch statement";
    nd "breakStmt" Stmt "a break statement";
    nd "continueStmt" Stmt "a continue statement";
    nd "returnStmt" Stmt "a return statement";
    nd "gotoStmt" Stmt "a goto statement";
    nd "labelStmt" Stmt "a label statement that goto can jump to";
    nd "nullStmt" Stmt "an empty null statement";
    nd "asmStmt" Stmt "an inline assembly statement";
    nd "attributedStmt" Stmt "a statement with an attribute";
    nd "cxxTryStmt" Stmt "a C++ try statement for exception handling";
    nd "cxxCatchStmt" Stmt "a C++ catch handler statement";
    nd "cxxThrowExpr" Expr "a C++ throw expression raising an exception";
    nd "coroutineBodyStmt" Stmt "a coroutine body statement";
    nd "coreturnStmt" Stmt "a coroutine co_return statement";
    nd "objcTryStmt" Stmt "an Objective C try statement";
    nd "objcCatchStmt" Stmt "an Objective C catch statement";
    nd "objcFinallyStmt" Stmt "an Objective C finally statement";
    nd "objcThrowStmt" Stmt "an Objective C throw statement";
    nd "objcAutoreleasePoolStmt" Stmt "an Objective C autorelease pool statement";
  ]

(* ------------------------------------------------------------------ *)
(* Expression node matchers                                           *)
(* ------------------------------------------------------------------ *)
let expr_nodes =
  [
    nd "expr" Expr "any expression node";
    nd "callExpr" Expr "a function call expression; an invocation";
    nd "cxxMemberCallExpr" Expr "a C++ member function call expression; a method invocation";
    nd "cxxOperatorCallExpr" Expr "a C++ overloaded operator call expression";
    nd "cudaKernelCallExpr" Expr "a CUDA kernel call expression";
    nd "cxxConstructExpr" Expr "a C++ constructor call expression; construction of an object";
    nd "cxxTemporaryObjectExpr" Expr "a C++ temporary object construction expression";
    nd "cxxNewExpr" Expr "a C++ new expression; a heap allocation";
    nd "cxxDeleteExpr" Expr "a C++ delete expression; a heap deallocation";
    nd "cxxThisExpr" Expr "a C++ this pointer expression";
    nd "declRefExpr" Expr "a reference to a declaration; a use of a variable or function name";
    nd "memberExpr" Expr "a member access expression using dot or arrow";
    nd "cxxDependentScopeMemberExpr" Expr "a dependent scope member access expression";
    nd "unresolvedLookupExpr" Expr "an unresolved lookup expression of an overloaded name";
    nd "unresolvedMemberExpr" Expr "an unresolved member access expression";
    nd "binaryOperator" Expr "a binary operator expression such as plus or assignment";
    nd "cxxRewrittenBinaryOperator" Expr "a C++20 rewritten binary operator such as spaceship comparisons";
    nd "unaryOperator" Expr "a unary operator expression such as negation or increment";
    nd "conditionalOperator" Expr "a conditional ternary operator expression";
    nd "binaryConditionalOperator" Expr "a GNU binary conditional operator expression";
    nd "arraySubscriptExpr" Expr "an array subscript index expression";
    nd "integerLiteral" Expr "an integer literal; a whole number constant";
    nd "floatLiteral" Expr "a float or floating point literal constant";
    nd "fixedPointLiteral" Expr "a fixed point literal constant";
    nd "imaginaryLiteral" Expr "an imaginary number literal constant";
    nd "stringLiteral" Expr "a string literal constant";
    nd "characterLiteral" Expr "a character literal constant";
    nd "cxxBoolLiteral" Expr "a C++ boolean literal true or false";
    nd "cxxNullPtrLiteralExpr" Expr "a C++ nullptr literal expression";
    nd "gnuNullExpr" Expr "a GNU NULL expression";
    nd "userDefinedLiteral" Expr "a user defined literal expression";
    nd "compoundLiteralExpr" Expr "a C99 compound literal expression";
    nd "initListExpr" Expr "an initializer list expression in braces";
    nd "cxxStdInitializerListExpr" Expr "a C++ std initializer list construction expression";
    nd "designatedInitExpr" Expr "a designated initializer expression";
    nd "implicitValueInitExpr" Expr "an implicit value initialization expression";
    nd "lambdaExpr" Expr "a lambda expression; an anonymous closure function";
    nd "castExpr" Expr "any cast expression converting a value to a type";
    nd "explicitCastExpr" Expr "an explicit cast expression written in the source";
    nd "implicitCastExpr" Expr "an implicit cast expression inserted by the compiler";
    nd "cStyleCastExpr" Expr "a C style cast expression in parentheses";
    nd "cxxStaticCastExpr" Expr "a C++ static_cast expression";
    nd "cxxDynamicCastExpr" Expr "a C++ dynamic_cast expression";
    nd "cxxReinterpretCastExpr" Expr "a C++ reinterpret_cast expression";
    nd "cxxConstCastExpr" Expr "a C++ const_cast expression";
    nd "cxxFunctionalCastExpr" Expr "a C++ functional cast expression";
    nd "unaryExprOrTypeTraitExpr" Expr "a sizeof or alignof expression";
    nd "parenExpr" Expr "a parenthesized expression";
    nd "parenListExpr" Expr "a paren list expression";
    nd "exprWithCleanups" Expr "an expression with cleanups attached";
    nd "materializeTemporaryExpr" Expr "a materialized temporary expression";
    nd "cxxBindTemporaryExpr" Expr "a C++ bind temporary expression";
    nd "cxxDefaultArgExpr" Expr "a C++ default argument expression used at a call site";
    nd "cxxUnresolvedConstructExpr" Expr "an unresolved C++ construct expression in a template";
    nd "cxxNoexceptExpr" Expr "a C++ noexcept operator expression";
    nd "cxxFoldExpr" Expr "a C++17 fold expression over a parameter pack";
    nd "atomicExpr" Expr "an atomic builtin expression";
    nd "chooseExpr" Expr "a GNU builtin choose expression";
    nd "constantExpr" Expr "a constant expression node";
    nd "convertVectorExpr" Expr "a convert vector builtin expression";
    nd "coawaitExpr" Expr "a coroutine co_await expression";
    nd "coyieldExpr" Expr "a coroutine co_yield expression";
    nd "addrLabelExpr" Expr "a GNU address of label expression";
    nd "blockExpr" Expr "a block expression; a closure literal";
    nd "genericSelectionExpr" Expr "a C11 generic selection expression";
    nd "opaqueValueExpr" Expr "an opaque value expression";
    nd "predefinedExpr" Expr "a predefined identifier expression such as __func__";
    nd "substNonTypeTemplateParmExpr" Expr "a substituted non type template parameter expression";
    nd "objcMessageExpr" Expr "an Objective C message send expression";
    nd "objcStringLiteral" Expr "an Objective C string literal expression";
  ]

(* ------------------------------------------------------------------ *)
(* Type node matchers                                                 *)
(* ------------------------------------------------------------------ *)
let type_nodes =
  [
    nd "qualType" Type "any qualified type";
    nd "builtinType" Type "a builtin primitive type such as int or double";
    nd "pointerType" Type "a pointer type";
    nd "memberPointerType" Type "a pointer to member type";
    nd "blockPointerType" Type "a block pointer type";
    nd "objcObjectPointerType" Type "an Objective C object pointer type";
    nd "referenceType" Type "a reference type";
    nd "lValueReferenceType" Type "an lvalue reference type";
    nd "rValueReferenceType" Type "an rvalue reference type";
    nd "arrayType" Type "an array type";
    nd "constantArrayType" Type "a constant sized array type";
    nd "incompleteArrayType" Type "an incomplete array type without a size";
    nd "variableArrayType" Type "a variable length array type";
    nd "dependentSizedArrayType" Type "a dependent sized array type in a template";
    nd "functionType" Type "a function type";
    nd "functionProtoType" Type "a function prototype type with parameter types";
    nd "enumType" Type "an enum enumeration type";
    nd "recordType" Type "a record type of a class struct or union";
    nd "tagType" Type "a tag type declared by a class struct union or enum";
    nd "typedefType" Type "a typedef type";
    nd "usingType" Type "a type introduced by a using declaration";
    nd "elaboratedType" Type "an elaborated type with a keyword or qualifier";
    nd "decltypeType" Type "a decltype type";
    nd "autoType" Type "an auto deduced type";
    nd "decayedType" Type "a decayed array or function type";
    nd "parenType" Type "a parenthesized type";
    nd "complexType" Type "a complex number type";
    nd "atomicType" Type "an atomic type";
    nd "templateSpecializationType" Type "a template specialization type";
    nd "templateTypeParmType" Type "a template type parameter type";
    nd "substTemplateTypeParmType" Type "a substituted template type parameter type";
    nd "injectedClassNameType" Type "an injected class name type inside a class template";
    nd "unaryTransformType" Type "a unary type transformation type";
  ]

(* ------------------------------------------------------------------ *)
(* Narrowing matchers                                                 *)
(* ------------------------------------------------------------------ *)
let narrowing =
  [
    nw ~lit:Lstr "hasName" [ Decl ] "the declared name is the given string";
    nw ~lit:Lstr "matchesName" [ Decl ] "the declared name matches the given regular expression";
    nw ~lit:Lstr "hasAnyName" [ Decl ] "the declared name is any of the given strings";
    nw ~lit:Lstr "hasOperatorName" [ Stmt; Expr ] "the operator of the expression has the given spelling";
    nw ~lit:Lstr "hasAnyOperatorName" [ Stmt; Expr ] "the operator spelling is any of the given strings";
    nw ~lit:Lstr "isExpandedFromMacro" any "the node is expanded from the macro with the given name";
    nw ~lit:Lnum "argumentCountIs" [ Expr ] "the call has exactly the given number of arguments";
    nw ~lit:Lnum "parameterCountIs" [ Decl ] "the function has exactly the given number of parameters";
    nw ~lit:Lnum "templateArgumentCountIs" [ Decl; Type ] "the template has the given number of template arguments";
    nw ~lit:Lnum "statementCountIs" [ Stmt ] "the compound statement has the given number of statements";
    nw ~lit:Lnum "hasBitWidth" [ Decl ] "the bit field has the given bit width";
    nw ~lit:Lnum "equals" [ Expr ] "the literal is equal to the given value";
    nw "isDefinition" [ Decl ] "the declaration is also a definition";
    nw "isDeleted" [ Decl ] "the function is deleted";
    nw "isDefaulted" [ Decl ] "the method is defaulted";
    nw "isImplicit" [ Decl; Expr ] "the node was added implicitly by the compiler";
    nw "isExplicit" [ Decl ] "the constructor or conversion is marked explicit";
    nw "isInline" [ Decl ] "the function or namespace is inline";
    nw "isNoReturn" [ Decl ] "the function does not return";
    nw "isNoThrow" [ Decl ] "the function cannot throw; declared noexcept";
    nw "isConstexpr" [ Decl; Stmt ] "the declaration or if statement is constexpr";
    nw "isStaticLocal" [ Decl ] "the variable is a static local variable";
    nw "isExternC" [ Decl ] "the declaration has extern C language linkage";
    nw "isMain" [ Decl ] "the function is the main entry point of the program";
    nw "isVariadic" [ Decl ] "the function is variadic; takes a variable number of arguments";
    nw "isVirtual" [ Decl ] "the method is declared virtual";
    nw "isVirtualAsWritten" [ Decl ] "the method has the virtual keyword written in the source";
    nw "isPure" [ Decl ] "the method is pure virtual; abstract";
    nw "isOverride" [ Decl ] "the method overrides a virtual method of a base class";
    nw "isFinal" [ Decl ] "the method or class is marked final";
    nw "isConst" [ Decl ] "the method is declared const";
    nw "isUserProvided" [ Decl ] "the special member function is user provided; written by the programmer";
    nw "isCopyConstructor" [ Decl ] "the constructor is a copy constructor";
    nw "isMoveConstructor" [ Decl ] "the constructor is a move constructor";
    nw "isDefaultConstructor" [ Decl ] "the constructor is a default constructor taking no arguments";
    nw "isDelegatingConstructor" [ Decl ] "the constructor delegates to another constructor";
    nw "isConverting" [ Decl ] "the constructor is a converting constructor";
    nw "isCopyAssignmentOperator" [ Decl ] "the method is a copy assignment operator";
    nw "isMoveAssignmentOperator" [ Decl ] "the method is a move assignment operator";
    nw "isPublic" [ Decl ] "the declaration has public access";
    nw "isProtected" [ Decl ] "the declaration has protected access";
    nw "isPrivate" [ Decl ] "the declaration has private access";
    nw "isClass" [ Decl ] "the record was declared with the class keyword";
    nw "isStruct" [ Decl ] "the record was declared with the struct keyword";
    nw "isUnion" [ Decl ] "the record was declared with the union keyword";
    nw "isLambda" [ Decl ] "the record is a lambda closure class";
    nw "isTemplateInstantiation" [ Decl ] "the declaration is a template instantiation";
    nw "isExplicitTemplateSpecialization" [ Decl ] "the declaration is an explicit template specialization";
    nw "isInstantiated" [ Decl ] "the declaration is within a template instantiation";
    nw "isInStdNamespace" [ Decl ] "the declaration lives in the std standard namespace";
    nw "isInAnonymousNamespace" [ Decl ] "the declaration lives in an anonymous namespace";
    nw "isAnonymous" [ Decl ] "the namespace or record has no name; anonymous";
    nw "isBitField" [ Decl ] "the field is a bit field";
    nw "isMemberInitializer" [ Decl ] "the constructor initializer initializes a member field";
    nw "isBaseInitializer" [ Decl ] "the constructor initializer initializes a base class";
    nw "isCatchAll" [ Stmt ] "the catch handler catches every exception written with ellipsis";
    nw "isExceptionVariable" [ Decl ] "the variable is a caught exception variable";
    nw "isScoped" [ Decl ] "the enum is a scoped enum class";
    nw "isExpansionInMainFile" any "the node is expanded in the main source file";
    nw "isExpansionInSystemHeader" any "the node is expanded inside a system header";
    nw "isArrow" [ Expr ] "the member access is written with an arrow";
    nw "isAssignmentOperator" [ Stmt; Expr ] "the operator is an assignment operator";
    nw "isComparisonOperator" [ Stmt; Expr ] "the operator is a comparison operator";
    nw "isTypeDependent" [ Expr ] "the expression is type dependent in a template";
    nw "isValueDependent" [ Expr ] "the expression is value dependent in a template";
    nw "isInstantiationDependent" [ Expr ] "the expression is instantiation dependent";
    nw "isListInitialization" [ Expr ] "the construction uses list initialization with braces";
    nw "requiresZeroInitialization" [ Expr ] "the construct expression requires zero initialization";
    nw "usesADL" [ Expr ] "the call was resolved using argument dependent lookup";
    nw "hasStaticStorageDuration" [ Decl ] "the variable has static storage duration";
    nw "hasAutomaticStorageDuration" [ Decl ] "the variable has automatic storage duration";
    nw "hasThreadStorageDuration" [ Decl ] "the variable has thread local storage duration";
    nw "hasLocalStorage" [ Decl ] "the variable has local storage on the stack";
    nw "hasGlobalStorage" [ Decl ] "the variable has global storage";
    nw "hasExternalFormalLinkage" [ Decl ] "the declaration has external formal linkage";
    nw "hasDefaultArgument" [ Decl ] "the parameter has a default argument value";
    nw "hasDynamicExceptionSpec" [ Decl ] "the function has a dynamic exception specification";
    nw "hasTrailingReturn" [ Decl ] "the function has a trailing return type";
    nw "hasInClassInitializer" [ Decl ] "the field has an in class initializer";
    nw "isSignedInteger" [ Type ] "the type is a signed integer type";
    nw "isUnsignedInteger" [ Type ] "the type is an unsigned integer type";
    nw "isInteger" [ Type ] "the type is an integer type";
    nw "isAnyCharacter" [ Type ] "the type is a character type";
    nw "isAnyPointer" [ Type ] "the type is a pointer type";
    nw "booleanType" [ Type ] "the type is the boolean type";
    nw "voidType" [ Type ] "the type is the void type";
    nw "realFloatingPointType" [ Type ] "the type is a real floating point type";
    nw "isConstQualified" [ Type ] "the type is const qualified";
    nw "isVolatileQualified" [ Type ] "the type is volatile qualified";
    nw "hasLocalQualifiers" [ Type ] "the type has local qualifiers";
    nw "isWritten" [ Decl ] "the constructor initializer was written in the source";
    nw "isUnaryFold" [ Expr ] "the fold expression is a unary fold";
    nw "isBinaryFold" [ Expr ] "the fold expression is a binary fold";
    nw "isLeftFold" [ Expr ] "the fold expression is a left fold";
    nw "isRightFold" [ Expr ] "the fold expression is a right fold";
    nw "hasTemplateArgument" [ Decl; Type ] "the template has a template argument at some position";
    nw "hasAnyTemplateArgument" [ Decl; Type ] "some template argument of the template";
    nw "isIntegral" [ Decl ] "the template argument is an integral value";
    nw "nullPointerConstant" [ Expr ] "the expression is a null pointer constant";
    nw "hasCastKind" [ Expr ] "the cast has the given cast kind";
    nw ~lit:Lstr "isDerivedFrom" [ Decl ] "the class is derived from a base class with the given name";
    nw ~lit:Lstr "isSameOrDerivedFrom" [ Decl ] "the class is the named class itself or derived from it";
    nw ~lit:Lstr "isDirectlyDerivedFrom" [ Decl ] "the class is directly derived from a base class with the given name";
  ]

(* ------------------------------------------------------------------ *)
(* Traversal matchers                                                 *)
(* ------------------------------------------------------------------ *)
let traversal =
  [
    tr "has" any None "has a direct child node that the inner matcher describes";
    tr "hasDescendant" any None "contains a descendant node nested anywhere inside";
    tr "forEach" any None "applies the inner matcher to each direct child";
    tr "forEachDescendant" any None "applies the inner matcher to each descendant node";
    tr "hasAncestor" any None "has an ancestor node enclosing this one";
    tr "hasParent" any None "has a direct parent node";
    tr "hasDeclaration" [ Expr; Type; Decl ] (Some Decl) "refers to a declaration that the inner matcher describes; declares";
    tr "hasType" [ Expr; Decl ] (Some Type) "the type of the expression or declaration";
    tr "hasArgument" [ Expr ] (Some Expr) "an argument of the call expression";
    tr "hasAnyArgument" [ Expr ] (Some Expr) "any argument of the call or construct expression";
    tr "hasArgumentOfType" [ Expr ] (Some Type) "the sizeof or alignof argument has the given type";
    tr "callee" [ Expr ] (Some Decl) "the callee declaration the call invokes; calls";
    tr "onImplicitObjectArgument" [ Expr ] (Some Expr) "the implicit object argument of the member call";
    tr "on" [ Expr ] (Some Expr) "the object expression the member call is invoked on";
    tr "thisPointerType" [ Expr ] (Some Type) "the type of the this pointer in the member call";
    tr "hasBody" [ Decl; Stmt ] (Some Stmt) "the body of the function loop or try statement";
    tr "hasAnyBody" [ Decl ] (Some Stmt) "the body of the function or any of its redeclarations";
    tr "hasCondition" [ Stmt; Expr ] (Some Expr) "the condition of the if while for or conditional operator";
    tr "hasThen" [ Stmt ] (Some Stmt) "the then branch of the if statement";
    tr "hasElse" [ Stmt ] (Some Stmt) "the else branch of the if statement";
    tr "hasConditionVariableStatement" [ Stmt ] (Some Stmt) "the condition variable statement of the if";
    tr "hasInitStatement" [ Stmt ] (Some Stmt) "the init statement of the if or switch statement";
    tr "hasLoopInit" [ Stmt ] (Some Stmt) "the initialization statement of the for loop";
    tr "hasIncrement" [ Stmt ] (Some Expr) "the increment expression of the for loop";
    tr "hasLoopVariable" [ Stmt ] (Some Decl) "the loop variable of the range based for loop";
    tr "hasRangeInit" [ Stmt ] (Some Expr) "the range initializer of the range based for loop";
    tr "hasLHS" [ Stmt; Expr ] (Some Expr) "the left hand side operand of the binary operator";
    tr "hasRHS" [ Stmt; Expr ] (Some Expr) "the right hand side operand of the binary operator";
    tr "hasEitherOperand" [ Stmt; Expr ] (Some Expr) "either operand of the binary operator";
    tr "hasOperands" [ Stmt; Expr ] (Some Expr) "both operands of the binary operator";
    tr "hasUnaryOperand" [ Expr ] (Some Expr) "the operand of the unary operator";
    tr "hasSourceExpression" [ Expr ] (Some Expr) "the source expression of the cast";
    tr "hasObjectExpression" [ Expr ] (Some Expr) "the object expression of the member access";
    tr "hasTrueExpression" [ Expr ] (Some Expr) "the true branch expression of the conditional operator";
    tr "hasFalseExpression" [ Expr ] (Some Expr) "the false branch expression of the conditional operator";
    tr "hasCaseConstant" [ Stmt ] (Some Expr) "the constant of the case statement";
    tr "forEachSwitchCase" [ Stmt ] (Some Stmt) "each case of the switch statement";
    tr "hasInitializer" [ Decl; Expr ] (Some Expr) "the initializer expression of the variable or init list";
    tr "hasSingleDecl" [ Stmt ] (Some Decl) "the single declaration inside the declaration statement";
    tr "containsDeclaration" [ Stmt ] (Some Decl) "a declaration contained in the declaration statement";
    tr "forEachConstructorInitializer" [ Decl ] (Some Decl) "each constructor initializer of the constructor";
    tr "hasAnyConstructorInitializer" [ Decl ] (Some Decl) "any constructor initializer of the constructor";
    tr "forField" [ Decl ] (Some Decl) "the field the constructor initializer initializes";
    tr "withInitializer" [ Decl ] (Some Expr) "the initializer expression of the constructor initializer";
    tr "hasAnyParameter" [ Decl ] (Some Decl) "any parameter of the function";
    tr "hasParameter" [ Decl ] (Some Decl) "the parameter of the function at some position";
    tr "returns" [ Decl ] (Some Type) "the return type of the function; returning";
    tr "hasReturnValue" [ Stmt ] (Some Expr) "the returned value expression of the return statement";
    tr "hasAnyDeclaration" [ Stmt ] (Some Decl) "any declaration of the declaration statement";
    tr "hasMethod" [ Decl ] (Some Decl) "a method of the class";
    tr "hasAnyBase" [ Decl ] (Some Decl) "any base class of the class";
    tr "hasDirectBase" [ Decl ] (Some Decl) "a direct base class of the class";
    tr "ofClass" [ Expr; Decl ] (Some Decl) "the class the constructor or method belongs to";
    tr "to" [ Expr ] (Some Decl) "the declaration the reference refers to";
    tr "throughUsingDecl" [ Expr ] (Some Decl) "the reference goes through a using declaration";
    tr "member" [ Expr ] (Some Decl) "the member declaration the member access names";
    tr "hasPrefix" [ Decl ] (Some Decl) "the prefix of the nested name specifier";
    tr "hasUnderlyingType" [ Type; Decl ] (Some Type) "the underlying type of the typedef or enum";
    tr "namesType" [ Type ] (Some Type) "the type the elaborated type names";
    tr "pointee" [ Type ] (Some Type) "the pointee type the pointer or reference points to";
    tr "hasElementType" [ Type ] (Some Type) "the element type of the array or complex type";
    tr "hasValueType" [ Type ] (Some Type) "the value type of the atomic type";
    tr "hasDeducedType" [ Type ] (Some Type) "the deduced type of the auto type";
    tr "hasCanonicalType" [ Type ] (Some Type) "the canonical type of the qualified type";
    tr "hasUnqualifiedDesugaredType" [ Type ] (Some Type) "the unqualified desugared type";
    tr "innerType" [ Type ] (Some Type) "the inner type of the paren type";
    tr "hasReplacementType" [ Type ] (Some Type) "the replacement type of the substituted template parameter";
    tr "hasReturnTypeLoc" [ Decl ] (Some Type) "the written return type spelling of the function";
    tr "ignoringImpCasts" [ Expr ] (Some Expr) "the expression ignoring implicit casts around it";
    tr "ignoringParenCasts" [ Expr ] (Some Expr) "the expression ignoring parentheses and casts";
    tr "ignoringParenImpCasts" [ Expr ] (Some Expr) "the expression ignoring parentheses and implicit casts";
    tr "ignoringImplicit" [ Expr ] (Some Expr) "the expression ignoring implicit nodes";
    tr "ignoringElidableConstructorCall" [ Expr ] (Some Expr) "the expression ignoring elidable constructor calls";
    tr "hasDestinationType" [ Expr ] (Some Type) "the destination type of the explicit cast";
    tr "hasImplicitDestinationType" [ Expr ] (Some Type) "the destination type of the implicit cast";
    tr "forFunction" [ Stmt ] (Some Decl) "the function the statement belongs to";
    tr "forCallable" [ Stmt ] (Some Decl) "the callable the statement belongs to";
    tr "alignOfExpr" [ Expr ] (Some Expr) "the alignof expression with the inner matcher";
    tr "sizeOfExpr" [ Expr ] (Some Expr) "the sizeof expression with the inner matcher";
    tr "hasSizeExpr" [ Type ] (Some Expr) "the size expression of the variable length array";
    tr "hasSelector" [ Expr ] (Some Expr) "the selector of the Objective C message";
    tr "hasReceiver" [ Expr ] (Some Expr) "the receiver expression of the Objective C message";
    tr "hasReceiverType" [ Expr ] (Some Type) "the receiver type of the Objective C message";
    tr "hasExplicitSpecifier" [ Decl ] (Some Expr) "the explicit specifier expression of the declaration";
    tr "hasTypeLoc" [ Decl; Expr ] (Some Type) "the written type spelling of the node";
    tr "hasEnumConstant" [ Decl ] (Some Decl) "an enumerator constant of the enum declaration; enumerates";
    tr "hasSpecializedTemplate" [ Decl ] (Some Decl) "the class template this specialization specializes";
    tr "hasQualifier" [ Expr ] (Some Decl) "the nested name qualifier of the reference";
  ]

(* ------------------------------------------------------------------ *)
(* Extended vocabulary: the long tail of the reference                *)
(* ------------------------------------------------------------------ *)
let extended =
  [
    (* additional node matchers *)
    nd "stmtExpr" Expr "a GNU statement expression";
    nd "ompExecutableDirective" Stmt "an OpenMP executable directive";
    nd "requiresExpr" Expr "a C++20 requires expression";
    nd "conceptSpecializationExpr" Expr "a concept specialization expression";
    nd "sourceLocExpr" Expr "a source location builtin expression";
    nd "builtinBitCastExpr" Expr "a builtin bit cast expression";
    nd "cxxAddrspaceCastExpr" Expr "a C++ addrspace cast expression";
    nd "objcBoxedExpr" Expr "an Objective C boxed expression";
    nd "objcArrayLiteral" Expr "an Objective C array literal expression";
    nd "objcDictionaryLiteral" Expr "an Objective C dictionary literal expression";
    nd "objcIvarRefExpr" Expr "an Objective C instance variable reference expression";
    nd "objcSelectorExpr" Expr "an Objective C selector expression";
    nd "objcProtocolExpr" Expr "an Objective C protocol expression";
    nd "arrayInitLoopExpr" Expr "an array initialization loop expression";
    nd "arrayInitIndexExpr" Expr "an array initialization index expression";
    nd "cxxInheritedCtorInitExpr" Expr "an inherited constructor initialization expression";
    nd "usingEnumDecl" Decl "a using enum declaration";
    nd "exportDecl" Decl "a C++20 export declaration";
    nd "importDecl" Decl "a module import declaration";
    nd "emptyDecl" Decl "an empty declaration consisting of a lone semicolon";
    nd "varTemplateDecl" Decl "a variable template declaration";
    nd "externCLanguageLinkageDecl" Decl "a declaration inside an extern C block";
    nd "pointerTypeLoc" Type "a pointer type written location";
    nd "referenceTypeLoc" Type "a reference type written location";
    nd "qualifiedTypeLoc" Type "a qualified type written location";
    nd "templateSpecializationTypeLoc" Type "a template specialization type written location";
    nd "elaboratedTypeLoc" Type "an elaborated type written location";
    nd "dependentNameType" Type "a dependent name type in a template";
    nd "deducedTemplateSpecializationType" Type "a deduced template specialization type";
    nd "objcObjectType" Type "an Objective C object type";
    (* additional narrowing matchers *)
    nw ~lit:Lstr "hasOverloadedOperatorName" [ Expr; Decl ] "the overloaded operator has the given spelling";
    nw ~lit:Lstr "isExpansionInFileMatching" any "the node expands in a file whose path matches the pattern";
    nw ~lit:Lstr "equalsBoundNode" any "the node equals a previously bound node with the given id";
    nw ~lit:Lnum "hasSize" [ Expr; Type ] "the string literal or constant array has the given size";
    nw ~lit:Lnum "designatorCountIs" [ Expr ] "the designated initializer has the given number of designators";
    nw ~lit:Lnum "isAtPosition" [ Decl ] "the parameter sits at the given position of the function";
    nw ~lit:Lnum "equalsIntegralValue" [ Decl; Type ] "the template argument equals the given integral value";
    nw ~lit:Lstr "ofKind" [ Expr ] "the sizeof or alignof expression has the given kind";
    nw "isArray" [ Expr ] "the new or delete expression allocates an array";
    nw "isGlobal" [ Expr ] "the new or delete expression uses the global operator";
    nw "isInTemplateInstantiation" any "the node is inside a template instantiation";
    nw "isInstanceMethod" [ Decl ] "the Objective C method is an instance method";
    nw "isClassMethod" [ Decl ] "the Objective C method is a class method";
    nw "isInstanceMessage" [ Expr ] "the Objective C message is an instance message";
    nw "isClassMessage" [ Expr ] "the Objective C message is a class message";
    nw "hasKeywordSelector" [ Expr ] "the Objective C selector is a keyword selector";
    nw "hasNullSelector" [ Expr ] "the Objective C selector is null";
    nw "hasUnarySelector" [ Expr ] "the Objective C selector is a unary selector";
    nw ~lit:Lnum "numSelectorArgs" [ Expr ] "the Objective C selector takes the given number of arguments";
    nw ~lit:Lstr "hasSelectorName" [ Expr ] "the Objective C selector has the given name";
    nw "isPrivateKind" [ Decl ] "the access specifier introduces a private section";
    nw "isWrittenInBuiltinFile" any "the node is written in a builtin file";
    nw "isMacroID" any "the node's location is inside a macro expansion";
    nw "isOverloadedOperator" [ Decl ] "the function declaration overloads an operator";
    nw "isStaticStorageClass" [ Decl ] "the declaration uses the static storage class";
    nw "isExternStorageClass" [ Decl ] "the declaration uses the extern storage class";
    nw "isConsteval" [ Decl; Stmt ] "the function or if statement is consteval";
    nw "isConstinit" [ Decl ] "the variable is declared constinit";
    nw "isScopedEnum" [ Decl ] "the enum is declared as an enum class";
    nw "isUnscopedEnum" [ Decl ] "the enum is declared without the class keyword";
    nw "isPartialSpecialization" [ Decl ] "the template specialization is partial";
    nw "hasDefaultConstructor" [ Decl ] "the class has a default constructor";
    nw "isAggregate" [ Decl ] "the class is an aggregate";
    nw "isPolymorphic" [ Decl ] "the class is polymorphic; declares or inherits a virtual function";
    nw "isAbstract" [ Decl ] "the class is abstract; has a pure virtual function";
    nw "isEmptyClass" [ Decl ] "the class has no non-static data members";
    nw "isTrivial" [ Decl ] "the class or function is trivial";
    nw "isExplicitObjectMemberFunction" [ Decl ] "the member function takes an explicit object parameter";
    nw "isVolatile" [ Decl ] "the declaration is volatile qualified";
    nw "isRestrict" [ Decl ] "the declaration is restrict qualified";
    nw "isSignedChar" [ Type ] "the type is signed char";
    nw "isUnsignedChar" [ Type ] "the type is unsigned char";
    nw "isVoidPointer" [ Type ] "the type is a pointer to void";
    nw "isRealFloatingPoint" [ Type ] "the type is a real floating point type";
    nw "isStructuredBinding" [ Decl ] "the declaration is a structured binding";
    nw "isParameterPack" [ Decl ] "the declaration is a parameter pack";
    nw "isImplicitCast" [ Expr ] "the cast was inserted implicitly by the compiler";
    nw "hasEllipsis" [ Decl ] "the declaration ends with an ellipsis";
    nw "isUnionType" [ Type ] "the record type is a union";
    nw "isLValue" [ Expr ] "the expression is an lvalue";
    nw "isRValue" [ Expr ] "the expression is an rvalue";
    nw "isPostfix" [ Expr ] "the unary operator is postfix";
    nw "isPrefix" [ Expr ] "the unary operator is prefix";
    (* additional traversal matchers *)
    tr "hasAnyUsingShadowDecl" [ Decl ] (Some Decl) "any shadow declaration the using declaration introduces";
    tr "hasDeclContext" any (Some Decl) "the declaration context the node lives in";
    tr "hasIndex" [ Expr ] (Some Expr) "the index expression of the array subscript";
    tr "hasBase" [ Expr ] (Some Expr) "the base expression of the array subscript";
    tr "hasAnyPlacementArg" [ Expr ] (Some Expr) "any placement argument of the new expression";
    tr "hasPlacementArg" [ Expr ] (Some Expr) "the placement argument of the new expression at some position";
    tr "hasArraySize" [ Expr ] (Some Expr) "the array size expression of the new expression";
    tr "hasStructuredBlock" [ Stmt ] (Some Stmt) "the structured block of the OpenMP directive";
    tr "forEachArgumentWithParam" [ Expr ] (Some Expr) "each argument of the call paired with its parameter";
    tr "forEachOverridden" [ Decl ] (Some Decl) "each method the method overrides";
    tr "forEachLambdaCapture" [ Expr ] (Some Decl) "each capture of the lambda expression";
    tr "hasAnyCapture" [ Expr ] (Some Decl) "any capture of the lambda expression";
    tr "capturesVar" [ Expr ] (Some Decl) "the variable the lambda capture captures";
    tr "refersToDeclaration" [ Decl; Type ] (Some Decl) "the template argument refers to the given declaration";
    tr "refersToType" [ Decl; Type ] (Some Type) "the template argument refers to the given type";
    tr "specifiesType" [ Expr ] (Some Type) "the nested name specifier specifies the given type";
    tr "specifiesNamespace" [ Expr ] (Some Decl) "the nested name specifier specifies the given namespace";
    tr "hasEitherSide" [ Expr ] (Some Expr) "either side of the rewritten binary operator";
    tr "hasInit" [ Stmt ] (Some Stmt) "the initializer of the statement";
    tr "hasSyntacticForm" [ Expr ] (Some Expr) "the syntactic form of the implicit value initialization";
    tr "hasUnderlyingDecl" [ Expr ] (Some Decl) "the underlying declaration of the reference";
    tr "hasTargetDecl" [ Decl ] (Some Decl) "the target declaration of the using shadow declaration";
    tr "hasInitializerList" [ Expr ] (Some Expr) "the initializer list of the expression";
    tr "hasDecayedType" [ Type ] (Some Type) "the decayed type of the adjusted type";
  ]

let all =
  decl_nodes @ stmt_nodes @ expr_nodes @ type_nodes @ narrowing @ traversal
  @ extended

let count = List.length all + 2 (* + __strlit, __intlit literal carriers *)
