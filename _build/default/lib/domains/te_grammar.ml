(* The TextEditing DSL grammar (52 APIs), reconstructed from the fragments
   published in the paper (Figs. 3-5 and the Table I examples) in the style
   of Desai et al., "Program synthesis using natural language" (ICSE 2016).

   Conventions: ALL-CAPS identifiers are API terminals; the first terminal
   of a right-hand side is the head API, whose remaining symbols become its
   arguments (see Dggt_grammar.Ggraph). *)

let bnf =
  {|
# ------------------------------------------------------------------
# commands
# ------------------------------------------------------------------
cmd        ::= insert | delete | replace | select | print | copy | move | count ;

insert     ::= INSERT string pos iter ;
delete     ::= DELETE entity iter ;
replace    ::= REPLACE sentity string iter ;
select     ::= SELECT entity iter ;
print      ::= PRINT entity iter ;
copy       ::= COPY entity pos iter ;
move       ::= MOVE entity pos iter ;
count      ::= COUNT entity iter ;

# ------------------------------------------------------------------
# literals
# ------------------------------------------------------------------
string     ::= STRING ;
number     ::= NUMBER ;

# ------------------------------------------------------------------
# entities (what a command acts upon)
# ------------------------------------------------------------------
entity     ::= token | string ;
sentity    ::= pattern | token ;
pattern    ::= PATTERN ;
token      ::= WORDTOKEN | NUMBERTOKEN | CHARTOKEN | LINETOKEN
             | SENTENCETOKEN | PARAGRAPHTOKEN | WHITESPACETOKEN
             | PUNCTTOKEN | CAPSTOKEN | LOWERTOKEN | SYMBOLTOKEN ;

# ------------------------------------------------------------------
# positions
# ------------------------------------------------------------------
pos        ::= START | END | posrel | position ;
position   ::= POSITION charpos ;
posrel     ::= before | after | startfrom ;
before     ::= BEFORE anchor ;
after      ::= AFTER anchor ;
startfrom  ::= STARTFROM sanchor ;
# anchors and condition entities list the token alternatives through their
# own nonterminals (atoken/mtoken): sharing `token` with the command's
# entity slot would merge two distinct mentions into one graph node
anchor     ::= pattern | atoken | charpos ;
sanchor    ::= pattern | charpos ;
atoken     ::= WORDTOKEN | NUMBERTOKEN | CHARTOKEN | LINETOKEN
             | SENTENCETOKEN | PARAGRAPHTOKEN | WHITESPACETOKEN
             | PUNCTTOKEN | CAPSTOKEN | LOWERTOKEN | SYMBOLTOKEN ;
charpos    ::= CHARNUM number ;

# ------------------------------------------------------------------
# iteration
# ------------------------------------------------------------------
iter       ::= iterscope | SINGLESCOPE ;
iterscope  ::= ITERATIONSCOPE scope cond ;
scope      ::= LINESCOPE | SENTENCESCOPE | PARAGRAPHSCOPE | DOCSCOPE
             | WORDSCOPE | SELECTIONSCOPE ;

# ------------------------------------------------------------------
# conditions and occurrence selection
# ------------------------------------------------------------------
cond       ::= bcond | ALWAYS ;
bcond      ::= BCONDOCCURRENCE match occ ;
match      ::= contains | startswith | endswith | equals | matches | combined ;
contains   ::= CONTAINS mentity ;
startswith ::= STARTSWITH mentity ;
endswith   ::= ENDSWITH mentity ;
equals     ::= EQUALS mentity ;
matches    ::= MATCHES mentity ;
combined   ::= andcond | orcond | notcond ;
# nested conditions use their own inner nonterminal: reusing `match` would
# put two parents on one node in the merged CGT (tree violation)
andcond    ::= ANDCOND imatch imatch ;
orcond     ::= ORCOND imatch imatch ;
notcond    ::= NOTCOND imatch ;
imatch     ::= contains | startswith | endswith | equals | matches ;
mentity    ::= pattern | mtoken ;
mtoken     ::= WORDTOKEN | NUMBERTOKEN | CHARTOKEN | LINETOKEN
             | SENTENCETOKEN | PARAGRAPHTOKEN | WHITESPACETOKEN
             | PUNCTTOKEN | CAPSTOKEN | LOWERTOKEN | SYMBOLTOKEN ;
occ        ::= ALL | FIRST | LAST | nth | everynth ;
nth        ::= NTH number ;
everynth   ::= EVERYNTH number ;
|}

let start = "cmd"
