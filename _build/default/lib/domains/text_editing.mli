(** The TextEditing benchmark domain (paper Table I, row 1): a 52-API
    end-user editing command language with 200 evaluation queries. *)

val domain : Domain.t

val defaults : (string * string) list
(** Default derivations for unmentioned required arguments (position ->
    [END()], iteration -> [SINGLESCOPE()], …); pass to
    {!Dggt_core.Engine.config}. *)

val unit_filter : string -> bool
(** Scope-API predicate for {!Dggt_core.Engine.config.unit_filter}. *)
