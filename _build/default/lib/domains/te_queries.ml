(* The TextEditing evaluation query set: 200 natural-language editing
   commands with ground-truth codelets, authored in the style of the Desai
   et al. benchmark the paper evaluates on (the original set is not
   public). Ground truths follow the DSL's semantics conventions:

   - an unmentioned position defaults to END(), an unmentioned iteration
     to SINGLESCOPE(), an unmentioned condition to ALWAYS(), an
     unmentioned occurrence selector to ALL();
   - "every"/"each" over a unit iterate via ITERATIONSCOPE + *SCOPE;
   - "all <entity>" selects all occurrences (BCONDOCCURRENCE(ALL()));
   - a quoted object of replace/search is a PATTERN, an inserted or
     replacement literal is a STRING.

   Queries marked [hard] are deliberately outside the synthesizable
   fragment (ordinal words carrying numbers, coordinated conditions
   needing ANDCOND's two match slots, heavy word fusion) — they model the
   error tail that keeps accuracy below 100% in the paper. *)

let q ?(hard = false) id text expected = { Domain.id; text; expected; hard }

let queries =
  [
    (* ---------------------------------------------------------------- *)
    (* F1: INSERT / append at positions and scopes (1-25)               *)
    (* ---------------------------------------------------------------- *)
    q 1 "Append \":\" in every line containing numerals."
      "INSERT(STRING(\":\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 2 "if a sentence starts with \"-\", add \":\" after 14 characters"
      "INSERT(STRING(\":\"), AFTER(CHARNUM(NUMBER(14))), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(STARTSWITH(PATTERN(\"-\")), ALL())))";
    q 3 "insert \"> \" at the start of each line"
      "INSERT(STRING(\"> \"), START(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 4 "append \";\" at the end of every line"
      "INSERT(STRING(\";\"), END(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 5 "insert \"#\" at the beginning of each paragraph"
      "INSERT(STRING(\"#\"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 6 "add \"!\" at the end of every sentence"
      "INSERT(STRING(\"!\"), END(), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    q 7 "insert \"--\" at the end"
      "INSERT(STRING(\"--\"), END(), SINGLESCOPE())";
    q 8 "append \".\""
      "INSERT(STRING(\".\"), END(), SINGLESCOPE())";
    q 9 "insert \"* \" at the start"
      "INSERT(STRING(\"* \"), START(), SINGLESCOPE())";
    q 10 "add \"|\" at the end of each word"
      "INSERT(STRING(\"|\"), END(), ITERATIONSCOPE(WORDSCOPE(), ALWAYS()))";
    q 11 "insert \"\\t\" at the start of every paragraph"
      "INSERT(STRING(\"\\t\"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 12 "append \" \" at the end of the selection"
      "INSERT(STRING(\" \"), END(), ITERATIONSCOPE(SELECTIONSCOPE(), ALWAYS()))";
    q 13 "insert \"(\" at the beginning of the selection"
      "INSERT(STRING(\"(\"), START(), ITERATIONSCOPE(SELECTIONSCOPE(), ALWAYS()))";
    q 14 "add \"=====\" at the start of the document"
      "INSERT(STRING(\"=====\"), START(), ITERATIONSCOPE(DOCSCOPE(), ALWAYS()))";
    q 15 "append \"EOF\" at the end of the document"
      "INSERT(STRING(\"EOF\"), END(), ITERATIONSCOPE(DOCSCOPE(), ALWAYS()))";
    q 16 "insert \"- \" at the start of every sentence"
      "INSERT(STRING(\"- \"), START(), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    q 17 "put \"~\" at the end of each paragraph"
      "INSERT(STRING(\"~\"), END(), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 18 "insert \"note: \" at the start of each sentence"
      "INSERT(STRING(\"note: \"), START(), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    q 19 "add \",\" at the end of every word"
      "INSERT(STRING(\",\"), END(), ITERATIONSCOPE(WORDSCOPE(), ALWAYS()))";
    q 20 "insert \"97\" at the end"
      "INSERT(STRING(\"97\"), END(), SINGLESCOPE())";
    q 21 "prepend \"$\" at the start of each line"
      "INSERT(STRING(\"$\"), START(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q ~hard:true 22 "insert \"|\" at the start of every line of the selection"
      "INSERT(STRING(\"|\"), START(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 23 "place \"::\" at the end of each line"
      "INSERT(STRING(\"::\"), END(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 24 "append \"%\" at the end of the line"
      "INSERT(STRING(\"%\"), END(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 25 "insert \"->\" at the start of the sentence"
      "INSERT(STRING(\"->\"), START(), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    (* ---------------------------------------------------------------- *)
    (* F2: INSERT with conditions (26-45)                               *)
    (* ---------------------------------------------------------------- *)
    q 26 "insert \"TODO \" at the start of every line containing \"FIXME\""
      "INSERT(STRING(\"TODO \"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"FIXME\")), ALL())))";
    q 27 "append \";\" in every line containing numbers"
      "INSERT(STRING(\";\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 28 "add \"#\" at the start of every line starting with \"//\""
      "INSERT(STRING(\"#\"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(STARTSWITH(PATTERN(\"//\")), ALL())))";
    q 29 "insert \"!\" at the end of every sentence containing capitals"
      "INSERT(STRING(\"!\"), END(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(CONTAINS(CAPSTOKEN()), ALL())))";
    q 30 "append \" (checked)\" in every line ending with \"ok\""
      "INSERT(STRING(\" (checked)\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(ENDSWITH(PATTERN(\"ok\")), ALL())))";
    q 31 "insert \"WARN \" at the start of every line containing \"deprecated\""
      "INSERT(STRING(\"WARN \"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"deprecated\")), ALL())))";
    q 32 "add \"*\" at the start of every paragraph containing numerals"
      "INSERT(STRING(\"*\"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 33 "if a line contains \"ERROR\", insert \">>>\" at the start"
      "INSERT(STRING(\">>>\"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"ERROR\")), ALL())))";
    q 34 "if a sentence contains numbers, append \"*\""
      "INSERT(STRING(\"*\"), END(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 35 "if a paragraph starts with \"NOTE\", insert \"<<\" at the start"
      "INSERT(STRING(\"<<\"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(STARTSWITH(PATTERN(\"NOTE\")), ALL())))";
    q 36 "append \"$\" in every line with whitespace"
      "INSERT(STRING(\"$\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(WHITESPACETOKEN()), ALL())))";
    q 37 "insert \"^\" at the start of every line with punctuation"
      "INSERT(STRING(\"^\"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PUNCTTOKEN()), ALL())))";
    q 38 "add \"[cite]\" at the end of every sentence ending with \"al\""
      "INSERT(STRING(\"[cite]\"), END(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(ENDSWITH(PATTERN(\"al\")), ALL())))";
    q 39 "insert \"0\" at the start of every line starting with numerals"
      "INSERT(STRING(\"0\"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(STARTSWITH(NUMBERTOKEN()), ALL())))";
    q 40 "append \";\" in every line not containing punctuation"
      "INSERT(STRING(\";\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(NOTCOND(CONTAINS(PUNCTTOKEN())), ALL())))";
    q 41 "insert \"idx \" at the start of every line matching \"[0-9]+\""
      "INSERT(STRING(\"idx \"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(MATCHES(PATTERN(\"[0-9]+\")), ALL())))";
    q 42 "if a word equals \"teh\", insert \"[sic]\" at the end"
      "INSERT(STRING(\"[sic]\"), END(), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(EQUALS(PATTERN(\"teh\")), ALL())))";
    q 43 "insert \"NB \" at the start of every paragraph with capitals"
      "INSERT(STRING(\"NB \"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(CONTAINS(CAPSTOKEN()), ALL())))";
    q 44 "append \" EOL\" in every line with symbols"
      "INSERT(STRING(\" EOL\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(SYMBOLTOKEN()), ALL())))";
    q 45 "if a line ends with \"\\\\\", append \" continued\""
      "INSERT(STRING(\" continued\"), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(ENDSWITH(PATTERN(\"\\\\\")), ALL())))";
    (* ---------------------------------------------------------------- *)
    (* F3: INSERT before/after anchors (46-57)                          *)
    (* ---------------------------------------------------------------- *)
    q 46 "add \":\" after 14 characters"
      "INSERT(STRING(\":\"), AFTER(CHARNUM(NUMBER(14))), SINGLESCOPE())";
    q 47 "insert \"-\" before 3 characters"
      "INSERT(STRING(\"-\"), BEFORE(CHARNUM(NUMBER(3))), SINGLESCOPE())";
    q 48 "insert \" \" after every comma"
      "INSERT(STRING(\" \"), AFTER(PUNCTTOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 49 "add \"\\n\" after each sentence"
      "INSERT(STRING(\"\\n\"), AFTER(SENTENCETOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 50 "insert \"(\" before every number"
      "INSERT(STRING(\"(\"), BEFORE(NUMBERTOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 51 "insert \"'\" before \"s\""
      "INSERT(STRING(\"'\"), BEFORE(PATTERN(\"s\")), SINGLESCOPE())";
    q 52 "add \"=\" after \"x\""
      "INSERT(STRING(\"=\"), AFTER(PATTERN(\"x\")), SINGLESCOPE())";
    q 53 "insert \", \" after every word"
      "INSERT(STRING(\", \"), AFTER(WORDTOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 54 "add \" unit\" after every numeral"
      "INSERT(STRING(\" unit\"), AFTER(NUMBERTOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 55 "insert \"> \" after 8 characters"
      "INSERT(STRING(\"> \"), AFTER(CHARNUM(NUMBER(8))), SINGLESCOPE())";
    q 56 "add \"_\" before every capitalized word"
      "INSERT(STRING(\"_\"), BEFORE(CAPSTOKEN()), ITERATIONSCOPE(ALWAYS()))";
    q 57 "insert \".\" after \"etc\""
      "INSERT(STRING(\".\"), AFTER(PATTERN(\"etc\")), SINGLESCOPE())";
    (* ---------------------------------------------------------------- *)
    (* F4: DELETE (58-85)                                               *)
    (* ---------------------------------------------------------------- *)
    q 58 "delete all numbers"
      "DELETE(NUMBERTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 59 "remove all punctuation"
      "DELETE(PUNCTTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 60 "delete every number"
      "DELETE(NUMBERTOKEN(), ITERATIONSCOPE(ALWAYS()))";
    q 61 "delete the first word of each line"
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(FIRST())))";
    q 62 "delete the last word of each sentence"
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(LAST())))";
    q 63 "remove the first character of every line"
      "DELETE(CHARTOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(FIRST())))";
    q 64 "delete \"draft\""
      "DELETE(STRING(\"draft\"), SINGLESCOPE())";
    q 65 "remove \"--\" in every line"
      "DELETE(STRING(\"--\"), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 66 "delete all whitespace"
      "DELETE(WHITESPACETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 67 "erase all symbols"
      "DELETE(SYMBOLTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 68 "delete every line containing \"DEBUG\""
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"DEBUG\")), ALL())))";
    q 69 "remove every line starting with \"#\""
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\"#\")), ALL())))";
    q 70 "delete every sentence containing \"lorem\""
      "DELETE(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"lorem\")), ALL())))";
    q 71 "delete all lines with numbers"
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 72 "remove every word containing digits"
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 73 "delete the last sentence of every paragraph"
      "DELETE(SENTENCETOKEN(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(LAST())))";
    q 74 "remove all capitalized words"
      "DELETE(CAPSTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 75 "delete every paragraph ending with \"TBD\""
      "DELETE(PARAGRAPHTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"TBD\")), ALL())))";
    q 76 "remove all lines not containing words"
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(NOTCOND(CONTAINS(WORDTOKEN())), ALL())))";
    q 77 "delete the first line"
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 78 "delete the last paragraph"
      "DELETE(PARAGRAPHTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q 79 "remove \"very\" in every sentence"
      "DELETE(STRING(\"very\"), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    q 80 "delete all words matching \"temp.*\""
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(MATCHES(PATTERN(\"temp.*\")), ALL())))";
    q 81 "delete every word equal to \"foo\""
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(EQUALS(PATTERN(\"foo\")), ALL())))";
    q 82 "erase the first sentence of the document"
      "DELETE(SENTENCETOKEN(), ITERATIONSCOPE(DOCSCOPE(), BCONDOCCURRENCE(FIRST())))";
    q 83 "delete all lowercase words"
      "DELETE(LOWERTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 84 "remove all whitespace in the selection"
      "DELETE(WHITESPACETOKEN(), ITERATIONSCOPE(SELECTIONSCOPE(), BCONDOCCURRENCE(ALL())))";
    q 85 "delete the last character of each word"
      "DELETE(CHARTOKEN(), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(LAST())))";
    (* ---------------------------------------------------------------- *)
    (* F5: REPLACE (86-110)                                             *)
    (* ---------------------------------------------------------------- *)
    q 86 "replace \",\" with \";\""
      "REPLACE(PATTERN(\",\"), STRING(\";\"), SINGLESCOPE())";
    q 87 "replace \"color\" with \"colour\" in every line"
      "REPLACE(PATTERN(\"color\"), STRING(\"colour\"), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 88 "substitute \"&\" with \"and\""
      "REPLACE(PATTERN(\"&\"), STRING(\"and\"), SINGLESCOPE())";
    q 89 "replace all numbers with \"N\""
      "REPLACE(NUMBERTOKEN(), STRING(\"N\"), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 90 "replace every numeral with \"#\""
      "REPLACE(NUMBERTOKEN(), STRING(\"#\"), ITERATIONSCOPE(ALWAYS()))";
    q 91 "replace all punctuation with \" \""
      "REPLACE(PUNCTTOKEN(), STRING(\" \"), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 92 "replace \"teh\" with \"the\" in every sentence"
      "REPLACE(PATTERN(\"teh\"), STRING(\"the\"), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    q 93 "replace all whitespace with \"_\""
      "REPLACE(WHITESPACETOKEN(), STRING(\"_\"), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 94 "swap \"true\" with \"false\""
      "REPLACE(PATTERN(\"true\"), STRING(\"false\"), SINGLESCOPE())";
    q ~hard:true 95 "replace \";\" with \",\" in every line containing \"list\""
      "REPLACE(PATTERN(\";\"), STRING(\",\"), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"list\")), ALL())))";
    q 96 "replace all symbols with \"?\""
      "REPLACE(SYMBOLTOKEN(), STRING(\"?\"), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 97 "replace the first word of each line with \"-\""
      "REPLACE(WORDTOKEN(), STRING(\"-\"), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(FIRST())))";
    q 98 "replace \"\\t\" with \"  \" in every line"
      "REPLACE(PATTERN(\"\\t\"), STRING(\"  \"), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 99 "replace every capitalized word with \"X\""
      "REPLACE(CAPSTOKEN(), STRING(\"X\"), ITERATIONSCOPE(ALWAYS()))";
    q ~hard:true 100 "replace \"Mr\" with \"Mister\" in every sentence containing \"Smith\""
      "REPLACE(PATTERN(\"Mr\"), STRING(\"Mister\"), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"Smith\")), ALL())))";
    q 101 "replace the last word of every sentence with \".\""
      "REPLACE(WORDTOKEN(), STRING(\".\"), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(LAST())))";
    q 102 "substitute all lowercase words with \"w\""
      "REPLACE(LOWERTOKEN(), STRING(\"w\"), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 103 "replace \"etc\" with \"and so on\" everywhere"
      "REPLACE(PATTERN(\"etc\"), STRING(\"and so on\"), ITERATIONSCOPE(DOCSCOPE(), ALWAYS()))";
    q 104 "replace every word matching \"colou?r\" with \"paint\""
      "REPLACE(WORDTOKEN(), STRING(\"paint\"), ITERATIONSCOPE(BCONDOCCURRENCE(MATCHES(PATTERN(\"colou?r\")), ALL())))";
    q 105 "change \"old\" into \"new\""
      "REPLACE(PATTERN(\"old\"), STRING(\"new\"), SINGLESCOPE())";
    q 106 "replace all numbers in the selection with \"0\""
      "REPLACE(NUMBERTOKEN(), STRING(\"0\"), ITERATIONSCOPE(SELECTIONSCOPE(), BCONDOCCURRENCE(ALL())))";
    q 107 "replace \"foo\" with \"bar\" in every paragraph"
      "REPLACE(PATTERN(\"foo\"), STRING(\"bar\"), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 108 "replace every line equal to \"---\" with \"===\""
      "REPLACE(LINETOKEN(), STRING(\"===\"), ITERATIONSCOPE(BCONDOCCURRENCE(EQUALS(PATTERN(\"---\")), ALL())))";
    q 109 "replace all punctuation in every sentence with \".\""
      "REPLACE(PUNCTTOKEN(), STRING(\".\"), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(ALL())))";
    q 110 "replace the first character of every word with \"*\""
      "REPLACE(CHARTOKEN(), STRING(\"*\"), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(FIRST())))";
    (* ---------------------------------------------------------------- *)
    (* F6: SELECT (111-124)                                             *)
    (* ---------------------------------------------------------------- *)
    q 111 "select all numbers"
      "SELECT(NUMBERTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 112 "select the first word"
      "SELECT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 113 "select every line containing \"TODO\""
      "SELECT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"TODO\")), ALL())))";
    q 114 "highlight all capitalized words"
      "SELECT(CAPSTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 115 "select the last sentence"
      "SELECT(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q 116 "select all words starting with \"un\""
      "SELECT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\"un\")), ALL())))";
    q 117 "select every paragraph containing numerals"
      "SELECT(PARAGRAPHTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 118 "highlight every word matching \"[A-Z]+\""
      "SELECT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(MATCHES(PATTERN(\"[A-Z]+\")), ALL())))";
    q 119 "select the first line of each paragraph"
      "SELECT(LINETOKEN(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(FIRST())))";
    q 120 "select \"WARNING\""
      "SELECT(STRING(\"WARNING\"), SINGLESCOPE())";
    q 121 "select all lines ending with \"{\""
      "SELECT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"{\")), ALL())))";
    q 122 "select every sentence with punctuation"
      "SELECT(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PUNCTTOKEN()), ALL())))";
    q 123 "select all whitespace in the document"
      "SELECT(WHITESPACETOKEN(), ITERATIONSCOPE(DOCSCOPE(), BCONDOCCURRENCE(ALL())))";
    q 124 "select the last word of every line"
      "SELECT(WORDTOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(LAST())))";
    (* ---------------------------------------------------------------- *)
    (* F7: PRINT (125-137)                                              *)
    (* ---------------------------------------------------------------- *)
    q 125 "print all lines containing \"error\""
      "PRINT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"error\")), ALL())))";
    q 126 "show every line starting with \">\""
      "PRINT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\">\")), ALL())))";
    q 127 "display all numbers"
      "PRINT(NUMBERTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 128 "print the first line"
      "PRINT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 129 "list all capitalized words"
      "PRINT(CAPSTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 130 "print every sentence containing \"theorem\""
      "PRINT(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"theorem\")), ALL())))";
    q 131 "show the last paragraph"
      "PRINT(PARAGRAPHTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q 132 "print all words ending with \"ing\""
      "PRINT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"ing\")), ALL())))";
    q 133 "display every line of the selection"
      "PRINT(LINETOKEN(), ITERATIONSCOPE(SELECTIONSCOPE(), ALWAYS()))";
    q 134 "print all lines not containing whitespace"
      "PRINT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(NOTCOND(CONTAINS(WHITESPACETOKEN())), ALL())))";
    q 135 "print every word equal to \"nil\""
      "PRINT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(EQUALS(PATTERN(\"nil\")), ALL())))";
    q 136 "show all symbols in the document"
      "PRINT(SYMBOLTOKEN(), ITERATIONSCOPE(DOCSCOPE(), BCONDOCCURRENCE(ALL())))";
    q 137 "print the last line of every paragraph"
      "PRINT(LINETOKEN(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(LAST())))";
    (* ---------------------------------------------------------------- *)
    (* F8: COPY (138-146)                                               *)
    (* ---------------------------------------------------------------- *)
    q 138 "copy the first line"
      "COPY(LINETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 139 "copy all numbers at the end"
      "COPY(NUMBERTOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 140 "copy every line containing \"sum\" at the end"
      "COPY(LINETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"sum\")), ALL())))";
    q 141 "duplicate the last paragraph"
      "COPY(PARAGRAPHTOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q 142 "copy the first sentence at the start"
      "COPY(SENTENCETOKEN(), START(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 143 "copy \"header\" at the start of every paragraph"
      "COPY(STRING(\"header\"), START(), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 144 "duplicate every line ending with \";\""
      "COPY(LINETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\";\")), ALL())))";
    q 145 "copy the last word of every line at the end"
      "COPY(WORDTOKEN(), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(LAST())))";
    q 146 "copy all capitalized words at the end of the document"
      "COPY(CAPSTOKEN(), END(), ITERATIONSCOPE(DOCSCOPE(), BCONDOCCURRENCE(ALL())))";
    (* ---------------------------------------------------------------- *)
    (* F9: MOVE (147-155)                                               *)
    (* ---------------------------------------------------------------- *)
    q 147 "move the first line at the end"
      "MOVE(LINETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(FIRST())))";
    q 148 "move all numbers at the end"
      "MOVE(NUMBERTOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 149 "move the last sentence at the start"
      "MOVE(SENTENCETOKEN(), START(), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q 150 "move every line containing \"import\" at the start"
      "MOVE(LINETOKEN(), START(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"import\")), ALL())))";
    q 151 "move \"summary\" at the start"
      "MOVE(STRING(\"summary\"), START(), SINGLESCOPE())";
    q 152 "move the last paragraph at the start of the document"
      "MOVE(PARAGRAPHTOKEN(), START(), ITERATIONSCOPE(DOCSCOPE(), BCONDOCCURRENCE(LAST())))";
    q 153 "move every sentence starting with \"However\" at the end"
      "MOVE(SENTENCETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\"However\")), ALL())))";
    q 154 "move all punctuation at the end"
      "MOVE(PUNCTTOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 155 "move the first word of every line at the end"
      "MOVE(WORDTOKEN(), END(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(FIRST())))";
    (* ---------------------------------------------------------------- *)
    (* F10: COUNT (156-170)                                             *)
    (* ---------------------------------------------------------------- *)
    q 156 "count the words in the document"
      "COUNT(WORDTOKEN(), ITERATIONSCOPE(DOCSCOPE(), ALWAYS()))";
    q 157 "count all numbers"
      "COUNT(NUMBERTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 158 "count the lines"
      "COUNT(LINETOKEN(), SINGLESCOPE())";
    q 159 "count every sentence containing \"data\""
      "COUNT(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"data\")), ALL())))";
    q 160 "count all lines starting with \"*\""
      "COUNT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\"*\")), ALL())))";
    q 161 "count the paragraphs"
      "COUNT(PARAGRAPHTOKEN(), SINGLESCOPE())";
    q 162 "count the characters in every word"
      "COUNT(CHARTOKEN(), ITERATIONSCOPE(WORDSCOPE(), ALWAYS()))";
    q 163 "count all capitalized words"
      "COUNT(CAPSTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q 164 "count every word ending with \"ly\""
      "COUNT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"ly\")), ALL())))";
    q 165 "count the sentences in each paragraph"
      "COUNT(SENTENCETOKEN(), ITERATIONSCOPE(PARAGRAPHSCOPE(), ALWAYS()))";
    q 166 "count all words matching \"[0-9]+\""
      "COUNT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(MATCHES(PATTERN(\"[0-9]+\")), ALL())))";
    q 167 "count the whitespace in every line"
      "COUNT(WHITESPACETOKEN(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q 168 "count all lines not containing numbers"
      "COUNT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(NOTCOND(CONTAINS(NUMBERTOKEN())), ALL())))";
    q 169 "count every symbol in the selection"
      "COUNT(SYMBOLTOKEN(), ITERATIONSCOPE(SELECTIONSCOPE(), ALWAYS()))";
    q 170 "count the words in every sentence"
      "COUNT(WORDTOKEN(), ITERATIONSCOPE(SENTENCESCOPE(), ALWAYS()))";
    (* ---------------------------------------------------------------- *)
    (* F11: conditional clauses and negation (171-185)                  *)
    (* ---------------------------------------------------------------- *)
    q 171 "if a line contains \"password\", delete the line"
      "DELETE(LINETOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(CONTAINS(PATTERN(\"password\")), ALL())))";
    q 172 "if a word starts with \"z\", select the word"
      "SELECT(WORDTOKEN(), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(STARTSWITH(PATTERN(\"z\")), ALL())))";
    q 173 "if a sentence ends with \"?\", print the sentence"
      "PRINT(SENTENCETOKEN(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(ENDSWITH(PATTERN(\"?\")), ALL())))";
    q 174 "if a paragraph contains numerals, select the paragraph"
      "SELECT(PARAGRAPHTOKEN(), ITERATIONSCOPE(PARAGRAPHSCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q 175 "if a line equals \"---\", delete the line"
      "DELETE(LINETOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(EQUALS(PATTERN(\"---\")), ALL())))";
    q 176 "delete every line that contains \"secret\""
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"secret\")), ALL())))";
    q 177 "print every word that starts with \"pre\""
      "PRINT(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(STARTSWITH(PATTERN(\"pre\")), ALL())))";
    q 178 "select every sentence that ends with \"!\""
      "SELECT(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"!\")), ALL())))";
    q 179 "delete every word that matches \"x+\""
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(MATCHES(PATTERN(\"x+\")), ALL())))";
    q 180 "remove every sentence not containing capitals"
      "DELETE(SENTENCETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(NOTCOND(CONTAINS(CAPSTOKEN())), ALL())))";
    q 181 "print all lines with \"http\""
      "PRINT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(CONTAINS(PATTERN(\"http\")), ALL())))";
    q ~hard:true 182 "select every line with numbers in the selection"
      "SELECT(LINETOKEN(), ITERATIONSCOPE(SELECTIONSCOPE(), BCONDOCCURRENCE(CONTAINS(NUMBERTOKEN()), ALL())))";
    q ~hard:true 183 "if a line starts with whitespace, delete the whitespace"
      "DELETE(WHITESPACETOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(STARTSWITH(WHITESPACETOKEN()), ALL())))";
    q 184 "count every line that ends with \"}\""
      "COUNT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ENDSWITH(PATTERN(\"}\")), ALL())))";
    q 185 "if a word contains symbols, replace the word with \" \""
      "REPLACE(WORDTOKEN(), STRING(\" \"), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(CONTAINS(SYMBOLTOKEN()), ALL())))";
    (* ---------------------------------------------------------------- *)
    (* F12: hard / out-of-fragment cases (186-200)                      *)
    (* ---------------------------------------------------------------- *)
    q ~hard:true 186 "delete the third word of each line"
      "DELETE(WORDTOKEN(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(NTH(NUMBER(3)))))";
    q ~hard:true 187 "select every second line"
      "SELECT(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(EVERYNTH(NUMBER(2)))))";
    q ~hard:true 188 "insert \"-\" at the start of every line containing numbers and symbols"
      "INSERT(STRING(\"-\"), START(), ITERATIONSCOPE(LINESCOPE(), BCONDOCCURRENCE(ANDCOND(CONTAINS(NUMBERTOKEN()), CONTAINS(SYMBOLTOKEN())), ALL())))";
    q ~hard:true 189 "delete every line starting with \"#\" or ending with \";\""
      "DELETE(LINETOKEN(), ITERATIONSCOPE(BCONDOCCURRENCE(ORCOND(STARTSWITH(PATTERN(\"#\")), ENDSWITH(PATTERN(\";\"))), ALL())))";
    q ~hard:true 190 "append \";\" at the end of the line and at the end of the paragraph"
      "INSERT(STRING(\";\"), END(), ITERATIONSCOPE(LINESCOPE(), ALWAYS()))";
    q ~hard:true 191 "move the caret to the next blank line"
      "MOVE(LINETOKEN(), END(), SINGLESCOPE())";
    q ~hard:true 192 "make the first letter of every word uppercase"
      "REPLACE(CHARTOKEN(), STRING(\"\"), ITERATIONSCOPE(WORDSCOPE(), BCONDOCCURRENCE(FIRST())))";
    q ~hard:true 193 "add \":\" at the end of the fourth sentence"
      "INSERT(STRING(\":\"), END(), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(NTH(NUMBER(4)))))";
    q ~hard:true 194 "undo the last change"
      "DELETE(STRING(\"\"), SINGLESCOPE())";
    q ~hard:true 195 "replace the second occurrence of \"x\" with \"y\""
      "REPLACE(PATTERN(\"x\"), STRING(\"y\"), ITERATIONSCOPE(BCONDOCCURRENCE(NTH(NUMBER(2)))))";
    q ~hard:true 196 "wrap every number in parentheses"
      "INSERT(STRING(\"(\"), BEFORE(NUMBERTOKEN()), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q ~hard:true 197 "sort all lines alphabetically"
      "MOVE(LINETOKEN(), END(), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q ~hard:true 198 "delete everything after the last period"
      "DELETE(STRING(\"\"), ITERATIONSCOPE(BCONDOCCURRENCE(LAST())))";
    q ~hard:true 199 "insert a blank line between every pair of paragraphs"
      "INSERT(STRING(\"\\n\"), AFTER(PARAGRAPHTOKEN()), ITERATIONSCOPE(BCONDOCCURRENCE(ALL())))";
    q ~hard:true 200 "capitalize every sentence in the document"
      "REPLACE(CHARTOKEN(), STRING(\"\"), ITERATIONSCOPE(SENTENCESCOPE(), BCONDOCCURRENCE(FIRST())))";
  ]
