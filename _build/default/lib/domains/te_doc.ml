(* The TextEditing DSL reference document: one prose entry per API, in the
   style of an end-user command-language manual. WordToAPI keywords are
   derived from the API name's subtokens plus these descriptions, so the
   wording below determines the candidate fan-out the engines see. *)

let entries =
  [
    (* commands ------------------------------------------------------ *)
    ("INSERT", "insert or add a given string at a position in the text");
    ("DELETE", "delete or remove the given entity from the text");
    ("REPLACE", "replace the given entity with a string");
    ("SELECT", "select or highlight the given entity");
    ("PRINT", "print or show or display or list the given entity");
    ("COPY", "copy or duplicate the given entity to a position");
    ("MOVE", "move the given entity to a position");
    ("COUNT", "count how many occurrences of the given entity exist");
    (* literals. PATTERN precedes STRING: for commands with both slots
       (replace X with Y) the first literal is the pattern. *)
    ("PATTERN", "a literal search pattern to look for in the text");
    ("STRING", "a literal string value given by the user");
    ("NUMBER", "a literal numeric value given by the user");
    (* tokens -------------------------------------------------------- *)
    ("WORDTOKEN", "a word in the text");
    ("NUMBERTOKEN", "a number or numeral or numeric digit in the text");
    ("CHARTOKEN", "a character or letter in the text");
    ("LINETOKEN", "a line of the text");
    ("SENTENCETOKEN", "a sentence of the text");
    ("PARAGRAPHTOKEN", "a paragraph of the text");
    ("WHITESPACETOKEN", "a whitespace or space or blank or tab in the text");
    ("PUNCTTOKEN", "a punctuation mark such as a comma or period or colon or semicolon");
    ("CAPSTOKEN", "a capitalized or uppercase word in the text");
    ("LOWERTOKEN", "a lowercase word in the text");
    ("SYMBOLTOKEN", "a symbol or special sign in the text");
    (* positions ----------------------------------------------------- *)
    ("START", "the start or beginning or front of the scope");
    ("END", "the end or tail or back of the scope");
    ("POSITION", "a specific position or place in the text");
    ("BEFORE", "the position before or preceding the given anchor");
    ("AFTER", "the position after or following the given anchor");
    ("STARTFROM", "the position starting from the given anchor");
    ("CHARNUM", "a position counted in characters from the beginning");
    (* iteration ----------------------------------------------------- *)
    ("SINGLESCOPE", "apply the command a single time only");
    ("ITERATIONSCOPE", "repeat the command over every or each unit that meets the condition");
    (* scopes -------------------------------------------------------- *)
    ("LINESCOPE", "the scope of a line so the command works line by line");
    ("SENTENCESCOPE", "the scope of a sentence so the command works sentence by sentence");
    ("PARAGRAPHSCOPE", "the scope of a paragraph so the command works paragraph by paragraph");
    ("DOCSCOPE", "the scope of the whole document or file or everything or everywhere");
    ("WORDSCOPE", "the scope of a word so the command works word by word");
    ("SELECTIONSCOPE", "the scope of the current selection or the selected region");
    (* conditions ---------------------------------------------------- *)
    ("ALWAYS", "no condition so the command always applies");
    ("BCONDOCCURRENCE", "restrict which occurrences the condition picks");
    ("CONTAINS", "the unit contains or includes or has the given entity");
    ("STARTSWITH", "the unit starts or begins with the given entity");
    ("ENDSWITH", "the unit ends or finishes with the given entity");
    ("EQUALS", "the unit equals or is exactly the given entity");
    ("MATCHES", "the unit matches the given pattern or regular expression");
    ("ANDCOND", "both conditions are true at the same time");
    ("ORCOND", "either one of the two conditions is true");
    ("NOTCOND", "the condition is not true; negated");
    (* occurrence selectors ------------------------------------------ *)
    ("ALL", "all or every occurrence");
    ("FIRST", "only the first or initial occurrence");
    ("LAST", "only the last or final occurrence");
    ("NTH", "only the occurrence at the given ordinal index");
    ("EVERYNTH", "the nth occurrences repeating at the given interval");
  ]

let literal_apis = [ "STRING"; "PATTERN" ]
let number_apis = [ "NUMBER" ]

(* Commands and condition predicates are verb-form mentions; entities,
   positions and scopes are noun-form mentions. *)
let verb_apis =
  [ "INSERT"; "DELETE"; "REPLACE"; "SELECT"; "PRINT"; "COPY"; "MOVE"; "COUNT";
    "CONTAINS"; "STARTSWITH"; "ENDSWITH"; "EQUALS"; "MATCHES" ]

let noun_apis =
  [ "START"; "END"; "POSITION"; "CHARNUM"; "WORDTOKEN"; "NUMBERTOKEN";
    "CHARTOKEN"; "LINETOKEN"; "SENTENCETOKEN"; "PARAGRAPHTOKEN";
    "WHITESPACETOKEN"; "PUNCTTOKEN"; "CAPSTOKEN"; "LOWERTOKEN"; "SYMBOLTOKEN";
    "LINESCOPE"; "SENTENCESCOPE"; "PARAGRAPHSCOPE"; "DOCSCOPE"; "WORDSCOPE";
    "SELECTIONSCOPE" ]

(* Default derivations for the required arguments the query left
   unmentioned — visible in the paper's codelets as END() and ALL(). *)
let defaults =
  [
    ("pos", "END()");
    ("iter", "SINGLESCOPE()");
    ("occ", "ALL()");
    ("cond", "ALWAYS()");
  ]

let doc =
  lazy (Dggt_core.Apidoc.make ~literal_apis ~number_apis ~verb_apis ~noun_apis entries)
