let graph =
  lazy
    (let bnf = Lazy.force Am_grammar.bnf in
     match Dggt_grammar.Cfg.of_text ~start:Am_grammar.start bnf with
     | Ok cfg -> Dggt_grammar.Ggraph.build cfg
     | Error e ->
         failwith (Format.asprintf "ASTMatcher grammar: %a" Dggt_grammar.Cfg.pp_error e))

let defaults = []

let domain =
  {
    Domain.name = "ASTMatcher";
    description =
      "Clang/LLVM's LibASTMatchers: expressions for finding patterns in \
       C/C++ abstract syntax trees.";
    source = "matcher vocabulary after clang.llvm.org/docs/LibASTMatchersReference.html";
    graph;
    doc = Am_doc.doc;
    queries = Am_queries.queries;
    defaults;
    unit_filter = None;
    (* the matcher grammar is dense and recursive: chains in queries are
       at most ~3 matcher levels (~12 graph nodes), and per-pair path
       counts beyond a few dozen only repeat the same traversal detours *)
    path_limits = Some { Dggt_grammar.Gpath.max_nodes = 12; max_paths = 48; max_steps = 30_000 };
    (* code-search imperatives have no matcher meaning *)
    stop_verbs = [ "find"; "search"; "list"; "show"; "display"; "give"; "grep"; "look"; "get"; "print" ];
    (* 505-way vocabulary with many near-synonymous matcher names: a wider
       fan-out keeps the right matcher in reach (this is the paper's p_l) *)
    top_k = Some 6;
  }
