(* Compiles the matcher spec table into the domain's BNF grammar.

   Shape (per §IV of the paper: API terminals, nonterminal structure, "or"
   alternatives):

     matcher ::= decl_m | stmt_m | expr_m | type_m ;
     decl_m  ::= n_functionDecl | n_varDecl | ... ;
     n_functionDecl ::= functionDecl a_functionDecl ;
     a_functionDecl ::= isInline | n_hasName | n_hasBody | ... ;
     n_hasName ::= hasName __strlit ;
     n_hasBody ::= hasBody stmt_m ;

   Every node matcher owns its argument nonterminal (a_<name>): sharing a
   per-kind argument nonterminal would give it two parents as soon as a
   query chains two matchers of the same kind, breaking the merged CGT's
   tree-ness. Narrowing matchers appear as bare API terminals (nullary) or
   via n_<name> when they carry a literal; traversal matchers always go
   through n_<name> to reach their target kind. *)

open Am_spec

let kind_nt = function
  | Decl -> "decl_m"
  | Stmt -> "stmt_m"
  | Expr -> "expr_m"
  | Type -> "type_m"

let lit_api = function Lstr -> "__strlit" | Lnum -> "__intlit" | Lnone -> assert false

let generate specs =
  let buf = Buffer.create 65536 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let nodes_of k =
    List.filter_map
      (function Node n when n.kind = k -> Some n.name | _ -> None)
      specs
  in
  let inner_symbols_for k =
    (* alternatives available inside a node matcher of kind [k] *)
    List.filter_map
      (function
        | Narrow n when List.mem k n.kinds ->
            Some (if n.lit = Lnone then n.name else "n_" ^ n.name)
        | Traversal t when List.mem k t.kinds -> Some ("n_" ^ t.name)
        | _ -> None)
      specs
  in
  line "# ASTMatcher grammar — generated from Am_spec (%d matchers)"
    (List.length specs);
  line "matcher ::= decl_m | stmt_m | expr_m | type_m ;";
  List.iter
    (fun k ->
      line "%s ::= %s ;" (kind_nt k)
        (String.concat " | " (List.map (fun n -> "n_" ^ n) (nodes_of k))))
    [ Decl; Stmt; Expr; Type ];
  (* node matchers and their argument nonterminals *)
  List.iter
    (function
      | Node n ->
          line "n_%s ::= %s a_%s ;" n.name n.name n.name;
          line "a_%s ::= %s ;" n.name (String.concat " | " (inner_symbols_for n.kind))
      | _ -> ())
    specs;
  (* literal-bearing narrowing matchers *)
  List.iter
    (function
      | Narrow n when n.lit <> Lnone ->
          line "n_%s ::= %s %s ;" n.name n.name (lit_api n.lit)
      | _ -> ())
    specs;
  (* traversal matchers *)
  List.iter
    (function
      | Traversal t ->
          let target = match t.arg with Some k -> kind_nt k | None -> "matcher" in
          line "n_%s ::= %s %s ;" t.name t.name target
      | _ -> ())
    specs;
  Buffer.contents buf

let bnf = lazy (generate Am_spec.all)
let start = "matcher"
