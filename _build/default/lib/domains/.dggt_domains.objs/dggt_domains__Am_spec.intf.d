lib/domains/am_spec.mli:
