lib/domains/domain.ml: Dggt_core Dggt_grammar Lazy List Option Printf
