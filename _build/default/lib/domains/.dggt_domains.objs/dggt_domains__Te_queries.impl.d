lib/domains/te_queries.ml: Domain
