lib/domains/text_editing.mli: Domain
