lib/domains/am_doc.ml: Am_spec Dggt_core List
