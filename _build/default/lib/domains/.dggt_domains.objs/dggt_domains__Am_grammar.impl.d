lib/domains/am_grammar.ml: Am_spec Buffer List Printf String
