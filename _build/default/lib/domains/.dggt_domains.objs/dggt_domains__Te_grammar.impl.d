lib/domains/te_grammar.ml:
