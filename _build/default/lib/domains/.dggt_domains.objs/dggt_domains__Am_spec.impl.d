lib/domains/am_spec.ml: List
