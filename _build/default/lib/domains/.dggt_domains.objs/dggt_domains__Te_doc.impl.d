lib/domains/te_doc.ml: Dggt_core
