lib/domains/am_queries.ml: Domain
