lib/domains/astmatcher.mli: Domain
