lib/domains/text_editing.ml: Dggt_grammar Dggt_util Domain Format Te_doc Te_grammar Te_queries
