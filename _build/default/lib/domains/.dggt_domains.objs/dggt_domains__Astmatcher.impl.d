lib/domains/astmatcher.ml: Am_doc Am_grammar Am_queries Dggt_grammar Domain Format Lazy
