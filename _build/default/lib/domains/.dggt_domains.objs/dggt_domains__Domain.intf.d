lib/domains/domain.mli: Dggt_core Dggt_grammar Lazy
